//! End-to-end integration through the facade crate: the complete
//! pipeline — annotate, transform, analyse, build, attest, run,
//! GC-sync, shut down — using only the public `montsalvat` API.

use montsalvat::core::annotation::{Side, Trust};
use montsalvat::core::codegen;
use montsalvat::core::exec::app::{AppConfig, PartitionedApp, Placement, SingleWorldApp};
use montsalvat::core::image_builder::{
    build_partitioned_images, build_unpartitioned_image, ImageOptions,
};
use montsalvat::core::samples::bank_program;
use montsalvat::core::transform::transform;
use montsalvat::core::MethodRef;
use montsalvat::runtime::value::Value;
use montsalvat::sgx::Enclave;

fn no_helpers() -> AppConfig {
    AppConfig { gc_helper_interval: None, ..AppConfig::default() }
}

#[test]
fn full_pipeline_through_the_facade() {
    let program = bank_program();
    let transformed = transform(&program);

    // The build emits inspectable SGX artefacts.
    let artefacts = codegen::generate(&transformed);
    assert!(artefacts.edl.contains("trusted {"));
    assert!(artefacts.untrusted_bridge_c.contains("ecall_relay_Account"));

    let (trusted, untrusted) =
        build_partitioned_images(&transformed, &ImageOptions::default(), &ImageOptions::default())
            .unwrap();
    let app = PartitionedApp::launch(&trusted, &untrusted, no_helpers()).unwrap();

    // Remote attestation stub: the quote verifies and carries the
    // enclave's measurement.
    let quote = app.enclave.quote([9u8; 32]);
    assert!(Enclave::verify_quote(&quote));
    assert_eq!(quote.measurement, app.enclave.measurement());

    app.run_main().unwrap();
    assert_eq!(app.registry_len(Side::Trusted), 3);

    // GC consistency end-to-end.
    app.enter_untrusted(|ctx| {
        ctx.collect_garbage();
        Ok(())
    })
    .unwrap();
    let (released, _) = app.gc_sync_once().unwrap();
    assert_eq!(released, 3);
    app.shutdown();
}

#[test]
fn partitioned_and_unpartitioned_results_agree() {
    // The same logical application computes identical balances in all
    // three deployments.
    let entries = vec![
        MethodRef::new("Person", "<init>"),
        MethodRef::new("Person", "transfer"),
        MethodRef::new("Person", "getAccount"),
        MethodRef::new("Account", "balance"),
    ];
    let drive = |ctx: &mut montsalvat::core::Ctx<'_>| {
        let alice = ctx.new_object("Person", &[Value::from("Alice"), Value::Int(100)])?;
        let bob = ctx.new_object("Person", &[Value::from("Bob"), Value::Int(25)])?;
        ctx.call(&alice, "transfer", &[bob.clone(), Value::Int(40)])?;
        let acc = ctx.call(&alice, "getAccount", &[])?;
        ctx.call(&acc, "balance", &[])
    };

    let tp = transform(&bank_program());
    let options = ImageOptions::with_entry_points(entries.clone());
    let (t, u) = build_partitioned_images(&tp, &options, &options).unwrap();
    let partitioned = PartitionedApp::launch(&t, &u, no_helpers()).unwrap();
    let part_result = partitioned.enter_untrusted(drive).unwrap();

    let image =
        build_unpartitioned_image(&bank_program(), &ImageOptions::with_entry_points(entries))
            .unwrap();
    for placement in [Placement::Host, Placement::Enclave] {
        let single = SingleWorldApp::launch(&image, placement, no_helpers()).unwrap();
        let result = single.enter(drive).unwrap();
        assert_eq!(result, part_result, "{placement:?} must agree with partitioned");
    }
    assert_eq!(part_result, Value::Int(60));
}

#[test]
fn annotations_control_placement_of_io() {
    // An @Untrusted class writes without crossings; an @Trusted class
    // relays every write as an ocall.
    use montsalvat::core::class::{ClassDef, Instr, MethodDef, MethodKind, CTOR};
    use std::sync::Arc;

    let io_body: montsalvat::core::class::NativeFn = Arc::new(|ctx, _this, _args| {
        for _ in 0..10 {
            ctx.io_write(512)?;
        }
        Ok(Value::Unit)
    });
    let make = |trust: Trust| {
        let worker = ClassDef::new("Worker")
            .trust(trust)
            .method(MethodDef::interpreted(
                CTOR,
                MethodKind::Constructor,
                0,
                0,
                vec![Instr::Return { value: None }],
            ))
            .method(MethodDef::native("work", MethodKind::Instance, 0, vec![], io_body.clone()));
        let main = ClassDef::new("Main").trust(Trust::Untrusted).method(MethodDef::interpreted(
            "main",
            MethodKind::Static,
            0,
            0,
            vec![Instr::Return { value: None }],
        ));
        montsalvat::core::Program::new(vec![worker, main], MethodRef::new("Main", "main")).unwrap()
    };

    let mut ocalls = Vec::new();
    for trust in [Trust::Untrusted, Trust::Trusted] {
        let tp = transform(&make(trust));
        let options = ImageOptions::with_entry_points(vec![
            MethodRef::new("Worker", CTOR),
            MethodRef::new("Worker", "work"),
        ]);
        let (t, u) = build_partitioned_images(&tp, &options, &options).unwrap();
        let app = PartitionedApp::launch(&t, &u, no_helpers()).unwrap();
        app.enter_untrusted(|ctx| {
            let w = ctx.new_object("Worker", &[])?;
            ctx.call(&w, "work", &[])
        })
        .unwrap();
        ocalls.push(app.sgx_stats().ocalls);
    }
    assert_eq!(ocalls[0], 0, "untrusted worker writes directly");
    assert!(ocalls[1] >= 10, "trusted worker relays each write: {}", ocalls[1]);
}
