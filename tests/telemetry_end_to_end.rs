//! End-to-end telemetry integration: a quickstart-scale partitioned run
//! exports versioned JSON whose counters are nonzero and agree exactly
//! with the legacy `sgx_stats()` facade — the two views are reads of the
//! same recorder, and this test pins that equivalence.

use montsalvat::core::exec::app::{AppConfig, PartitionedApp};
use montsalvat::core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat::core::samples::bank_program;
use montsalvat::core::transform::transform;
use montsalvat::telemetry::{extract_counter, Counter, Recorder, SCHEMA};

/// Launches the bank sample with an injected recorder (isolated from
/// any other app running in the test process), runs `main` plus a GC
/// cycle, and returns the app alongside its recorder.
fn quickstart_run() -> (PartitionedApp, std::sync::Arc<Recorder>) {
    let transformed = transform(&bank_program());
    let (trusted, untrusted) =
        build_partitioned_images(&transformed, &ImageOptions::default(), &ImageOptions::default())
            .unwrap();
    let recorder = Recorder::new();
    let config = AppConfig {
        gc_helper_interval: None,
        telemetry: Some(recorder.clone()),
        ..AppConfig::default()
    };
    let app = PartitionedApp::launch(&trusted, &untrusted, config).unwrap();
    app.run_main().unwrap();
    // In-enclave scratch I/O relays through the libc shim: one ecall to
    // enter, ocalls for the file operations.
    app.enter_trusted(|ctx| ctx.io_write(1024)).unwrap();
    app.enter_untrusted(|ctx| {
        ctx.collect_garbage();
        Ok(())
    })
    .unwrap();
    app.gc_sync_once().unwrap();
    (app, recorder)
}

#[test]
fn exported_json_matches_sgx_stats() {
    let (app, recorder) = quickstart_run();
    let stats = app.sgx_stats();
    let json = recorder.snapshot().to_json();

    assert!(json.contains(&format!("\"schema\": \"{SCHEMA}\"")));

    // Nonzero activity: the bank app crosses the boundary and collects.
    assert!(stats.ecalls > 0, "quickstart run must perform ecalls");
    assert!(stats.ocalls > 0, "gc_sync_once exits the enclave");
    let gc = extract_counter(&json, "gc.collections").unwrap();
    assert!(gc > 0, "the run must collect at least once");

    // The exported JSON and the legacy facade agree exactly.
    assert_eq!(extract_counter(&json, "sgx.ecalls"), Some(stats.ecalls));
    assert_eq!(extract_counter(&json, "sgx.ocalls"), Some(stats.ocalls));
    assert_eq!(extract_counter(&json, "sgx.bytes_in"), Some(stats.bytes_in));
    assert_eq!(extract_counter(&json, "sgx.bytes_out"), Some(stats.bytes_out));
    assert_eq!(extract_counter(&json, "sgx.mee_bytes"), Some(stats.mee_bytes));
    assert_eq!(extract_counter(&json, "sgx.epc_faults"), Some(stats.epc_faults));

    // The RMI layer reports into the same recorder.
    let world = app.world_stats(montsalvat::core::annotation::Side::Untrusted);
    let rmi_calls = extract_counter(&json, "rmi.calls").unwrap();
    assert!(rmi_calls >= world.rmi_calls, "both worlds report into one recorder");
    assert!(extract_counter(&json, "rmi.proxies_created").unwrap() > 0);
    assert!(extract_counter(&json, "rmi.mirrors_created").unwrap() > 0);
    app.shutdown();
}

#[test]
fn injected_recorders_isolate_concurrent_apps() {
    let (app_a, rec_a) = quickstart_run();
    let ecalls_a = rec_a.counter(Counter::Ecalls);
    app_a.shutdown();

    let (app_b, rec_b) = quickstart_run();
    // The second run's recorder starts from zero: app A's activity did
    // not leak into it.
    assert_eq!(rec_b.counter(Counter::Ecalls), app_b.sgx_stats().ecalls);
    assert_eq!(rec_a.counter(Counter::Ecalls), ecalls_a, "app B did not write into A");
    app_b.shutdown();
}

#[test]
fn snapshot_counters_match_live_reads() {
    let (app, recorder) = quickstart_run();
    let snap = app.telemetry_snapshot();
    for &c in Counter::ALL.iter() {
        assert_eq!(snap.counter(c), recorder.counter(c), "{}", c.metric_name());
    }
    app.shutdown();
}
