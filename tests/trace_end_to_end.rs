//! End-to-end causal-tracing integration: a partitioned run with an
//! injected tracer produces one connected call tree per crossing — an
//! ecall span on the trusted lane with nested shim-ocall children on
//! the untrusted lane — exports as balanced Chrome trace-event JSON,
//! and reconciles against telemetry (`rmi.calls` == traced rmi spans
//! when nothing was dropped). A second test pins the overflow path:
//! a tiny ring counts drops into `trace.dropped` without corrupting
//! the capture.

use std::sync::Arc;

use montsalvat::core::exec::app::{AppConfig, PartitionedApp};
use montsalvat::core::exec::switchless::tuner::TunerConfig;
use montsalvat::core::exec::switchless::SwitchlessConfig;
use montsalvat::core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat::core::samples::bank_program;
use montsalvat::core::transform::transform;
use montsalvat::telemetry::trace::{self, parse_chrome_trace, Tracer};
use montsalvat::telemetry::{Counter, Gauge, Hist, Recorder};

/// Launches the bank sample with an injected recorder and tracer, runs
/// `main`, then performs in-enclave scratch I/O (an ecall whose body
/// issues shim-relayed ocalls — the nested-crossing shape the trace
/// must reproduce as one tree).
fn traced_run(tracer: &Arc<Tracer>) -> (PartitionedApp, Arc<Recorder>) {
    let transformed = transform(&bank_program());
    let (trusted, untrusted) =
        build_partitioned_images(&transformed, &ImageOptions::default(), &ImageOptions::default())
            .unwrap();
    let recorder = Recorder::new();
    let config = AppConfig {
        gc_helper_interval: None,
        telemetry: Some(recorder.clone()),
        trace: Some(Arc::clone(tracer)),
        ..AppConfig::default()
    };
    let app = PartitionedApp::launch(&trusted, &untrusted, config).unwrap();
    app.run_main().unwrap();
    app.enter_trusted(|ctx| ctx.io_write(1024)).unwrap();
    (app, recorder)
}

#[test]
fn crossing_produces_one_connected_tree_across_both_lanes() {
    let tracer = Tracer::new();
    tracer.enable_with_capacity(65_536);
    let (app, recorder) = traced_run(&tracer);
    let rmi_calls = recorder.counter(Counter::RmiCalls);
    let json = tracer.to_chrome_json(&[("rmi_calls", rmi_calls)]);
    app.shutdown();

    let parsed = parse_chrome_trace(&json).unwrap();
    assert!(!parsed.events.is_empty(), "a traced run captures events");
    assert_eq!(parsed.other("dropped"), Some(0), "nothing dropped at this capacity");

    // Balanced: every Begin has its End.
    let begins = parsed.events.iter().filter(|e| e.ph == 'B').count();
    let ends = parsed.events.iter().filter(|e| e.ph == 'E').count();
    assert_eq!(begins, ends, "B/E balanced after export");

    // Both runtimes show up as their own lane (Perfetto "process").
    assert!(parsed.events.iter().any(|e| e.pid == 1), "trusted lane present");
    assert!(parsed.events.iter().any(|e| e.pid == 2), "untrusted lane present");

    // The nested-crossing shape: an ecall span on the trusted lane
    // whose direct child is a shim ocall span on the untrusted lane,
    // in the same trace (= one connected tree).
    let ecalls: Vec<_> = parsed
        .events
        .iter()
        .filter(|e| e.ph == 'B' && e.pid == 1 && e.cat == "sgx" && e.name.starts_with("ecall:"))
        .collect();
    assert!(!ecalls.is_empty(), "the run performs ecalls");
    let nested_ocall = parsed.events.iter().any(|e| {
        e.ph == 'B'
            && e.pid == 2
            && e.name.starts_with("ocall:")
            && ecalls.iter().any(|ec| ec.span == e.parent && ec.tid == e.tid)
    });
    assert!(nested_ocall, "an ecall span contains an opposite-lane ocall child");

    // Shim-relayed I/O is categorised separately from raw transitions.
    assert!(
        parsed.events.iter().any(|e| e.cat == "shim" && e.name.starts_with("ocall:shim_")),
        "shim relays are traced under cat \"shim\""
    );

    // Reconciliation: one cat-"rmi" span per cross_call, so telemetry
    // and the trace agree exactly in the no-drop regime.
    let rmi_spans = parsed.events.iter().filter(|e| e.ph == 'B' && e.cat == "rmi").count() as u64;
    assert!(rmi_calls > 0, "the bank app performs proxy calls");
    assert_eq!(rmi_spans, rmi_calls, "rmi.calls == traced rmi spans + 0 dropped");
    assert_eq!(parsed.other("rmi_calls"), Some(rmi_calls), "otherData carries the counter");

    // Every parent pointer resolves to a span in the same trace.
    for e in parsed.events.iter().filter(|e| e.ph == 'B' && e.parent != 0) {
        assert!(
            parsed.events.iter().any(|p| p.ph == 'B' && p.span == e.parent && p.tid == e.tid),
            "parent {} of span {} resolves within trace {}",
            e.parent,
            e.span,
            e.tid
        );
    }

    // Instrumentation never leaks a context past the crossing.
    assert!(trace::current().is_none(), "no dangling thread-local context");
}

/// Regression (PR 4): trace/telemetry reconciliation must survive the
/// trace-driven tuner resizing pools mid-run. An aggressive tuner on a
/// switchless app is driven until it records decisions; afterwards the
/// capture must still balance, `rmi.calls` must still equal the traced
/// rmi spans (nothing dropped at this capacity), every traced hit must
/// have recorded exactly one queue-wait histogram sample and one
/// cat-`queue` wait span, and the tuner's own decisions must be
/// visible as `tune:` marks.
#[test]
fn autotuned_run_keeps_trace_and_telemetry_reconciled() {
    let tracer = Tracer::new();
    tracer.enable_with_capacity(1 << 20);
    let transformed = transform(&bank_program());
    let (trusted, untrusted) =
        build_partitioned_images(&transformed, &ImageOptions::default(), &ImageOptions::default())
            .unwrap();
    let recorder = Recorder::new();
    let config = AppConfig {
        gc_helper_interval: None,
        telemetry: Some(recorder.clone()),
        trace: Some(Arc::clone(&tracer)),
        switchless: Some(SwitchlessConfig {
            min_workers: 1,
            max_workers: 4,
            mailbox_capacity: 2,
            autotune: Some(TunerConfig {
                interval_calls: 2,
                min_samples: 1,
                up_wait_pct: 1,
                ..TunerConfig::default()
            }),
            ..SwitchlessConfig::default()
        }),
        ..AppConfig::default()
    };
    let app = Arc::new(PartitionedApp::launch(&trusted, &untrusted, config).unwrap());

    // Concurrent load until the tuner demonstrably acted.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let app = Arc::clone(&app);
            handles.push(std::thread::spawn(move || {
                app.run_main().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        if recorder.counter(Counter::SwitchlessTuneUps) > 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "tuner never recorded a decision");
    }

    let rmi_calls = recorder.counter(Counter::RmiCalls);
    let hits = recorder.counter(Counter::SwitchlessCalls);
    let fallbacks = recorder.counter(Counter::SwitchlessFallbacks);
    let snap = recorder.snapshot();
    let json = tracer.to_chrome_json(&[]);
    match Arc::try_unwrap(app) {
        Ok(app) => app.shutdown(),
        Err(_) => panic!("no other app handles remain"),
    }

    let parsed = parse_chrome_trace(&json).unwrap();
    assert_eq!(parsed.other("dropped"), Some(0), "nothing dropped at this capacity");
    let begins = parsed.events.iter().filter(|e| e.ph == 'B').count();
    let ends = parsed.events.iter().filter(|e| e.ph == 'E').count();
    assert_eq!(begins, ends, "B/E balanced with tuner spans in the capture");

    // Crossing accounting under active resizing.
    assert_eq!(rmi_calls, hits + fallbacks, "every crossing is one hit or one fallback");
    let rmi_spans = parsed.events.iter().filter(|e| e.ph == 'B' && e.cat == "rmi").count() as u64;
    assert_eq!(rmi_spans, rmi_calls, "rmi.calls == traced rmi spans");

    // Queue-wait reconciliation: one histogram sample and one
    // cat-`queue` wait span per traced hit.
    assert_eq!(snap.hist(Hist::SwitchlessQueueWaitNs).count, hits);
    let wait_spans = parsed
        .events
        .iter()
        .filter(|e| e.ph == 'B' && e.cat == "queue" && e.name.starts_with("queue-wait:"))
        .count() as u64;
    assert_eq!(wait_spans, hits, "one queue-wait span per switchless hit");

    // Tuner decisions are visible both ways: counters and marks.
    let tune_marks = parsed
        .events
        .iter()
        .filter(|e| e.ph == 'B' && e.cat == "queue" && e.name.starts_with("tune:"))
        .count() as u64;
    assert!(tune_marks >= 1, "decisions appear as tune: marks");
    let decisions = recorder.counter(Counter::SwitchlessTuneUps)
        + recorder.counter(Counter::SwitchlessTuneDowns);
    assert!(
        tune_marks <= decisions,
        "at most one mark per counted decision: {tune_marks} marks, {decisions} decisions"
    );
    let target = recorder.gauge(Gauge::SwitchlessTargetBatch);
    assert!(target >= 1, "batch gauge tracks a live value");
}

#[test]
fn ring_overflow_counts_drops_without_corrupting_the_capture() {
    let tracer = Tracer::new();
    // The minimum capacity: the bank run emits far more events/lane.
    tracer.enable_with_capacity(8);
    let (app, recorder) = traced_run(&tracer);
    app.shutdown();

    assert!(tracer.dropped() > 0, "a full ring counts drops");
    assert_eq!(
        recorder.counter(Counter::TraceDropped),
        tracer.dropped(),
        "drops mirror into the telemetry counter"
    );
    assert!(tracer.event_count() <= 16, "fill-then-drop never exceeds capacity");

    // The truncated capture still exports as well-formed, balanced
    // Chrome JSON (missing ends are synthesized at export).
    let json = tracer.to_chrome_json(&[]);
    let parsed = parse_chrome_trace(&json).unwrap();
    assert!(!parsed.events.is_empty(), "the prefix of the run is retained");
    let begins = parsed.events.iter().filter(|e| e.ph == 'B').count();
    let ends = parsed.events.iter().filter(|e| e.ph == 'E').count();
    assert_eq!(begins, ends, "export re-balances a truncated capture");
    assert_eq!(parsed.other("dropped"), Some(tracer.dropped()));
}
