//! Shape assertions: the qualitative claims of the paper's evaluation
//! must hold in the reproduction at quick scale.
//!
//! Absolute numbers differ (the substrate is a simulator, not the
//! authors' SGX testbed); these tests pin down *who wins and by
//! roughly what kind of factor* for every figure.

use experiments::report::{mean_ratio, Measure, Scale};

/// Fig. 3: proxy object creation is orders of magnitude more expensive
/// than concrete creation (paper: 3–4 orders).
#[test]
fn fig3_proxy_creation_is_orders_of_magnitude_slower() {
    let series = experiments::micro::fig3(Scale::Quick);
    // [proxy-out→in, proxy-in→out, concrete-out, concrete-in]
    let out_ratio = mean_ratio(&series[0], &series[2]);
    let in_ratio = mean_ratio(&series[1], &series[3]);
    assert!(out_ratio > 500.0, "proxy-out→in/concrete-out = {out_ratio}");
    assert!(in_ratio > 100.0, "proxy-in→out/concrete-in = {in_ratio}");
    // Concrete creation inside the enclave costs more than outside
    // (MEE on allocation), but within an order of magnitude.
    let concrete_in_out = mean_ratio(&series[3], &series[2]);
    assert!((1.0..10.0).contains(&concrete_in_out), "concrete in/out = {concrete_in_out}");
}

/// Fig. 4(a): proxy RMIs are orders of magnitude above local calls.
#[test]
fn fig4a_rmi_is_orders_of_magnitude_slower() {
    let series = experiments::micro::fig4a(Scale::Quick);
    assert!(mean_ratio(&series[0], &series[2]) > 500.0);
    assert!(mean_ratio(&series[1], &series[3]) > 500.0);
}

/// Fig. 4(b): serialized parameters multiply RMI cost, growing with
/// list size.
#[test]
fn fig4b_serialization_makes_rmi_more_expensive() {
    let series = experiments::micro::fig4b(Scale::Quick);
    // [out→in+s, in→out+s, out→in, in→out]
    assert!(mean_ratio(&series[0], &series[2]) > 1.05);
    assert!(mean_ratio(&series[1], &series[3]) > 1.05);
    // Monotone in list size for the +s variants.
    let pts = &series[0].points;
    assert!(pts.windows(2).all(|w| w[1].1 >= w[0].1), "+s grows with list size: {pts:?}");
}

/// Fig. 5(a): in-enclave GC is about an order of magnitude slower.
#[test]
fn fig5a_enclave_gc_is_an_order_slower() {
    let series = experiments::gc::fig5a(Scale::Quick);
    let ratio = mean_ratio(&series[1], &series[0]);
    assert!((4.0..40.0).contains(&ratio), "GC in/out = {ratio}");
}

/// Fig. 5(b): the mirror population tracks the proxy population exactly
/// after each helper scan.
#[test]
fn fig5b_mirrors_track_proxies() {
    let samples = experiments::gc::fig5b(Scale::Quick);
    assert!(!samples.is_empty());
    for s in &samples {
        assert_eq!(s.proxies_out, s.mirrors_in, "step {}", s.step);
    }
    // The timeline actually exercises growth and decay.
    let peak = samples.iter().map(|s| s.proxies_out).max().unwrap();
    let last = samples.last().unwrap().proxies_out;
    assert!(peak > 0 && last < peak);
}

/// Fig. 6: runtime falls as classes move out of the enclave — for both
/// workload kinds.
#[test]
fn fig6_more_untrusted_classes_is_faster() {
    let series = experiments::synthetic::fig6(Scale::Quick);
    for s in &series {
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(
            last < first,
            "{}: 0% untrusted {first}s should exceed 100% untrusted {last}s",
            s.label
        );
    }
}

/// Fig. 7: partitioning helps PalDB; RTWU (writer outside) helps much
/// more than WTRU; NoSGX is fastest.
///
/// Quick-scale runs measure model charges only over a fixed workload
/// seed (`paldb::WORKLOAD_SEED`), so the numbers are deterministic and
/// one attempt suffices — no retry loop.
#[test]
fn fig7_partitioning_speeds_up_paldb() {
    fig7_shape().unwrap_or_else(|e| panic!("fig7 shape failed: {e}"));
}

fn fig7_shape() -> Result<(), String> {
    let series = experiments::paldb::fig7(Scale::Quick);
    // [NoSGX, NoPart, RTWU, WTRU]
    let nopart_over_rtwu = mean_ratio(&series[1], &series[2]);
    let nopart_over_wtru = mean_ratio(&series[1], &series[3]);
    if nopart_over_rtwu <= 1.3 {
        return Err(format!("RTWU gain {nopart_over_rtwu}"));
    }
    if nopart_over_wtru <= 0.95 {
        return Err(format!("WTRU gain {nopart_over_wtru}"));
    }
    if nopart_over_rtwu <= nopart_over_wtru {
        return Err("RTWU should beat WTRU".to_owned());
    }
    // Loose ordering only: noise dominates the absolute numbers.
    if series[0].mean() > series[2].mean() * 3.0 {
        return Err(format!(
            "NoSGX ({}) should be close to or below RTWU ({})",
            series[0].mean(),
            series[2].mean()
        ));
    }
    Ok(())
}

/// Fig. 7 detail: WTRU performs vastly more write-induced ocalls.
#[test]
fn fig7_wtru_does_many_more_ocalls() {
    let rtwu = experiments::paldb::run_config(experiments::paldb::PaldbConfig::Rtwu, 1_000);
    let ruwt = experiments::paldb::run_config(experiments::paldb::PaldbConfig::Ruwt, 1_000);
    assert!(ruwt.ocalls > 20 * rtwu.ocalls.max(1), "RUWT {} vs RTWU {}", ruwt.ocalls, rtwu.ocalls);
    assert_eq!(rtwu.hits, 1_000);
    assert_eq!(ruwt.hits, 1_000);
}

/// Fig. 9: partitioned GraphChi beats the unpartitioned enclave
/// deployment, mainly by returning sharding to native cost.
///
/// Phase times are model charges only ([`Measure::ChargedOnly`]): the
/// workload is deterministic, so the assertion needs no wall-clock
/// slack and cannot flake under host load.
#[test]
fn fig9_partitioned_graphchi_wins() {
    use experiments::graph::{run_config_measured, GraphConfig};
    // Use a slightly larger graph than Quick so I/O effects are visible.
    let nopart = run_config_measured(GraphConfig::NoPartNi, 4_000, 16_000, 3, Measure::ChargedOnly);
    let part = run_config_measured(GraphConfig::PartNi, 4_000, 16_000, 3, Measure::ChargedOnly);
    let nosgx = run_config_measured(GraphConfig::NoSgxNi, 4_000, 16_000, 3, Measure::ChargedOnly);
    assert!(part.total < nopart.total, "part {} vs nopart {}", part.total, nopart.total);
    // Partitioned sharding is close to native sharding.
    assert!(
        part.sharding < nosgx.sharding * 2.0,
        "partitioned sharding {} vs native {}",
        part.sharding,
        nosgx.sharding
    );
}

/// Figs. 10/11 + Table 1: SCONE+JVM loses to native images for
/// compute-bound workloads; the monte_carlo anomaly (native-image GC)
/// flips the sign at full pressure.
///
/// Gains are ratios of model charges ([`Measure::ChargedOnly`]): the
/// workloads are seeded and single-threaded, so both sides of each
/// ratio are exact and the thresholds carry no wall-clock slack.
#[test]
fn table1_shape_holds_under_full_gc_pressure() {
    use baselines::Deployment;
    use experiments::spec::run_one_measured;
    use specjvm::Workload;
    // Full pressure for monte_carlo (the anomaly needs the real churn),
    // quick elsewhere.
    let mc_ni = run_one_measured(
        Workload::MonteCarlo,
        Deployment::SgxNative,
        Scale::Full,
        Measure::ChargedOnly,
    );
    let mc_jvm = run_one_measured(
        Workload::MonteCarlo,
        Deployment::SconeJvm,
        Scale::Full,
        Measure::ChargedOnly,
    );
    let gain = mc_jvm.seconds / mc_ni.seconds;
    assert!(gain < 1.0, "monte_carlo anomaly: SGX-NI must lose, gain {gain}");

    let fft_ni =
        run_one_measured(Workload::Fft, Deployment::SgxNative, Scale::Full, Measure::ChargedOnly);
    let fft_jvm =
        run_one_measured(Workload::Fft, Deployment::SconeJvm, Scale::Full, Measure::ChargedOnly);
    let fft_gain = fft_jvm.seconds / fft_ni.seconds;
    assert!(fft_gain > 1.3, "fft: SGX-NI must win clearly, gain {fft_gain}");
}
