//! Provider equivalence: the deployment-mode provider layer must not
//! change *what* an application computes, only what its crossings cost.
//!
//! Runs the kvstore traffic workload under `SimSgx` and `PassThrough`
//! and asserts identical results (checksums, hit/miss/put counts) with
//! strictly lower model time and zero enclave transitions for the
//! pass-through lane, plus the `MONTSALVAT_PROVIDER` detection
//! precedence end to end.

use experiments::traffic::{lanes, run_lane, TrafficConfig};
use montsalvat::core::exec::app::{AppConfig, PartitionedApp};
use montsalvat::core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat::core::provider::{ProviderKind, PROVIDER_ENV};
use montsalvat::core::samples::bank_program;
use montsalvat::core::transform::transform;

fn tiny() -> TrafficConfig {
    TrafficConfig { requests: 160, key_space: 96, ..TrafficConfig::quick() }
}

#[test]
fn kvstore_workload_is_identical_across_providers() {
    let all = lanes();
    let sgx_lane = all[0];
    let pt_lane = all[2];
    assert_eq!(sgx_lane.provider, ProviderKind::SimSgx);
    assert_eq!(pt_lane.provider, ProviderKind::PassThrough);

    let cfg = tiny();
    let sgx = run_lane(sgx_lane, &cfg).expect("sim-sgx lane");
    let pt = run_lane(pt_lane, &cfg).expect("passthrough lane");

    // Same computation: every response byte matches.
    assert_eq!(sgx.checksum, pt.checksum, "providers must return identical responses");
    assert_eq!(
        (sgx.hits, sgx.misses, sgx.puts),
        (pt.hits, pt.misses, pt.puts),
        "hit/miss/put accounting must match across providers"
    );

    // Different cost: pass-through pays no crossings at all.
    assert_eq!(pt.transitions(), 0, "pass-through performs zero enclave transitions");
    assert!(sgx.transitions() > 0, "sim-sgx crosses for every relayed call");
    assert!(
        pt.model_time_ns < sgx.model_time_ns,
        "pass-through model time ({}) must be strictly below sim-sgx ({})",
        pt.model_time_ns,
        sgx.model_time_ns
    );
}

fn launch_bank(config: AppConfig) -> PartitionedApp {
    let tp = transform(&bank_program());
    let options = ImageOptions::default();
    let (t, u) = build_partitioned_images(&tp, &options, &options).expect("images build");
    PartitionedApp::launch(&t, &u, config).expect("app launches")
}

/// Detection precedence end to end: env selects the provider when the
/// config leaves it open, and an explicit config pin beats the env.
///
/// Kept as a single test so only one thread touches `MONTSALVAT_PROVIDER`
/// — every other test in the suite pins its provider via `AppConfig`.
#[test]
fn env_var_selects_provider_and_config_pin_wins() {
    std::env::set_var(PROVIDER_ENV, "passthrough");

    // provider: None → the detector consults the env.
    let app = launch_bank(AppConfig { gc_helper_interval: None, ..AppConfig::default() });
    app.run_main().expect("main runs");
    let stats = app.sgx_stats();
    assert_eq!(stats.ecalls, 0, "pass-through performs no ecalls");
    assert_eq!(stats.ocalls, 0, "pass-through performs no ocalls");
    app.shutdown();

    // An explicit config pin beats the env.
    let app = launch_bank(AppConfig {
        gc_helper_interval: None,
        provider: Some(ProviderKind::SimSgx),
        ..AppConfig::default()
    });
    app.run_main().expect("main runs");
    assert!(app.sgx_stats().ecalls > 0, "config-pinned sim-sgx still crosses");
    app.shutdown();

    std::env::remove_var(PROVIDER_ENV);
}
