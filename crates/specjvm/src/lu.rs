//! Dense LU factorisation with partial pivoting (the SciMark `lu`
//! kernel).

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` matrix from `data` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn new(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "matrix data must be n*n");
        Matrix { n, data }
    }

    /// Deterministic well-conditioned test matrix.
    pub fn synthetic(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] =
                    if i == j { n as f64 + 1.0 } else { ((i * 7 + j * 13) % 19) as f64 * 0.1 };
            }
        }
        Matrix { n, data }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n).map(|i| (0..self.n).map(|j| self.at(i, j) * x[j]).sum()).collect()
    }
}

/// LU factorisation result: combined LU matrix and pivot order.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined factors (unit lower triangle implicit).
    pub lu: Matrix,
    /// Row permutation.
    pub pivots: Vec<usize>,
}

/// Factorises `a` in place with partial pivoting.
///
/// Returns `None` for (numerically) singular matrices.
pub fn factor(mut a: Matrix) -> Option<LuFactors> {
    let n = a.n;
    let mut pivots: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot search.
        let (mut p, mut max) = (k, a.at(k, k).abs());
        for i in k + 1..n {
            let v = a.at(i, k).abs();
            if v > max {
                p = i;
                max = v;
            }
        }
        if max < 1e-12 {
            return None;
        }
        if p != k {
            for j in 0..n {
                let tmp = a.at(k, j);
                *a.at_mut(k, j) = a.at(p, j);
                *a.at_mut(p, j) = tmp;
            }
            pivots.swap(k, p);
        }
        let pivot = a.at(k, k);
        for i in k + 1..n {
            let factor = a.at(i, k) / pivot;
            *a.at_mut(i, k) = factor;
            for j in k + 1..n {
                *a.at_mut(i, j) -= factor * a.at(k, j);
            }
        }
    }
    Some(LuFactors { lu: a, pivots })
}

/// Solves `A x = b` given factors of `A`.
pub fn solve(f: &LuFactors, b: &[f64]) -> Vec<f64> {
    let n = f.lu.n;
    // Apply permutation.
    let mut x: Vec<f64> = f.pivots.iter().map(|&p| b[p]).collect();
    // Forward substitution (unit lower).
    for i in 1..n {
        for j in 0..i {
            x[i] -= f.lu.at(i, j) * x[j];
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        for j in i + 1..n {
            x[i] -= f.lu.at(i, j) * x[j];
        }
        x[i] /= f.lu.at(i, i);
    }
    x
}

/// Benchmark kernel: factor a synthetic `n × n` matrix and solve one
/// system; returns a checksum.
pub fn run(n: usize) -> f64 {
    let a = Matrix::synthetic(n);
    let f = factor(a).expect("synthetic matrix is non-singular");
    let b: Vec<f64> = (0..n).map(|i| (i % 11) as f64).collect();
    solve(&f, &b).iter().sum()
}

/// Working-set size in bytes for an `n × n` run.
pub fn working_set_bytes(n: usize) -> usize {
    n * n * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_recovers_known_solution() {
        let n = 24;
        let a = Matrix::synthetic(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3) - 2.0).collect();
        let b = a.matvec(&x_true);
        let f = factor(a).unwrap();
        let x = solve(&f, &b);
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::new(2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(factor(a).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::new(2, vec![0.0, 1.0, 1.0, 0.0]);
        let f = factor(a).unwrap();
        let x = solve(&f, &[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_is_deterministic() {
        assert_eq!(run(32), run(32));
    }
}
