//! Sparse matrix–vector multiplication in CSR form (the SciMark
//! `sparse` kernel).

/// A sparse matrix in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triples.
    ///
    /// Duplicate coordinates are summed; out-of-range coordinates are
    /// ignored.
    pub fn from_triples(rows: usize, cols: usize, triples: &[(usize, usize, f64)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triples {
            if r < rows && c < cols {
                per_row[r].push((c, v));
            }
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *values.last_mut().expect("entry exists") += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                    last = Some(c);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Deterministic synthetic sparse matrix with ~`nnz_per_row`
    /// entries per row.
    pub fn synthetic(n: usize, nnz_per_row: usize) -> Self {
        let mut triples = Vec::with_capacity(n * nnz_per_row);
        for i in 0..n {
            for k in 0..nnz_per_row {
                let j = (i * 31 + k * 97 + 7) % n;
                triples.push((i, j, 1.0 + ((i + k) % 13) as f64 * 0.1));
            }
        }
        Self::from_triples(n, n, &triples)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Sparse matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
        y
    }

    /// Dense reference product (for testing).
    pub fn matvec_dense_reference(&self, x: &[f64]) -> Vec<f64> {
        let mut dense = vec![0.0; self.rows * self.cols];
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                dense[i * self.cols + self.col_idx[k]] += self.values[k];
            }
        }
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| dense[i * self.cols + j] * x[j]).sum())
            .collect()
    }
}

/// Benchmark kernel: `iterations` repeated mat-vec products on a
/// synthetic matrix; returns a checksum.
pub fn run(n: usize, nnz_per_row: usize, iterations: u32) -> f64 {
    let m = CsrMatrix::synthetic(n, nnz_per_row);
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    for _ in 0..iterations {
        let y = m.matvec(&x);
        let norm = y.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1e-30);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    x.iter().sum()
}

/// Working-set size in bytes for an `n`/`nnz_per_row` run.
pub fn working_set_bytes(n: usize, nnz_per_row: usize) -> usize {
    n * nnz_per_row * 16 + n * 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_dense_reference() {
        let m = CsrMatrix::synthetic(50, 5);
        let x: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let sparse = m.matvec(&x);
        let dense = m.matvec_dense_reference(&x);
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triples(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 4.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn out_of_range_triples_are_ignored() {
        let m = CsrMatrix::from_triples(2, 2, &[(5, 0, 1.0), (0, 9, 1.0), (1, 0, 2.0)]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        CsrMatrix::synthetic(4, 2).matvec(&[1.0; 3]);
    }

    #[test]
    fn power_iteration_is_stable() {
        let a = run(64, 4, 10);
        let b = run(64, 4, 10);
        assert_eq!(a, b);
        assert!(a.is_finite());
    }
}
