//! Radix-2 complex FFT (the SPECjvm2008 / SciMark `fft` kernel).

use std::f64::consts::PI;

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// Inverse FFT (unscaled output is divided by `n`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for c in data.iter_mut() {
        c.0 /= n;
        c.1 /= n;
    }
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two, got {n}");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (a_re, a_im) = data[start + k];
                let (b_re, b_im) = data[start + k + len / 2];
                let t_re = b_re * cur_re - b_im * cur_im;
                let t_im = b_re * cur_im + b_im * cur_re;
                data[start + k] = (a_re + t_re, a_im + t_im);
                data[start + k + len / 2] = (a_re - t_re, a_im - t_im);
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
        }
        len <<= 1;
    }
}

/// Runs the benchmark kernel: forward+inverse FFT over `n` complex
/// samples (`n` must be a power of two), returning a checksum.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn run(n: usize) -> f64 {
    let mut data: Vec<Complex> =
        (0..n).map(|i| ((i % 31) as f64 * 0.25, (i % 17) as f64 * -0.5)).collect();
    fft(&mut data);
    ifft(&mut data);
    data.iter().map(|c| c.0 + c.1).sum()
}

/// Working-set size in bytes for an `n`-point run.
pub fn working_set_bytes(n: usize) -> usize {
    n * 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn dc_signal_transforms_to_impulse() {
        let mut data = vec![(1.0, 0.0); 8];
        fft(&mut data);
        assert_close(data[0].0, 8.0);
        for c in &data[1..] {
            assert_close(c.0, 0.0);
            assert_close(c.1, 0.0);
        }
    }

    #[test]
    fn roundtrip_recovers_input() {
        let orig: Vec<Complex> =
            (0..64).map(|i| (i as f64 * 0.1, (63 - i) as f64 * -0.2)).collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in orig.iter().zip(&data) {
            assert_close(a.0, b.0);
            assert_close(a.1, b.1);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let mut data: Vec<Complex> = (0..128).map(|i| ((i % 7) as f64, (i % 5) as f64)).collect();
        let time_energy: f64 = data.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        fft(&mut data);
        let freq_energy: f64 =
            data.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / data.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![(0.0, 0.0); 12];
        fft(&mut data);
    }

    #[test]
    fn run_is_deterministic() {
        assert_eq!(run(256), run(256));
        assert_eq!(working_set_bytes(1024), 16384);
    }
}
