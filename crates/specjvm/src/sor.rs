//! Jacobi successive over-relaxation (the SciMark `sor` kernel).

/// Runs `iterations` of SOR with factor `omega` on an `n × n` grid and
/// returns the final centre value (a stable checksum).
pub fn run(n: usize, iterations: u32, omega: f64) -> f64 {
    let n = n.max(3);
    let mut grid = vec![0.0f64; n * n];
    // Boundary condition: hot top edge.
    grid[..n].fill(1.0);
    let omega_over_four = omega * 0.25;
    let one_minus_omega = 1.0 - omega;
    for _ in 0..iterations {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let idx = i * n + j;
                let neighbours = grid[idx - n] + grid[idx + n] + grid[idx - 1] + grid[idx + 1];
                grid[idx] = omega_over_four * neighbours + one_minus_omega * grid[idx];
            }
        }
    }
    grid[(n / 2) * n + n / 2]
}

/// Residual of the relaxation: max interior update magnitude after one
/// more sweep (used by tests to check convergence).
pub fn residual(n: usize, iterations: u32, omega: f64) -> f64 {
    let a = run(n, iterations, omega);
    let b = run(n, iterations + 1, omega);
    (a - b).abs()
}

/// Working-set size in bytes for an `n × n` run.
pub fn working_set_bytes(n: usize) -> usize {
    n * n * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_diffuses_from_the_hot_edge() {
        let v = run(32, 200, 1.25);
        assert!(v > 0.0 && v < 1.0, "centre value {v} must be between boundaries");
    }

    #[test]
    fn iteration_converges() {
        let early = residual(24, 10, 1.25);
        let late = residual(24, 400, 1.25);
        assert!(late < early, "residual must shrink: early {early}, late {late}");
        assert!(late < 1e-6);
    }

    #[test]
    fn more_relaxation_converges_faster() {
        // Near-optimal omega converges faster than plain Jacobi.
        let jacobi = residual(24, 50, 1.0);
        let sor = residual(24, 50, 1.5);
        assert!(sor < jacobi);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(16, 20, 1.25), run(16, 20, 1.25));
    }
}
