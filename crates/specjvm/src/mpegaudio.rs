//! An mpegaudio-like kernel: polyphase filterbank + windowed DCT over
//! synthetic PCM.
//!
//! SPECjvm2008's `mpegaudio` decodes MP3 frames. A bit-exact decoder is
//! out of scope; this kernel reproduces the benchmark's computational
//! profile — a 32-band polyphase analysis filterbank with a 512-tap
//! window followed by a 32-point DCT per granule — over a synthetic PCM
//! stream, which is the part of the decoder where SPECjvm2008 spends
//! its cycles.

use std::f64::consts::PI;

/// Number of sub-bands in the analysis filterbank.
pub const BANDS: usize = 32;
/// Window length in samples.
pub const WINDOW: usize = 512;

/// Deterministic synthetic PCM: a mix of three tones plus a cheap
/// pseudo-noise term.
pub fn synth_pcm(samples: usize) -> Vec<f64> {
    (0..samples)
        .map(|i| {
            let t = i as f64 / 44_100.0;
            let tone = (2.0 * PI * 440.0 * t).sin()
                + 0.5 * (2.0 * PI * 1_320.0 * t).sin()
                + 0.25 * (2.0 * PI * 2_640.0 * t).sin();
            let noise = (((i.wrapping_mul(2654435761)) >> 16) & 0xff) as f64 / 512.0 - 0.25;
            tone * 0.25 + noise * 0.05
        })
        .collect()
}

/// The analysis window (a raised-cosine approximation of the MP3
/// synthesis window).
fn window() -> Vec<f64> {
    (0..WINDOW)
        .map(|i| {
            let x = (i as f64 + 0.5) / WINDOW as f64;
            (PI * x).sin().powi(2) * 0.035
        })
        .collect()
}

/// Analyses `pcm` into per-granule sub-band energies.
pub fn filterbank(pcm: &[f64]) -> Vec<[f64; BANDS]> {
    let win = window();
    let granules = pcm.len().saturating_sub(WINDOW) / BANDS;
    let mut out = Vec::with_capacity(granules);
    for g in 0..granules {
        let base = g * BANDS;
        // Windowed fold: 512 taps folded into 64 partials.
        let mut z = [0.0f64; 64];
        for (k, partial) in z.iter_mut().enumerate() {
            let mut acc = 0.0;
            let mut idx = k;
            while idx < WINDOW {
                acc += pcm[base + idx] * win[idx];
                idx += 64;
            }
            *partial = acc;
        }
        // 32-band matrixing DCT.
        let mut bands = [0.0f64; BANDS];
        for (band, out_v) in bands.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, partial) in z.iter().enumerate() {
                acc += partial * ((2.0 * band as f64 + 1.0) * (k as f64 - 16.0) * PI / 64.0).cos();
            }
            *out_v = acc;
        }
        out.push(bands);
    }
    out
}

/// Benchmark kernel: filterbank analysis over `samples` PCM samples;
/// returns total spectral energy.
pub fn run(samples: usize) -> f64 {
    let pcm = synth_pcm(samples);
    filterbank(&pcm).iter().flat_map(|g| g.iter()).map(|v| v * v).sum()
}

/// Working-set size in bytes for a `samples`-sample run.
pub fn working_set_bytes(samples: usize) -> usize {
    samples * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_granules() {
        let pcm = synth_pcm(WINDOW + BANDS * 10);
        let granules = filterbank(&pcm);
        assert_eq!(granules.len(), 10);
    }

    #[test]
    fn tonal_input_concentrates_energy_in_low_bands() {
        let pcm = synth_pcm(WINDOW + BANDS * 64);
        let granules = filterbank(&pcm);
        let mut energy = [0.0f64; BANDS];
        for g in &granules {
            for (b, v) in g.iter().enumerate() {
                energy[b] += v * v;
            }
        }
        let low: f64 = energy[..8].iter().sum();
        let high: f64 = energy[24..].iter().sum();
        assert!(low > high * 2.0, "low {low} vs high {high}");
    }

    #[test]
    fn silence_has_near_zero_energy() {
        let pcm = vec![0.0; WINDOW + BANDS * 8];
        let e: f64 = filterbank(&pcm).iter().flat_map(|g| g.iter()).map(|v| v * v).sum();
        assert!(e.abs() < 1e-20);
    }

    #[test]
    fn run_is_deterministic_and_finite() {
        let a = run(WINDOW + BANDS * 32);
        assert!(a.is_finite() && a > 0.0);
        assert_eq!(a, run(WINDOW + BANDS * 32));
    }
}
