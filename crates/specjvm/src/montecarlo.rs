//! Monte-Carlo π estimation (the SciMark `monte_carlo` kernel).
//!
//! In SPECjvm2008 this kernel is allocation-heavy on the JVM; the paper's
//! Table 1 shows it as the one benchmark where the in-enclave native
//! image *loses* to SCONE+JVM, which it attributes to the native image's
//! weaker garbage collector. The experiment harness therefore pairs this
//! kernel with managed-heap allocation pressure; the kernel itself is a
//! deterministic LCG-driven integration.

/// A small deterministic linear congruential generator (no external
/// entropy so runs are reproducible across deployments).
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Lcg { state: seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493) }
    }

    /// Next value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.state >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Estimates π from `samples` dart throws.
pub fn run(samples: u64, seed: u64) -> f64 {
    let mut rng = Lcg::new(seed);
    let mut inside = 0u64;
    for _ in 0..samples {
        let x = rng.next_f64();
        let y = rng.next_f64();
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    4.0 * inside as f64 / samples as f64
}

/// Working-set size in bytes (the kernel itself is cache-resident).
pub fn working_set_bytes() -> usize {
    64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_pi() {
        let pi = run(200_000, 42);
        assert!((pi - std::f64::consts::PI).abs() < 0.02, "estimate {pi}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(10_000, 7), run(10_000, 7));
        assert_ne!(run(10_000, 7), run(10_000, 8));
    }

    #[test]
    fn lcg_is_uniform_ish() {
        let mut rng = Lcg::new(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
