//! # specjvm — SPECjvm2008-style micro-benchmark kernels
//!
//! The paper's Figure 12 and Table 1 evaluate six SPECjvm2008
//! micro-benchmarks in enclaves: `mpegaudio`, `fft`, `monte_carlo`,
//! `sor`, `lu` and `sparse`. This crate implements the same kernel
//! families in Rust — real numeric code, tested against closed-form
//! properties — plus a [`Workload`] descriptor the experiment harness
//! uses to run each kernel under the different deployments.
//!
//! # Examples
//!
//! ```
//! use specjvm::Workload;
//!
//! for w in Workload::all() {
//!     let checksum = w.run_once();
//!     assert!(checksum.is_finite());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
pub mod lu;
pub mod montecarlo;
pub mod mpegaudio;
pub mod sor;
pub mod sparse;

/// One SPECjvm2008-style micro-benchmark at its default workload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Polyphase-filterbank audio analysis.
    MpegAudio,
    /// Fast Fourier transform.
    Fft,
    /// Monte-Carlo integration (allocation-heavy on managed runtimes;
    /// see [`Workload::managed_alloc_bytes_per_run`]).
    MonteCarlo,
    /// Successive over-relaxation.
    Sor,
    /// Dense LU factorisation.
    Lu,
    /// Sparse matrix–vector multiplication.
    Sparse,
}

impl Workload {
    /// All six workloads, in the paper's Figure-12 order.
    pub fn all() -> [Workload; 6] {
        [
            Workload::MpegAudio,
            Workload::Fft,
            Workload::MonteCarlo,
            Workload::Sor,
            Workload::Lu,
            Workload::Sparse,
        ]
    }

    /// The benchmark's display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::MpegAudio => "mpegaudio",
            Workload::Fft => "fft",
            Workload::MonteCarlo => "monte_carlo",
            Workload::Sor => "sor",
            Workload::Lu => "lu",
            Workload::Sparse => "sparse",
        }
    }

    /// Runs one iteration at the default size; returns a checksum.
    pub fn run_once(&self) -> f64 {
        match self {
            Workload::MpegAudio => mpegaudio::run(mpegaudio::WINDOW + mpegaudio::BANDS * 512),
            Workload::Fft => fft::run(1 << 16),
            Workload::MonteCarlo => montecarlo::run(400_000, 20210), // deterministic seed
            Workload::Sor => sor::run(128, 60, 1.25),
            Workload::Lu => lu::run(256),
            Workload::Sparse => sparse::run(4096, 6, 40),
        }
    }

    /// Kernel repetitions per benchmark run at the default workload
    /// (sized so one run takes a few hundred milliseconds in release
    /// mode, like the SPECjvm2008 default workloads).
    pub fn reps(&self) -> u64 {
        match self {
            Workload::MpegAudio => 45,
            Workload::Fft => 65,
            Workload::MonteCarlo => 40,
            Workload::Sor => 300,
            Workload::Lu => 500,
            Workload::Sparse => 550,
        }
    }

    /// Runs `reps() / divisor` kernel iterations (at least one) and
    /// returns the accumulated checksum.
    pub fn run_scaled(&self, divisor: u64) -> f64 {
        let reps = (self.reps() / divisor.max(1)).max(1);
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += self.run_once();
        }
        acc
    }

    /// Default working-set size in bytes (drives the MEE compute
    /// surcharge model inside enclaves).
    pub fn working_set_bytes(&self) -> usize {
        match self {
            Workload::MpegAudio => {
                mpegaudio::working_set_bytes(mpegaudio::WINDOW + mpegaudio::BANDS * 512)
            }
            Workload::Fft => fft::working_set_bytes(1 << 16),
            Workload::MonteCarlo => montecarlo::working_set_bytes(),
            Workload::Sor => sor::working_set_bytes(128),
            Workload::Lu => lu::working_set_bytes(256),
            Workload::Sparse => sparse::working_set_bytes(4096, 6),
        }
    }

    /// Managed-heap allocation pressure per run, in bytes.
    ///
    /// SPECjvm2008's `monte_carlo` allocates heavily; the paper's
    /// Table 1 attributes its in-enclave native-image *loss* against
    /// SCONE+JVM to GC cycles triggered in the native image (\[28\]).
    /// The harness allocates this volume of short-lived managed objects
    /// around the kernel so that deployments with weaker collectors pay
    /// for it.
    pub fn managed_alloc_bytes_per_run(&self) -> u64 {
        match self {
            Workload::MonteCarlo => 1536 * 1024 * 1024,
            _ => 256 * 1024,
        }
    }

    /// Live (retained) managed bytes held across the run.
    ///
    /// A full-heap serial stop-and-copy collector (the native image's)
    /// re-copies this entire set on every collection the churn
    /// triggers, while a generational collector (HotSpot's) does not —
    /// the mechanism behind Table 1's `monte_carlo` anomaly.
    pub fn retained_bytes(&self) -> u64 {
        match self {
            Workload::MonteCarlo => 24 * 1024 * 1024,
            _ => 0,
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_run_and_are_deterministic() {
        for w in Workload::all() {
            assert_eq!(w.run_once().to_bits(), w.run_once().to_bits(), "{w}");
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = Workload::all().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["mpegaudio", "fft", "monte_carlo", "sor", "lu", "sparse"]);
    }

    #[test]
    fn monte_carlo_is_the_allocation_heavy_one() {
        let mc = Workload::MonteCarlo.managed_alloc_bytes_per_run();
        for w in Workload::all() {
            if w != Workload::MonteCarlo {
                assert!(mc > 100 * w.managed_alloc_bytes_per_run());
            }
        }
    }
}
