//! GraphChiEngine: phase 2 of the GraphChi workflow (Fig. 8).
//!
//! A simplified vertex-centric engine over the shard layout: each
//! iteration streams every shard from disk (counting the reads), gathers
//! edge contributions into per-vertex accumulators, and applies the
//! vertex program. This is the compute-heavy phase the paper keeps
//! *inside* the enclave when partitioning.

use sgx_sim::SgxError;

use crate::backend::Backend;
use crate::programs::VertexProgram;
use crate::sharder::{load_shard, ShardedGraph};

/// Counters of an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Iterations executed.
    pub iterations: u32,
    /// Edge updates applied (across all iterations).
    pub edges_processed: u64,
    /// Shard-file read calls issued.
    pub read_calls: u64,
}

/// Result of an engine run: final vertex values plus counters.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Final value per vertex.
    pub values: Vec<f64>,
    /// Run counters.
    pub stats: EngineStats,
}

/// Runs `program` for `iterations` over a sharded graph.
///
/// # Errors
///
/// Propagates shard-file I/O failure.
pub fn run(
    backend: &Backend,
    graph: &ShardedGraph,
    program: &dyn VertexProgram,
    iterations: u32,
) -> Result<EngineResult, SgxError> {
    let n = graph.num_vertices as usize;
    let mut values: Vec<f64> = (0..graph.num_vertices).map(|v| program.init(v)).collect();
    let mut stats = EngineStats::default();

    for _ in 0..iterations {
        let mut gathered: Vec<f64> = vec![program.neutral(); n];
        for shard_idx in 0..graph.num_shards {
            let (edges, reads) = load_shard(backend, graph, shard_idx)?;
            stats.read_calls += reads;
            for e in &edges {
                let contribution =
                    program.gather(values[e.src as usize], graph.out_degrees[e.src as usize]);
                let acc = &mut gathered[e.dst as usize];
                *acc = program.combine(*acc, contribution);
                stats.edges_processed += 1;
            }
        }
        for v in 0..n {
            values[v] = program.apply(v as u32, values[v], gathered[v]);
        }
        stats.iterations += 1;
    }
    Ok(EngineResult { values, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{ConnectedComponents, PageRank};
    use crate::rmat::Edge;
    use crate::sharder::shard;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "graphchi_engine_{}_{}_{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Dense reference PageRank for comparison.
    fn dense_pagerank(n: usize, edges: &[Edge], iterations: u32) -> Vec<f64> {
        let deg = crate::rmat::out_degrees(n as u32, edges);
        let mut rank = vec![1.0; n];
        for _ in 0..iterations {
            let mut next = vec![0.15; n];
            for e in edges {
                next[e.dst as usize] += 0.85 * rank[e.src as usize] / deg[e.src as usize] as f64;
            }
            rank = next;
        }
        rank
    }

    #[test]
    fn pagerank_matches_dense_reference_for_any_shard_count() {
        let edges = vec![
            Edge { src: 0, dst: 1 },
            Edge { src: 1, dst: 2 },
            Edge { src: 2, dst: 0 },
            Edge { src: 2, dst: 1 },
            Edge { src: 3, dst: 0 },
        ];
        let reference = dense_pagerank(4, &edges, 5);
        for shards in 1..=3 {
            let dir = temp_dir(&format!("pr{shards}"));
            let g = shard(&Backend::Host, &dir, 4, &edges, shards).unwrap();
            let out = run(&Backend::Host, &g, &PageRank::default(), 5).unwrap();
            for (a, b) in out.values.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b} at {shards} shards");
            }
            assert_eq!(out.stats.edges_processed, 5 * edges.len() as u64);
            g.cleanup();
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn well_linked_vertices_rank_higher() {
        // Everyone links to vertex 0.
        let edges: Vec<Edge> = (1..20u32).map(|v| Edge { src: v, dst: 0 }).collect();
        let dir = temp_dir("hub");
        let g = shard(&Backend::Host, &dir, 20, &edges, 3).unwrap();
        let out = run(&Backend::Host, &g, &PageRank::default(), 8).unwrap();
        assert!(out.values[0] > out.values[1] * 5.0);
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn connected_components_labels_components() {
        // Two components: {0,1,2} and {3,4} — CC propagates along edge
        // direction, so close the cycles.
        let edges = vec![
            Edge { src: 0, dst: 1 },
            Edge { src: 1, dst: 2 },
            Edge { src: 2, dst: 0 },
            Edge { src: 3, dst: 4 },
            Edge { src: 4, dst: 3 },
        ];
        let dir = temp_dir("cc");
        let g = shard(&Backend::Host, &dir, 5, &edges, 2).unwrap();
        let out = run(&Backend::Host, &g, &ConnectedComponents, 6).unwrap();
        assert_eq!(out.values[0], 0.0);
        assert_eq!(out.values[1], 0.0);
        assert_eq!(out.values[2], 0.0);
        assert_eq!(out.values[3], 3.0);
        assert_eq!(out.values[4], 3.0);
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_counts_reads() {
        let edges: Vec<Edge> =
            (0..1000u32).map(|i| Edge { src: i % 50, dst: (i * 7) % 50 }).collect();
        let edges: Vec<Edge> = edges.into_iter().filter(|e| e.src != e.dst).collect();
        let dir = temp_dir("reads");
        let g = shard(&Backend::Host, &dir, 50, &edges, 4).unwrap();
        let out = run(&Backend::Host, &g, &PageRank::default(), 3).unwrap();
        assert!(out.stats.read_calls >= 3 * 4, "at least one read per shard per iteration");
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }
}
