//! Vertex programs: PageRank (the paper's workload) and connected
//! components (an extension workload).

/// A gather-combine-apply vertex program over `f64` vertex values.
pub trait VertexProgram: Send + Sync {
    /// Initial value of vertex `v`.
    fn init(&self, v: u32) -> f64;
    /// Neutral element of [`VertexProgram::combine`].
    fn neutral(&self) -> f64;
    /// Contribution of an edge from a source with the given value and
    /// out-degree.
    fn gather(&self, src_value: f64, src_out_degree: u32) -> f64;
    /// Combines two gathered contributions.
    fn combine(&self, a: f64, b: f64) -> f64;
    /// New value of vertex `v` from its current value and the combined
    /// contributions.
    fn apply(&self, v: u32, current: f64, gathered: f64) -> f64;
}

/// PageRank with damping factor `d`: `rank = (1-d) + d * Σ rank/deg`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Damping factor (0.85 in the original formulation).
    pub damping: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { damping: 0.85 }
    }
}

impl VertexProgram for PageRank {
    fn init(&self, _v: u32) -> f64 {
        1.0
    }

    fn neutral(&self) -> f64 {
        0.0
    }

    fn gather(&self, src_value: f64, src_out_degree: u32) -> f64 {
        if src_out_degree == 0 {
            0.0
        } else {
            src_value / src_out_degree as f64
        }
    }

    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, _v: u32, _current: f64, gathered: f64) -> f64 {
        (1.0 - self.damping) + self.damping * gathered
    }
}

/// Label-propagation connected components: every vertex converges to
/// the minimum vertex id reachable into it (on symmetric graphs, the
/// component id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    fn init(&self, v: u32) -> f64 {
        v as f64
    }

    fn neutral(&self) -> f64 {
        f64::INFINITY
    }

    fn gather(&self, src_value: f64, _src_out_degree: u32) -> f64 {
        src_value
    }

    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn apply(&self, _v: u32, current: f64, gathered: f64) -> f64 {
        current.min(gathered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_sink_contributes_nothing() {
        let pr = PageRank::default();
        assert_eq!(pr.gather(1.0, 0), 0.0);
        assert_eq!(pr.gather(1.0, 4), 0.25);
    }

    #[test]
    fn pagerank_apply_has_base_rank() {
        let pr = PageRank::default();
        assert!((pr.apply(0, 1.0, 0.0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn cc_combines_by_min() {
        let cc = ConnectedComponents;
        assert_eq!(cc.combine(3.0, 1.0), 1.0);
        assert_eq!(cc.combine(cc.neutral(), 5.0), 5.0);
        assert_eq!(cc.apply(0, 2.0, 7.0), 2.0);
    }
}
