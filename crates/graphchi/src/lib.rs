//! # graphchi — a GraphChi-style out-of-core graph engine
//!
//! GraphChi (Kyrola et al., OSDI'12) is the paper's second
//! macro-benchmark (§6.5). Its programs follow a two-phase workflow
//! (Fig. 8):
//!
//! 1. **Sharding** — [`sharder::shard`] (the FastSharder) splits the
//!    input edge list into destination-interval shards on disk. This
//!    phase is I/O-bound, which is why the partitioned deployment puts
//!    it *outside* the enclave.
//! 2. **Engine** — [`engine::run`] (the GraphChiEngine) streams shards
//!    and executes a vertex program ([`programs::PageRank`], or the
//!    [`programs::ConnectedComponents`] extension). This phase is
//!    compute-bound and stays *inside* the enclave.
//!
//! Graphs come from the [`rmat`] generator, as in the paper.
//!
//! # Examples
//!
//! ```
//! use graphchi::{engine, programs::PageRank, rmat, sharder, Backend};
//!
//! # fn main() -> Result<(), sgx_sim::SgxError> {
//! let edges = rmat::generate(500, 2_000, rmat::RmatParams::default(), 42);
//! let dir = std::env::temp_dir().join(format!("graphchi_doc_{}", std::process::id()));
//! let graph = sharder::shard(&Backend::Host, &dir, 500, &edges, 3)?;
//! let result = engine::run(&Backend::Host, &graph, &PageRank::default(), 4)?;
//! assert_eq!(result.values.len(), 500);
//! # graph.cleanup();
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod programs;
pub mod rmat;
pub mod sharder;

/// Where the graph's file I/O executes (host or enclave shim).
pub use sgx_sim::shim::IoBackend as Backend;

pub(crate) mod backend {
    pub use sgx_sim::shim::IoBackend as Backend;
}

pub use engine::{EngineResult, EngineStats};
pub use rmat::{Edge, RmatParams};
pub use sharder::{ShardStats, ShardedGraph};
