//! FastSharder: phase 1 of the GraphChi workflow (Fig. 8 of the paper).
//!
//! The input graph is split into `P` shards by destination-vertex
//! interval; within a shard, edges are sorted by source vertex (the
//! layout GraphChi's parallel-sliding-windows algorithm requires). The
//! sharder is I/O-heavy — it streams every edge back out to disk in
//! buffered chunks — which is exactly why the paper moves it *out* of
//! the enclave when partitioning (§6.5).

use std::path::{Path, PathBuf};

use sgx_sim::SgxError;

use crate::backend::Backend;
use crate::rmat::Edge;

/// Write buffer size: the sharder flushes in chunks of this many bytes
/// (each flush is one write call / ocall).
pub const WRITE_CHUNK_BYTES: usize = 4096;

/// Description of a sharded graph on disk.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    /// Directory holding the shard files.
    pub dir: PathBuf,
    /// Number of shards.
    pub num_shards: usize,
    /// Number of vertices.
    pub num_vertices: u32,
    /// Edges per shard.
    pub shard_edge_counts: Vec<u64>,
    /// Out-degree of every vertex (needed by PageRank-style programs).
    pub out_degrees: Vec<u32>,
    /// I/O statistics of the sharding run.
    pub stats: ShardStats,
}

impl ShardedGraph {
    /// Path of shard `i`.
    pub fn shard_path(&self, i: usize) -> PathBuf {
        shard_path(&self.dir, i)
    }

    /// Total edges across shards.
    pub fn edge_count(&self) -> u64 {
        self.shard_edge_counts.iter().sum()
    }

    /// The destination-vertex interval `[start, end)` of shard `i`.
    pub fn interval(&self, i: usize) -> (u32, u32) {
        interval(self.num_vertices, self.num_shards, i)
    }

    /// Removes the shard files.
    pub fn cleanup(&self) {
        for i in 0..self.num_shards {
            let _ = std::fs::remove_file(self.shard_path(i));
        }
    }
}

/// I/O counters of a sharding run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Bytes written.
    pub bytes_written: u64,
    /// Write calls issued (chunked flushes).
    pub write_calls: u64,
}

fn shard_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard_{i}.bin"))
}

fn interval(num_vertices: u32, num_shards: usize, i: usize) -> (u32, u32) {
    let per = num_vertices.div_ceil(num_shards as u32);
    let start = per * i as u32;
    let end = (start + per).min(num_vertices);
    (start, end)
}

/// The FastSharder: splits `edges` into `num_shards` shard files.
///
/// # Errors
///
/// Propagates I/O failure.
///
/// # Panics
///
/// Panics if `num_shards` is zero.
pub fn shard(
    backend: &Backend,
    dir: impl AsRef<Path>,
    num_vertices: u32,
    edges: &[Edge],
    num_shards: usize,
) -> Result<ShardedGraph, SgxError> {
    assert!(num_shards > 0, "need at least one shard");
    let dir = dir.as_ref().to_path_buf();
    std::fs::create_dir_all(&dir)?;

    // Bucket edges by destination interval.
    let mut buckets: Vec<Vec<Edge>> = vec![Vec::new(); num_shards];
    for &e in edges {
        let per = num_vertices.div_ceil(num_shards as u32);
        let s = (e.dst / per) as usize;
        buckets[s.min(num_shards - 1)].push(e);
    }

    let mut stats = ShardStats::default();
    let mut shard_edge_counts = Vec::with_capacity(num_shards);
    for (i, bucket) in buckets.iter_mut().enumerate() {
        // GraphChi stores shard edges sorted by source.
        bucket.sort_by_key(|e| (e.src, e.dst));
        let mut file = backend.create(shard_path(&dir, i))?;
        let mut buf = Vec::with_capacity(WRITE_CHUNK_BYTES + 16);
        buf.extend_from_slice(&(bucket.len() as u64).to_le_bytes());
        for e in bucket.iter() {
            buf.extend_from_slice(&e.src.to_le_bytes());
            buf.extend_from_slice(&e.dst.to_le_bytes());
            if buf.len() >= WRITE_CHUNK_BYTES {
                file.write_all(&buf)?;
                stats.bytes_written += buf.len() as u64;
                stats.write_calls += 1;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            file.write_all(&buf)?;
            stats.bytes_written += buf.len() as u64;
            stats.write_calls += 1;
        }
        file.sync_all()?;
        shard_edge_counts.push(bucket.len() as u64);
    }

    Ok(ShardedGraph {
        dir,
        num_shards,
        num_vertices,
        shard_edge_counts,
        out_degrees: crate::rmat::out_degrees(num_vertices, edges),
        stats,
    })
}

/// Persists the graph's metadata (shard counts, degrees) next to the
/// shards, so a different runtime can open the graph from disk alone —
/// as GraphChi's engine does with the sharder's degree file.
///
/// # Errors
///
/// Propagates I/O failure.
pub fn save_meta(backend: &Backend, graph: &ShardedGraph) -> Result<(), SgxError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(graph.num_shards as u64).to_le_bytes());
    buf.extend_from_slice(&graph.num_vertices.to_le_bytes());
    for c in &graph.shard_edge_counts {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    for d in &graph.out_degrees {
        buf.extend_from_slice(&d.to_le_bytes());
    }
    let mut file = backend.create(graph.dir.join("meta.bin"))?;
    file.write_all(&buf)?;
    file.sync_all()?;
    Ok(())
}

/// Loads graph metadata written by [`save_meta`].
///
/// # Errors
///
/// Propagates I/O failure; truncated files fail the reads.
pub fn load_meta(backend: &Backend, dir: impl AsRef<Path>) -> Result<ShardedGraph, SgxError> {
    let dir = dir.as_ref().to_path_buf();
    let mut file = backend.open(dir.join("meta.bin"))?;
    let mut header = [0u8; 12];
    file.read_exact(&mut header)?;
    let num_shards = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes")) as usize;
    let num_vertices = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    let mut counts_raw = vec![0u8; num_shards * 8];
    file.read_exact(&mut counts_raw)?;
    let shard_edge_counts = counts_raw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let mut deg_raw = vec![0u8; num_vertices as usize * 4];
    file.read_exact(&mut deg_raw)?;
    let out_degrees = deg_raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Ok(ShardedGraph {
        dir,
        num_shards,
        num_vertices,
        shard_edge_counts,
        out_degrees,
        stats: ShardStats::default(),
    })
}

/// Loads the edges of one shard file (streamed in 64 KiB reads).
///
/// Returns the edges plus the number of read calls performed.
///
/// # Errors
///
/// Propagates I/O failure or truncation.
pub fn load_shard(
    backend: &Backend,
    graph: &ShardedGraph,
    i: usize,
) -> Result<(Vec<Edge>, u64), SgxError> {
    let mut file = backend.open(graph.shard_path(i))?;
    let mut header = [0u8; 8];
    file.read_exact(&mut header)?;
    let n = u64::from_le_bytes(header) as usize;
    let mut remaining = n * 8;
    let mut raw = Vec::with_capacity(remaining);
    let mut read_calls = 1u64;
    const READ_CHUNK: usize = 64 * 1024;
    let mut chunk = vec![0u8; READ_CHUNK];
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        file.read_exact(&mut chunk[..take])?;
        raw.extend_from_slice(&chunk[..take]);
        remaining -= take;
        read_calls += 1;
    }
    let mut edges = Vec::with_capacity(n);
    for rec in raw.chunks_exact(8) {
        edges.push(Edge {
            src: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
            dst: u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")),
        });
    }
    Ok((edges, read_calls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::{generate, RmatParams};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "graphchi_shard_{}_{}_{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn sharding_partitions_edges_losslessly() {
        let edges = generate(1000, 8000, RmatParams::default(), 7);
        let dir = temp_dir("lossless");
        let g = shard(&Backend::Host, &dir, 1000, &edges, 4).unwrap();
        assert_eq!(g.edge_count(), 8000);
        let mut recovered = Vec::new();
        for i in 0..4 {
            let (mut shard_edges, _) = load_shard(&Backend::Host, &g, i).unwrap();
            // Every edge's destination is inside the shard interval.
            let (lo, hi) = g.interval(i);
            assert!(shard_edges.iter().all(|e| e.dst >= lo && e.dst < hi));
            // Sorted by source.
            assert!(shard_edges.windows(2).all(|w| (w[0].src, w[0].dst) <= (w[1].src, w[1].dst)));
            recovered.append(&mut shard_edges);
        }
        let mut orig = edges.clone();
        orig.sort();
        recovered.sort();
        assert_eq!(orig, recovered);
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_shard_holds_everything() {
        let edges = generate(100, 500, RmatParams::default(), 1);
        let dir = temp_dir("single");
        let g = shard(&Backend::Host, &dir, 100, &edges, 1).unwrap();
        assert_eq!(g.shard_edge_counts, vec![500]);
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharding_writes_in_chunks() {
        let edges = generate(2000, 20_000, RmatParams::default(), 2);
        let dir = temp_dir("chunks");
        let g = shard(&Backend::Host, &dir, 2000, &edges, 2).unwrap();
        // 20k edges × 8 B ≈ 160 KB => tens of 4 KB chunk writes.
        assert!(g.stats.write_calls >= 20, "chunked writes, got {}", g.stats.write_calls);
        assert!(g.stats.bytes_written >= 160_000);
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_roundtrips_through_disk() {
        let edges = generate(300, 2000, RmatParams::default(), 11);
        let dir = temp_dir("meta");
        let g = shard(&Backend::Host, &dir, 300, &edges, 3).unwrap();
        save_meta(&Backend::Host, &g).unwrap();
        let loaded = load_meta(&Backend::Host, &dir).unwrap();
        assert_eq!(loaded.num_shards, g.num_shards);
        assert_eq!(loaded.num_vertices, g.num_vertices);
        assert_eq!(loaded.shard_edge_counts, g.shard_edge_counts);
        assert_eq!(loaded.out_degrees, g.out_degrees);
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_degrees_travel_with_the_graph() {
        let edges = vec![Edge { src: 0, dst: 1 }, Edge { src: 0, dst: 2 }, Edge { src: 1, dst: 0 }];
        let dir = temp_dir("deg");
        let g = shard(&Backend::Host, &dir, 3, &edges, 2).unwrap();
        assert_eq!(g.out_degrees, vec![2, 1, 0]);
        g.cleanup();
        std::fs::remove_dir_all(&dir).ok();
    }
}
