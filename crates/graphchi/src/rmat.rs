//! R-MAT recursive graph generator (Chakrabarti et al., SDM'04).
//!
//! The paper evaluates GraphChi on synthetic directed graphs generated
//! with R-MAT (§6.5). The generator recursively picks a quadrant of the
//! adjacency matrix with probabilities `(a, b, c, d)`, producing the
//! skewed degree distributions typical of real networks.

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
}

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // The canonical skewed setting.
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

#[derive(Debug)]
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Generates `edge_count` directed edges over `vertices` vertices.
///
/// Vertices outside the requested range (R-MAT works on a
/// power-of-two-sized matrix) are redrawn, so every edge endpoint is in
/// `0..vertices`. Deterministic per seed.
pub fn generate(vertices: u32, edge_count: usize, params: RmatParams, seed: u64) -> Vec<Edge> {
    assert!(vertices >= 2, "graph needs at least two vertices");
    let scale = 32 - (vertices - 1).leading_zeros();
    let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1));
    let mut edges = Vec::with_capacity(edge_count);
    while edges.len() < edge_count {
        let (mut src, mut dst) = (0u32, 0u32);
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            let r = rng.next_f64();
            if r < params.a {
                // top-left: neither bit set
            } else if r < params.a + params.b {
                dst |= 1;
            } else if r < params.a + params.b + params.c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        if src < vertices && dst < vertices && src != dst {
            edges.push(Edge { src, dst });
        }
    }
    edges
}

/// Out-degree of every vertex.
pub fn out_degrees(vertices: u32, edges: &[Edge]) -> Vec<u32> {
    let mut deg = vec![0u32; vertices as usize];
    for e in edges {
        deg[e.src as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_edge_count_in_range() {
        let edges = generate(6_250, 25_000, RmatParams::default(), 1);
        assert_eq!(edges.len(), 25_000);
        assert!(edges.iter().all(|e| e.src < 6_250 && e.dst < 6_250 && e.src != e.dst));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(1000, 5000, RmatParams::default(), 9);
        let b = generate(1000, 5000, RmatParams::default(), 9);
        let c = generate(1000, 5000, RmatParams::default(), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let edges = generate(4096, 40_000, RmatParams::default(), 3);
        let deg = out_degrees(4096, &edges);
        let max = *deg.iter().max().unwrap();
        let mean = 40_000.0 / 4096.0;
        assert!((max as f64) > 10.0 * mean, "rmat should be skewed: max {max}, mean {mean:.1}");
    }

    #[test]
    fn uniform_params_are_not_skewed_like_default() {
        let uniform = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };
        let e_uniform = generate(4096, 40_000, uniform, 3);
        let e_skewed = generate(4096, 40_000, RmatParams::default(), 3);
        let max_uniform = *out_degrees(4096, &e_uniform).iter().max().unwrap();
        let max_skewed = *out_degrees(4096, &e_skewed).iter().max().unwrap();
        assert!(max_skewed > max_uniform);
    }

    #[test]
    fn out_degrees_sum_to_edge_count() {
        let edges = generate(512, 3000, RmatParams::default(), 5);
        let deg = out_degrees(512, &edges);
        assert_eq!(deg.iter().map(|&d| d as usize).sum::<usize>(), edges.len());
    }
}
