//! A serial stop-and-copy heap with weak references.
//!
//! GraalVM native images embed a serial stop-and-copy collector (§6.4 of
//! the paper cites it as the cause of in-enclave GC overhead: the copy
//! phase moves every live byte through the MEE). This module implements
//! that collector for the simulated runtime:
//!
//! - Objects live in a *from-space* arena; collection traces from roots
//!   and **moves** every live object into a fresh *to-space*, so the
//!   bytes-copied figure reported to the [`HeapObserver`] is exactly the
//!   live set — the traffic an enclave pays MEE costs on.
//! - References are generational handles ([`ObjId`]) resolved through a
//!   handle table, so moving objects never invalidates references and
//!   stale handles are detected instead of misread.
//! - [`WeakRef`]s do not keep objects alive and are atomically cleared
//!   by the collection that reclaims their referent — the primitive
//!   Montsalvat's GC helper builds on (§5.5).

use std::time::Instant;

use crate::value::{ClassId, ObjId, Value};

/// Per-object header bytes charged in the size model.
pub const OBJECT_HEADER_BYTES: u64 = 16;

/// Observer hooks for memory traffic, used to charge enclave costs.
///
/// All methods have empty defaults so observers implement only what they
/// need. Implementations must be cheap; they run under the heap lock.
pub trait HeapObserver: Send + Sync {
    /// `bytes` of new allocation were committed.
    fn on_alloc(&self, bytes: u64) {
        let _ = bytes;
    }
    /// A collection copied `bytes` of live data (semispace copy phase).
    fn on_gc_copy(&self, bytes: u64) {
        let _ = bytes;
    }
    /// `bytes` of dead data were reclaimed.
    fn on_free(&self, bytes: u64) {
        let _ = bytes;
    }
}

/// Heap construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapConfig {
    /// Allocation volume between automatic collections, in bytes.
    pub gc_threshold_bytes: u64,
    /// Hard cap on live bytes; exceeded means the managed application is
    /// out of memory. `u64::MAX` disables the cap.
    pub max_heap_bytes: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        // Native images in the paper are built with 2 GB max heaps (§6.1).
        HeapConfig { gc_threshold_bytes: 32 * 1024 * 1024, max_heap_bytes: 2 * 1024 * 1024 * 1024 }
    }
}

/// Counters describing heap activity since creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Completed collections.
    pub collections: u64,
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Objects reclaimed by GC.
    pub objects_freed: u64,
    /// Bytes allocated.
    pub bytes_allocated: u64,
    /// Live bytes copied by all collections.
    pub bytes_copied: u64,
    /// Bytes reclaimed by all collections.
    pub bytes_freed: u64,
    /// Real time spent inside [`Heap::collect`], in nanoseconds.
    pub gc_real_ns: u64,
}

/// Handle to a weak reference registered with [`Heap::new_weak`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeakRef(u32);

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Objects that survived (were copied).
    pub survivors: usize,
    /// Objects reclaimed.
    pub reclaimed: usize,
    /// Bytes copied to to-space.
    pub bytes_copied: u64,
    /// Bytes reclaimed.
    pub bytes_freed: u64,
    /// Weak references cleared by this collection.
    pub weaks_cleared: usize,
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    /// Index into the arena, or `None` while free.
    target: Option<u32>,
}

#[derive(Debug)]
struct Entry {
    slot: u32,
    class: ClassId,
    fields: Vec<Value>,
    size: u64,
}

#[derive(Debug, Clone, Copy)]
struct WeakEntry {
    target: Option<ObjId>,
}

/// Error raised when the configured heap maximum is exceeded even after
/// collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Live bytes at the point of failure.
    pub live_bytes: u64,
    /// Requested allocation size.
    pub requested: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "managed heap exhausted: {} live bytes + {} requested",
            self.live_bytes, self.requested
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A managed heap with a serial stop-and-copy collector.
///
/// Not internally synchronised; callers (an
/// [`Isolate`](crate::isolate::Isolate)) wrap it in a lock. All
/// `&mut self` operations are stop-the-world by construction.
///
/// # Examples
///
/// ```
/// use runtime_sim::heap::{Heap, HeapConfig};
/// use runtime_sim::value::{ClassId, Value};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let account = heap.alloc(ClassId(1), vec![Value::from("Alice"), Value::from(100i64)]).unwrap();
/// heap.add_root(account);
/// heap.collect();
/// assert!(heap.is_live(account));
/// heap.remove_root(account);
/// heap.collect();
/// assert!(!heap.is_live(account));
/// ```
pub struct Heap {
    config: HeapConfig,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    arena: Vec<Entry>,
    roots: std::collections::HashMap<u32, u32>,
    weaks: Vec<WeakEntry>,
    live_bytes: u64,
    alloc_since_gc: u64,
    stats: HeapStats,
    observer: Option<std::sync::Arc<dyn HeapObserver>>,
    recorder: Option<std::sync::Arc<telemetry::Recorder>>,
    trace: Option<TraceSink>,
}

/// Trace wiring installed by [`Heap::set_tracer`]: the sink, which
/// runtime lane this heap's pauses belong to, and how to read model
/// time (the heap itself has no cost clock — its owner lends one).
struct TraceSink {
    tracer: std::sync::Arc<telemetry::trace::Tracer>,
    lane: telemetry::trace::Lane,
    model_clock: std::sync::Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").field("lane", &self.lane).finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("live_objects", &self.arena.len())
            .field("live_bytes", &self.live_bytes)
            .field("roots", &self.roots.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Heap {
    /// Creates an empty heap.
    pub fn new(config: HeapConfig) -> Self {
        Heap {
            config,
            slots: Vec::new(),
            free_slots: Vec::new(),
            arena: Vec::new(),
            roots: std::collections::HashMap::new(),
            weaks: Vec::new(),
            live_bytes: 0,
            alloc_since_gc: 0,
            stats: HeapStats::default(),
            observer: None,
            recorder: None,
            trace: None,
        }
    }

    /// Installs the traffic observer (e.g. the enclave charger). At most
    /// one observer is supported; installing replaces the previous one.
    pub fn set_observer(&mut self, observer: std::sync::Arc<dyn HeapObserver>) {
        self.observer = Some(observer);
    }

    /// Installs the telemetry recorder this heap reports GC cycles,
    /// allocation volume and pause times into. At most one recorder is
    /// supported; installing replaces the previous one.
    pub fn set_recorder(&mut self, recorder: std::sync::Arc<telemetry::Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Installs the trace sink GC pauses are reported into: `lane`
    /// says which runtime this isolate's heap belongs to and
    /// `model_clock` reads the owning cost model's clock (typically
    /// `move || cost.now_ns()`). A pause triggered mid-call nests
    /// under the span active on the allocating thread.
    pub fn set_tracer(
        &mut self,
        tracer: std::sync::Arc<telemetry::trace::Tracer>,
        lane: telemetry::trace::Lane,
        model_clock: std::sync::Arc<dyn Fn() -> u64 + Send + Sync>,
    ) {
        self.trace = Some(TraceSink { tracer, lane, model_clock });
    }

    /// The configuration the heap was created with.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Bytes currently live (last-GC live set plus subsequent allocation).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.arena.len()
    }

    fn object_size(fields: &[Value]) -> u64 {
        OBJECT_HEADER_BYTES + fields.iter().map(Value::shallow_size).sum::<u64>()
    }

    /// Allocates an object, running an automatic collection first when
    /// the allocation budget since the last GC is exhausted.
    ///
    /// Field values containing [`Value::Ref`]s must reference live,
    /// *rooted* objects — an automatic collection may run before the new
    /// object exists, and unrooted referents would be reclaimed by it.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when live bytes would exceed the
    /// configured maximum even after a forced collection.
    pub fn alloc(&mut self, class: ClassId, fields: Vec<Value>) -> Result<ObjId, OutOfMemory> {
        let size = Self::object_size(&fields);
        if self.alloc_since_gc >= self.config.gc_threshold_bytes {
            self.collect();
        }
        if self.live_bytes + size > self.config.max_heap_bytes {
            self.collect();
            if self.live_bytes + size > self.config.max_heap_bytes {
                return Err(OutOfMemory { live_bytes: self.live_bytes, requested: size });
            }
        }
        let arena_idx = self.arena.len() as u32;
        let slot_idx = match self.free_slots.pop() {
            Some(idx) => {
                self.slots[idx as usize].target = Some(arena_idx);
                idx
            }
            None => {
                self.slots.push(Slot { gen: 0, target: Some(arena_idx) });
                (self.slots.len() - 1) as u32
            }
        };
        self.arena.push(Entry { slot: slot_idx, class, fields, size });
        self.live_bytes += size;
        self.alloc_since_gc += size;
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size;
        if let Some(obs) = &self.observer {
            obs.on_alloc(size);
        }
        if let Some(rec) = &self.recorder {
            rec.incr(telemetry::Counter::HeapAllocObjects);
            rec.add(telemetry::Counter::HeapAllocBytes, size);
            rec.gauge_max(telemetry::Gauge::HeapLiveBytesPeak, self.live_bytes);
            rec.gauge_set(telemetry::Gauge::HeapLiveBytes, self.live_bytes);
        }
        Ok(ObjId { index: slot_idx, gen: self.slots[slot_idx as usize].gen })
    }

    fn resolve(&self, id: ObjId) -> Option<u32> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.target
    }

    /// Whether `id` refers to a live object.
    pub fn is_live(&self, id: ObjId) -> bool {
        self.resolve(id).is_some()
    }

    /// The class of a live object.
    pub fn class_of(&self, id: ObjId) -> Option<ClassId> {
        self.resolve(id).map(|i| self.arena[i as usize].class)
    }

    /// Shared view of an object's fields.
    pub fn fields(&self, id: ObjId) -> Option<&[Value]> {
        self.resolve(id).map(|i| self.arena[i as usize].fields.as_slice())
    }

    /// Reads one field by index.
    pub fn field(&self, id: ObjId, idx: usize) -> Option<&Value> {
        self.fields(id)?.get(idx)
    }

    /// Writes one field by index, updating size accounting.
    ///
    /// Returns `false` if the object is dead or the index out of range.
    pub fn set_field(&mut self, id: ObjId, idx: usize, value: Value) -> bool {
        let Some(arena_idx) = self.resolve(id) else { return false };
        let entry = &mut self.arena[arena_idx as usize];
        let Some(slot_ref) = entry.fields.get_mut(idx) else { return false };
        let old_size = slot_ref.shallow_size();
        let new_size = value.shallow_size();
        *slot_ref = value;
        entry.size = entry.size + new_size - old_size;
        self.live_bytes = self.live_bytes + new_size - old_size;
        true
    }

    /// Registers `id` as a GC root (counted; call
    /// [`Heap::remove_root`] symmetrically).
    pub fn add_root(&mut self, id: ObjId) {
        if self.resolve(id).is_some() {
            *self.roots.entry(id.index).or_insert(0) += 1;
        }
    }

    /// Releases one root registration of `id`.
    pub fn remove_root(&mut self, id: ObjId) {
        if let Some(count) = self.roots.get_mut(&id.index) {
            *count -= 1;
            if *count == 0 {
                self.roots.remove(&id.index);
            }
        }
    }

    /// Current root registrations (distinct objects).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Creates a weak reference to `id`. The reference never keeps the
    /// object alive and reads as `None` once the object is collected.
    pub fn new_weak(&mut self, id: ObjId) -> WeakRef {
        let target = if self.is_live(id) { Some(id) } else { None };
        self.weaks.push(WeakEntry { target });
        WeakRef((self.weaks.len() - 1) as u32)
    }

    /// Reads a weak reference: the referent if it is still live.
    pub fn weak_get(&self, weak: WeakRef) -> Option<ObjId> {
        self.weaks.get(weak.0 as usize)?.target
    }

    /// Number of registered weak references (cleared ones included).
    pub fn weak_count(&self) -> usize {
        self.weaks.len()
    }

    /// Runs a full stop-and-copy collection and returns its outcome.
    ///
    /// Live objects are those reachable from roots by following `Ref`
    /// fields. Every live object is *moved* into a fresh arena (the copy
    /// phase whose byte volume is reported to the observer); dead slots
    /// are generation-bumped so stale handles cannot resurrect them, and
    /// weak references to dead objects are cleared.
    pub fn collect(&mut self) -> GcOutcome {
        let started = Instant::now();
        // Open the pause span before any work so the copy phase's MEE
        // charges (billed through the observer below) land inside it.
        let gc_span = self.trace.as_ref().and_then(|sink| {
            sink.tracer.start(
                sink.lane,
                "gc",
                telemetry::trace::current(),
                (sink.model_clock)(),
                || "gc:collect".to_owned(),
            )
        });
        let old_len = self.arena.len();
        // Trace: mark live arena entries via BFS from roots.
        let mut live = vec![false; old_len];
        let mut stack: Vec<u32> = Vec::new();
        for &slot_idx in self.roots.keys() {
            if let Some(arena_idx) = self.slots[slot_idx as usize].target {
                if !live[arena_idx as usize] {
                    live[arena_idx as usize] = true;
                    stack.push(arena_idx);
                }
            }
        }
        while let Some(arena_idx) = stack.pop() {
            // Collect child refs first to appease the borrow checker.
            let mut children: Vec<ObjId> = Vec::new();
            for field in &self.arena[arena_idx as usize].fields {
                field.for_each_ref(&mut |id| children.push(id));
            }
            for child in children {
                if let Some(child_idx) = self.resolve(child) {
                    if !live[child_idx as usize] {
                        live[child_idx as usize] = true;
                        stack.push(child_idx);
                    }
                }
            }
        }
        // Copy phase: move live entries to the new arena in order.
        let mut new_arena: Vec<Entry> = Vec::with_capacity(live.iter().filter(|l| **l).count());
        let mut outcome = GcOutcome::default();
        for (idx, entry) in std::mem::take(&mut self.arena).into_iter().enumerate() {
            if live[idx] {
                outcome.bytes_copied += entry.size;
                outcome.survivors += 1;
                self.slots[entry.slot as usize].target = Some(new_arena.len() as u32);
                new_arena.push(entry);
            } else {
                outcome.bytes_freed += entry.size;
                outcome.reclaimed += 1;
                let slot = &mut self.slots[entry.slot as usize];
                slot.target = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free_slots.push(entry.slot);
            }
        }
        self.arena = new_arena;
        // Clear weak references whose referent died.
        for weak in &mut self.weaks {
            if let Some(id) = weak.target {
                let slot = &self.slots[id.index as usize];
                if slot.gen != id.gen || slot.target.is_none() {
                    weak.target = None;
                    outcome.weaks_cleared += 1;
                }
            }
        }
        self.live_bytes -= outcome.bytes_freed;
        self.alloc_since_gc = 0;
        self.stats.collections += 1;
        self.stats.objects_freed += outcome.reclaimed as u64;
        self.stats.bytes_copied += outcome.bytes_copied;
        self.stats.bytes_freed += outcome.bytes_freed;
        let pause_ns = started.elapsed().as_nanos() as u64;
        self.stats.gc_real_ns += pause_ns;
        if let Some(obs) = &self.observer {
            obs.on_gc_copy(outcome.bytes_copied);
            obs.on_free(outcome.bytes_freed);
        }
        if let Some(rec) = &self.recorder {
            rec.incr(telemetry::Counter::GcCollections);
            rec.add(telemetry::Counter::GcBytesCopied, outcome.bytes_copied);
            rec.add(telemetry::Counter::GcBytesFreed, outcome.bytes_freed);
            rec.record(telemetry::Hist::GcPauseNs, pause_ns);
            // Post-collection live level: the flight recorder's
            // per-window heap residency sample.
            rec.gauge_set(telemetry::Gauge::HeapLiveBytes, self.live_bytes);
        }
        if let (Some(sink), Some(span)) = (&self.trace, gc_span) {
            sink.tracer.finish(span, (sink.model_clock)());
        }
        outcome
    }

    /// Iterates over all live objects as `(id, class, fields)`.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, ClassId, &[Value])> + '_ {
        self.arena.iter().map(|e| {
            (
                ObjId { index: e.slot, gen: self.slots[e.slot as usize].gen },
                e.class,
                e.fields.as_slice(),
            )
        })
    }

    /// Objects currently registered as roots.
    pub fn root_ids(&self) -> Vec<ObjId> {
        self.roots
            .keys()
            .map(|&slot_idx| ObjId { index: slot_idx, gen: self.slots[slot_idx as usize].gen })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn heap() -> Heap {
        Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
    }

    #[test]
    fn alloc_and_read_fields() {
        let mut h = heap();
        let id = h.alloc(ClassId(3), vec![Value::Int(7), Value::from("x")]).unwrap();
        assert_eq!(h.class_of(id), Some(ClassId(3)));
        assert_eq!(h.field(id, 0), Some(&Value::Int(7)));
        assert_eq!(h.field(id, 1).unwrap().as_str(), Some("x"));
        assert_eq!(h.live_objects(), 1);
    }

    #[test]
    fn set_field_updates_size_accounting() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        let before = h.live_bytes();
        assert!(h.set_field(id, 0, Value::Bytes(vec![0; 100])));
        assert_eq!(h.live_bytes(), before + 100);
        assert!(!h.set_field(id, 5, Value::Unit), "out of range");
    }

    #[test]
    fn unrooted_objects_are_reclaimed() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        let out = h.collect();
        assert_eq!(out.reclaimed, 1);
        assert!(!h.is_live(id));
        assert_eq!(h.live_objects(), 0);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn recorder_sees_alloc_and_gc_activity() {
        use telemetry::{Counter, Gauge, Hist, Recorder};
        let rec = Recorder::new();
        let mut h = heap();
        h.set_recorder(rec.clone());
        let keep = h.alloc(ClassId(0), vec![Value::Int(1)]).unwrap();
        h.add_root(keep);
        h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 64])]).unwrap();
        let live_before_gc = h.live_bytes();
        let out = h.collect();
        assert_eq!(rec.counter(Counter::HeapAllocObjects), 2);
        assert_eq!(rec.counter(Counter::HeapAllocBytes), h.stats().bytes_allocated);
        assert_eq!(rec.gauge(Gauge::HeapLiveBytesPeak), live_before_gc);
        assert_eq!(rec.counter(Counter::GcCollections), 1);
        assert_eq!(rec.counter(Counter::GcBytesFreed), out.bytes_freed);
        assert_eq!(rec.counter(Counter::GcBytesCopied), out.bytes_copied);
        assert_eq!(rec.snapshot().hist(Hist::GcPauseNs).count, 1);
    }

    #[test]
    fn rooted_objects_survive_and_handles_stay_valid() {
        let mut h = heap();
        let id = h.alloc(ClassId(9), vec![Value::Int(1)]).unwrap();
        h.add_root(id);
        for _ in 0..3 {
            let out = h.collect();
            assert_eq!(out.survivors, 1);
        }
        assert_eq!(h.field(id, 0), Some(&Value::Int(1)));
    }

    #[test]
    fn reachability_is_transitive() {
        let mut h = heap();
        let leaf = h.alloc(ClassId(0), vec![Value::Int(42)]).unwrap();
        let mid = h.alloc(ClassId(0), vec![Value::Ref(leaf)]).unwrap();
        let root = h.alloc(ClassId(0), vec![Value::List(vec![Value::Ref(mid)])]).unwrap();
        h.add_root(root);
        let out = h.collect();
        assert_eq!(out.survivors, 3);
        assert!(h.is_live(leaf) && h.is_live(mid) && h.is_live(root));
    }

    #[test]
    fn cycles_are_collected_when_unrooted() {
        let mut h = heap();
        let a = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        let b = h.alloc(ClassId(0), vec![Value::Ref(a)]).unwrap();
        h.set_field(a, 0, Value::Ref(b));
        let out = h.collect();
        assert_eq!(out.reclaimed, 2);
    }

    #[test]
    fn stale_handles_do_not_resurrect_slots() {
        let mut h = heap();
        let dead = h.alloc(ClassId(0), vec![]).unwrap();
        h.collect();
        // Slot is reused by a fresh allocation.
        let fresh = h.alloc(ClassId(1), vec![]).unwrap();
        assert_eq!(dead.index(), fresh.index(), "slot reused");
        assert!(!h.is_live(dead));
        assert!(h.is_live(fresh));
        assert_eq!(h.class_of(dead), None);
    }

    #[test]
    fn weak_refs_clear_exactly_on_death() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        h.add_root(id);
        let w = h.new_weak(id);
        h.collect();
        assert_eq!(h.weak_get(w), Some(id), "weak survives while rooted");
        h.remove_root(id);
        let out = h.collect();
        assert_eq!(out.weaks_cleared, 1);
        assert_eq!(h.weak_get(w), None);
    }

    #[test]
    fn weak_refs_do_not_keep_alive() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        let w = h.new_weak(id);
        h.collect();
        assert_eq!(h.weak_get(w), None);
        assert!(!h.is_live(id));
    }

    #[test]
    fn auto_gc_triggers_on_threshold() {
        let mut h = Heap::new(HeapConfig { gc_threshold_bytes: 1024, ..HeapConfig::default() });
        for _ in 0..200 {
            h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 64])]).unwrap();
        }
        assert!(h.stats().collections > 0, "automatic GC ran");
        assert!(h.live_objects() < 200, "garbage was reclaimed");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut h = Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, max_heap_bytes: 4096 });
        let big = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 2048])]).unwrap();
        h.add_root(big);
        let err = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 4096])]).unwrap_err();
        assert!(err.requested > 4096);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn oom_recovers_by_collecting_garbage() {
        let mut h = Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, max_heap_bytes: 8192 });
        for _ in 0..3 {
            h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 2000])]).unwrap();
        }
        // Garbage fills the heap; a forced GC must rescue this alloc.
        let id = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 4000])]).unwrap();
        assert!(h.is_live(id));
    }

    #[test]
    fn observer_sees_alloc_copy_free() {
        #[derive(Default)]
        struct Counter {
            alloc: AtomicU64,
            copied: AtomicU64,
            freed: AtomicU64,
        }
        impl HeapObserver for Counter {
            fn on_alloc(&self, b: u64) {
                self.alloc.fetch_add(b, Ordering::Relaxed);
            }
            fn on_gc_copy(&self, b: u64) {
                self.copied.fetch_add(b, Ordering::Relaxed);
            }
            fn on_free(&self, b: u64) {
                self.freed.fetch_add(b, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Counter::default());
        let mut h = heap();
        h.set_observer(counter.clone());
        let live = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 100])]).unwrap();
        h.add_root(live);
        h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 50])]).unwrap();
        h.collect();
        assert!(counter.alloc.load(Ordering::Relaxed) >= 150);
        assert!(counter.copied.load(Ordering::Relaxed) >= 100);
        assert!(counter.freed.load(Ordering::Relaxed) >= 50);
    }

    #[test]
    fn iter_yields_live_objects_with_valid_ids() {
        let mut h = heap();
        let a = h.alloc(ClassId(1), vec![Value::Int(1)]).unwrap();
        let b = h.alloc(ClassId(2), vec![Value::Int(2)]).unwrap();
        h.add_root(a);
        h.add_root(b);
        h.collect();
        let ids: Vec<ObjId> = h.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids.len(), 2);
        for id in ids {
            assert!(h.is_live(id));
        }
    }

    #[test]
    fn root_counting_is_balanced() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        h.add_root(id);
        h.add_root(id);
        h.remove_root(id);
        h.collect();
        assert!(h.is_live(id), "still one root held");
        h.remove_root(id);
        h.collect();
        assert!(!h.is_live(id));
    }
}
