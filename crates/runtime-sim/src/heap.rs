//! A managed heap with pluggable collectors behind a handle table.
//!
//! GraalVM native images embed a serial stop-and-copy collector (§6.4 of
//! the paper cites it as the cause of in-enclave GC overhead: the copy
//! phase moves every live byte through the MEE). This module implements
//! that collector as the [`CollectorKind::Semispace`] reference
//! implementation, and a segmented [`CollectorKind::Block`] heap that
//! collects generationally (see `docs/GC.md`):
//!
//! - `Semispace`: objects live in a *from-space* arena; collection
//!   traces from roots and **moves** every live object into a fresh
//!   *to-space*, so the bytes-copied figure reported to the
//!   [`HeapObserver`] is exactly the live set — the traffic an enclave
//!   pays MEE costs on.
//! - `Block`: objects live in fixed-size blocks with size-class
//!   buckets; minor collections evacuate the nursery into survivor
//!   blocks and major collections mark-sweep the mature space, so EPC
//!   paging is charged per *block touched* instead of per semispace
//!   flip.
//! - References are generational handles ([`ObjId`]) resolved through a
//!   handle table, so moving objects never invalidates references and
//!   stale handles are detected instead of misread. Handle indirection
//!   is also what makes the collectors observationally identical: no
//!   collector ever rewrites a stored reference.
//! - [`WeakRef`]s do not keep objects alive and are atomically cleared
//!   by the collection that reclaims their referent — the primitive
//!   Montsalvat's GC helper builds on (§5.5).

use std::time::Instant;

use crate::value::{ClassId, ObjId, Value};

/// Per-object header bytes charged in the size model.
pub const OBJECT_HEADER_BYTES: u64 = 16;

/// Observer hooks for memory traffic, used to charge enclave costs.
///
/// All methods have empty defaults so observers implement only what they
/// need. Implementations must be cheap; they run under the heap lock.
///
/// The semispace collector reports through [`HeapObserver::on_alloc`] /
/// [`HeapObserver::on_gc_copy`] / [`HeapObserver::on_free`] exactly as
/// before; the block collector splits residency from traffic: block
/// commits/releases move EPC residency while `on_block_alloc`,
/// `on_gc_mark` and `on_gc_blocks_touched` are pure traffic.
pub trait HeapObserver: Send + Sync {
    /// `bytes` of new allocation were committed (semispace path:
    /// residency and write traffic in one).
    fn on_alloc(&self, bytes: u64) {
        let _ = bytes;
    }
    /// A collection copied `bytes` of live data (semispace copy phase,
    /// or nursery evacuation under the block collector).
    fn on_gc_copy(&self, bytes: u64) {
        let _ = bytes;
    }
    /// `bytes` of dead data were reclaimed (semispace path).
    fn on_free(&self, bytes: u64) {
        let _ = bytes;
    }
    /// The block heap committed `bytes` of fresh block storage
    /// (residency growth; the block analogue of the grow half of
    /// [`HeapObserver::on_alloc`]).
    fn on_block_commit(&self, bytes: u64) {
        let _ = bytes;
    }
    /// `bytes` were written into already-committed blocks (allocation
    /// write traffic without residency growth).
    fn on_block_alloc(&self, bytes: u64) {
        let _ = bytes;
    }
    /// The block heap released `bytes` of committed block storage back
    /// to the OS (residency shrink).
    fn on_block_release(&self, bytes: u64) {
        let _ = bytes;
    }
    /// A collection marked `objects` live objects (block-collector
    /// tracing work).
    fn on_gc_mark(&self, objects: u64) {
        let _ = objects;
    }
    /// A collection touched `blocks` distinct blocks of `block_bytes`
    /// each (per-block EPC paging granule).
    fn on_gc_blocks_touched(&self, blocks: u64, block_bytes: u64) {
        let _ = (blocks, block_bytes);
    }
}

/// Which collector implementation a heap runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollectorKind {
    /// Serial stop-and-copy semispace collector — the reference
    /// implementation matching the paper's native-image GC (§6.4).
    #[default]
    Semispace,
    /// Segmented block/bucket heap with generational collection
    /// (nursery evacuation + mature mark-sweep).
    Block,
}

impl CollectorKind {
    /// Parses a selector string (`"semispace"` | `"block"`,
    /// case-insensitive). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "semispace" => Some(CollectorKind::Semispace),
            "block" => Some(CollectorKind::Block),
            _ => None,
        }
    }

    /// Reads the `MONTSALVAT_GC` environment selector. Unset or
    /// unrecognised values read as `None` (callers fall back to their
    /// configured default), mirroring the provider detector.
    pub fn from_env() -> Option<Self> {
        std::env::var("MONTSALVAT_GC").ok().and_then(|v| Self::parse(&v))
    }

    /// Stable lowercase name (`"semispace"` | `"block"`), matching what
    /// [`CollectorKind::parse`] accepts.
    pub fn name(&self) -> &'static str {
        match self {
            CollectorKind::Semispace => "semispace",
            CollectorKind::Block => "block",
        }
    }
}

/// Which generation a collection covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectKind {
    /// Nursery-only cycle: evacuate live nursery objects into survivor
    /// blocks. The semispace collector has no nursery and promotes
    /// minor requests to major.
    Minor,
    /// Full cycle over every generation.
    Major,
}

/// Block-heap occupancy counters, reported by [`Heap::block_stats`]
/// (`None` under the semispace collector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Configured block size in bytes.
    pub block_bytes: u64,
    /// Blocks currently committed (live + cached-free), in units of
    /// `block_bytes` (large objects count their rounded-up span).
    pub committed_blocks: u64,
    /// Committed blocks holding at least one live object.
    pub live_blocks: u64,
    /// Committed-but-empty blocks cached for reuse.
    pub free_blocks: u64,
    /// Blocks currently assigned to the nursery.
    pub nursery_blocks: u64,
    /// Object bytes allocated in the nursery since the last collection.
    pub nursery_used_bytes: u64,
}

/// Heap construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapConfig {
    /// Allocation volume between automatic major collections, in bytes.
    pub gc_threshold_bytes: u64,
    /// Hard cap on live bytes; exceeded means the managed application is
    /// out of memory. `u64::MAX` disables the cap.
    pub max_heap_bytes: u64,
    /// Which collector implementation to run.
    pub collector: CollectorKind,
    /// Block size for the block collector (ignored by semispace). The
    /// app layer seeds this from `CostParams::gc_block_bytes` so heap
    /// geometry and EPC charging agree.
    pub block_bytes: u64,
    /// Nursery allocation volume between automatic minor collections
    /// (block collector only).
    pub nursery_bytes: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        // Native images in the paper are built with 2 GB max heaps (§6.1).
        HeapConfig {
            gc_threshold_bytes: 32 * 1024 * 1024,
            max_heap_bytes: 2 * 1024 * 1024 * 1024,
            collector: CollectorKind::Semispace,
            block_bytes: 32 * 1024,
            nursery_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Counters describing heap activity since creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Completed collections (minor + major).
    pub collections: u64,
    /// Completed minor (nursery) collections.
    pub minor_collections: u64,
    /// Completed major (full) collections.
    pub major_collections: u64,
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Objects reclaimed by GC.
    pub objects_freed: u64,
    /// Bytes allocated.
    pub bytes_allocated: u64,
    /// Live bytes copied by all collections.
    pub bytes_copied: u64,
    /// Bytes reclaimed by all collections.
    pub bytes_freed: u64,
    /// Real time spent inside [`Heap::collect`], in nanoseconds.
    pub gc_real_ns: u64,
}

/// Handle to a weak reference registered with [`Heap::new_weak`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeakRef(u32);

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Objects that survived the collected generation(s).
    pub survivors: usize,
    /// Objects reclaimed.
    pub reclaimed: usize,
    /// Bytes moved (semispace copy phase / nursery evacuation).
    pub bytes_copied: u64,
    /// Bytes reclaimed.
    pub bytes_freed: u64,
    /// Weak references cleared by this collection.
    pub weaks_cleared: usize,
    /// Whether this was a minor (nursery-only) cycle.
    pub minor: bool,
}

#[derive(Debug)]
pub(crate) struct Slot {
    gen: u32,
    /// Collector storage reference, or `None` while free.
    target: Option<u32>,
}

/// One stored object: its handle slot, class, fields and charged size.
#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) slot: u32,
    pub(crate) class: ClassId,
    pub(crate) fields: Vec<Value>,
    pub(crate) size: u64,
}

/// Result of inserting an entry into a collector.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AllocEffect {
    /// Storage reference the handle table should point at.
    pub(crate) store_ref: u32,
    /// Fresh block bytes committed to satisfy the insert (0 when the
    /// object fit in already-committed storage; semispace always 0).
    pub(crate) committed_bytes: u64,
}

/// What one collection did, beyond the externally visible
/// [`GcOutcome`]: the work/residency figures the heap reports to the
/// observer and recorder.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CollectResult {
    pub(crate) outcome: GcOutcome,
    /// Objects marked live by tracing.
    pub(crate) marked_objects: u64,
    /// Distinct blocks read or written by the cycle (0 for semispace).
    pub(crate) blocks_touched: u64,
    /// Fresh block bytes committed (survivor-space growth).
    pub(crate) committed_bytes: u64,
    /// Committed block bytes released back to the OS.
    pub(crate) released_bytes: u64,
}

/// Handle-table view lent to a collector for the duration of one
/// collection. Collectors resolve refs, retarget surviving slots and
/// kill dead ones through this — they never touch slot internals, so
/// generation bumping and free-slot recycling stay identical across
/// collectors.
pub(crate) struct GcCx<'a> {
    slots: &'a mut Vec<Slot>,
    free_slots: &'a mut Vec<u32>,
    roots: &'a std::collections::HashMap<u32, u32>,
}

impl GcCx<'_> {
    /// Resolves a handle to its storage reference, `None` when stale.
    pub(crate) fn resolve(&self, id: ObjId) -> Option<u32> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.target
    }

    /// Storage reference currently held by `slot_idx`, if any.
    pub(crate) fn target_of_slot(&self, slot_idx: u32) -> Option<u32> {
        self.slots[slot_idx as usize].target
    }

    /// Root slot indices (iteration order is not deterministic; callers
    /// must not let it influence outcomes).
    pub(crate) fn root_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.roots.keys().copied()
    }

    /// Points a surviving slot at the entry's new storage reference.
    pub(crate) fn retarget(&mut self, slot_idx: u32, store_ref: u32) {
        self.slots[slot_idx as usize].target = Some(store_ref);
    }

    /// Kills a dead slot: clears the target, bumps the generation so
    /// stale handles cannot resurrect it, recycles the slot index.
    pub(crate) fn kill(&mut self, slot_idx: u32) {
        let slot = &mut self.slots[slot_idx as usize];
        slot.target = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free_slots.push(slot_idx);
    }
}

/// Storage + collection strategy behind the [`Heap`] facade.
///
/// The facade owns handles, roots, weaks, stats, observers and
/// telemetry; implementations own object storage and the trace /
/// reclaim algorithm. All mutation happens under the heap's external
/// lock, so implementations need no internal synchronisation.
pub(crate) trait Collector: std::fmt::Debug + Send {
    /// Which implementation this is.
    fn kind(&self) -> CollectorKind;
    /// Stores `entry` and returns where, plus any residency growth.
    fn insert(&mut self, entry: Entry) -> AllocEffect;
    /// Shared access to a stored entry.
    fn entry(&self, store_ref: u32) -> &Entry;
    /// Mutable access to a stored entry.
    fn entry_mut(&mut self, store_ref: u32) -> &mut Entry;
    /// Number of live entries.
    fn len(&self) -> usize;
    /// Iterates all live entries in a deterministic storage order.
    fn iter_entries(&self) -> Box<dyn Iterator<Item = &Entry> + '_>;
    /// Accounts an in-place field resize on the entry's containing
    /// storage; `wrote_ref` feeds the remembered set.
    fn note_field_write(&mut self, store_ref: u32, old_size: u64, new_size: u64, wrote_ref: bool);
    /// Whether an automatic collection should run before the next
    /// allocation, and of which kind.
    fn due(&self, alloc_since_gc: u64, config: &HeapConfig) -> Option<CollectKind>;
    /// Runs one collection over the handle table view.
    fn collect(&mut self, kind: CollectKind, cx: &mut GcCx<'_>) -> CollectResult;
    /// Block occupancy, for heaps that have blocks.
    fn block_stats(&self) -> Option<BlockStats>;
}

/// The serial stop-and-copy reference collector (paper §6.4). Kept
/// bit-identical to the pre-trait implementation: arena push order,
/// copy order and free-slot recycling order are unchanged.
#[derive(Debug, Default)]
struct Semispace {
    arena: Vec<Entry>,
}

impl Collector for Semispace {
    fn kind(&self) -> CollectorKind {
        CollectorKind::Semispace
    }

    fn insert(&mut self, entry: Entry) -> AllocEffect {
        self.arena.push(entry);
        AllocEffect { store_ref: (self.arena.len() - 1) as u32, committed_bytes: 0 }
    }

    fn entry(&self, store_ref: u32) -> &Entry {
        &self.arena[store_ref as usize]
    }

    fn entry_mut(&mut self, store_ref: u32) -> &mut Entry {
        &mut self.arena[store_ref as usize]
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn iter_entries(&self) -> Box<dyn Iterator<Item = &Entry> + '_> {
        Box::new(self.arena.iter())
    }

    fn note_field_write(&mut self, _r: u32, _old: u64, _new: u64, _wrote_ref: bool) {}

    fn due(&self, alloc_since_gc: u64, config: &HeapConfig) -> Option<CollectKind> {
        (alloc_since_gc >= config.gc_threshold_bytes).then_some(CollectKind::Major)
    }

    fn collect(&mut self, _kind: CollectKind, cx: &mut GcCx<'_>) -> CollectResult {
        let old_len = self.arena.len();
        // Trace: mark live arena entries via BFS from roots.
        let mut live = vec![false; old_len];
        let mut stack: Vec<u32> = Vec::new();
        for slot_idx in cx.root_slots() {
            if let Some(arena_idx) = cx.target_of_slot(slot_idx) {
                if !live[arena_idx as usize] {
                    live[arena_idx as usize] = true;
                    stack.push(arena_idx);
                }
            }
        }
        while let Some(arena_idx) = stack.pop() {
            // Collect child refs first to appease the borrow checker.
            let mut children: Vec<ObjId> = Vec::new();
            for field in &self.arena[arena_idx as usize].fields {
                field.for_each_ref(&mut |id| children.push(id));
            }
            for child in children {
                if let Some(child_idx) = cx.resolve(child) {
                    if !live[child_idx as usize] {
                        live[child_idx as usize] = true;
                        stack.push(child_idx);
                    }
                }
            }
        }
        // Copy phase: move live entries to the new arena in order.
        let mut new_arena: Vec<Entry> = Vec::with_capacity(live.iter().filter(|l| **l).count());
        let mut outcome = GcOutcome::default();
        for (idx, entry) in std::mem::take(&mut self.arena).into_iter().enumerate() {
            if live[idx] {
                outcome.bytes_copied += entry.size;
                outcome.survivors += 1;
                cx.retarget(entry.slot, new_arena.len() as u32);
                new_arena.push(entry);
            } else {
                outcome.bytes_freed += entry.size;
                outcome.reclaimed += 1;
                cx.kill(entry.slot);
            }
        }
        self.arena = new_arena;
        let marked = outcome.survivors as u64;
        CollectResult {
            outcome,
            marked_objects: marked,
            blocks_touched: 0,
            committed_bytes: 0,
            released_bytes: 0,
        }
    }

    fn block_stats(&self) -> Option<BlockStats> {
        None
    }
}

#[derive(Debug, Clone, Copy)]
struct WeakEntry {
    target: Option<ObjId>,
}

/// Error raised when the configured heap maximum is exceeded even after
/// collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Live bytes at the point of failure.
    pub live_bytes: u64,
    /// Requested allocation size.
    pub requested: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "managed heap exhausted: {} live bytes + {} requested",
            self.live_bytes, self.requested
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A managed heap with a pluggable stop-the-world collector.
///
/// Not internally synchronised; callers (an
/// [`Isolate`](crate::isolate::Isolate)) wrap it in a lock. All
/// `&mut self` operations are stop-the-world by construction.
///
/// # Examples
///
/// ```
/// use runtime_sim::heap::{Heap, HeapConfig};
/// use runtime_sim::value::{ClassId, Value};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let account = heap.alloc(ClassId(1), vec![Value::from("Alice"), Value::from(100i64)]).unwrap();
/// heap.add_root(account);
/// heap.collect();
/// assert!(heap.is_live(account));
/// heap.remove_root(account);
/// heap.collect();
/// assert!(!heap.is_live(account));
/// ```
pub struct Heap {
    config: HeapConfig,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    store: Box<dyn Collector>,
    roots: std::collections::HashMap<u32, u32>,
    weaks: Vec<WeakEntry>,
    live_bytes: u64,
    alloc_since_gc: u64,
    stats: HeapStats,
    observer: Option<std::sync::Arc<dyn HeapObserver>>,
    recorder: Option<std::sync::Arc<telemetry::Recorder>>,
    trace: Option<TraceSink>,
    /// Deterministic model-time clock (total charged nanoseconds);
    /// when installed, GC pauses are also recorded in model time.
    charge_clock: Option<std::sync::Arc<dyn Fn() -> u64 + Send + Sync>>,
}

/// Trace wiring installed by [`Heap::set_tracer`]: the sink, which
/// runtime lane this heap's pauses belong to, and how to read model
/// time (the heap itself has no cost clock — its owner lends one).
struct TraceSink {
    tracer: std::sync::Arc<telemetry::trace::Tracer>,
    lane: telemetry::trace::Lane,
    model_clock: std::sync::Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").field("lane", &self.lane).finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("collector", &self.store.kind())
            .field("live_objects", &self.store.len())
            .field("live_bytes", &self.live_bytes)
            .field("roots", &self.roots.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Heap {
    /// Creates an empty heap running the configured collector.
    pub fn new(config: HeapConfig) -> Self {
        let store: Box<dyn Collector> = match config.collector {
            CollectorKind::Semispace => Box::new(Semispace::default()),
            CollectorKind::Block => {
                Box::new(crate::block::BlockHeap::new(config.block_bytes.max(1)))
            }
        };
        Heap {
            config,
            slots: Vec::new(),
            free_slots: Vec::new(),
            store,
            roots: std::collections::HashMap::new(),
            weaks: Vec::new(),
            live_bytes: 0,
            alloc_since_gc: 0,
            stats: HeapStats::default(),
            observer: None,
            recorder: None,
            trace: None,
            charge_clock: None,
        }
    }

    /// Installs the traffic observer (e.g. the enclave charger). At most
    /// one observer is supported; installing replaces the previous one.
    pub fn set_observer(&mut self, observer: std::sync::Arc<dyn HeapObserver>) {
        self.observer = Some(observer);
    }

    /// Installs the telemetry recorder this heap reports GC cycles,
    /// allocation volume and pause times into. At most one recorder is
    /// supported; installing replaces the previous one.
    pub fn set_recorder(&mut self, recorder: std::sync::Arc<telemetry::Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Installs the trace sink GC pauses are reported into: `lane`
    /// says which runtime this isolate's heap belongs to and
    /// `model_clock` reads the owning cost model's clock (typically
    /// `move || cost.now_ns()`). A pause triggered mid-call nests
    /// under the span active on the allocating thread.
    pub fn set_tracer(
        &mut self,
        tracer: std::sync::Arc<telemetry::trace::Tracer>,
        lane: telemetry::trace::Lane,
        model_clock: std::sync::Arc<dyn Fn() -> u64 + Send + Sync>,
    ) {
        self.trace = Some(TraceSink { tracer, lane, model_clock });
    }

    /// Installs a deterministic charge clock (typically
    /// `move || cost.charged().as_nanos() as u64`). When present, each
    /// collection also records its pause in *model* nanoseconds — the
    /// charged-cost delta across the cycle — into `gc.pause_model_ns`,
    /// which is reproducible run-to-run unlike the wall-clock pause.
    pub fn set_charge_clock(&mut self, clock: std::sync::Arc<dyn Fn() -> u64 + Send + Sync>) {
        self.charge_clock = Some(clock);
    }

    /// The configuration the heap was created with.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Which collector implementation this heap runs.
    pub fn collector_kind(&self) -> CollectorKind {
        self.store.kind()
    }

    /// Block occupancy counters (`None` under semispace).
    pub fn block_stats(&self) -> Option<BlockStats> {
        self.store.block_stats()
    }

    /// Activity counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Bytes currently live (last-GC live set plus subsequent allocation).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.store.len()
    }

    fn object_size(fields: &[Value]) -> u64 {
        OBJECT_HEADER_BYTES + fields.iter().map(Value::shallow_size).sum::<u64>()
    }

    /// Allocates an object, running an automatic collection first when
    /// the collector decides one is due (semispace: allocation budget
    /// since the last GC exhausted; block: nursery full → minor,
    /// budget exhausted → major).
    ///
    /// Field values containing [`Value::Ref`]s must reference live,
    /// *rooted* objects — an automatic collection may run before the new
    /// object exists, and unrooted referents would be reclaimed by it.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when live bytes would exceed the
    /// configured maximum even after a forced collection.
    pub fn alloc(&mut self, class: ClassId, fields: Vec<Value>) -> Result<ObjId, OutOfMemory> {
        let size = Self::object_size(&fields);
        if let Some(kind) = self.store.due(self.alloc_since_gc, &self.config) {
            self.collect_kind(kind);
        }
        if self.live_bytes + size > self.config.max_heap_bytes {
            self.collect();
            if self.live_bytes + size > self.config.max_heap_bytes {
                return Err(OutOfMemory { live_bytes: self.live_bytes, requested: size });
            }
        }
        let slot_idx = match self.free_slots.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { gen: 0, target: None });
                (self.slots.len() - 1) as u32
            }
        };
        let effect = self.store.insert(Entry { slot: slot_idx, class, fields, size });
        self.slots[slot_idx as usize].target = Some(effect.store_ref);
        self.live_bytes += size;
        self.alloc_since_gc += size;
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size;
        if let Some(obs) = &self.observer {
            match self.store.kind() {
                CollectorKind::Semispace => obs.on_alloc(size),
                CollectorKind::Block => {
                    if effect.committed_bytes > 0 {
                        obs.on_block_commit(effect.committed_bytes);
                    }
                    obs.on_block_alloc(size);
                }
            }
        }
        if let Some(rec) = &self.recorder {
            rec.incr(telemetry::Counter::HeapAllocObjects);
            rec.add(telemetry::Counter::HeapAllocBytes, size);
            rec.gauge_max(telemetry::Gauge::HeapLiveBytesPeak, self.live_bytes);
            rec.gauge_set(telemetry::Gauge::HeapLiveBytes, self.live_bytes);
        }
        Ok(ObjId { index: slot_idx, gen: self.slots[slot_idx as usize].gen })
    }

    fn resolve(&self, id: ObjId) -> Option<u32> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.target
    }

    /// Whether `id` refers to a live object.
    pub fn is_live(&self, id: ObjId) -> bool {
        self.resolve(id).is_some()
    }

    /// The class of a live object.
    pub fn class_of(&self, id: ObjId) -> Option<ClassId> {
        self.resolve(id).map(|i| self.store.entry(i).class)
    }

    /// Shared view of an object's fields.
    pub fn fields(&self, id: ObjId) -> Option<&[Value]> {
        self.resolve(id).map(|i| self.store.entry(i).fields.as_slice())
    }

    /// Reads one field by index.
    pub fn field(&self, id: ObjId, idx: usize) -> Option<&Value> {
        self.fields(id)?.get(idx)
    }

    /// Writes one field by index, updating size accounting (and, under
    /// the block collector, the dirty-block remembered set when a ref
    /// is written into a mature object).
    ///
    /// Returns `false` if the object is dead or the index out of range.
    pub fn set_field(&mut self, id: ObjId, idx: usize, value: Value) -> bool {
        let Some(store_ref) = self.resolve(id) else { return false };
        let mut wrote_ref = false;
        value.for_each_ref(&mut |_| wrote_ref = true);
        let new_size = value.shallow_size();
        let entry = self.store.entry_mut(store_ref);
        let Some(slot_ref) = entry.fields.get_mut(idx) else { return false };
        let old_size = slot_ref.shallow_size();
        *slot_ref = value;
        entry.size = entry.size + new_size - old_size;
        self.store.note_field_write(store_ref, old_size, new_size, wrote_ref);
        self.live_bytes = self.live_bytes + new_size - old_size;
        true
    }

    /// Registers `id` as a GC root (counted; call
    /// [`Heap::remove_root`] symmetrically).
    pub fn add_root(&mut self, id: ObjId) {
        if self.resolve(id).is_some() {
            *self.roots.entry(id.index).or_insert(0) += 1;
        }
    }

    /// Releases one root registration of `id`.
    pub fn remove_root(&mut self, id: ObjId) {
        if let Some(count) = self.roots.get_mut(&id.index) {
            *count -= 1;
            if *count == 0 {
                self.roots.remove(&id.index);
            }
        }
    }

    /// Current root registrations (distinct objects).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Creates a weak reference to `id`. The reference never keeps the
    /// object alive and reads as `None` once the object is collected.
    pub fn new_weak(&mut self, id: ObjId) -> WeakRef {
        let target = if self.is_live(id) { Some(id) } else { None };
        self.weaks.push(WeakEntry { target });
        WeakRef((self.weaks.len() - 1) as u32)
    }

    /// Reads a weak reference: the referent if it is still live.
    pub fn weak_get(&self, weak: WeakRef) -> Option<ObjId> {
        self.weaks.get(weak.0 as usize)?.target
    }

    /// Number of registered weak references (cleared ones included).
    pub fn weak_count(&self) -> usize {
        self.weaks.len()
    }

    /// Runs a full (major) collection and returns its outcome.
    ///
    /// Live objects are those reachable from roots by following `Ref`
    /// fields. Dead slots are generation-bumped so stale handles cannot
    /// resurrect them, and weak references to dead objects are cleared.
    /// Under semispace every live object is *moved* into a fresh arena
    /// (the copy phase whose byte volume is reported to the observer);
    /// under the block collector the nursery is evacuated and the
    /// mature space swept in place.
    pub fn collect(&mut self) -> GcOutcome {
        self.collect_kind(CollectKind::Major)
    }

    /// Runs a minor (nursery) collection. Under semispace — which has
    /// no nursery — this is promoted to a full collection so counters
    /// stay truthful.
    pub fn collect_minor(&mut self) -> GcOutcome {
        let kind = match self.store.kind() {
            CollectorKind::Block => CollectKind::Minor,
            CollectorKind::Semispace => CollectKind::Major,
        };
        self.collect_kind(kind)
    }

    fn collect_kind(&mut self, kind: CollectKind) -> GcOutcome {
        let started = Instant::now();
        let charge_start = self.charge_clock.as_ref().map(|clock| clock());
        // Open the pause span before any work so the cycle's MEE and
        // paging charges (billed through the observer below) land
        // inside it.
        let gc_span = self.trace.as_ref().and_then(|sink| {
            sink.tracer.start(
                sink.lane,
                "gc",
                telemetry::trace::current(),
                (sink.model_clock)(),
                || match kind {
                    CollectKind::Minor => "gc:minor".to_owned(),
                    CollectKind::Major => "gc:collect".to_owned(),
                },
            )
        });
        let result = {
            let mut cx = GcCx {
                slots: &mut self.slots,
                free_slots: &mut self.free_slots,
                roots: &self.roots,
            };
            self.store.collect(kind, &mut cx)
        };
        let mut outcome = result.outcome;
        outcome.minor = kind == CollectKind::Minor;
        // Clear weak references whose referent died.
        for weak in &mut self.weaks {
            if let Some(id) = weak.target {
                let slot = &self.slots[id.index as usize];
                if slot.gen != id.gen || slot.target.is_none() {
                    weak.target = None;
                    outcome.weaks_cleared += 1;
                }
            }
        }
        self.live_bytes -= outcome.bytes_freed;
        if kind == CollectKind::Major {
            self.alloc_since_gc = 0;
        }
        self.stats.collections += 1;
        match kind {
            CollectKind::Minor => self.stats.minor_collections += 1,
            CollectKind::Major => self.stats.major_collections += 1,
        }
        self.stats.objects_freed += outcome.reclaimed as u64;
        self.stats.bytes_copied += outcome.bytes_copied;
        self.stats.bytes_freed += outcome.bytes_freed;
        let pause_ns = started.elapsed().as_nanos() as u64;
        self.stats.gc_real_ns += pause_ns;
        if let Some(obs) = &self.observer {
            match self.store.kind() {
                CollectorKind::Semispace => {
                    obs.on_gc_copy(outcome.bytes_copied);
                    obs.on_free(outcome.bytes_freed);
                }
                CollectorKind::Block => {
                    obs.on_gc_mark(result.marked_objects);
                    obs.on_gc_blocks_touched(result.blocks_touched, self.config.block_bytes);
                    if result.committed_bytes > 0 {
                        obs.on_block_commit(result.committed_bytes);
                    }
                    obs.on_gc_copy(outcome.bytes_copied);
                    if result.released_bytes > 0 {
                        obs.on_block_release(result.released_bytes);
                    }
                }
            }
        }
        if let Some(rec) = &self.recorder {
            rec.incr(telemetry::Counter::GcCollections);
            rec.incr(match kind {
                CollectKind::Minor => telemetry::Counter::GcMinorCollections,
                CollectKind::Major => telemetry::Counter::GcMajorCollections,
            });
            rec.add(telemetry::Counter::GcBytesCopied, outcome.bytes_copied);
            rec.add(telemetry::Counter::GcBytesFreed, outcome.bytes_freed);
            rec.record(telemetry::Hist::GcPauseNs, pause_ns);
            rec.record(
                match kind {
                    CollectKind::Minor => telemetry::Hist::GcMinorPauseNs,
                    CollectKind::Major => telemetry::Hist::GcMajorPauseNs,
                },
                pause_ns,
            );
            // Deterministic model-time pause: charged-cost delta across
            // the cycle, read after observer charges have landed.
            if let (Some(clock), Some(start)) = (&self.charge_clock, charge_start) {
                rec.record(telemetry::Hist::GcPauseModelNs, clock().saturating_sub(start));
            }
            // Post-collection live level: the flight recorder's
            // per-window heap residency sample.
            rec.gauge_set(telemetry::Gauge::HeapLiveBytes, self.live_bytes);
            if let Some(bs) = self.store.block_stats() {
                rec.gauge_set(telemetry::Gauge::GcBlocksLive, bs.live_blocks);
                rec.gauge_set(telemetry::Gauge::GcBlocksFree, bs.free_blocks);
            }
        }
        if let (Some(sink), Some(span)) = (&self.trace, gc_span) {
            sink.tracer.finish(span, (sink.model_clock)());
        }
        outcome
    }

    /// Iterates over all live objects as `(id, class, fields)`.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, ClassId, &[Value])> + '_ {
        let slots = &self.slots;
        self.store.iter_entries().map(move |e| {
            (ObjId { index: e.slot, gen: slots[e.slot as usize].gen }, e.class, e.fields.as_slice())
        })
    }

    /// Objects currently registered as roots.
    pub fn root_ids(&self) -> Vec<ObjId> {
        self.roots
            .keys()
            .map(|&slot_idx| ObjId { index: slot_idx, gen: self.slots[slot_idx as usize].gen })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn heap() -> Heap {
        Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
    }

    #[test]
    fn alloc_and_read_fields() {
        let mut h = heap();
        let id = h.alloc(ClassId(3), vec![Value::Int(7), Value::from("x")]).unwrap();
        assert_eq!(h.class_of(id), Some(ClassId(3)));
        assert_eq!(h.field(id, 0), Some(&Value::Int(7)));
        assert_eq!(h.field(id, 1).unwrap().as_str(), Some("x"));
        assert_eq!(h.live_objects(), 1);
    }

    #[test]
    fn set_field_updates_size_accounting() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        let before = h.live_bytes();
        assert!(h.set_field(id, 0, Value::Bytes(vec![0; 100])));
        assert_eq!(h.live_bytes(), before + 100);
        assert!(!h.set_field(id, 5, Value::Unit), "out of range");
    }

    #[test]
    fn unrooted_objects_are_reclaimed() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        let out = h.collect();
        assert_eq!(out.reclaimed, 1);
        assert!(!h.is_live(id));
        assert_eq!(h.live_objects(), 0);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn recorder_sees_alloc_and_gc_activity() {
        use telemetry::{Counter, Gauge, Hist, Recorder};
        let rec = Recorder::new();
        let mut h = heap();
        h.set_recorder(rec.clone());
        let keep = h.alloc(ClassId(0), vec![Value::Int(1)]).unwrap();
        h.add_root(keep);
        h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 64])]).unwrap();
        let live_before_gc = h.live_bytes();
        let out = h.collect();
        assert_eq!(rec.counter(Counter::HeapAllocObjects), 2);
        assert_eq!(rec.counter(Counter::HeapAllocBytes), h.stats().bytes_allocated);
        assert_eq!(rec.gauge(Gauge::HeapLiveBytesPeak), live_before_gc);
        assert_eq!(rec.counter(Counter::GcCollections), 1);
        assert_eq!(rec.counter(Counter::GcMajorCollections), 1);
        assert_eq!(rec.counter(Counter::GcMinorCollections), 0);
        assert_eq!(rec.counter(Counter::GcBytesFreed), out.bytes_freed);
        assert_eq!(rec.counter(Counter::GcBytesCopied), out.bytes_copied);
        assert_eq!(rec.snapshot().hist(Hist::GcPauseNs).count, 1);
        assert_eq!(rec.snapshot().hist(Hist::GcMajorPauseNs).count, 1);
    }

    #[test]
    fn rooted_objects_survive_and_handles_stay_valid() {
        let mut h = heap();
        let id = h.alloc(ClassId(9), vec![Value::Int(1)]).unwrap();
        h.add_root(id);
        for _ in 0..3 {
            let out = h.collect();
            assert_eq!(out.survivors, 1);
        }
        assert_eq!(h.field(id, 0), Some(&Value::Int(1)));
    }

    #[test]
    fn reachability_is_transitive() {
        let mut h = heap();
        let leaf = h.alloc(ClassId(0), vec![Value::Int(42)]).unwrap();
        let mid = h.alloc(ClassId(0), vec![Value::Ref(leaf)]).unwrap();
        let root = h.alloc(ClassId(0), vec![Value::List(vec![Value::Ref(mid)])]).unwrap();
        h.add_root(root);
        let out = h.collect();
        assert_eq!(out.survivors, 3);
        assert!(h.is_live(leaf) && h.is_live(mid) && h.is_live(root));
    }

    #[test]
    fn cycles_are_collected_when_unrooted() {
        let mut h = heap();
        let a = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        let b = h.alloc(ClassId(0), vec![Value::Ref(a)]).unwrap();
        h.set_field(a, 0, Value::Ref(b));
        let out = h.collect();
        assert_eq!(out.reclaimed, 2);
    }

    #[test]
    fn stale_handles_do_not_resurrect_slots() {
        let mut h = heap();
        let dead = h.alloc(ClassId(0), vec![]).unwrap();
        h.collect();
        // Slot is reused by a fresh allocation.
        let fresh = h.alloc(ClassId(1), vec![]).unwrap();
        assert_eq!(dead.index(), fresh.index(), "slot reused");
        assert!(!h.is_live(dead));
        assert!(h.is_live(fresh));
        assert_eq!(h.class_of(dead), None);
    }

    #[test]
    fn weak_refs_clear_exactly_on_death() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        h.add_root(id);
        let w = h.new_weak(id);
        h.collect();
        assert_eq!(h.weak_get(w), Some(id), "weak survives while rooted");
        h.remove_root(id);
        let out = h.collect();
        assert_eq!(out.weaks_cleared, 1);
        assert_eq!(h.weak_get(w), None);
    }

    #[test]
    fn weak_refs_do_not_keep_alive() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        let w = h.new_weak(id);
        h.collect();
        assert_eq!(h.weak_get(w), None);
        assert!(!h.is_live(id));
    }

    #[test]
    fn auto_gc_triggers_on_threshold() {
        let mut h = Heap::new(HeapConfig { gc_threshold_bytes: 1024, ..HeapConfig::default() });
        for _ in 0..200 {
            h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 64])]).unwrap();
        }
        assert!(h.stats().collections > 0, "automatic GC ran");
        assert!(h.live_objects() < 200, "garbage was reclaimed");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut h = Heap::new(HeapConfig {
            gc_threshold_bytes: u64::MAX,
            max_heap_bytes: 4096,
            ..HeapConfig::default()
        });
        let big = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 2048])]).unwrap();
        h.add_root(big);
        let err = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 4096])]).unwrap_err();
        assert!(err.requested > 4096);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn oom_recovers_by_collecting_garbage() {
        let mut h = Heap::new(HeapConfig {
            gc_threshold_bytes: u64::MAX,
            max_heap_bytes: 8192,
            ..HeapConfig::default()
        });
        for _ in 0..3 {
            h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 2000])]).unwrap();
        }
        // Garbage fills the heap; a forced GC must rescue this alloc.
        let id = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 4000])]).unwrap();
        assert!(h.is_live(id));
    }

    #[test]
    fn observer_sees_alloc_copy_free() {
        #[derive(Default)]
        struct Counter {
            alloc: AtomicU64,
            copied: AtomicU64,
            freed: AtomicU64,
        }
        impl HeapObserver for Counter {
            fn on_alloc(&self, b: u64) {
                self.alloc.fetch_add(b, Ordering::Relaxed);
            }
            fn on_gc_copy(&self, b: u64) {
                self.copied.fetch_add(b, Ordering::Relaxed);
            }
            fn on_free(&self, b: u64) {
                self.freed.fetch_add(b, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Counter::default());
        let mut h = heap();
        h.set_observer(counter.clone());
        let live = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 100])]).unwrap();
        h.add_root(live);
        h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 50])]).unwrap();
        h.collect();
        assert!(counter.alloc.load(Ordering::Relaxed) >= 150);
        assert!(counter.copied.load(Ordering::Relaxed) >= 100);
        assert!(counter.freed.load(Ordering::Relaxed) >= 50);
    }

    #[test]
    fn iter_yields_live_objects_with_valid_ids() {
        let mut h = heap();
        let a = h.alloc(ClassId(1), vec![Value::Int(1)]).unwrap();
        let b = h.alloc(ClassId(2), vec![Value::Int(2)]).unwrap();
        h.add_root(a);
        h.add_root(b);
        h.collect();
        let ids: Vec<ObjId> = h.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids.len(), 2);
        for id in ids {
            assert!(h.is_live(id));
        }
    }

    #[test]
    fn root_counting_is_balanced() {
        let mut h = heap();
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        h.add_root(id);
        h.add_root(id);
        h.remove_root(id);
        h.collect();
        assert!(h.is_live(id), "still one root held");
        h.remove_root(id);
        h.collect();
        assert!(!h.is_live(id));
    }

    #[test]
    fn collector_kind_parses_selector_strings() {
        assert_eq!(CollectorKind::parse("semispace"), Some(CollectorKind::Semispace));
        assert_eq!(CollectorKind::parse("Block"), Some(CollectorKind::Block));
        assert_eq!(CollectorKind::parse(" block "), Some(CollectorKind::Block));
        assert_eq!(CollectorKind::parse("shenandoah"), None);
        assert_eq!(CollectorKind::parse(""), None);
        assert_eq!(CollectorKind::Semispace.name(), "semispace");
        assert_eq!(CollectorKind::Block.name(), "block");
        assert_eq!(CollectorKind::parse(CollectorKind::Block.name()), Some(CollectorKind::Block));
    }

    #[test]
    fn semispace_has_no_block_stats_and_promotes_minor() {
        let mut h = heap();
        assert_eq!(h.collector_kind(), CollectorKind::Semispace);
        assert!(h.block_stats().is_none());
        let id = h.alloc(ClassId(0), vec![]).unwrap();
        let out = h.collect_minor();
        assert!(!out.minor, "semispace promotes minor to major");
        assert_eq!(h.stats().major_collections, 1);
        assert_eq!(h.stats().minor_collections, 0);
        assert!(!h.is_live(id));
    }

    #[test]
    fn charge_clock_records_model_pause() {
        use telemetry::{Hist, Recorder};
        let rec = Recorder::new();
        let mut h = heap();
        h.set_recorder(rec.clone());
        // A fixed clock yields zero-width pauses but still one sample
        // per collection.
        h.set_charge_clock(Arc::new(|| 7));
        h.collect();
        h.collect();
        let snap = rec.snapshot();
        assert_eq!(snap.hist(Hist::GcPauseModelNs).count, 2);
        assert_eq!(snap.hist(Hist::GcPauseModelNs).sum, 0, "fixed clock → zero-width pauses");
    }
}
