//! Segmented block/bucket heap with generational collection.
//!
//! The block collector replaces the semispace's single arena with
//! fixed-size blocks (`HeapConfig::block_bytes`) segregated into
//! size-class buckets. New objects are bump-placed into *nursery*
//! blocks; a **minor** collection evacuates live nursery objects into
//! *mature* survivor blocks, and a **major** collection marks the whole
//! reachable graph and sweeps mature blocks in place. A coarse
//! remembered set — one dirty bit per mature block, fed by the handle
//! table's field writes — keeps minors sound without scanning the whole
//! mature space.
//!
//! Because every reference is a generational handle resolved through
//! the owning [`Heap`](crate::heap::Heap)'s slot table, evacuation only
//! retargets slots; stored `Value::Ref`s are never rewritten. That is
//! what lets the differential tests hold this collector and the
//! semispace to *observational* equality.
//!
//! EPC accounting is per block: committing a fresh block grows enclave
//! residency by one block, collections report the number of distinct
//! blocks they touched, and empty blocks beyond a small cache are
//! released back after majors (see `docs/GC.md` for the charging
//! equations).

use crate::heap::{
    AllocEffect, BlockStats, CollectKind, CollectResult, Collector, CollectorKind, Entry, GcCx,
    GcOutcome, HeapConfig,
};
use crate::value::{ObjId, Value};

/// Bits of a storage reference reserved for the entry index; the rest
/// address the block. 15 bits caps a block at 32768 entries and the
/// heap at 131072 blocks.
const ENTRY_BITS: u32 = 15;
const MAX_BLOCK_ENTRIES: usize = 1 << ENTRY_BITS;
const MAX_BLOCKS: usize = 1 << (32 - ENTRY_BITS);

/// Upper byte bounds of the small size-class buckets; anything larger
/// (up to a full block) shares the top bucket.
const BUCKET_BOUNDS: [u64; 3] = [64, 256, 1024];
const NUM_BUCKETS: usize = BUCKET_BOUNDS.len() + 1;
/// Bucket tag for dedicated large-object blocks (never on free lists).
const LARGE_BUCKET: usize = usize::MAX;

/// Committed-but-empty blocks kept for reuse after a major collection.
const MIN_FREE_CACHE: usize = 4;

fn pack(block: u32, entry: u32) -> u32 {
    (block << ENTRY_BITS) | entry
}

fn unpack(store_ref: u32) -> (usize, usize) {
    ((store_ref >> ENTRY_BITS) as usize, (store_ref & (MAX_BLOCK_ENTRIES as u32 - 1)) as usize)
}

fn bucket_of(size: u64) -> usize {
    BUCKET_BOUNDS.iter().position(|&bound| size <= bound).unwrap_or(NUM_BUCKETS - 1)
}

fn touch(touched: &mut Vec<bool>, id: usize) {
    if id >= touched.len() {
        touched.resize(id + 1, false);
    }
    touched[id] = true;
}

fn fields_contain_ref(fields: &[Value]) -> bool {
    let mut found = false;
    for field in fields {
        field.for_each_ref(&mut |_| found = true);
    }
    found
}

fn children_of(entry: &Entry) -> Vec<ObjId> {
    let mut children = Vec::new();
    for field in &entry.fields {
        field.for_each_ref(&mut |id| children.push(id));
    }
    children
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gen {
    Nursery,
    Mature,
}

#[derive(Debug)]
struct Block {
    gen: Gen,
    /// Size-class bucket, or [`LARGE_BUCKET`] for a dedicated block.
    bucket: usize,
    /// Committed bytes (one `block_bytes` for standard blocks; the
    /// rounded-up object span for large blocks).
    capacity: u64,
    /// Object bytes currently placed here.
    used: u64,
    /// Live entries currently placed here.
    live: usize,
    entries: Vec<Option<Entry>>,
    /// Recycled entry indices (mature sweep holes).
    holes: Vec<u32>,
    /// Remembered-set bit: a ref may have been written into this block
    /// since the last collection (mature blocks only).
    dirty: bool,
    /// On the free cache: committed, empty, not allocatable until
    /// re-acquired.
    free: bool,
}

impl Block {
    fn standard(gen: Gen, bucket: usize, capacity: u64) -> Self {
        Block {
            gen,
            bucket,
            capacity,
            used: 0,
            live: 0,
            entries: Vec::new(),
            holes: Vec::new(),
            dirty: false,
            free: false,
        }
    }

    fn fits(&self, size: u64) -> bool {
        self.used + size <= self.capacity
            && (!self.holes.is_empty() || self.entries.len() < MAX_BLOCK_ENTRIES)
    }

    fn has_room(&self) -> bool {
        self.used < self.capacity
            && (!self.holes.is_empty() || self.entries.len() < MAX_BLOCK_ENTRIES)
    }

    fn place(&mut self, entry: Entry) -> u32 {
        self.used += entry.size;
        self.live += 1;
        match self.holes.pop() {
            Some(idx) => {
                self.entries[idx as usize] = Some(entry);
                idx
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u32
            }
        }
    }

    /// Empties the block and parks it on the free cache.
    fn reset(&mut self) {
        self.entries.clear();
        self.holes.clear();
        self.used = 0;
        self.live = 0;
        self.dirty = false;
        self.free = true;
    }
}

/// Mutable tracing state shared by both collection kinds: per-block
/// mark bitmaps, the BFS queue, the distinct-blocks-touched set and
/// the marked-object counter.
struct MarkState {
    marks: Vec<Vec<bool>>,
    queue: Vec<u32>,
    touched: Vec<bool>,
    marked: u64,
}

impl MarkState {
    fn mark(&mut self, store_ref: u32) {
        let (bid, eid) = unpack(store_ref);
        if !self.marks[bid][eid] {
            self.marks[bid][eid] = true;
            self.marked += 1;
            touch(&mut self.touched, bid);
            self.queue.push(store_ref);
        }
    }
}

/// The segmented generational collector behind
/// [`CollectorKind::Block`].
#[derive(Debug)]
pub(crate) struct BlockHeap {
    block_bytes: u64,
    blocks: Vec<Option<Block>>,
    /// Released block ids available for fresh commits.
    spare_ids: Vec<u32>,
    /// Committed empty standard blocks cached for reuse.
    free_blocks: Vec<u32>,
    open_nursery: [Option<u32>; NUM_BUCKETS],
    open_mature: [Option<u32>; NUM_BUCKETS],
    /// Per bucket: mature blocks with sweep holes, rebuilt each major.
    avail_mature: Vec<Vec<u32>>,
    /// Blocks currently assigned to the nursery, in acquisition order.
    nursery_ids: Vec<u32>,
    /// Object bytes allocated in the nursery since the last collection.
    nursery_used: u64,
    /// Bytes promoted into the mature generation (evacuated survivors
    /// plus direct large allocations) since the last major. Majors are
    /// scheduled on mature *growth*, not raw allocation volume — young
    /// garbage that dies in minors never hastens a full collection.
    promoted_since_major: u64,
    len: usize,
}

impl BlockHeap {
    pub(crate) fn new(block_bytes: u64) -> Self {
        BlockHeap {
            block_bytes,
            blocks: Vec::new(),
            spare_ids: Vec::new(),
            free_blocks: Vec::new(),
            open_nursery: [None; NUM_BUCKETS],
            open_mature: [None; NUM_BUCKETS],
            avail_mature: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            nursery_ids: Vec::new(),
            nursery_used: 0,
            promoted_since_major: 0,
            len: 0,
        }
    }

    fn block(&self, bid: usize) -> &Block {
        self.blocks[bid].as_ref().expect("live block")
    }

    fn block_mut(&mut self, bid: usize) -> &mut Block {
        self.blocks[bid].as_mut().expect("live block")
    }

    fn new_block_slot(&mut self, block: Block) -> u32 {
        match self.spare_ids.pop() {
            Some(id) => {
                self.blocks[id as usize] = Some(block);
                id
            }
            None => {
                assert!(self.blocks.len() < MAX_BLOCKS, "block heap: block id space exhausted");
                self.blocks.push(Some(block));
                (self.blocks.len() - 1) as u32
            }
        }
    }

    /// Hands out a standard block: a cached free block when available
    /// (no residency change), otherwise a fresh commit of
    /// `block_bytes`. Returns `(id, committed_bytes)`.
    fn acquire_block(&mut self, gen: Gen, bucket: usize) -> (u32, u64) {
        match self.free_blocks.pop() {
            Some(id) => {
                let block = self.blocks[id as usize].as_mut().expect("cached block committed");
                debug_assert!(block.free && block.used == 0);
                block.gen = gen;
                block.bucket = bucket;
                block.free = false;
                block.dirty = false;
                (id, 0)
            }
            None => {
                let id = self.new_block_slot(Block::standard(gen, bucket, self.block_bytes));
                (id, self.block_bytes)
            }
        }
    }

    /// Commits a dedicated block span for an object larger than one
    /// block. Goes straight to the mature generation; the dirty bit is
    /// set conservatively when the object carries refs so minors still
    /// see its out-edges.
    fn insert_large(&mut self, entry: Entry) -> (u32, u64) {
        self.promoted_since_major += entry.size;
        let capacity = entry.size.div_ceil(self.block_bytes.max(1)).max(1) * self.block_bytes;
        let mut block = Block::standard(Gen::Mature, LARGE_BUCKET, capacity);
        block.dirty = fields_contain_ref(&entry.fields);
        let id = self.new_block_slot(block);
        let eid = self.block_mut(id as usize).place(entry);
        (pack(id, eid), capacity)
    }

    /// Places an evacuated survivor into the mature space: the open
    /// survivor block per bucket, then swept blocks with holes, then
    /// the free cache, then a fresh commit. Returns the new storage
    /// reference and any fresh committed bytes.
    fn place_mature(&mut self, entry: Entry, touched: &mut Vec<bool>) -> (u32, u64) {
        let size = entry.size;
        if size > self.block_bytes {
            // The object grew past a block via set_field while in the
            // nursery; promote it to a dedicated span.
            let (store_ref, committed) = self.insert_large(entry);
            touch(touched, unpack(store_ref).0);
            return (store_ref, committed);
        }
        self.promoted_since_major += size;
        let bucket = bucket_of(size);
        let mut committed = 0u64;
        let open_ok = self.open_mature[bucket].is_some_and(|id| {
            let b = self.block(id as usize);
            !b.free && b.gen == Gen::Mature && b.bucket == bucket && b.fits(size)
        });
        let id = if open_ok {
            self.open_mature[bucket].expect("checked above")
        } else {
            let mut picked = None;
            while let Some(cand) = self.avail_mature[bucket].pop() {
                let b = self.block(cand as usize);
                if !b.free && b.gen == Gen::Mature && b.bucket == bucket && b.fits(size) {
                    picked = Some(cand);
                    break;
                }
            }
            let id = match picked {
                Some(id) => id,
                None => {
                    let (id, fresh) = self.acquire_block(Gen::Mature, bucket);
                    committed = fresh;
                    id
                }
            };
            self.open_mature[bucket] = Some(id);
            id
        };
        touch(touched, id as usize);
        let eid = self.block_mut(id as usize).place(entry);
        (pack(id, eid), committed)
    }

    /// Scans one object's fields and marks any unmarked *nursery*
    /// referents (minor-collection tracing step).
    fn scan_for_nursery(&self, store_ref: u32, cx: &GcCx<'_>, state: &mut MarkState) {
        let (bid, eid) = unpack(store_ref);
        let entry = self.block(bid).entries[eid].as_ref().expect("scanned entry live");
        for child in children_of(entry) {
            if let Some(child_ref) = cx.resolve(child) {
                let (cb, _) = unpack(child_ref);
                if self.block(cb).gen == Gen::Nursery {
                    state.mark(child_ref);
                }
            }
        }
    }

    /// Evacuates marked nursery entries into the mature space and kills
    /// the rest; every nursery block is then reset onto the free cache
    /// (it stays committed, so evacuation never shrinks residency).
    fn evacuate_nursery(
        &mut self,
        marks: &[Vec<bool>],
        cx: &mut GcCx<'_>,
        touched: &mut Vec<bool>,
        outcome: &mut GcOutcome,
        committed: &mut u64,
    ) {
        let nursery = std::mem::take(&mut self.nursery_ids);
        for &bid in &nursery {
            touch(touched, bid as usize);
            let mut block = self.blocks[bid as usize].take().expect("nursery block present");
            for (eid, marked) in marks[bid as usize].iter().enumerate() {
                let Some(entry) = block.entries[eid].take() else { continue };
                if *marked {
                    outcome.bytes_copied += entry.size;
                    outcome.survivors += 1;
                    let slot = entry.slot;
                    let (new_ref, fresh) = self.place_mature(entry, touched);
                    *committed += fresh;
                    cx.retarget(slot, new_ref);
                } else {
                    outcome.bytes_freed += entry.size;
                    outcome.reclaimed += 1;
                    self.len -= 1;
                    cx.kill(entry.slot);
                }
            }
            block.reset();
            self.blocks[bid as usize] = Some(block);
            self.free_blocks.push(bid);
        }
        self.open_nursery = [None; NUM_BUCKETS];
        self.nursery_used = 0;
    }

    fn fresh_marks(&self) -> Vec<Vec<bool>> {
        self.blocks
            .iter()
            .map(|b| match b {
                Some(block) => vec![false; block.entries.len()],
                None => Vec::new(),
            })
            .collect()
    }

    /// Minor cycle: trace nursery-reachable objects from roots plus the
    /// dirty-block remembered set, evacuate survivors, recycle nursery
    /// blocks. Mature objects are never reclaimed here.
    fn collect_minor(&mut self, cx: &mut GcCx<'_>) -> CollectResult {
        let mut state = MarkState {
            marks: self.fresh_marks(),
            queue: Vec::new(),
            touched: vec![false; self.blocks.len()],
            marked: 0,
        };
        // Seed from roots that resolve into the nursery. Clean mature
        // roots are deliberately *not* scanned (or charged as touched):
        // a mature object can only acquire a nursery out-edge through a
        // post-promotion field write or a ref-carrying large allocation,
        // and both paths set the block's dirty bit — so the remembered
        // set below already covers every mature→nursery edge.
        let root_refs: Vec<u32> =
            cx.root_slots().filter_map(|slot| cx.target_of_slot(slot)).collect();
        for store_ref in root_refs {
            let (bid, _) = unpack(store_ref);
            if self.block(bid).gen == Gen::Nursery {
                touch(&mut state.touched, bid);
                state.mark(store_ref);
            }
        }
        // Seed from the remembered set: every entry in a dirty mature
        // block may have had a nursery ref written into it.
        let dirty: Vec<u32> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.as_ref().is_some_and(|b| b.gen == Gen::Mature && b.dirty && !b.free))
            .map(|(bid, _)| bid as u32)
            .collect();
        for bid in dirty {
            touch(&mut state.touched, bid as usize);
            let refs: Vec<u32> = self
                .block(bid as usize)
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.is_some())
                .map(|(eid, _)| pack(bid, eid as u32))
                .collect();
            for store_ref in refs {
                self.scan_for_nursery(store_ref, cx, &mut state);
            }
        }
        // Transitive closure within the nursery.
        while let Some(store_ref) = state.queue.pop() {
            self.scan_for_nursery(store_ref, cx, &mut state);
        }
        let mut outcome = GcOutcome::default();
        let mut committed = 0u64;
        let MarkState { marks, mut touched, marked, .. } = state;
        self.evacuate_nursery(&marks, cx, &mut touched, &mut outcome, &mut committed);
        // The nursery is empty: no mature→nursery edge can exist until
        // the mutator writes one (which re-dirties), so the remembered
        // set resets wholesale.
        for block in self.blocks.iter_mut().flatten() {
            block.dirty = false;
        }
        let blocks_touched = touched.iter().filter(|t| **t).count() as u64;
        CollectResult {
            outcome,
            marked_objects: marked,
            blocks_touched,
            committed_bytes: committed,
            released_bytes: 0,
        }
    }

    /// Major cycle: mark the full reachable graph, sweep mature blocks
    /// in place (first, so evacuated survivors land in swept space),
    /// evacuate the nursery, then trim the free-block cache — surplus
    /// committed-but-empty blocks are released back.
    fn collect_major(&mut self, cx: &mut GcCx<'_>) -> CollectResult {
        let mut state = MarkState {
            marks: self.fresh_marks(),
            queue: Vec::new(),
            touched: vec![false; self.blocks.len()],
            marked: 0,
        };
        let root_refs: Vec<u32> =
            cx.root_slots().filter_map(|slot| cx.target_of_slot(slot)).collect();
        for store_ref in root_refs {
            state.mark(store_ref);
        }
        while let Some(store_ref) = state.queue.pop() {
            let (bid, eid) = unpack(store_ref);
            let entry = self.block(bid).entries[eid].as_ref().expect("marked entry live");
            for child in children_of(entry) {
                if let Some(child_ref) = cx.resolve(child) {
                    state.mark(child_ref);
                }
            }
        }
        let mut outcome = GcOutcome::default();
        let mut committed = 0u64;
        let mut released = 0u64;
        let MarkState { marks, mut touched, marked, .. } = state;
        // Sweep the mature space.
        for (bid, block_marks) in marks.iter().enumerate() {
            let is_mature =
                self.blocks[bid].as_ref().is_some_and(|b| b.gen == Gen::Mature && !b.free);
            if !is_mature {
                continue;
            }
            touch(&mut touched, bid);
            let mut block = self.blocks[bid].take().expect("mature block present");
            for (eid, marked) in block_marks.iter().enumerate() {
                if block.entries[eid].is_none() {
                    continue;
                }
                if *marked {
                    outcome.survivors += 1;
                    continue;
                }
                let entry = block.entries[eid].take().expect("checked above");
                block.used -= entry.size;
                block.live -= 1;
                block.holes.push(eid as u32);
                outcome.bytes_freed += entry.size;
                outcome.reclaimed += 1;
                self.len -= 1;
                cx.kill(entry.slot);
            }
            if block.live == 0 {
                if block.bucket == LARGE_BUCKET {
                    // Dedicated spans decommit as soon as they die.
                    released += block.capacity;
                    self.blocks[bid] = None;
                    self.spare_ids.push(bid as u32);
                } else {
                    block.reset();
                    self.blocks[bid] = Some(block);
                    self.free_blocks.push(bid as u32);
                }
            } else {
                self.blocks[bid] = Some(block);
            }
        }
        // Rebuild the allocation lists from swept occupancy.
        self.open_mature = [None; NUM_BUCKETS];
        for list in &mut self.avail_mature {
            list.clear();
        }
        for bid in 0..self.blocks.len() {
            let Some(block) = self.blocks[bid].as_ref() else { continue };
            if block.gen == Gen::Mature
                && !block.free
                && block.bucket < NUM_BUCKETS
                && block.has_room()
            {
                self.avail_mature[block.bucket].push(bid as u32);
            }
        }
        self.evacuate_nursery(&marks, cx, &mut touched, &mut outcome, &mut committed);
        // Trim the free cache: keep at most max(live blocks, a small
        // floor) committed empties; release the surplus.
        let live_blocks = self.blocks.iter().flatten().filter(|b| !b.free && b.live > 0).count();
        let keep = live_blocks.max(MIN_FREE_CACHE);
        while self.free_blocks.len() > keep {
            let bid = self.free_blocks.pop().expect("len checked");
            released += self.block(bid as usize).capacity;
            self.blocks[bid as usize] = None;
            self.spare_ids.push(bid);
        }
        for block in self.blocks.iter_mut().flatten() {
            block.dirty = false;
        }
        self.promoted_since_major = 0;
        let blocks_touched = touched.iter().filter(|t| **t).count() as u64;
        CollectResult {
            outcome,
            marked_objects: marked,
            blocks_touched,
            committed_bytes: committed,
            released_bytes: released,
        }
    }
}

impl Collector for BlockHeap {
    fn kind(&self) -> CollectorKind {
        CollectorKind::Block
    }

    fn insert(&mut self, entry: Entry) -> AllocEffect {
        let size = entry.size;
        if size > self.block_bytes {
            let (store_ref, committed) = self.insert_large(entry);
            self.len += 1;
            return AllocEffect { store_ref, committed_bytes: committed };
        }
        let bucket = bucket_of(size);
        let mut committed = 0u64;
        let open_ok = self.open_nursery[bucket].is_some_and(|id| {
            let b = self.block(id as usize);
            !b.free && b.gen == Gen::Nursery && b.fits(size)
        });
        let id = if open_ok {
            self.open_nursery[bucket].expect("checked above")
        } else {
            let (id, fresh) = self.acquire_block(Gen::Nursery, bucket);
            committed = fresh;
            self.open_nursery[bucket] = Some(id);
            self.nursery_ids.push(id);
            id
        };
        let eid = self.block_mut(id as usize).place(entry);
        self.nursery_used += size;
        self.len += 1;
        AllocEffect { store_ref: pack(id, eid), committed_bytes: committed }
    }

    fn entry(&self, store_ref: u32) -> &Entry {
        let (bid, eid) = unpack(store_ref);
        self.block(bid).entries[eid].as_ref().expect("live entry")
    }

    fn entry_mut(&mut self, store_ref: u32) -> &mut Entry {
        let (bid, eid) = unpack(store_ref);
        self.block_mut(bid).entries[eid].as_mut().expect("live entry")
    }

    fn len(&self) -> usize {
        self.len
    }

    fn iter_entries(&self) -> Box<dyn Iterator<Item = &Entry> + '_> {
        Box::new(
            self.blocks
                .iter()
                .filter_map(|b| b.as_ref())
                .flat_map(|b| b.entries.iter().filter_map(|e| e.as_ref())),
        )
    }

    fn note_field_write(&mut self, store_ref: u32, old_size: u64, new_size: u64, wrote_ref: bool) {
        let (bid, _) = unpack(store_ref);
        let nursery = {
            let block = self.block_mut(bid);
            block.used = block.used + new_size - old_size;
            if block.gen == Gen::Mature && wrote_ref {
                // Remembered set: this block may now hold the only
                // reference into the nursery.
                block.dirty = true;
            }
            block.gen == Gen::Nursery
        };
        if nursery {
            self.nursery_used = self.nursery_used + new_size - old_size;
        }
    }

    fn due(&self, _alloc_since_gc: u64, config: &HeapConfig) -> Option<CollectKind> {
        // Generational policy: majors are scheduled on mature *growth*
        // (promoted bytes), not raw allocation volume like the
        // semispace — young garbage reclaimed by minors never forces a
        // full collection.
        if self.promoted_since_major >= config.gc_threshold_bytes {
            return Some(CollectKind::Major);
        }
        if self.nursery_used >= config.nursery_bytes {
            return Some(CollectKind::Minor);
        }
        None
    }

    fn collect(&mut self, kind: CollectKind, cx: &mut GcCx<'_>) -> CollectResult {
        match kind {
            CollectKind::Minor => self.collect_minor(cx),
            CollectKind::Major => self.collect_major(cx),
        }
    }

    fn block_stats(&self) -> Option<BlockStats> {
        let unit = self.block_bytes.max(1);
        let mut committed = 0u64;
        let mut live = 0u64;
        let mut nursery = 0u64;
        for block in self.blocks.iter().flatten() {
            let span = block.capacity.div_ceil(unit);
            committed += span;
            if !block.free && block.live > 0 {
                live += span;
            }
            if !block.free && block.gen == Gen::Nursery {
                nursery += span;
            }
        }
        Some(BlockStats {
            block_bytes: self.block_bytes,
            committed_blocks: committed,
            live_blocks: live,
            free_blocks: self.free_blocks.len() as u64,
            nursery_blocks: nursery,
            nursery_used_bytes: self.nursery_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{CollectorKind, Heap, HeapConfig};
    use crate::value::{ClassId, Value};

    fn block_config() -> HeapConfig {
        HeapConfig {
            gc_threshold_bytes: u64::MAX,
            collector: CollectorKind::Block,
            block_bytes: 4096,
            nursery_bytes: u64::MAX,
            ..HeapConfig::default()
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (b, e) in [(0u32, 0u32), (1, 7), (131071, 32767), (42, 1)] {
            let r = pack(b, e);
            assert_eq!(unpack(r), (b as usize, e as usize));
        }
    }

    #[test]
    fn bucket_bounds_partition_sizes() {
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(64), 0);
        assert_eq!(bucket_of(65), 1);
        assert_eq!(bucket_of(256), 1);
        assert_eq!(bucket_of(1024), 2);
        assert_eq!(bucket_of(1025), 3);
        assert_eq!(bucket_of(4096), 3);
    }

    #[test]
    fn basic_lifecycle_matches_facade_contract() {
        let mut h = Heap::new(block_config());
        assert_eq!(h.collector_kind(), CollectorKind::Block);
        let keep = h.alloc(ClassId(1), vec![Value::Int(5), Value::from("hello")]).unwrap();
        h.add_root(keep);
        let dead = h.alloc(ClassId(2), vec![Value::Bytes(vec![0; 100])]).unwrap();
        let out = h.collect();
        assert!(!out.minor);
        assert_eq!(out.survivors, 1);
        assert_eq!(out.reclaimed, 1);
        assert!(h.is_live(keep) && !h.is_live(dead));
        assert_eq!(h.field(keep, 0), Some(&Value::Int(5)));
        assert_eq!(h.field(keep, 1).unwrap().as_str(), Some("hello"));
        assert_eq!(h.live_objects(), 1);
    }

    #[test]
    fn minor_evacuates_survivors_and_recycles_nursery() {
        let mut h = Heap::new(block_config());
        let keep = h.alloc(ClassId(0), vec![Value::Int(9)]).unwrap();
        h.add_root(keep);
        for _ in 0..50 {
            h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 64])]).unwrap();
        }
        let before = h.block_stats().unwrap();
        assert!(before.nursery_blocks > 0);
        let out = h.collect_minor();
        assert!(out.minor);
        assert_eq!(out.survivors, 1);
        assert_eq!(out.reclaimed, 50);
        assert!(h.is_live(keep));
        assert_eq!(h.field(keep, 0), Some(&Value::Int(9)));
        let after = h.block_stats().unwrap();
        assert_eq!(after.nursery_blocks, 0, "nursery recycled");
        assert_eq!(after.nursery_used_bytes, 0);
        assert!(after.free_blocks > 0, "nursery blocks parked on free cache");
        assert_eq!(h.stats().minor_collections, 1);
    }

    #[test]
    fn automatic_minor_fires_on_nursery_budget() {
        let mut h = Heap::new(HeapConfig { nursery_bytes: 2048, ..block_config() });
        let keep = h.alloc(ClassId(0), vec![Value::Int(1)]).unwrap();
        h.add_root(keep);
        for _ in 0..100 {
            h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 64])]).unwrap();
        }
        let stats = h.stats();
        assert!(stats.minor_collections > 0, "nursery budget triggered minors");
        assert_eq!(stats.major_collections, 0, "threshold disabled");
        assert!(h.is_live(keep));
        assert!(h.live_objects() < 101, "nursery garbage reclaimed");
    }

    #[test]
    fn remembered_set_keeps_nursery_child_of_mature_parent() {
        let mut h = Heap::new(block_config());
        let grand = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        let parent = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        h.add_root(grand);
        h.add_root(parent);
        h.collect(); // both now mature
        h.set_field(grand, 0, Value::Ref(parent));
        h.remove_root(parent); // reachable only through the rooted grandparent
                               // Nursery child reachable only via the (unrooted, mature) parent:
                               // minors trace it solely through the dirty-block remembered set.
        let child = h.alloc(ClassId(7), vec![Value::Int(33)]).unwrap();
        assert!(h.set_field(parent, 0, Value::Ref(child)));
        let out = h.collect_minor();
        assert_eq!(out.survivors, 1, "child evacuated");
        assert!(h.is_live(child));
        assert_eq!(h.field(child, 0), Some(&Value::Int(33)));
        assert_eq!(h.class_of(child), Some(ClassId(7)));
    }

    #[test]
    fn nursery_garbage_unreferenced_by_mature_dies_in_minor() {
        let mut h = Heap::new(block_config());
        let root = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        h.add_root(root);
        h.collect();
        let dead = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 32])]).unwrap();
        let out = h.collect_minor();
        assert_eq!(out.reclaimed, 1);
        assert!(!h.is_live(dead));
        assert!(h.is_live(root), "mature root untouched by minor");
    }

    #[test]
    fn large_objects_get_dedicated_spans_that_release_on_death() {
        let mut h = Heap::new(block_config()); // 4 KiB blocks
        let big = h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 20_000])]).unwrap();
        h.add_root(big);
        let stats = h.block_stats().unwrap();
        assert!(stats.committed_blocks >= 5, "20 KB needs ≥5 4-KiB blocks");
        h.collect();
        assert!(h.is_live(big), "large object survives major");
        h.remove_root(big);
        h.collect();
        assert!(!h.is_live(big));
        let after = h.block_stats().unwrap();
        assert!(
            after.committed_blocks < stats.committed_blocks,
            "dedicated span released: {} -> {}",
            stats.committed_blocks,
            after.committed_blocks
        );
    }

    #[test]
    fn free_cache_is_trimmed_after_major() {
        let mut h = Heap::new(block_config());
        // Burn through many nursery blocks of garbage.
        for _ in 0..200 {
            h.alloc(ClassId(0), vec![Value::Bytes(vec![0; 1500])]).unwrap();
        }
        h.collect_minor(); // everything dies; blocks pile onto the free cache
        h.collect(); // major trims the cache
        let stats = h.block_stats().unwrap();
        assert!(
            stats.free_blocks <= MIN_FREE_CACHE as u64,
            "no live blocks → cache trimmed to the floor, got {}",
            stats.free_blocks
        );
        assert_eq!(stats.live_blocks, 0);
    }

    #[test]
    fn object_grown_past_block_size_survives_evacuation() {
        let mut h = Heap::new(block_config());
        let id = h.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        h.add_root(id);
        assert!(h.set_field(id, 0, Value::Bytes(vec![7; 10_000])));
        let out = h.collect_minor();
        assert_eq!(out.survivors, 1);
        assert!(h.is_live(id));
        match h.field(id, 0) {
            Some(Value::Bytes(b)) => assert_eq!(b.len(), 10_000),
            other => panic!("unexpected field {other:?}"),
        }
    }

    #[test]
    fn slot_generations_bump_across_block_recycling() {
        let mut h = Heap::new(block_config());
        let dead = h.alloc(ClassId(0), vec![]).unwrap();
        h.collect();
        let fresh = h.alloc(ClassId(1), vec![]).unwrap();
        assert_eq!(dead.index(), fresh.index(), "slot reused");
        assert!(!h.is_live(dead));
        assert!(h.is_live(fresh));
        assert_eq!(h.class_of(dead), None);
    }
}
