//! Runtime values and object references.
//!
//! The managed universe the partitioned application manipulates is built
//! from [`Value`]s: Java-ish primitives, strings, byte arrays, lists and
//! references to heap objects ([`ObjId`]). Heap references are *handles*
//! (index + generation into a handle table), so the copying collector can
//! move objects without invalidating references held by native code.

use std::fmt;

/// A generational handle to a heap object.
///
/// Handles stay valid across GC (objects are accessed through the handle
/// table), and the generation field makes use-after-free detectable: a
/// stale handle to a reclaimed slot no longer resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId {
    /// Index into the owning heap's handle table.
    pub(crate) index: u32,
    /// Generation of the slot when this handle was issued.
    pub(crate) gen: u32,
}

impl ObjId {
    /// Raw slot index (stable while the object lives).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Slot generation this handle was issued for.
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}.{}", self.index, self.gen)
    }
}

/// Identifier of a class in the application's class table.
///
/// `runtime-sim` treats classes opaquely; metadata (names, annotations,
/// methods) lives in `montsalvat-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A managed runtime value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absence of a value (`void` / `null`).
    #[default]
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer (covers Java `int`/`long`).
    Int(i64),
    /// 64-bit float (covers Java `float`/`double`).
    Float(f64),
    /// Immutable string.
    Str(String),
    /// Byte array.
    Bytes(Vec<u8>),
    /// Homogeneous-or-not list of values (covers `ArrayList`, arrays).
    List(Vec<Value>),
    /// Reference to a heap object.
    Ref(ObjId),
}

impl Value {
    /// Shallow size in bytes used for allocation/GC cost accounting
    /// (slot word plus any out-of-line payload it owns).
    pub fn shallow_size(&self) -> u64 {
        match self {
            Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Ref(_) => 8,
            Value::Str(s) => 8 + s.len() as u64,
            Value::Bytes(b) => 8 + b.len() as u64,
            Value::List(vs) => 8 + vs.iter().map(Value::shallow_size).sum::<u64>(),
        }
    }

    /// The referenced object, if this is a `Ref`.
    pub fn as_ref_id(&self) -> Option<ObjId> {
        match self {
            Value::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(vs) => Some(vs),
            _ => None,
        }
    }

    /// Visits every [`ObjId`] reachable through this value (without
    /// following heap references).
    pub fn for_each_ref(&self, f: &mut impl FnMut(ObjId)) {
        match self {
            Value::Ref(id) => f(*id),
            Value::List(vs) => {
                for v in vs {
                    v.for_each_ref(f);
                }
            }
            _ => {}
        }
    }

    /// Rewrites every embedded [`ObjId`] through `f` (used by the
    /// collector when forwarding references).
    pub(crate) fn map_refs(&mut self, f: &mut impl FnMut(ObjId) -> ObjId) {
        match self {
            Value::Ref(id) => *id = f(*id),
            Value::List(vs) => {
                for v in vs {
                    v.map_refs(f);
                }
            }
            _ => {}
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<ObjId> for Value {
    fn from(v: ObjId) -> Self {
        Value::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_size_counts_payloads() {
        assert_eq!(Value::Int(3).shallow_size(), 8);
        assert_eq!(Value::Str("abcd".into()).shallow_size(), 12);
        assert_eq!(Value::Bytes(vec![0; 100]).shallow_size(), 108);
        assert_eq!(Value::List(vec![Value::Int(1), Value::Int(2)]).shallow_size(), 24);
    }

    #[test]
    fn for_each_ref_descends_lists() {
        let a = ObjId { index: 1, gen: 0 };
        let b = ObjId { index: 2, gen: 0 };
        let v = Value::List(vec![Value::Ref(a), Value::List(vec![Value::Ref(b)]), Value::Int(0)]);
        let mut seen = Vec::new();
        v.for_each_ref(&mut |id| seen.push(id));
        assert_eq!(seen, vec![a, b]);
    }

    #[test]
    fn conversions_are_lossless() {
        assert_eq!(Value::from(42i64).as_int(), Some(42));
        assert_eq!(Value::from(2.5f64).as_float(), Some(2.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
    }

    #[test]
    fn display_of_objid_is_informative() {
        let id = ObjId { index: 7, gen: 3 };
        assert_eq!(id.to_string(), "obj#7.3");
    }
}
