//! Image-heap snapshots: build-time initialisation carried to run time.
//!
//! GraalVM native-image executes initialisation code at *build* time and
//! snapshots the resulting objects into the executable (the *image
//! heap*), which is mapped into the application heap at startup so the
//! program starts from the initialised state (§2.2). This module
//! reproduces that mechanism: [`ImageHeap::snapshot`] captures a heap's
//! live objects and roots, and [`ImageHeap::restore_into`] materialises
//! them in a fresh heap, remapping object handles.

use std::collections::HashMap;

use crate::heap::{Heap, OutOfMemory};
use crate::value::{ClassId, ObjId, Value};

/// A serialisable snapshot of a heap's live object graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImageHeap {
    objects: Vec<(ObjId, ClassId, Vec<Value>)>,
    roots: Vec<ObjId>,
}

impl ImageHeap {
    /// Captures the live objects and roots of `heap`.
    ///
    /// Call after a final [`Heap::collect`] so the snapshot holds only
    /// reachable state, as the native-image builder does.
    pub fn snapshot(heap: &Heap) -> Self {
        let objects = heap.iter().map(|(id, class, fields)| (id, class, fields.to_vec())).collect();
        ImageHeap { objects, roots: heap.root_ids() }
    }

    /// Number of snapshotted objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Total snapshot payload in bytes (what the executable carries).
    pub fn byte_len(&self) -> u64 {
        self.objects
            .iter()
            .map(|(_, _, fields)| {
                crate::heap::OBJECT_HEADER_BYTES
                    + fields.iter().map(Value::shallow_size).sum::<u64>()
            })
            .sum()
    }

    /// Stable byte encoding, used to fold the image heap into the
    /// enclave measurement.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (id, class, fields) in &self.objects {
            out.extend_from_slice(&id.index().to_le_bytes());
            out.extend_from_slice(&class.0.to_le_bytes());
            for f in fields {
                encode_value(f, &mut out);
            }
        }
        for r in &self.roots {
            out.extend_from_slice(&r.index().to_le_bytes());
        }
        out
    }

    /// Materialises the snapshot into `heap` ("memory-mapping the image
    /// heap at startup"). Returns the old→new handle mapping; snapshot
    /// roots are re-registered as roots in the target heap.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the target heap cannot hold the image.
    pub fn restore_into(&self, heap: &mut Heap) -> Result<HashMap<ObjId, ObjId>, OutOfMemory> {
        // First pass: allocate placeholders so cyclic references can be
        // remapped. Each placeholder is rooted to survive any automatic
        // GC triggered mid-restore.
        let mut map: HashMap<ObjId, ObjId> = HashMap::with_capacity(self.objects.len());
        for (old_id, class, fields) in &self.objects {
            let placeholder = vec![Value::Unit; fields.len()];
            let new_id = heap.alloc(*class, placeholder)?;
            heap.add_root(new_id);
            map.insert(*old_id, new_id);
        }
        // Second pass: fill fields with remapped references. Dangling
        // references (dead at snapshot time) degrade to Unit.
        for (old_id, _, fields) in &self.objects {
            let new_id = map[old_id];
            for (idx, field) in fields.iter().enumerate() {
                let mut value = field.clone();
                let mut ok = true;
                value.map_refs(&mut |old| match map.get(&old) {
                    Some(new) => *new,
                    None => {
                        ok = false;
                        old
                    }
                });
                if !ok {
                    value = Value::Unit;
                }
                heap.set_field(new_id, idx, value);
            }
        }
        // Keep snapshot roots rooted; release the temporary pins.
        let root_set: std::collections::HashSet<ObjId> = self.roots.iter().copied().collect();
        for (old_id, new_id) in &map {
            if !root_set.contains(old_id) {
                heap.remove_root(*new_id);
            }
        }
        Ok(map)
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(5);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::List(vs) => {
            out.push(6);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                encode_value(v, out);
            }
        }
        Value::Ref(id) => {
            out.push(7);
            out.extend_from_slice(&id.index().to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;

    fn heap() -> Heap {
        Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
    }

    #[test]
    fn snapshot_restore_preserves_graph() {
        let mut build = heap();
        let leaf = build.alloc(ClassId(1), vec![Value::from("config")]).unwrap();
        let root = build.alloc(ClassId(2), vec![Value::Ref(leaf), Value::Int(9)]).unwrap();
        build.add_root(root);
        build.collect();
        let image = ImageHeap::snapshot(&build);
        assert_eq!(image.object_count(), 2);

        let mut run = heap();
        let map = image.restore_into(&mut run).unwrap();
        let new_root = map[&root];
        assert!(run.is_live(new_root));
        let new_leaf_ref = run.field(new_root, 0).unwrap().as_ref_id().unwrap();
        assert_eq!(new_leaf_ref, map[&leaf]);
        assert_eq!(run.field(new_leaf_ref, 0).unwrap().as_str(), Some("config"));
        // Roots were re-registered: a GC keeps the graph.
        run.collect();
        assert!(run.is_live(new_root));
    }

    #[test]
    fn restore_handles_cycles() {
        let mut build = heap();
        let a = build.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        let b = build.alloc(ClassId(0), vec![Value::Ref(a)]).unwrap();
        build.set_field(a, 0, Value::Ref(b));
        build.add_root(a);
        build.collect();
        let image = ImageHeap::snapshot(&build);

        let mut run = heap();
        let map = image.restore_into(&mut run).unwrap();
        let na = map[&a];
        let nb = map[&b];
        assert_eq!(run.field(na, 0).unwrap().as_ref_id(), Some(nb));
        assert_eq!(run.field(nb, 0).unwrap().as_ref_id(), Some(na));
        // Only the snapshot root stays pinned.
        run.collect();
        assert!(run.is_live(na) && run.is_live(nb));
        run.remove_root(na);
        run.collect();
        assert!(!run.is_live(na) && !run.is_live(nb));
    }

    #[test]
    fn unreferenced_objects_restore_unpinned() {
        let mut build = heap();
        let orphan_target = build.alloc(ClassId(0), vec![]).unwrap();
        let root = build.alloc(ClassId(0), vec![Value::Ref(orphan_target)]).unwrap();
        build.add_root(root);
        build.collect();
        let image = ImageHeap::snapshot(&build);

        let mut run = heap();
        let map = image.restore_into(&mut run).unwrap();
        // Dropping the restored root releases the whole graph.
        run.remove_root(map[&root]);
        run.collect();
        assert_eq!(run.live_objects(), 0);
    }

    #[test]
    fn to_bytes_is_deterministic_and_content_sensitive() {
        let mut build = heap();
        let id = build.alloc(ClassId(1), vec![Value::Int(1)]).unwrap();
        build.add_root(id);
        let image = ImageHeap::snapshot(&build);
        assert_eq!(image.to_bytes(), image.to_bytes());
        build.set_field(id, 0, Value::Int(2));
        let image2 = ImageHeap::snapshot(&build);
        assert_ne!(image.to_bytes(), image2.to_bytes());
    }

    #[test]
    fn byte_len_tracks_payload() {
        let mut build = heap();
        let id = build.alloc(ClassId(0), vec![Value::Bytes(vec![0; 1000])]).unwrap();
        build.add_root(id);
        let image = ImageHeap::snapshot(&build);
        assert!(image.byte_len() >= 1000);
    }
}
