//! Isolates: independent VM instances with private heaps.
//!
//! GraalVM native images can create multiple *isolates* at runtime, each
//! operating on a separate heap so garbage collection in one does not
//! pause threads in another (§2.2). Montsalvat creates one isolate per
//! runtime — trusted and untrusted — and those isolates provide the
//! execution contexts for all entry-point methods.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::heap::{Heap, HeapConfig};

/// A named, independently collected heap.
///
/// The heap is behind a mutex: `&mut Heap` operations (allocation, GC)
/// are stop-the-world *for this isolate only*, which is exactly the
/// isolation property the paper relies on.
///
/// # Examples
///
/// ```
/// use runtime_sim::isolate::Isolate;
/// use runtime_sim::heap::HeapConfig;
/// use runtime_sim::value::{ClassId, Value};
///
/// let trusted = Isolate::new("trusted", HeapConfig::default());
/// let id = trusted.with_heap(|h| h.alloc(ClassId(0), vec![Value::Int(1)])).unwrap();
/// assert!(trusted.with_heap(|h| h.is_live(id)));
/// ```
#[derive(Debug)]
pub struct Isolate {
    id: u64,
    name: String,
    heap: Mutex<Heap>,
}

static NEXT_ISOLATE_ID: AtomicU64 = AtomicU64::new(1);

impl Isolate {
    /// Creates an isolate with a fresh heap.
    pub fn new(name: impl Into<String>, config: HeapConfig) -> Arc<Self> {
        Arc::new(Isolate {
            id: NEXT_ISOLATE_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            heap: Mutex::new(Heap::new(config)),
        })
    }

    /// Process-unique isolate id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The isolate's name (e.g. `"trusted"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs `f` with exclusive access to the heap.
    pub fn with_heap<R>(&self, f: impl FnOnce(&mut Heap) -> R) -> R {
        f(&mut self.heap.lock())
    }

    /// Locks and returns the heap guard directly (for multi-step
    /// sequences that must be atomic with respect to other threads).
    pub fn lock_heap(&self) -> MutexGuard<'_, Heap> {
        self.heap.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ClassId, Value};

    #[test]
    fn isolates_have_unique_ids_and_names() {
        let a = Isolate::new("trusted", HeapConfig::default());
        let b = Isolate::new("untrusted", HeapConfig::default());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.name(), "trusted");
        assert_eq!(b.name(), "untrusted");
    }

    #[test]
    fn heaps_are_independent() {
        let a = Isolate::new("a", HeapConfig::default());
        let b = Isolate::new("b", HeapConfig::default());
        let id = a.with_heap(|h| h.alloc(ClassId(0), vec![Value::Int(5)])).unwrap();
        a.with_heap(|h| h.add_root(id));
        // Collecting b never touches a's objects.
        b.with_heap(|h| {
            h.collect();
        });
        assert!(a.with_heap(|h| h.is_live(id)));
        assert_eq!(b.with_heap(|h| h.live_objects()), 0);
    }

    #[test]
    fn concurrent_access_is_serialised() {
        let iso = Isolate::new("shared", HeapConfig::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let iso = Arc::clone(&iso);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    let id = iso.with_heap(|h| h.alloc(ClassId(0), vec![])).unwrap();
                    iso.with_heap(|h| h.add_root(id));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(iso.with_heap(|h| h.live_objects()), 1000);
    }
}
