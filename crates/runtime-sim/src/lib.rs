//! # runtime-sim — the managed-runtime substrate of the Montsalvat reproduction
//!
//! GraalVM native images embed their own runtime components — a serial
//! stop-and-copy garbage collector, isolates with independent heaps, and
//! a build-time-initialised *image heap* (§2.2 of the paper). This crate
//! implements those components for the simulation:
//!
//! - [`value`] — managed [`Value`]s and generational
//!   object handles ([`ObjId`]);
//! - [`heap`] — pluggable collectors (the paper's stop-and-copy
//!   semispace plus a segmented generational block heap) with weak
//!   references and a [`HeapObserver`] hook that lets the enclave
//!   simulator charge MEE/EPC costs for heap traffic;
//! - [`isolate`] — independently collected heaps, one per runtime;
//! - [`image`] — heap snapshots carried from build time to run time.
//!
//! # Examples
//!
//! ```
//! use runtime_sim::heap::HeapConfig;
//! use runtime_sim::isolate::Isolate;
//! use runtime_sim::value::{ClassId, Value};
//!
//! let isolate = Isolate::new("untrusted", HeapConfig::default());
//! let person = isolate
//!     .with_heap(|h| h.alloc(ClassId(1), vec![Value::from("Alice"), Value::Int(100)]))
//!     .expect("allocation fits a fresh heap");
//! isolate.with_heap(|h| h.add_root(person));
//! isolate.with_heap(|h| h.collect());
//! assert!(isolate.with_heap(|h| h.is_live(person)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod heap;
pub mod image;
pub mod isolate;
pub mod value;

pub use heap::{
    BlockStats, CollectorKind, GcOutcome, Heap, HeapConfig, HeapObserver, HeapStats, OutOfMemory,
    WeakRef,
};
pub use image::ImageHeap;
pub use isolate::Isolate;
pub use value::{ClassId, ObjId, Value};
