//! Integration regressions for the segmented block collector: long-churn
//! fragmentation behaviour, weak-reference clearing across minor/major
//! cycles, handle-generation hygiene across block recycling, and image
//! snapshot equivalence with the semispace reference collector.

use runtime_sim::heap::{CollectorKind, Heap, HeapConfig};
use runtime_sim::image::ImageHeap;
use runtime_sim::value::{ClassId, ObjId, Value};

const BLOCK_BYTES: u64 = 4096;

fn block_heap() -> Heap {
    Heap::new(HeapConfig {
        gc_threshold_bytes: u64::MAX,
        collector: CollectorKind::Block,
        block_bytes: BLOCK_BYTES,
        nursery_bytes: u64::MAX,
        ..HeapConfig::default()
    })
}

fn semispace_heap() -> Heap {
    Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
}

fn alloc_bytes(heap: &mut Heap, n: usize) -> ObjId {
    heap.alloc(ClassId(0), vec![Value::Bytes(vec![0u8; n])]).unwrap()
}

/// Deterministic xorshift so the churn shape is reproducible.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Long-lived churn: short-lived garbage of mixed size classes cycles
/// through the heap while a standing live set persists. After each major
/// the free-block cache must rebound (evacuated/swept blocks return to
/// the free list) and the committed footprint must stay within a fixed
/// multiple of the peak live bytes — i.e. fragmentation stays bounded.
#[test]
fn fragmentation_stays_bounded_under_long_churn() {
    let mut heap = block_heap();
    let mut rng = 0x9E3779B97F4A7C15u64;

    // Standing live set: ~64 KiB across mixed size classes.
    let standing: Vec<ObjId> = (0..64)
        .map(|i| {
            let id = alloc_bytes(&mut heap, 64 + (i % 4) * 400);
            heap.add_root(id);
            id
        })
        .collect();

    let mut peak_live = heap.live_bytes();
    for round in 0..40 {
        // A burst of short-lived garbage, some of it briefly rooted,
        // some reaching the large-object path.
        let mut garbage = Vec::new();
        for _ in 0..200 {
            let size = match xorshift(&mut rng) % 10 {
                0 => 8 * 1024, // large: dedicated span
                1..=3 => 900,
                4..=6 => 200,
                _ => 40,
            };
            let id = alloc_bytes(&mut heap, size as usize);
            heap.add_root(id);
            garbage.push(id);
        }
        peak_live = peak_live.max(heap.live_bytes());
        for id in garbage {
            heap.remove_root(id);
        }
        if round % 4 == 3 {
            heap.collect();
            let stats = heap.block_stats().expect("block collector reports block stats");
            assert!(
                stats.free_blocks > 0,
                "round {round}: free blocks should rebound after a major"
            );
            assert!(
                stats.live_blocks + stats.free_blocks <= stats.committed_blocks,
                "round {round}: accounting: live {} + free {} > committed {}",
                stats.live_blocks,
                stats.free_blocks,
                stats.committed_blocks
            );
        } else {
            heap.collect_minor();
        }
    }

    heap.collect();
    let stats = heap.block_stats().unwrap();
    let committed_bytes = stats.committed_blocks * stats.block_bytes;
    // Fixed fragmentation bound: the settled footprint never exceeds a
    // small multiple of the peak live bytes (plus the free-block cache).
    let bound = 4 * peak_live + 16 * stats.block_bytes;
    assert!(
        committed_bytes <= bound,
        "committed {committed_bytes} bytes exceeds fragmentation bound {bound} (peak live {peak_live})"
    );
    for id in standing {
        assert!(heap.is_live(id), "standing live set must survive churn");
    }
}

/// A weak reference to nursery garbage is cleared by the *minor* cycle
/// that reclaims it, and never reported cleared again by later cycles.
#[test]
fn weak_to_nursery_garbage_clears_exactly_once_in_minor() {
    let mut heap = block_heap();
    let keep = alloc_bytes(&mut heap, 64);
    heap.add_root(keep);
    let doomed = alloc_bytes(&mut heap, 64);
    let weak = heap.new_weak(doomed);
    assert_eq!(heap.weak_get(weak), Some(doomed));

    let minor = heap.collect_minor();
    assert!(minor.minor);
    assert_eq!(minor.weaks_cleared, 1, "minor reclaims the nursery garbage");
    assert_eq!(heap.weak_get(weak), None);

    let major = heap.collect();
    assert_eq!(major.weaks_cleared, 0, "already-cleared weak must not clear again");
    assert_eq!(heap.weak_get(weak), None);
}

/// A weak reference to *mature* garbage survives minors (minors never
/// touch the mature generation) and is cleared exactly once by the
/// major that sweeps it. Evacuation itself must keep weaks valid.
#[test]
fn weak_to_mature_garbage_survives_minors_and_clears_once_in_major() {
    let mut heap = block_heap();
    let obj = alloc_bytes(&mut heap, 64);
    heap.add_root(obj);
    let weak = heap.new_weak(obj);

    // Promote to the mature generation; the weak tracks the evacuated
    // object through the slot retarget.
    let minor = heap.collect_minor();
    assert!(minor.minor);
    assert_eq!(heap.weak_get(weak), Some(obj), "evacuation keeps weak refs valid");

    heap.remove_root(obj);
    let minor = heap.collect_minor();
    assert_eq!(minor.weaks_cleared, 0, "minor must not sweep mature garbage");
    assert_eq!(heap.weak_get(weak), Some(obj));

    let major = heap.collect();
    assert_eq!(major.weaks_cleared, 1, "major sweeps mature garbage and clears the weak");
    assert_eq!(heap.weak_get(weak), None);

    let again = heap.collect();
    assert_eq!(again.weaks_cleared, 0);
}

/// Slots freed when a nursery block is recycled must come back with a
/// bumped handle generation: stale [`ObjId`]s never resolve to the new
/// occupants, even when allocation reuses the same slot indices and the
/// same recycled blocks.
#[test]
fn no_stale_handle_generation_reuse_across_block_recycling() {
    let mut heap = block_heap();
    let keep = alloc_bytes(&mut heap, 64);
    heap.add_root(keep);

    let dead: Vec<ObjId> = (0..50).map(|_| alloc_bytes(&mut heap, 200)).collect();
    heap.collect_minor(); // reclaims the garbage, recycles nursery blocks

    // Refill: slot indices and blocks get reused.
    let fresh: Vec<ObjId> = (0..50).map(|_| alloc_bytes(&mut heap, 200)).collect();
    for id in &fresh {
        heap.add_root(*id);
    }

    for old in &dead {
        assert!(!heap.is_live(*old), "stale handle must not resolve after recycling");
        assert!(heap.fields(*old).is_none());
        assert!(heap.class_of(*old).is_none());
        assert!(
            !heap.set_field(*old, 0, Value::Int(7)),
            "writes through stale handles must be rejected"
        );
    }
    for (old, new) in dead.iter().zip(&fresh) {
        if old.index() == new.index() {
            assert_ne!(
                old.generation(),
                new.generation(),
                "reused slot must carry a new generation"
            );
        }
    }
    for id in &fresh {
        assert!(heap.is_live(*id));
    }
}

/// Builds the same deterministic object graph in `heap`: a ring of
/// linked records plus some garbage, returning the rooted survivors.
fn build_graph(heap: &mut Heap) -> Vec<ObjId> {
    let mut ids = Vec::new();
    for i in 0..24 {
        let id = heap
            .alloc(
                ClassId(i as u32 % 3),
                vec![Value::Int(i as i64), Value::Unit, Value::Bytes(vec![i as u8; 64 + i * 7])],
            )
            .unwrap();
        ids.push(id);
    }
    for i in 0..24 {
        heap.set_field(ids[i], 1, Value::Ref(ids[(i + 1) % 24]));
    }
    heap.add_root(ids[0]);
    // Unreachable garbage that the pre-snapshot collect must drop.
    for _ in 0..8 {
        let _ = heap.alloc(ClassId(9), vec![Value::Bytes(vec![0; 300])]);
    }
    ids
}

/// Snapshot-after-collect parity: the image captured from a block heap
/// is equivalent to the one captured from a semispace heap running the
/// same program — same object count, same payload bytes, and the same
/// restored graph.
#[test]
fn image_snapshot_after_collect_matches_semispace() {
    let mut build_s = semispace_heap();
    let mut build_b = block_heap();
    // Identical allocation history with no intermediate collections, so
    // handles coincide across the two builds.
    let ids_s = build_graph(&mut build_s);
    let ids_b = build_graph(&mut build_b);
    assert_eq!(ids_s, ids_b, "allocation order determines identical handles");
    build_s.collect();
    build_b.collect();

    let image_s = ImageHeap::snapshot(&build_s);
    let image_b = ImageHeap::snapshot(&build_b);
    assert_eq!(image_s.object_count(), image_b.object_count());
    assert_eq!(image_s.byte_len(), image_b.byte_len());

    // Restoring both images into fresh semispace heaps yields the same
    // graph under the handle mapping.
    let mut run_s = semispace_heap();
    let mut run_b = semispace_heap();
    let map_s = image_s.restore_into(&mut run_s).unwrap();
    let map_b = image_b.restore_into(&mut run_b).unwrap();
    assert_eq!(run_s.live_objects(), run_b.live_objects());
    assert_eq!(run_s.live_bytes(), run_b.live_bytes());
    for old in &ids_s {
        let new_s = map_s[old];
        let new_b = map_b[old];
        assert_eq!(run_s.class_of(new_s), run_b.class_of(new_b));
        assert_eq!(run_s.field(new_s, 0), run_b.field(new_b, 0));
        assert_eq!(run_s.field(new_s, 2), run_b.field(new_b, 2));
        let link_s = run_s.field(new_s, 1).unwrap().as_ref_id().unwrap();
        let link_b = run_b.field(new_b, 1).unwrap().as_ref_id().unwrap();
        // Both links land on the mapped image of the same original id.
        let orig = ids_s[(ids_s.iter().position(|i| i == old).unwrap() + 1) % ids_s.len()];
        assert_eq!(link_s, map_s[&orig]);
        assert_eq!(link_b, map_b[&orig]);
    }
}
