//! Differential property tests: the semispace and block collectors must
//! be observationally indistinguishable.
//!
//! Each generated action sequence is replayed against two heaps — one
//! per collector — with parallel handle vectors tracking the "same"
//! logical object in both. Raw [`ObjId`]s are never compared across
//! heaps (slot reuse order differs between collectors); instead every
//! reference is canonicalised through the tracked-index maps before
//! comparison.

use std::collections::{BTreeSet, HashMap, HashSet};

use proptest::prelude::*;
use runtime_sim::heap::{CollectorKind, Heap, HeapConfig, WeakRef};
use runtime_sim::value::{ClassId, ObjId, Value};

/// A randomly generated heap action, applied identically to both heaps.
#[derive(Debug, Clone)]
enum Action {
    /// Allocate `bytes` of payload, optionally linking to a tracked
    /// object and/or rooting the new one. Sizes above the block size
    /// exercise the block heap's large-object path.
    Alloc { bytes: u16, link: Option<u8>, root: bool },
    /// Point the `src`-th tracked object's link field at the `dst`-th.
    Relink { src: u8, dst: u8 },
    /// Overwrite the `idx`-th tracked object's counter field.
    SetInt { idx: u8, val: i32 },
    /// Drop the root of the `idx`-th rooted object.
    Unroot { idx: u8 },
    /// Register weak references to the `idx`-th tracked object.
    Weak { idx: u8 },
    /// Run a full (major) collection on both heaps.
    Collect,
    /// Run a minor cycle (nursery-only on the block heap; the semispace
    /// promotes it to a major).
    CollectMinor,
}

const BLOCK_BYTES: u64 = 4096;

fn action_strategy(minors: bool) -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u16>(), proptest::option::of(any::<u8>()), any::<bool>())
            .prop_map(|(bytes, link, root)| Action::Alloc { bytes: bytes % 6000, link, root }),
        (any::<u16>(), proptest::option::of(any::<u8>()), any::<bool>())
            .prop_map(|(bytes, link, root)| Action::Alloc { bytes: bytes % 6000, link, root }),
        (any::<u8>(), any::<u8>()).prop_map(|(src, dst)| Action::Relink { src, dst }),
        (any::<u8>(), any::<i32>()).prop_map(|(idx, val)| Action::SetInt { idx, val }),
        any::<u8>().prop_map(|idx| Action::Unroot { idx }),
        any::<u8>().prop_map(|idx| Action::Weak { idx }),
        Just(Action::Collect),
        any::<bool>().prop_map(move |_| if minors {
            Action::CollectMinor
        } else {
            Action::Collect
        }),
    ]
}

fn semispace_heap() -> Heap {
    Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
}

fn block_heap() -> Heap {
    Heap::new(HeapConfig {
        gc_threshold_bytes: u64::MAX,
        collector: CollectorKind::Block,
        block_bytes: BLOCK_BYTES,
        nursery_bytes: u64::MAX,
        ..HeapConfig::default()
    })
}

/// Replay state for one heap: tracked handles plus a reverse map used
/// to canonicalise references into tracked indices.
struct Side {
    heap: Heap,
    tracked: Vec<ObjId>,
    rooted: Vec<ObjId>,
    pos: HashMap<ObjId, usize>,
    weaks: Vec<WeakRef>,
}

impl Side {
    fn new(heap: Heap) -> Self {
        Side {
            heap,
            tracked: Vec::new(),
            rooted: Vec::new(),
            pos: HashMap::new(),
            weaks: Vec::new(),
        }
    }

    fn push(&mut self, id: ObjId, root: bool) {
        self.pos.insert(id, self.tracked.len());
        self.tracked.push(id);
        if root {
            self.heap.add_root(id);
            self.rooted.push(id);
        }
    }

    /// Canonicalises a link field into the tracked index it points at.
    fn link_index(&self, idx: usize) -> Option<usize> {
        let link = self.heap.field(self.tracked[idx], 1)?.as_ref_id()?;
        self.pos.get(&link).copied()
    }

    /// Root-reachable closure as a set of tracked indices.
    fn reachable_indices(&self) -> BTreeSet<usize> {
        let mut seen = HashSet::new();
        let mut out = BTreeSet::new();
        let mut stack: Vec<ObjId> = self.heap.root_ids();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            out.insert(self.pos[&id]);
            if let Some(fields) = self.heap.fields(id) {
                for f in fields {
                    f.for_each_ref(&mut |child| stack.push(child));
                }
            }
        }
        out
    }
}

/// Applies one action to both sides, making every decision once so the
/// two heaps always receive identical mutations. Liveness-dependent
/// decisions use the conjunction of both heaps so the replay stays
/// synchronised even while minor cycles let garbage linger on one side.
fn apply(action: &Action, a: &mut Side, b: &mut Side) {
    match action {
        Action::Alloc { bytes, link, root } => {
            let mut fields =
                vec![Value::Bytes(vec![0xAB; *bytes as usize]), Value::Unit, Value::Int(0)];
            if let Some(pick) = link {
                if !a.tracked.is_empty() {
                    let i = *pick as usize % a.tracked.len();
                    if a.heap.is_live(a.tracked[i]) && b.heap.is_live(b.tracked[i]) {
                        // Each side links its own handle for object `i`.
                        let id_a = a.heap.alloc(ClassId(1), {
                            let mut f = fields.clone();
                            f[1] = Value::Ref(a.tracked[i]);
                            f
                        });
                        let id_b = b.heap.alloc(ClassId(1), {
                            fields[1] = Value::Ref(b.tracked[i]);
                            fields.clone()
                        });
                        a.push(id_a.unwrap(), *root);
                        b.push(id_b.unwrap(), *root);
                        return;
                    }
                }
            }
            let id_a = a.heap.alloc(ClassId(1), fields.clone()).unwrap();
            let id_b = b.heap.alloc(ClassId(1), fields).unwrap();
            a.push(id_a, *root);
            b.push(id_b, *root);
        }
        Action::Relink { src, dst } => {
            if a.tracked.is_empty() {
                return;
            }
            let s = *src as usize % a.tracked.len();
            let d = *dst as usize % a.tracked.len();
            let live_both = a.heap.is_live(a.tracked[s])
                && a.heap.is_live(a.tracked[d])
                && b.heap.is_live(b.tracked[s])
                && b.heap.is_live(b.tracked[d]);
            if live_both {
                a.heap.set_field(a.tracked[s], 1, Value::Ref(a.tracked[d]));
                b.heap.set_field(b.tracked[s], 1, Value::Ref(b.tracked[d]));
            }
        }
        Action::SetInt { idx, val } => {
            if a.tracked.is_empty() {
                return;
            }
            let i = *idx as usize % a.tracked.len();
            if a.heap.is_live(a.tracked[i]) && b.heap.is_live(b.tracked[i]) {
                a.heap.set_field(a.tracked[i], 2, Value::Int(*val as i64));
                b.heap.set_field(b.tracked[i], 2, Value::Int(*val as i64));
            }
        }
        Action::Unroot { idx } => {
            if a.rooted.is_empty() {
                return;
            }
            let i = *idx as usize % a.rooted.len();
            let id_a = a.rooted.swap_remove(i);
            let id_b = b.rooted.swap_remove(i);
            a.heap.remove_root(id_a);
            b.heap.remove_root(id_b);
        }
        Action::Weak { idx } => {
            if a.tracked.is_empty() {
                return;
            }
            let i = *idx as usize % a.tracked.len();
            if a.heap.is_live(a.tracked[i]) && b.heap.is_live(b.tracked[i]) {
                let w_a = a.heap.new_weak(a.tracked[i]);
                let w_b = b.heap.new_weak(b.tracked[i]);
                a.weaks.push(w_a);
                b.weaks.push(w_b);
            }
        }
        Action::Collect => {
            a.heap.collect();
            b.heap.collect();
        }
        Action::CollectMinor => {
            a.heap.collect_minor();
            b.heap.collect_minor();
        }
    }
}

/// Full observational equality: liveness per tracked index, classes,
/// field values (references canonicalised), weak-clear sets, live-byte
/// and live-object accounting. Valid whenever both heaps have collected
/// down to exactly the reachable set (i.e. after a major on both).
fn assert_observationally_equal(a: &Side, b: &Side) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.tracked.len(), b.tracked.len());
    for i in 0..a.tracked.len() {
        let live_a = a.heap.is_live(a.tracked[i]);
        let live_b = b.heap.is_live(b.tracked[i]);
        prop_assert_eq!(live_a, live_b, "liveness diverged for tracked object {}", i);
        if !live_a {
            continue;
        }
        prop_assert_eq!(a.heap.class_of(a.tracked[i]), b.heap.class_of(b.tracked[i]));
        let fields_a = a.heap.fields(a.tracked[i]).unwrap();
        let fields_b = b.heap.fields(b.tracked[i]).unwrap();
        prop_assert_eq!(fields_a.len(), fields_b.len());
        // Payload and counter compare directly; the link field compares
        // through the tracked-index maps.
        prop_assert_eq!(&fields_a[0], &fields_b[0], "payload diverged for object {}", i);
        prop_assert_eq!(&fields_a[2], &fields_b[2], "counter diverged for object {}", i);
        prop_assert_eq!(a.link_index(i), b.link_index(i), "link target diverged for object {}", i);
    }
    // The whole live set corresponds: no untracked stragglers either way.
    let live_a: BTreeSet<usize> = a.heap.iter().map(|(id, _, _)| a.pos[&id]).collect();
    let live_b: BTreeSet<usize> = b.heap.iter().map(|(id, _, _)| b.pos[&id]).collect();
    prop_assert_eq!(live_a, live_b);
    prop_assert_eq!(a.heap.live_objects(), b.heap.live_objects());
    prop_assert_eq!(a.heap.live_bytes(), b.heap.live_bytes(), "live-byte accounting diverged");
    // Weak references cleared in lockstep.
    prop_assert_eq!(a.weaks.len(), b.weaks.len());
    for (i, (w_a, w_b)) in a.weaks.iter().zip(&b.weaks).enumerate() {
        let got_a = a.heap.weak_get(*w_a).map(|id| a.pos[&id]);
        let got_b = b.heap.weak_get(*w_b).map(|id| b.pos[&id]);
        prop_assert_eq!(got_a, got_b, "weak {} diverged", i);
    }
    Ok(())
}

/// Reachable-graph equality: valid after *any* collection (including
/// minors, where unreachable mature garbage may linger on the block
/// side only).
fn assert_reachable_graphs_equal(a: &Side, b: &Side) -> Result<(), TestCaseError> {
    let reach_a = a.reachable_indices();
    let reach_b = b.reachable_indices();
    prop_assert_eq!(&reach_a, &reach_b, "root-reachable closures diverged");
    for &i in &reach_a {
        prop_assert!(a.heap.is_live(a.tracked[i]) && b.heap.is_live(b.tracked[i]));
        let fields_a = a.heap.fields(a.tracked[i]).unwrap();
        let fields_b = b.heap.fields(b.tracked[i]).unwrap();
        prop_assert_eq!(&fields_a[0], &fields_b[0]);
        prop_assert_eq!(&fields_a[2], &fields_b[2]);
        prop_assert_eq!(a.link_index(i), b.link_index(i));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Major-only sequences: after every collection both collectors hold
    /// exactly the same object graph, byte for byte.
    #[test]
    fn collectors_agree_after_every_major_collection(
        actions in proptest::collection::vec(action_strategy(false), 1..120)
    ) {
        let mut a = Side::new(semispace_heap());
        let mut b = Side::new(block_heap());
        for action in &actions {
            let was_collect = matches!(action, Action::Collect);
            apply(action, &mut a, &mut b);
            if was_collect {
                assert_observationally_equal(&a, &b)?;
            }
        }
        let out_a = a.heap.collect();
        let out_b = b.heap.collect();
        // With identical live sets going in, a major reclaims the same
        // number of objects on both sides.
        prop_assert_eq!(out_a.reclaimed, out_b.reclaimed);
        prop_assert_eq!(out_a.weaks_cleared, out_b.weaks_cleared);
        prop_assert!(!out_a.minor && !out_b.minor);
        assert_observationally_equal(&a, &b)?;
    }

    /// Mixed minor/major sequences: minors may leave mature garbage
    /// behind on the block side, but the root-reachable graph must stay
    /// identical throughout, and a final major restores full equality.
    #[test]
    fn minor_cycles_never_perturb_the_reachable_graph(
        actions in proptest::collection::vec(action_strategy(true), 1..120)
    ) {
        let mut a = Side::new(semispace_heap());
        let mut b = Side::new(block_heap());
        for action in &actions {
            let was_gc = matches!(action, Action::Collect | Action::CollectMinor);
            apply(action, &mut a, &mut b);
            if was_gc {
                assert_reachable_graphs_equal(&a, &b)?;
            }
        }
        a.heap.collect();
        b.heap.collect();
        assert_observationally_equal(&a, &b)?;
    }
}
