//! Property-based tests for the stop-and-copy collector.
//!
//! These drive the heap with random interleavings of allocations, field
//! writes, rooting changes and collections, and check the collector's
//! core invariants afterwards.

use proptest::prelude::*;
use runtime_sim::heap::{Heap, HeapConfig};
use runtime_sim::value::{ClassId, ObjId, Value};

/// A randomly generated heap action.
#[derive(Debug, Clone)]
enum Action {
    /// Allocate with a payload of `bytes` and link to the `link`-th
    /// most recent live object (if any).
    Alloc { bytes: u16, link: Option<u8>, root: bool },
    /// Point the `src`-th tracked object's link field at the `dst`-th.
    Relink { src: u8, dst: u8 },
    /// Drop the root of the `idx`-th tracked object.
    Unroot { idx: u8 },
    /// Register a weak reference to the `idx`-th tracked object.
    Weak { idx: u8 },
    /// Run a collection.
    Collect,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u16>(), proptest::option::of(any::<u8>()), any::<bool>())
            .prop_map(|(bytes, link, root)| Action::Alloc { bytes: bytes % 512, link, root }),
        (any::<u8>(), any::<u8>()).prop_map(|(src, dst)| Action::Relink { src, dst }),
        any::<u8>().prop_map(|idx| Action::Unroot { idx }),
        any::<u8>().prop_map(|idx| Action::Weak { idx }),
        Just(Action::Collect),
    ]
}

/// Recomputes reachability from roots with an independent traversal.
fn reachable_from_roots(heap: &Heap) -> std::collections::HashSet<ObjId> {
    let mut seen = std::collections::HashSet::new();
    let mut stack: Vec<ObjId> = heap.root_ids();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let Some(fields) = heap.fields(id) {
            for f in fields {
                f.for_each_ref(&mut |child| stack.push(child));
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any action sequence ending in a collection, the live set
    /// equals the root-reachable set, and weak refs are cleared exactly
    /// for dead targets.
    #[test]
    fn collector_preserves_exactly_the_reachable_set(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let mut heap = Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() });
        let mut tracked: Vec<ObjId> = Vec::new();
        let mut rooted: Vec<ObjId> = Vec::new();
        let mut weaks: Vec<(runtime_sim::heap::WeakRef, ObjId)> = Vec::new();

        for action in actions {
            match action {
                Action::Alloc { bytes, link, root } => {
                    let mut fields = vec![Value::Bytes(vec![0u8; bytes as usize]), Value::Unit];
                    if let Some(pick) = link {
                        if !tracked.is_empty() {
                            let target = tracked[pick as usize % tracked.len()];
                            if heap.is_live(target) {
                                fields[1] = Value::Ref(target);
                            }
                        }
                    }
                    let id = heap.alloc(ClassId(0), fields).unwrap();
                    tracked.push(id);
                    if root {
                        heap.add_root(id);
                        rooted.push(id);
                    }
                }
                Action::Relink { src, dst } => {
                    if !tracked.is_empty() {
                        let s = tracked[src as usize % tracked.len()];
                        let d = tracked[dst as usize % tracked.len()];
                        if heap.is_live(s) && heap.is_live(d) {
                            heap.set_field(s, 1, Value::Ref(d));
                        }
                    }
                }
                Action::Unroot { idx } => {
                    if !rooted.is_empty() {
                        let i = idx as usize % rooted.len();
                        let id = rooted.swap_remove(i);
                        heap.remove_root(id);
                    }
                }
                Action::Weak { idx } => {
                    if !tracked.is_empty() {
                        let id = tracked[idx as usize % tracked.len()];
                        if heap.is_live(id) {
                            weaks.push((heap.new_weak(id), id));
                        }
                    }
                }
                Action::Collect => {
                    heap.collect();
                }
            }
        }

        let expected = reachable_from_roots(&heap);
        heap.collect();

        // 1. Exactly the reachable objects survive.
        let live: std::collections::HashSet<ObjId> = heap.iter().map(|(id, _, _)| id).collect();
        prop_assert_eq!(&live, &expected);

        // 2. All surviving handles resolve; all others don't.
        for id in &tracked {
            prop_assert_eq!(heap.is_live(*id), expected.contains(id));
        }

        // 3. Weak refs are cleared exactly when their target died.
        for (weak, target) in &weaks {
            let read = heap.weak_get(*weak);
            if expected.contains(target) {
                prop_assert_eq!(read, Some(*target));
            } else {
                prop_assert_eq!(read, None);
            }
        }

        // 4. Size accounting matches the surviving objects.
        let recount: u64 = heap
            .iter()
            .map(|(_, _, fields)| {
                runtime_sim::heap::OBJECT_HEADER_BYTES
                    + fields.iter().map(Value::shallow_size).sum::<u64>()
            })
            .sum();
        prop_assert_eq!(heap.live_bytes(), recount);
    }

    /// Collection is idempotent: a second collection with no mutation in
    /// between reclaims nothing.
    #[test]
    fn collection_is_idempotent(sizes in proptest::collection::vec(0u16..256, 1..40), root_mask in any::<u64>()) {
        let mut heap = Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() });
        for (i, bytes) in sizes.iter().enumerate() {
            let id = heap.alloc(ClassId(0), vec![Value::Bytes(vec![0; *bytes as usize])]).unwrap();
            if root_mask & (1 << (i % 64)) != 0 {
                heap.add_root(id);
            }
        }
        heap.collect();
        let live_after_first = heap.live_objects();
        let out = heap.collect();
        prop_assert_eq!(out.reclaimed, 0);
        prop_assert_eq!(heap.live_objects(), live_after_first);
    }

    /// Image snapshot → restore preserves object count, classes and the
    /// shape of the reference graph.
    #[test]
    fn image_roundtrip_preserves_graph_shape(n in 1usize..30, edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..60)) {
        let mut build = Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() });
        let mut ids = Vec::new();
        for i in 0..n {
            let id = build.alloc(ClassId(i as u32 % 5), vec![Value::Int(i as i64), Value::Unit]).unwrap();
            build.add_root(id);
            ids.push(id);
        }
        for (s, d) in &edges {
            let src = ids[*s as usize % n];
            let dst = ids[*d as usize % n];
            build.set_field(src, 1, Value::Ref(dst));
        }
        build.collect();
        let image = runtime_sim::image::ImageHeap::snapshot(&build);

        let mut run = Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() });
        let map = image.restore_into(&mut run).unwrap();
        prop_assert_eq!(run.live_objects(), n);
        for old in &ids {
            let new = map[old];
            prop_assert_eq!(run.class_of(new), build.class_of(*old));
            // Link structure is preserved under the mapping.
            let old_link = build.field(*old, 1).unwrap().as_ref_id();
            let new_link = run.field(new, 1).unwrap().as_ref_id();
            prop_assert_eq!(new_link, old_link.map(|o| map[&o]));
        }
    }
}
