//! Windowed time-series flight recorder.
//!
//! Aggregate snapshots answer *how much*; the [`trace`](crate::trace)
//! module answers *which call chain*; this module answers *when*. A
//! [`FlightRecorder`] samples one [`Recorder`] into a bounded ring of
//! fixed-width **model-time** windows: each window stores the
//! [`Snapshot::delta_since`] of the app's metrics over that window —
//! counter increments and histogram observations that happened inside
//! it, plus the gauge *levels* observed at its close. Windows with no
//! flow are elided (the gaps are implicit from `start_ns`/`end_ns`),
//! and when the ring is full further windows are discarded
//! fill-then-drop like the trace lanes, counted into
//! [`Counter::TimeseriesDropped`].
//!
//! The export is the versioned, line-oriented JSON document
//! [`SCHEMA`] (`montsalvat.timeseries/v1`, one window per line so
//! `jq`/grep and [`parse_timeseries`] both work), plus a
//! Prometheus-style text exposition for external scrapers
//! ([`Series::to_prometheus`]).
//!
//! On top of the windows sits the spike detector ([`detect_spikes`]):
//! it flags windows whose per-window latency quantile exceeds `k×`
//! the run median and attributes each spike to co-occurring GC,
//! EPC-paging, switchless-fallback, scale, or queue-pressure events
//! with a confidence note. `montsalvat timeline <export>` renders the
//! aligned timelines and the spike report (see `docs/TELEMETRY.md`).
//!
//! Knobs: `MONTSALVAT_TIMESERIES=0` disables windowed capture in the
//! traffic harness (default on there); `MONTSALVAT_TIMESERIES_WINDOW`
//! sets the window width in model nanoseconds (default
//! [`DEFAULT_WINDOW_NS`]).

use std::sync::Arc;

use crate::hist::nearest_rank;
use crate::{Counter, Gauge, Hist, Recorder, Snapshot};

/// Identifier of the JSON document emitted by [`Series::to_json`].
///
/// Versioned like the telemetry schema: field *additions* keep the
/// version; renames, removals, or unit changes bump it.
pub const SCHEMA: &str = "montsalvat.timeseries/v1";

/// Default window width: 1 ms of model time.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000;

/// Default ring capacity, in stored (active) windows.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Sizing read from the environment (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeseriesConfig {
    /// Whether windowed capture is enabled (`MONTSALVAT_TIMESERIES`,
    /// default true — the flag exists to switch the harness *off*).
    pub enabled: bool,
    /// Window width in model nanoseconds
    /// (`MONTSALVAT_TIMESERIES_WINDOW`, default [`DEFAULT_WINDOW_NS`]).
    pub window_ns: u64,
    /// Ring capacity in stored windows (default [`DEFAULT_CAPACITY`]).
    pub capacity: usize,
}

impl Default for TimeseriesConfig {
    fn default() -> Self {
        TimeseriesConfig { enabled: true, window_ns: DEFAULT_WINDOW_NS, capacity: DEFAULT_CAPACITY }
    }
}

impl TimeseriesConfig {
    /// Reads `MONTSALVAT_TIMESERIES` / `MONTSALVAT_TIMESERIES_WINDOW`,
    /// falling back to the defaults for anything unset or unparsable.
    pub fn from_env() -> TimeseriesConfig {
        let enabled = std::env::var("MONTSALVAT_TIMESERIES").map(|v| v != "0").unwrap_or(true);
        let window_ns = std::env::var("MONTSALVAT_TIMESERIES_WINDOW")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|n| n.max(1))
            .unwrap_or(DEFAULT_WINDOW_NS);
        TimeseriesConfig { enabled, window_ns, capacity: DEFAULT_CAPACITY }
    }
}

/// One sealed window: the metric activity in `[start_ns, end_ns)`.
#[derive(Debug, Clone)]
pub struct Window {
    /// Model-time start of the window (inclusive).
    pub start_ns: u64,
    /// Model-time end of the window (exclusive; the final window of a
    /// run may be partial and close at the finish time).
    pub end_ns: u64,
    /// Counter/histogram deltas over the window plus gauge levels at
    /// its close (see [`Snapshot::delta_since`]).
    pub delta: Snapshot,
}

/// Samples a [`Recorder`] into fixed-width model-time windows.
///
/// Single-owner by design: the driving loop (e.g. the traffic
/// harness) calls [`tick`](FlightRecorder::tick) with the current
/// model time as it advances, and [`finish`](FlightRecorder::finish)
/// once at the end. Because sealing takes a fresh snapshot, the sum
/// of all stored window deltas equals the recorder's end-of-run
/// aggregate exactly — unless windows were dropped, which
/// [`Series::dropped`] and [`Counter::TimeseriesDropped`] make loud.
#[derive(Debug)]
pub struct FlightRecorder {
    recorder: Arc<Recorder>,
    window_ns: u64,
    capacity: usize,
    window_start_ns: u64,
    prev: Snapshot,
    windows: Vec<Window>,
    dropped: u64,
}

impl FlightRecorder {
    /// Starts recording `recorder` with the given sizing. The first
    /// window opens at model time 0; anything already recorded is
    /// attributed to it, so create the flight recorder before the
    /// workload starts if exact reconciliation matters.
    pub fn new(recorder: Arc<Recorder>, config: TimeseriesConfig) -> FlightRecorder {
        let prev = recorder.snapshot();
        FlightRecorder {
            recorder,
            window_ns: config.window_ns.max(1),
            capacity: config.capacity.max(1),
            window_start_ns: 0,
            prev,
            windows: Vec::new(),
            dropped: 0,
        }
    }

    /// Advances model time to `now_ns`, sealing every window that
    /// ended at or before it. Activity recorded since the previous
    /// tick is attributed to the window that was open when it was
    /// recorded-to-the-recorder last — i.e. tick *before* recording an
    /// event that should land in the window containing `now_ns`.
    pub fn tick(&mut self, now_ns: u64) {
        while now_ns >= self.window_start_ns + self.window_ns {
            let end = self.window_start_ns + self.window_ns;
            self.seal(end);
            self.window_start_ns = end;
        }
    }

    /// Seals the residual partial window and returns the finished
    /// series. `now_ns` should be at or past the last tick.
    pub fn finish(mut self, now_ns: u64) -> Series {
        self.tick(now_ns);
        let end = now_ns.max(self.window_start_ns);
        self.seal(end);
        Series {
            window_ns: self.window_ns,
            capacity: self.capacity,
            dropped: self.dropped,
            windows: self.windows,
        }
    }

    fn seal(&mut self, end_ns: u64) {
        let snap = self.recorder.snapshot();
        let delta = snap.delta_since(&self.prev);
        self.prev = snap;
        if !delta.has_activity() {
            return;
        }
        if self.windows.len() >= self.capacity {
            self.dropped += 1;
            self.recorder.incr(Counter::TimeseriesDropped);
            // Fold the bookkeeping increment into the baseline so the
            // drop counter never shows up as next-window "activity" —
            // otherwise a full ring would seal (and drop) an endless
            // tail of windows containing only their own drop marker.
            self.prev.counters[Counter::TimeseriesDropped as usize] += 1;
            return;
        }
        self.windows.push(Window { start_ns: self.window_start_ns, end_ns, delta });
    }
}

/// A finished run of windows, ready for export.
#[derive(Debug, Clone)]
pub struct Series {
    /// Window width in model nanoseconds.
    pub window_ns: u64,
    /// Ring capacity the run was recorded with.
    pub capacity: usize,
    /// Windows discarded because the ring was full.
    pub dropped: u64,
    /// Stored windows, oldest first. Idle windows are elided; gaps
    /// are implicit from `start_ns`/`end_ns`.
    pub windows: Vec<Window>,
}

impl Series {
    /// Serialises the series as the versioned [`SCHEMA`] document.
    ///
    /// Line-oriented: one window object per line, so the document
    /// greps and diffs cleanly and [`parse_timeseries`] can stay a
    /// line parser. Only nonzero counters/gauges and non-empty
    /// histograms are listed. Histograms in deterministic units get
    /// `count`/`sum`/`p50`/`p95`/`p99`/`max`; `wall_ns` histograms
    /// export `count` only, because wall-clock durations differ
    /// run-to-run and the document is otherwise byte-identical for
    /// seeded runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"window_ns\": {},\n", self.window_ns));
        out.push_str(&format!("  \"capacity\": {},\n", self.capacity));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            let comma = if i + 1 == self.windows.len() { "" } else { "," };
            out.push_str(&format!("    {}{comma}\n", window_json(w)));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the series in the Prometheus text exposition format,
    /// one sample per window with the window-close model time (in
    /// milliseconds) as the sample timestamp. Counter families carry
    /// the conventional `_total` suffix and accumulate across
    /// windows; gauges report the per-window level; histograms export
    /// summary-style `quantile` samples (omitted, along with `_sum`,
    /// for nondeterministic `wall_ns` units) plus cumulative
    /// `_count`/`_sum`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            if self.windows.iter().all(|w| w.delta.counter(*c) == 0) {
                continue;
            }
            let name = format!("montsalvat_{}_total", mangle(c.metric_name()));
            out.push_str(&format!("# TYPE {name} counter\n"));
            let mut total = 0u64;
            for w in &self.windows {
                total += w.delta.counter(*c);
                out.push_str(&format!("{name} {total} {}\n", w.end_ns / 1_000_000));
            }
        }
        for g in Gauge::ALL {
            if self.windows.iter().all(|w| w.delta.gauge(*g) == 0) {
                continue;
            }
            let name = format!("montsalvat_{}", mangle(g.metric_name()));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for w in &self.windows {
                out.push_str(&format!("{name} {} {}\n", w.delta.gauge(*g), w.end_ns / 1_000_000));
            }
        }
        for h in Hist::ALL {
            if self.windows.iter().all(|w| w.delta.hist(*h).is_empty()) {
                continue;
            }
            let name = format!("montsalvat_{}", mangle(h.metric_name()));
            let deterministic = h.unit() != "wall_ns";
            out.push_str(&format!("# TYPE {name} summary\n"));
            let (mut count, mut sum) = (0u64, 0u64);
            for w in &self.windows {
                let snap = w.delta.hist(*h);
                if snap.is_empty() {
                    continue;
                }
                let ts = w.end_ns / 1_000_000;
                if deterministic {
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{label}\"}} {} {ts}\n",
                            snap.quantile(q)
                        ));
                    }
                }
                count += snap.count;
                sum = sum.wrapping_add(snap.sum);
                if deterministic {
                    out.push_str(&format!("{name}_sum {sum} {ts}\n"));
                }
                out.push_str(&format!("{name}_count {count} {ts}\n"));
            }
        }
        out
    }
}

fn mangle(metric: &str) -> String {
    metric.replace('.', "_")
}

fn window_json(w: &Window) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!("{{\"start_ns\":{},\"end_ns\":{}", w.start_ns, w.end_ns));
    let mut first = true;
    for c in Counter::ALL {
        let v = w.delta.counter(*c);
        if v == 0 {
            continue;
        }
        out.push_str(if first { ",\"counters\":{" } else { "," });
        first = false;
        out.push_str(&format!("\"{}\":{v}", c.metric_name()));
    }
    if !first {
        out.push('}');
    }
    first = true;
    for g in Gauge::ALL {
        let v = w.delta.gauge(*g);
        if v == 0 {
            continue;
        }
        out.push_str(if first { ",\"gauges\":{" } else { "," });
        first = false;
        out.push_str(&format!("\"{}\":{v}", g.metric_name()));
    }
    if !first {
        out.push('}');
    }
    first = true;
    for h in Hist::ALL {
        let snap = w.delta.hist(*h);
        if snap.is_empty() {
            continue;
        }
        out.push_str(if first { ",\"hists\":{" } else { "," });
        first = false;
        if h.unit() == "wall_ns" {
            // Wall-clock durations are nondeterministic; exporting
            // only the count keeps seeded documents byte-identical.
            out.push_str(&format!("\"{}\":{{\"count\":{}}}", h.metric_name(), snap.count));
        } else {
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                h.metric_name(),
                snap.count,
                snap.sum,
                snap.quantile(0.5),
                snap.quantile(0.95),
                snap.quantile(0.99),
                snap.quantile(1.0),
            ));
        }
    }
    if !first {
        out.push('}');
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Parsing (for `montsalvat timeline` and the ablation gates)
// ---------------------------------------------------------------------------

/// One window as read back from a [`SCHEMA`] document.
#[derive(Debug, Clone, Default)]
pub struct ParsedWindow {
    /// Model-time start of the window (inclusive).
    pub start_ns: u64,
    /// Model-time end of the window (exclusive).
    pub end_ns: u64,
    /// Nonzero counter deltas, by metric name.
    pub counters: Vec<(String, u64)>,
    /// Nonzero gauge levels at window close, by metric name.
    pub gauges: Vec<(String, u64)>,
    /// Non-empty histogram windows, by metric name.
    pub hists: Vec<(String, ParsedHist)>,
}

impl ParsedWindow {
    /// Looks up a counter delta by metric name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Looks up a gauge level by metric name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Looks up a histogram window by metric name.
    pub fn hist(&self, name: &str) -> Option<&ParsedHist> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// One histogram's per-window stats as read back from a document.
/// `sum` and the quantiles are absent for `wall_ns` histograms.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParsedHist {
    /// Observations in the window.
    pub count: u64,
    /// Sum of observed values (deterministic units only).
    pub sum: Option<u64>,
    /// Median observation (bucket upper bound).
    pub p50: Option<u64>,
    /// 95th-percentile observation (bucket upper bound).
    pub p95: Option<u64>,
    /// 99th-percentile observation (bucket upper bound).
    pub p99: Option<u64>,
    /// Largest observation (bucket upper bound).
    pub max: Option<u64>,
}

/// A [`SCHEMA`] document read back into memory.
#[derive(Debug, Clone, Default)]
pub struct ParsedSeries {
    /// Window width in model nanoseconds.
    pub window_ns: u64,
    /// Ring capacity the run was recorded with.
    pub capacity: u64,
    /// Windows discarded because the ring was full.
    pub dropped: u64,
    /// Stored windows, oldest first.
    pub windows: Vec<ParsedWindow>,
}

/// Parses a document produced by [`Series::to_json`]. Line-oriented
/// like `trace::parse_chrome_trace`: tolerant of unknown fields,
/// strict about the schema marker.
pub fn parse_timeseries(json: &str) -> Result<ParsedSeries, String> {
    if !json.contains(SCHEMA) {
        return Err(format!("not a {SCHEMA} document"));
    }
    let mut series = ParsedSeries::default();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.starts_with("{\"start_ns\":") {
            series.windows.push(parse_window(line)?);
        } else if line.starts_with("\"window_ns\":") {
            series.window_ns = field_u64(line, "window_ns").unwrap_or(0);
        } else if line.starts_with("\"capacity\":") {
            series.capacity = field_u64(line, "capacity").unwrap_or(0);
        } else if line.starts_with("\"dropped\":") {
            series.dropped = field_u64(line, "dropped").unwrap_or(0);
        }
    }
    if series.window_ns == 0 {
        return Err("missing or zero window_ns".into());
    }
    Ok(series)
}

fn parse_window(line: &str) -> Result<ParsedWindow, String> {
    let mut w = ParsedWindow {
        start_ns: field_u64(line, "start_ns").ok_or("window missing start_ns")?,
        end_ns: field_u64(line, "end_ns").ok_or("window missing end_ns")?,
        ..ParsedWindow::default()
    };
    if let Some(body) = object_after(line, "counters") {
        for (key, value) in object_entries(body) {
            let v = value.parse::<u64>().map_err(|_| format!("bad counter value for {key}"))?;
            w.counters.push((key.to_owned(), v));
        }
    }
    if let Some(body) = object_after(line, "gauges") {
        for (key, value) in object_entries(body) {
            let v = value.parse::<u64>().map_err(|_| format!("bad gauge value for {key}"))?;
            w.gauges.push((key.to_owned(), v));
        }
    }
    if let Some(body) = object_after(line, "hists") {
        for (key, value) in object_entries(body) {
            let hist = ParsedHist {
                count: field_u64(value, "count").ok_or_else(|| format!("{key} missing count"))?,
                sum: field_u64(value, "sum"),
                p50: field_u64(value, "p50"),
                p95: field_u64(value, "p95"),
                p99: field_u64(value, "p99"),
                max: field_u64(value, "max"),
            };
            w.hists.push((key.to_owned(), hist));
        }
    }
    Ok(w)
}

/// Extracts the body of the `{...}` object following `"key":` —
/// brace-matched, so nested objects (histogram stats) survive.
fn object_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":{{");
    let start = line.find(&pat)? + pat.len();
    let bytes = line.as_bytes();
    let mut depth = 1usize;
    for (offset, &b) in bytes[start..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[start..start + offset]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits an object body into `(key, raw value)` pairs at top-level
/// commas. Keys are metric names (never contain quotes or braces).
fn object_entries(body: &str) -> Vec<(&str, &str)> {
    fn flush<'a>(body: &'a str, start: usize, end: usize, entries: &mut Vec<(&'a str, &'a str)>) {
        let item = body[start..end].trim();
        if item.is_empty() {
            return;
        }
        if let Some(colon) = item.find(':') {
            let key = item[..colon].trim().trim_matches('"');
            let value = item[colon + 1..].trim();
            entries.push((key, value));
        }
    }
    let mut entries = Vec::new();
    let (mut depth, mut item_start) = (0usize, 0usize);
    for (i, &b) in body.as_bytes().iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                flush(body, item_start, i, &mut entries);
                item_start = i + 1;
            }
            _ => {}
        }
    }
    flush(body, item_start, body.len(), &mut entries);
    entries
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

// ---------------------------------------------------------------------------
// Spike detection and attribution
// ---------------------------------------------------------------------------

/// The per-window facts the spike detector looks at — buildable from
/// both a live [`Window`] and a [`ParsedWindow`], so the CLI (which
/// reads exports) and the ablation bin (which holds the live series)
/// run the identical detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowView {
    /// Model-time start of the window.
    pub start_ns: u64,
    /// Model-time end of the window.
    pub end_ns: u64,
    /// Traffic requests completed in the window.
    pub requests: u64,
    /// Latency observations in the window.
    pub latency_count: u64,
    /// Per-window p95 request latency (bucket upper bound, model ns).
    pub latency_p95: u64,
    /// GC activity: collections plus recorded pauses.
    pub gc_events: u64,
    /// EPC page faults raised in the window.
    pub epc_faults: u64,
    /// Switchless posts that fell back to classic crossings.
    pub fallbacks: u64,
    /// Worker-pool churn: scale-ups/downs plus tuner decisions.
    pub scale_events: u64,
    /// Mailbox depth observed at window close.
    pub queue_depth: u64,
    /// Resident switchless workers at window close.
    pub workers: u64,
    /// In-flight scheduler tasks (posted, uncompleted) at window close
    /// — zero under the thread-per-worker pool.
    pub sched_inflight: u64,
    /// Scheduler tasks the timeout worker swept to classic fallback.
    pub sched_timeouts: u64,
    /// Tasks stolen between scheduler executors in the window.
    pub sched_steals: u64,
}

impl WindowView {
    /// Projects a live window.
    pub fn from_window(w: &Window) -> WindowView {
        let d = &w.delta;
        WindowView {
            start_ns: w.start_ns,
            end_ns: w.end_ns,
            requests: d.counter(Counter::TrafficRequests),
            latency_count: d.hist(Hist::TrafficLatencyNs).count,
            latency_p95: d.hist(Hist::TrafficLatencyNs).quantile(0.95),
            gc_events: d.counter(Counter::GcCollections) + d.hist(Hist::GcPauseNs).count,
            epc_faults: d.counter(Counter::EpcFaults),
            fallbacks: d.counter(Counter::SwitchlessFallbacks),
            scale_events: d.counter(Counter::SwitchlessScaleUps)
                + d.counter(Counter::SwitchlessScaleDowns)
                + d.counter(Counter::SwitchlessTuneUps)
                + d.counter(Counter::SwitchlessTuneDowns),
            queue_depth: d.gauge(Gauge::SwitchlessQueueDepth),
            workers: d.gauge(Gauge::SwitchlessWorkers),
            sched_inflight: d.gauge(Gauge::SchedInflight),
            sched_timeouts: d.counter(Counter::SchedTimeouts),
            sched_steals: d.counter(Counter::SchedSteals),
        }
    }

    /// Projects a window read back from an export.
    pub fn from_parsed(w: &ParsedWindow) -> WindowView {
        let latency = w.hist("traffic.request_latency_ns");
        WindowView {
            start_ns: w.start_ns,
            end_ns: w.end_ns,
            requests: w.counter("traffic.requests"),
            latency_count: latency.map(|h| h.count).unwrap_or(0),
            latency_p95: latency.and_then(|h| h.p95).unwrap_or(0),
            gc_events: w.counter("gc.collections")
                + w.hist("gc.pause_ns").map(|h| h.count).unwrap_or(0),
            epc_faults: w.counter("sgx.epc_faults"),
            fallbacks: w.counter("rmi.switchless_fallbacks"),
            scale_events: w.counter("rmi.switchless_scale_ups")
                + w.counter("rmi.switchless_scale_downs")
                + w.counter("rmi.switchless_tune_ups")
                + w.counter("rmi.switchless_tune_downs"),
            queue_depth: w.gauge("rmi.switchless_queue_depth"),
            workers: w.gauge("rmi.switchless_workers"),
            sched_inflight: w.gauge("rmi.sched_inflight"),
            sched_timeouts: w.counter("rmi.sched_timeouts"),
            sched_steals: w.counter("rmi.sched_steals"),
        }
    }
}

/// How strongly a co-occurrence implicates a cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Circumstantial: the pattern is consistent with the cause but
    /// common in healthy windows too.
    Low,
    /// The cause was active in the window and plausibly on the
    /// latency path.
    Medium,
    /// The cause is rare, co-located, and directly charges latency.
    High,
}

impl Confidence {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Confidence::High => "high",
            Confidence::Medium => "medium",
            Confidence::Low => "low",
        }
    }
}

/// One candidate cause for a spike.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Stable cause tag: `gc`, `epc-paging`, `switchless-fallback`,
    /// `scale`, `queue-pressure`, `arrival-burst`, or `unattributed`.
    pub cause: &'static str,
    /// Human-readable co-occurrence evidence.
    pub evidence: String,
    /// Confidence note for the attribution.
    pub confidence: Confidence,
}

/// One flagged window.
#[derive(Debug, Clone)]
pub struct Spike {
    /// Index into the view slice handed to [`detect_spikes`].
    pub window_index: usize,
    /// Model-time start of the flagged window.
    pub start_ns: u64,
    /// Model-time end of the flagged window.
    pub end_ns: u64,
    /// The window's p95 latency that tripped the threshold.
    pub latency_p95: u64,
    /// Candidate causes, strongest first.
    pub causes: Vec<Attribution>,
}

/// Detector output: the baseline, the threshold, and the spikes.
#[derive(Debug, Clone, Default)]
pub struct SpikeReport {
    /// Median per-window p95 over windows with latency observations.
    pub median_p95: u64,
    /// Flagging threshold: `max(k × median, median + 1)`.
    pub threshold: u64,
    /// Windows with latency observations (the detector's sample size;
    /// fewer than [`MIN_ACTIVE_WINDOWS`] yields an empty report).
    pub active_windows: usize,
    /// Flagged windows, oldest first.
    pub spikes: Vec<Spike>,
}

/// Minimum number of latency-bearing windows before the median is
/// meaningful enough to flag anything.
pub const MIN_ACTIVE_WINDOWS: usize = 3;

/// Default spike multiplier `k`.
pub const DEFAULT_SPIKE_FACTOR: f64 = 4.0;

/// Flags windows whose p95 latency exceeds `k×` the run median (over
/// latency-bearing windows) and attributes each to co-occurring
/// events. Pure and deterministic: same views and `k` → same report.
pub fn detect_spikes(views: &[WindowView], k: f64) -> SpikeReport {
    let active: Vec<usize> = (0..views.len()).filter(|&i| views[i].latency_count > 0).collect();
    let mut report = SpikeReport { active_windows: active.len(), ..SpikeReport::default() };
    if active.len() < MIN_ACTIVE_WINDOWS {
        return report;
    }
    let mut p95s: Vec<u64> = active.iter().map(|&i| views[i].latency_p95).collect();
    p95s.sort_unstable();
    report.median_p95 = p95s[nearest_rank(p95s.len() as u64, 0.5) as usize - 1];
    let k = if k.is_finite() && k > 1.0 { k } else { DEFAULT_SPIKE_FACTOR };
    report.threshold = ((report.median_p95 as f64 * k) as u64).max(report.median_p95 + 1);

    let median_of = |f: fn(&WindowView) -> u64| -> u64 {
        let mut vals: Vec<u64> = active.iter().map(|&i| f(&views[i])).collect();
        vals.sort_unstable();
        vals[nearest_rank(vals.len() as u64, 0.5) as usize - 1]
    };
    let median_faults = median_of(|v| v.epc_faults);
    let median_queue = median_of(|v| v.queue_depth);
    let median_requests = median_of(|v| v.requests);
    let median_inflight = median_of(|v| v.sched_inflight);

    for &i in &active {
        let v = &views[i];
        if v.latency_p95 < report.threshold {
            continue;
        }
        let causes = attribute(v, median_faults, median_queue, median_requests, median_inflight);
        report.spikes.push(Spike {
            window_index: i,
            start_ns: v.start_ns,
            end_ns: v.end_ns,
            latency_p95: v.latency_p95,
            causes,
        });
    }
    report
}

fn attribute(
    v: &WindowView,
    median_faults: u64,
    median_queue: u64,
    median_requests: u64,
    median_inflight: u64,
) -> Vec<Attribution> {
    let mut causes = Vec::new();
    if v.gc_events > 0 {
        causes.push(Attribution {
            cause: "gc",
            evidence: format!("{} GC event(s) in the window", v.gc_events),
            confidence: Confidence::High,
        });
    }
    if v.epc_faults > 0 && v.epc_faults >= 2 * median_faults.max(1) {
        causes.push(Attribution {
            cause: "epc-paging",
            evidence: format!("{} EPC faults vs run median {median_faults}", v.epc_faults),
            confidence: if median_faults == 0 { Confidence::High } else { Confidence::Medium },
        });
    }
    if v.fallbacks > 0 {
        causes.push(Attribution {
            cause: "switchless-fallback",
            evidence: format!("{} classic fallback(s) under full mailbox", v.fallbacks),
            confidence: Confidence::Medium,
        });
    }
    if v.scale_events > 0 {
        causes.push(Attribution {
            cause: "scale",
            evidence: format!("{} worker scale/tune event(s)", v.scale_events),
            confidence: Confidence::Medium,
        });
    }
    // Queue pressure comes in three evidence tiers, strongest first:
    // scheduler task timeouts (an overdue queue provably swept work to
    // the fallback path), an elevated mailbox depth, or an elevated
    // in-flight scheduler task count. One attribution, best evidence.
    if v.sched_timeouts > 0 {
        causes.push(Attribution {
            cause: "queue-pressure",
            evidence: format!(
                "{} scheduler task timeout(s) swept to classic fallback ({} in flight)",
                v.sched_timeouts, v.sched_inflight
            ),
            confidence: Confidence::High,
        });
    } else if v.queue_depth > 0 && v.queue_depth >= 2 * median_queue.max(1) {
        causes.push(Attribution {
            cause: "queue-pressure",
            evidence: format!("mailbox depth {} vs run median {median_queue}", v.queue_depth),
            confidence: Confidence::Medium,
        });
    } else if v.sched_inflight > 0 && v.sched_inflight >= 2 * median_inflight.max(1) {
        causes.push(Attribution {
            cause: "queue-pressure",
            evidence: format!(
                "{} in-flight scheduler tasks vs run median {median_inflight}",
                v.sched_inflight
            ),
            confidence: Confidence::Medium,
        });
    }
    if v.requests >= 2 * median_requests.max(1) {
        causes.push(Attribution {
            cause: "arrival-burst",
            evidence: format!("{} requests vs run median {median_requests}", v.requests),
            confidence: Confidence::Low,
        });
    }
    if causes.is_empty() {
        causes.push(Attribution {
            cause: "unattributed",
            evidence: "no co-occurring GC/paging/fallback/scale/queue events".into(),
            confidence: Confidence::Low,
        });
    }
    causes.sort_by_key(|c| std::cmp::Reverse(c.confidence));
    causes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_and_flight(window_ns: u64, capacity: usize) -> (Arc<Recorder>, FlightRecorder) {
        let recorder = Recorder::new();
        let flight = FlightRecorder::new(
            Arc::clone(&recorder),
            TimeseriesConfig { enabled: true, window_ns, capacity },
        );
        (recorder, flight)
    }

    #[test]
    fn windows_partition_activity_and_reconcile() {
        let (recorder, mut flight) = recorder_and_flight(1000, 64);
        recorder.add(Counter::RmiCalls, 3);
        recorder.record(Hist::TrafficLatencyNs, 500);
        flight.tick(1000); // seals [0, 1000) with the 3 calls
        recorder.add(Counter::RmiCalls, 4);
        flight.tick(3500); // seals [1000, 2000) with 4; [2000, 3000) idle
        recorder.incr(Counter::RmiCalls);
        let series = flight.finish(3600); // partial [3000, 3600) with 1

        assert_eq!(series.windows.len(), 3, "idle window elided");
        assert_eq!(series.windows[0].start_ns, 0);
        assert_eq!(series.windows[0].end_ns, 1000);
        assert_eq!(series.windows[0].delta.counter(Counter::RmiCalls), 3);
        assert_eq!(series.windows[0].delta.hist(Hist::TrafficLatencyNs).count, 1);
        assert_eq!(series.windows[1].delta.counter(Counter::RmiCalls), 4);
        assert_eq!(series.windows[2].start_ns, 3000);
        assert_eq!(series.windows[2].end_ns, 3600);
        assert_eq!(series.windows[2].delta.counter(Counter::RmiCalls), 1);

        let window_sum: u64 =
            series.windows.iter().map(|w| w.delta.counter(Counter::RmiCalls)).sum();
        assert_eq!(window_sum, recorder.snapshot().counter(Counter::RmiCalls));
    }

    #[test]
    fn gauges_report_the_level_at_window_close() {
        let (recorder, mut flight) = recorder_and_flight(1000, 64);
        recorder.gauge_set(Gauge::SwitchlessQueueDepth, 7);
        recorder.incr(Counter::RmiCalls);
        flight.tick(1000);
        recorder.gauge_set(Gauge::SwitchlessQueueDepth, 2);
        recorder.incr(Counter::RmiCalls);
        let series = flight.finish(1500);
        assert_eq!(series.windows[0].delta.gauge(Gauge::SwitchlessQueueDepth), 7);
        assert_eq!(series.windows[1].delta.gauge(Gauge::SwitchlessQueueDepth), 2);
    }

    /// The scheduler metrics reconcile across windows like every other
    /// metric: `rmi.sched_inflight` reports the level at each window
    /// close, while the steal/timeout counters partition so the
    /// per-window deltas sum back to the recorder totals.
    #[test]
    fn scheduler_windows_reconcile_levels_and_partition_counters() {
        let (recorder, mut flight) = recorder_and_flight(1000, 64);
        recorder.gauge_set(Gauge::SchedInflight, 12_000);
        recorder.add(Counter::SchedSteals, 3);
        recorder.incr(Counter::SchedTimeouts);
        flight.tick(1000);
        recorder.gauge_set(Gauge::SchedInflight, 40);
        recorder.add(Counter::SchedSteals, 9);
        let series = flight.finish(1800);

        assert_eq!(series.windows[0].delta.gauge(Gauge::SchedInflight), 12_000);
        assert_eq!(series.windows[1].delta.gauge(Gauge::SchedInflight), 40);
        assert_eq!(series.windows[0].delta.counter(Counter::SchedSteals), 3);
        assert_eq!(series.windows[1].delta.counter(Counter::SchedSteals), 9);
        assert_eq!(series.windows[0].delta.counter(Counter::SchedTimeouts), 1);
        assert_eq!(series.windows[1].delta.counter(Counter::SchedTimeouts), 0);

        let steal_sum: u64 =
            series.windows.iter().map(|w| w.delta.counter(Counter::SchedSteals)).sum();
        assert_eq!(steal_sum, recorder.snapshot().counter(Counter::SchedSteals));

        // And the view layer carries them through a JSON round trip.
        let parsed = parse_timeseries(&series.to_json()).unwrap();
        let views: Vec<WindowView> = parsed.windows.iter().map(WindowView::from_parsed).collect();
        assert_eq!(views[0].sched_inflight, 12_000);
        assert_eq!(views[0].sched_steals, 3);
        assert_eq!(views[0].sched_timeouts, 1);
        assert_eq!(views[1].sched_inflight, 40);
    }

    #[test]
    fn ring_fills_then_drops_and_counts() {
        let (recorder, mut flight) = recorder_and_flight(100, 2);
        for window in 0..4u64 {
            recorder.incr(Counter::RmiCalls);
            flight.tick((window + 1) * 100);
        }
        let series = flight.finish(400);
        assert_eq!(series.windows.len(), 2, "ring capacity");
        assert_eq!(series.dropped, 2);
        assert_eq!(recorder.snapshot().counter(Counter::TimeseriesDropped), 2);
        assert_eq!(series.windows[0].start_ns, 0, "fill-then-drop keeps the oldest");
    }

    #[test]
    fn export_parses_back_losslessly() {
        let (recorder, mut flight) = recorder_and_flight(1000, 64);
        recorder.add(Counter::RmiCalls, 5);
        recorder.add(Counter::TrafficRequests, 5);
        recorder.gauge_set(Gauge::SwitchlessWorkers, 2);
        for latency in [300u64, 400, 500, 6000, 900] {
            recorder.record(Hist::TrafficLatencyNs, latency);
        }
        recorder.record(Hist::GcPauseNs, 123_456); // wall_ns: count-only
        flight.tick(1000);
        recorder.incr(Counter::RmiCalls);
        let series = flight.finish(1250);
        let json = series.to_json();

        let parsed = parse_timeseries(&json).expect("parses");
        assert_eq!(parsed.window_ns, 1000);
        assert_eq!(parsed.dropped, 0);
        assert_eq!(parsed.windows.len(), 2);
        let w0 = &parsed.windows[0];
        assert_eq!(w0.counter("rmi.calls"), 5);
        assert_eq!(w0.counter("traffic.requests"), 5);
        assert_eq!(w0.gauge("rmi.switchless_workers"), 2);
        let latency = w0.hist("traffic.request_latency_ns").expect("latency hist");
        assert_eq!(latency.count, 5);
        assert_eq!(latency.sum, Some(300 + 400 + 500 + 6000 + 900));
        assert_eq!(latency.p95, Some(8192), "p95 is 6000's bucket upper bound");
        let pause = w0.hist("gc.pause_ns").expect("pause hist");
        assert_eq!(pause.count, 1);
        assert_eq!(pause.sum, None, "wall_ns exports count only");
        assert_eq!(parsed.windows[1].counter("rmi.calls"), 1);
    }

    #[test]
    fn prometheus_exposition_accumulates_counters() {
        let (recorder, mut flight) = recorder_and_flight(1_000_000, 64);
        recorder.add(Counter::RmiCalls, 3);
        recorder.record(Hist::TrafficLatencyNs, 700);
        flight.tick(1_000_000);
        recorder.add(Counter::RmiCalls, 2);
        let series = flight.finish(2_000_000);
        let text = series.to_prometheus();
        assert!(text.contains("# TYPE montsalvat_rmi_calls_total counter"));
        assert!(text.contains("montsalvat_rmi_calls_total 3 1\n"));
        assert!(text.contains("montsalvat_rmi_calls_total 5 2\n"), "cumulative:\n{text}");
        assert!(text.contains("montsalvat_traffic_request_latency_ns{quantile=\"0.95\"}"));
        assert!(!text.contains("montsalvat_gc_pause_ns{"), "no samples for empty families");
    }

    #[test]
    fn detector_flags_and_attributes_a_gc_spike() {
        let mut views: Vec<WindowView> = (0..8)
            .map(|i| WindowView {
                start_ns: i * 1000,
                end_ns: (i + 1) * 1000,
                requests: 10,
                latency_count: 10,
                latency_p95: 4096,
                ..WindowView::default()
            })
            .collect();
        views[5].latency_p95 = 1 << 22; // way past 4× the median
        views[5].gc_events = 1;
        let report = detect_spikes(&views, DEFAULT_SPIKE_FACTOR);
        assert_eq!(report.median_p95, 4096);
        assert_eq!(report.spikes.len(), 1);
        let spike = &report.spikes[0];
        assert_eq!(spike.window_index, 5);
        assert_eq!(spike.causes[0].cause, "gc");
        assert_eq!(spike.causes[0].confidence, Confidence::High);
    }

    #[test]
    fn detector_needs_enough_active_windows() {
        let views = vec![
            WindowView { latency_count: 5, latency_p95: 100, ..WindowView::default() },
            WindowView { latency_count: 5, latency_p95: 1 << 30, ..WindowView::default() },
        ];
        let report = detect_spikes(&views, 4.0);
        assert!(report.spikes.is_empty());
        assert_eq!(report.active_windows, 2);
    }

    #[test]
    fn unattributed_spikes_say_so() {
        let mut views: Vec<WindowView> = (0..5)
            .map(|_| WindowView { latency_count: 4, latency_p95: 512, ..WindowView::default() })
            .collect();
        views[2].latency_p95 = 1 << 20;
        let report = detect_spikes(&views, 4.0);
        assert_eq!(report.spikes.len(), 1);
        assert_eq!(report.spikes[0].causes.len(), 1);
        assert_eq!(report.spikes[0].causes[0].cause, "unattributed");
        assert_eq!(report.spikes[0].causes[0].confidence, Confidence::Low);
    }

    #[test]
    fn parsed_and_live_views_agree() {
        let (recorder, flight) = recorder_and_flight(1000, 64);
        recorder.add(Counter::TrafficRequests, 4);
        recorder.incr(Counter::GcCollections);
        recorder.incr(Counter::SwitchlessFallbacks);
        recorder.gauge_set(Gauge::SwitchlessQueueDepth, 3);
        recorder.gauge_set(Gauge::SwitchlessWorkers, 2);
        recorder.gauge_set(Gauge::SchedInflight, 11);
        recorder.add(Counter::SchedTimeouts, 2);
        recorder.add(Counter::SchedSteals, 5);
        for latency in [200u64, 300, 400, 50_000] {
            recorder.record(Hist::TrafficLatencyNs, latency);
        }
        let series = flight.finish(1000);
        let live = WindowView::from_window(&series.windows[0]);
        let parsed = parse_timeseries(&series.to_json()).unwrap();
        let round = WindowView::from_parsed(&parsed.windows[0]);
        assert_eq!(live.requests, round.requests);
        assert_eq!(live.latency_count, round.latency_count);
        assert_eq!(live.latency_p95, round.latency_p95);
        assert_eq!(live.gc_events, round.gc_events);
        assert_eq!(live.fallbacks, round.fallbacks);
        assert_eq!(live.queue_depth, round.queue_depth);
        assert_eq!(live.workers, round.workers);
        assert_eq!((live.sched_inflight, round.sched_inflight), (11, 11));
        assert_eq!((live.sched_timeouts, round.sched_timeouts), (2, 2));
        assert_eq!((live.sched_steals, round.sched_steals), (5, 5));
    }

    /// Scheduler-evidence queue pressure: a window with swept task
    /// timeouts is attributed `queue-pressure` at high confidence, and
    /// a window whose in-flight task level is elevated (without any
    /// mailbox-depth signal) is attributed `queue-pressure` too.
    #[test]
    fn detector_names_queue_pressure_from_scheduler_evidence() {
        let mut views: Vec<WindowView> = (0..8)
            .map(|i| WindowView {
                start_ns: i * 1000,
                end_ns: (i + 1) * 1000,
                requests: 10,
                latency_count: 10,
                latency_p95: 4096,
                sched_inflight: 4,
                ..WindowView::default()
            })
            .collect();
        views[3].latency_p95 = 1 << 22;
        views[3].sched_timeouts = 7;
        views[6].latency_p95 = 1 << 22;
        views[6].sched_inflight = 4000; // way past 2× the run median

        let report = detect_spikes(&views, DEFAULT_SPIKE_FACTOR);
        assert_eq!(report.spikes.len(), 2);

        let swept = &report.spikes[0];
        assert_eq!(swept.window_index, 3);
        assert_eq!(swept.causes[0].cause, "queue-pressure");
        assert_eq!(swept.causes[0].confidence, Confidence::High);
        assert!(
            swept.causes[0].evidence.contains("7 scheduler task timeout(s)"),
            "evidence names the sweep: {}",
            swept.causes[0].evidence
        );

        let deep = &report.spikes[1];
        assert_eq!(deep.window_index, 6);
        assert_eq!(deep.causes[0].cause, "queue-pressure");
        assert_eq!(deep.causes[0].confidence, Confidence::Medium);
        assert!(
            deep.causes[0].evidence.contains("4000 in-flight scheduler tasks"),
            "evidence names the in-flight level: {}",
            deep.causes[0].evidence
        );
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = TimeseriesConfig::default();
        assert!(config.enabled);
        assert_eq!(config.window_ns, DEFAULT_WINDOW_NS);
        assert_eq!(config.capacity, DEFAULT_CAPACITY);
    }
}
