//! Causal tracing: bounded per-lane ring buffers of structured
//! [`TraceEvent`]s, span contexts that propagate across the
//! enclave boundary, and Chrome trace-event JSON export
//! (Perfetto-loadable).
//!
//! The metrics layer (the rest of this crate) answers *how much*;
//! this module answers *which call chain*. Every boundary crossing —
//! proxy RMI call, ecall/ocall transition, shim relay, switchless
//! queue hop, GC pause — records begin/end events carrying a
//! `(trace_id, span_id, parent_span_id)` triple, so a call entering
//! the enclave and issuing nested ocalls produces one connected tree
//! spanning both runtimes.
//!
//! Design constraints, in order:
//!
//! 1. **Never block the hot path.** Recording reserves a slot with a
//!    single `fetch_add`; a full ring counts the drop and returns.
//!    The reserved slot is written under a per-slot mutex that is
//!    uncontended by construction (each index is handed to exactly
//!    one writer; only an export in progress can briefly share it).
//! 2. **Allocation-free when disabled.** Event names are built by
//!    closures that only run once the enabled check has passed.
//! 3. **Two clocks.** Every event carries model time (from the cost
//!    clock — deterministic under `ClockMode::Virtual`) *and* wall
//!    time from the tracer's origin. The exported timeline is model
//!    time; wall time rides along in `args`.
//!
//! Sizing knobs (read when a tracer is enabled):
//! `MONTSALVAT_TRACE_BUFFER` — events per lane (default 65536);
//! `MONTSALVAT_TRACE=1` — enable the process-global tracer at first
//! use. See `docs/TRACING.md`.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

use crate::recorder::Recorder;
use crate::Counter;

/// Identifier of the JSON document written by `--trace-out`.
///
/// Same versioning contract as [`crate::SCHEMA`]: field additions keep
/// the version, renames/removals bump it.
pub const TRACE_SCHEMA: &str = "montsalvat.trace/v1";

/// Default ring capacity per lane, overridable with
/// `MONTSALVAT_TRACE_BUFFER`.
pub const DEFAULT_BUFFER: usize = 65_536;

/// Which runtime ("process" in the Chrome trace sense) an event
/// belongs to. Mirrors `montsalvat_core::exec::Side` without a
/// dependency on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The enclave runtime (trusted image).
    Trusted,
    /// The host runtime (untrusted image).
    Untrusted,
}

impl Lane {
    /// Chrome trace `pid` for this lane.
    pub const fn pid(self) -> u64 {
        match self {
            Lane::Trusted => 1,
            Lane::Untrusted => 2,
        }
    }

    /// Human label used for the `process_name` metadata event.
    pub const fn label(self) -> &'static str {
        match self {
            Lane::Trusted => "trusted (enclave)",
            Lane::Untrusted => "untrusted (host)",
        }
    }

    const fn index(self) -> usize {
        match self {
            Lane::Trusted => 0,
            Lane::Untrusted => 1,
        }
    }
}

/// Event phase, mapping onto Chrome trace-event `ph` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span opens (`ph: "B"`).
    Begin,
    /// Span closes (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

impl TracePhase {
    /// The Chrome `ph` code.
    pub const fn ph(self) -> char {
        match self {
            TracePhase::Begin => 'B',
            TracePhase::End => 'E',
            TracePhase::Instant => 'i',
        }
    }
}

/// The compact identity a span hands to its children — the part of an
/// event that crosses the enclave boundary inside the RMI wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifies the whole call tree (one per root span).
    pub trace_id: u64,
    /// Identifies this span within the tree; children record it as
    /// their `parent_span_id`.
    pub span_id: u64,
}

/// One structured event in a ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Which runtime recorded the event.
    pub lane: Lane,
    /// Category: `"rmi"`, `"sgx"`, `"shim"`, `"serde"`, `"queue"`,
    /// `"exec"`, `"gc"`.
    pub cat: &'static str,
    /// Span name (e.g. `"Account.relay$balance"`, `"ecall:relay"`).
    pub name: String,
    /// Call-tree identifier; doubles as the Chrome `tid` so each tree
    /// renders as one track per lane.
    pub trace_id: u64,
    /// This span's identifier (0 for instants outside any span).
    pub span_id: u64,
    /// The enclosing span's identifier, 0 at the root.
    pub parent_span_id: u64,
    /// Model time (cost-clock nanoseconds) — the exported timeline.
    pub model_ns: u64,
    /// Wall nanoseconds since the tracer was created.
    pub wall_ns: u64,
}

/// Handle for a span that has begun but not yet finished. Carries
/// everything the matching end event needs.
#[derive(Debug)]
pub struct ActiveSpan {
    ctx: SpanContext,
    lane: Lane,
    cat: &'static str,
    name: String,
}

impl ActiveSpan {
    /// The context children should inherit (and the wire should
    /// carry) while this span is open.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

/// Fill-then-drop bounded buffer. `next` reserves slots; once it runs
/// past capacity every further event is counted in `dropped` and
/// discarded, leaving the captured prefix intact (the paper workloads
/// we trace are short; a fill-then-drop prefix keeps whole trees
/// rather than shredding them the way a wrap-around would).
struct Ring {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Returns `false` (and counts the drop) when full. Never blocks:
    /// the slot index is uniquely owned, so the per-slot lock only
    /// ever overlaps with a concurrent export's clone.
    fn push(&self, event: TraceEvent) -> bool {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut slot = self.slots[idx].lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(event);
        true
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let filled = self.next.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..filled]
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect()
    }

    fn clear(&self) {
        let filled = self.next.load(Ordering::Acquire).min(self.slots.len());
        for slot in &self.slots[..filled] {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        self.dropped.store(0, Ordering::Relaxed);
        self.next.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// A per-process (or per-test) trace sink: one ring per lane, a span
/// id allocator, and the wall-clock origin.
///
/// Disabled by default — every record call first checks one relaxed
/// atomic and touches nothing else, so leaving instrumentation
/// compiled in costs a branch. [`Tracer::enable`] allocates the rings
/// lazily.
pub struct Tracer {
    enabled: AtomicBool,
    rings: OnceLock<[Ring; 2]>,
    next_id: AtomicU64,
    origin: Instant,
    /// Mirrors drops into [`Counter::TraceDropped`] on the attached
    /// recorder so the telemetry export reconciles with the trace.
    recorder: Mutex<Weak<Recorder>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish_non_exhaustive()
    }
}

fn buffer_from_env() -> usize {
    std::env::var("MONTSALVAT_TRACE_BUFFER")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(8))
        .unwrap_or(DEFAULT_BUFFER)
}

impl Tracer {
    /// Creates a disabled tracer.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: AtomicBool::new(false),
            rings: OnceLock::new(),
            next_id: AtomicU64::new(1),
            origin: Instant::now(),
            recorder: Mutex::new(Weak::new()),
        })
    }

    /// The process-global tracer that [`CostModel`]s attach to by
    /// default. Starts disabled unless `MONTSALVAT_TRACE=1`.
    ///
    /// [`CostModel`]: ../../sgx_sim/cost/struct.CostModel.html
    pub fn global() -> &'static Arc<Tracer> {
        static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let tracer = Tracer::new();
            if std::env::var("MONTSALVAT_TRACE").map(|v| v == "1").unwrap_or(false) {
                tracer.enable();
            }
            tracer
        })
    }

    /// Enables capture with the `MONTSALVAT_TRACE_BUFFER` capacity
    /// (default [`DEFAULT_BUFFER`] events per lane).
    pub fn enable(&self) {
        self.enable_with_capacity(buffer_from_env());
    }

    /// Enables capture with an explicit per-lane capacity. The first
    /// enable fixes the capacity; later calls only flip the flag.
    pub fn enable_with_capacity(&self, capacity: usize) {
        let capacity = capacity.max(8);
        self.rings.get_or_init(|| [Ring::with_capacity(capacity), Ring::with_capacity(capacity)]);
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops capture (buffers are kept for export).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether events are currently being captured. The fast path of
    /// every record call.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Mirrors future drops into `recorder`'s
    /// [`Counter::TraceDropped`].
    pub fn attach_recorder(&self, recorder: &Arc<Recorder>) {
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) = Arc::downgrade(recorder);
    }

    /// Allocates a fresh span (or trace) identifier. Never 0.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn wall_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Wall-clock nanoseconds since this tracer's origin — the same
    /// clock events stamp into their `wall_ns` field. Use it to take a
    /// begin timestamp for a later [`Tracer::span_at`].
    pub fn wall_now_ns(&self) -> u64 {
        self.wall_ns()
    }

    fn push(&self, lane: Lane, event: TraceEvent) {
        let Some(rings) = self.rings.get() else { return };
        if !rings[lane.index()].push(event) {
            if let Some(recorder) =
                self.recorder.lock().unwrap_or_else(|e| e.into_inner()).upgrade()
            {
                recorder.incr(Counter::TraceDropped);
            }
        }
    }

    /// Opens a span. Returns `None` without evaluating `name` (and
    /// without allocating) when disabled.
    ///
    /// `parent = None` starts a new call tree; otherwise the span
    /// joins the parent's tree.
    pub fn start(
        &self,
        lane: Lane,
        cat: &'static str,
        parent: Option<SpanContext>,
        model_ns: u64,
        name: impl FnOnce() -> String,
    ) -> Option<ActiveSpan> {
        if !self.is_enabled() {
            return None;
        }
        let span_id = self.next_id();
        let (trace_id, parent_span_id) = match parent {
            Some(p) => (p.trace_id, p.span_id),
            None => (self.next_id(), 0),
        };
        let name = name();
        self.push(
            lane,
            TraceEvent {
                phase: TracePhase::Begin,
                lane,
                cat,
                name: name.clone(),
                trace_id,
                span_id,
                parent_span_id,
                model_ns,
                wall_ns: self.wall_ns(),
            },
        );
        Some(ActiveSpan { ctx: SpanContext { trace_id, span_id }, lane, cat, name })
    }

    /// Closes a span opened by [`Tracer::start`].
    pub fn finish(&self, span: ActiveSpan, model_ns: u64) {
        let wall_ns = self.wall_ns();
        let ActiveSpan { ctx, lane, cat, name } = span;
        self.push(
            lane,
            TraceEvent {
                phase: TracePhase::End,
                lane,
                cat,
                name,
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_span_id: 0,
                model_ns,
                wall_ns,
            },
        );
    }

    /// Records a complete span from explicit begin/end timestamps —
    /// used when the duration is only known after the fact (e.g.
    /// switchless queue wait, reconstructed from the job's posting
    /// timestamp at drain time).
    #[allow(clippy::too_many_arguments)]
    pub fn span_at(
        &self,
        lane: Lane,
        cat: &'static str,
        parent: Option<SpanContext>,
        begin_model_ns: u64,
        end_model_ns: u64,
        begin_wall_ns: u64,
        name: impl FnOnce() -> String,
    ) {
        if !self.is_enabled() {
            return;
        }
        let span_id = self.next_id();
        let (trace_id, parent_span_id) = match parent {
            Some(p) => (p.trace_id, p.span_id),
            None => (self.next_id(), 0),
        };
        let name = name();
        self.push(
            lane,
            TraceEvent {
                phase: TracePhase::Begin,
                lane,
                cat,
                name: name.clone(),
                trace_id,
                span_id,
                parent_span_id,
                model_ns: begin_model_ns,
                wall_ns: begin_wall_ns,
            },
        );
        self.push(
            lane,
            TraceEvent {
                phase: TracePhase::End,
                lane,
                cat,
                name,
                trace_id,
                span_id,
                parent_span_id: 0,
                model_ns: end_model_ns.max(begin_model_ns),
                wall_ns: self.wall_ns(),
            },
        );
    }

    /// Records a point event (e.g. an AEX) attributed to `parent`'s
    /// tree when given.
    pub fn instant(
        &self,
        lane: Lane,
        cat: &'static str,
        parent: Option<SpanContext>,
        model_ns: u64,
        name: impl FnOnce() -> String,
    ) {
        if !self.is_enabled() {
            return;
        }
        let (trace_id, parent_span_id) = match parent {
            Some(p) => (p.trace_id, p.span_id),
            None => (0, 0),
        };
        self.push(
            lane,
            TraceEvent {
                phase: TracePhase::Instant,
                lane,
                cat,
                name: name(),
                trace_id,
                span_id: 0,
                parent_span_id,
                model_ns,
                wall_ns: self.wall_ns(),
            },
        );
    }

    /// Events dropped because a lane's ring was full.
    pub fn dropped(&self) -> u64 {
        self.rings
            .get()
            .map(|rings| rings.iter().map(|r| r.dropped.load(Ordering::Relaxed)).sum())
            .unwrap_or(0)
    }

    /// Events currently captured across both lanes.
    pub fn event_count(&self) -> usize {
        self.rings
            .get()
            .map(|rings| {
                rings.iter().map(|r| r.next.load(Ordering::Relaxed).min(r.slots.len())).sum()
            })
            .unwrap_or(0)
    }

    /// Clones every captured event, ring order (push order per lane).
    pub fn snapshot_events(&self) -> Vec<TraceEvent> {
        let Some(rings) = self.rings.get() else { return Vec::new() };
        let mut out = rings[0].snapshot();
        out.extend(rings[1].snapshot());
        out
    }

    /// Empties both rings and resets drop counts. Only call while no
    /// instrumented code is running (between experiment modes).
    pub fn clear(&self) {
        if let Some(rings) = self.rings.get() {
            for ring in rings {
                ring.clear();
            }
        }
    }

    /// Serialises the capture as Chrome trace-event JSON (see
    /// `docs/TRACING.md` for the exact shape). `extra` lands in
    /// `otherData` — pass `("rmi_calls", n)` so `trace-report` can
    /// reconcile the trace against telemetry.
    ///
    /// Begin/end events are re-balanced per `(pid, tid)` track at
    /// export: an unmatched begin (span cut off by an error path or a
    /// full ring) gets a synthetic end at the track's last timestamp,
    /// and orphan ends are dropped, so the output always loads.
    pub fn to_chrome_json(&self, extra: &[(&str, u64)]) -> String {
        let balanced = balance(self.snapshot_events());
        let mut out = String::with_capacity(4096 + balanced.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("\"schema\": \"{TRACE_SCHEMA}\",\n"));
        out.push_str("\"displayTimeUnit\": \"ns\",\n");
        out.push_str(&format!(
            "\"otherData\": {{\"dropped\": {}, \"events\": {}",
            self.dropped(),
            balanced.len()
        ));
        for (key, value) in extra {
            out.push_str(&format!(", \"{}\": {}", escape_json(key), value));
        }
        out.push_str("},\n");
        out.push_str("\"traceEvents\": [\n");
        for lane in [Lane::Trusted, Lane::Untrusted] {
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}},\n",
                lane.pid(),
                lane.label()
            ));
        }
        for (i, event) in balanced.iter().enumerate() {
            let comma = if i + 1 == balanced.len() { "" } else { "," };
            out.push_str(&event_json(event));
            out.push_str(comma);
            out.push('\n');
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Re-balances begin/end events per `(pid, tid)` track; see
/// [`Tracer::to_chrome_json`].
fn balance(events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    let mut tracks: BTreeMap<(u64, u64), Vec<TraceEvent>> = BTreeMap::new();
    for event in events {
        tracks.entry((event.lane.pid(), event.trace_id)).or_default().push(event);
    }
    let mut out = Vec::new();
    for (_, mut track) in tracks {
        // Stable sort: ties (zero model time charged between pushes)
        // keep push order, which is causal order within a lane.
        track.sort_by_key(|e| e.model_ns);
        let mut open: Vec<TraceEvent> = Vec::new();
        let mut last_model = 0u64;
        let mut last_wall = 0u64;
        for event in track {
            last_model = last_model.max(event.model_ns);
            last_wall = last_wall.max(event.wall_ns);
            match event.phase {
                TracePhase::Begin => {
                    open.push(event.clone());
                    out.push(event);
                }
                TracePhase::End => {
                    if open.pop().is_some() {
                        out.push(event);
                    }
                    // Orphan end: its begin was dropped — discard.
                }
                TracePhase::Instant => out.push(event),
            }
        }
        // Synthesize ends for spans cut off mid-flight, innermost
        // first so the stack unwinds.
        while let Some(begin) = open.pop() {
            out.push(TraceEvent {
                phase: TracePhase::End,
                model_ns: last_model,
                wall_ns: last_wall,
                parent_span_id: 0,
                ..begin
            });
        }
    }
    out
}

/// One event as a single JSON line (no trailing comma/newline).
fn event_json(event: &TraceEvent) -> String {
    let ts_us = event.model_ns / 1000;
    let ts_frac = event.model_ns % 1000;
    let mut line = format!(
        "{{\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\
         \"ts\":{ts_us}.{ts_frac:03}",
        event.phase.ph(),
        event.lane.pid(),
        event.trace_id,
        escape_json(event.cat),
        escape_json(&event.name),
    );
    if event.phase == TracePhase::Instant {
        line.push_str(",\"s\":\"t\"");
    }
    line.push_str(&format!(
        ",\"args\":{{\"span\":{},\"parent\":{},\"model_ns\":{},\"wall_ns\":{}}}}}",
        event.span_id, event.parent_span_id, event.model_ns, event.wall_ns
    ));
    line
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Thread-local span context
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// The span context active on this thread, if any. Classic (same
/// thread) crossings propagate context through here; cross-thread
/// switchless hops carry it in the wire frame instead.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.get())
}

/// Makes `ctx` the current context until the returned guard drops
/// (restoring whatever was current before).
#[must_use = "the context is only current while the guard lives"]
pub fn set_current(ctx: SpanContext) -> ContextScope {
    ContextScope { prev: CURRENT.with(|c| c.replace(Some(ctx))) }
}

/// Guard returned by [`set_current`].
#[derive(Debug)]
pub struct ContextScope {
    prev: Option<SpanContext>,
}

impl Drop for ContextScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Parsing (for `montsalvat trace-report` and tests)
// ---------------------------------------------------------------------------

/// One event read back from a `--trace-out` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Chrome phase code (`B`/`E`/`i`; metadata events are skipped).
    pub ph: char,
    /// Lane pid (1 = trusted, 2 = untrusted).
    pub pid: u64,
    /// Track (= trace id).
    pub tid: u64,
    /// Event category.
    pub cat: String,
    /// Event name.
    pub name: String,
    /// Span id from `args` (0 for instants).
    pub span: u64,
    /// Parent span id from `args` (0 at roots and on end events).
    pub parent: u64,
    /// Model-time nanoseconds from `args`.
    pub model_ns: u64,
    /// Wall nanoseconds from `args`.
    pub wall_ns: u64,
}

/// A parsed `--trace-out` document.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// Every non-metadata event, document order.
    pub events: Vec<ParsedEvent>,
    /// The numeric `otherData` entries (`dropped`, `events`, plus any
    /// extras the exporter attached such as `rmi_calls`).
    pub other: Vec<(String, u64)>,
}

impl ParsedTrace {
    /// Looks up one `otherData` entry.
    pub fn other(&self, key: &str) -> Option<u64> {
        self.other.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    // Find the closing quote, skipping backslash-escaped ones.
    let bytes = line.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&line[start..i]),
            _ => i += 1,
        }
    }
    None
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Reads back a document produced by [`Tracer::to_chrome_json`].
///
/// Line-oriented by construction (the exporter writes one event per
/// line), which keeps this crate dependency-free; it is not a general
/// JSON parser.
pub fn parse_chrome_trace(json: &str) -> Result<ParsedTrace, String> {
    if !json.contains("\"traceEvents\"") {
        return Err("not a Chrome trace document (no traceEvents)".into());
    }
    let mut trace = ParsedTrace::default();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("\"otherData\": {") {
            let body = rest.trim_end_matches('}');
            for pair in body.split(',') {
                let mut halves = pair.splitn(2, ':');
                let (Some(key), Some(value)) = (halves.next(), halves.next()) else { continue };
                let key = key.trim().trim_matches('"');
                if let Ok(value) = value.trim().parse::<u64>() {
                    trace.other.push((key.to_owned(), value));
                }
            }
            continue;
        }
        if !line.starts_with("{\"ph\":") {
            continue;
        }
        let ph = field_str(line, "ph").and_then(|s| s.chars().next()).unwrap_or('?');
        if ph == 'M' {
            continue;
        }
        if !matches!(ph, 'B' | 'E' | 'i') {
            return Err(format!("unknown event phase `{ph}`"));
        }
        trace.events.push(ParsedEvent {
            ph,
            pid: field_u64(line, "pid").ok_or("event missing pid")?,
            tid: field_u64(line, "tid").ok_or("event missing tid")?,
            cat: field_str(line, "cat").map(unescape_json).unwrap_or_default(),
            name: field_str(line, "name").map(unescape_json).unwrap_or_default(),
            span: field_u64(line, "span").unwrap_or(0),
            parent: field_u64(line, "parent").unwrap_or(0),
            model_ns: field_u64(line, "model_ns").ok_or("event missing model_ns")?,
            wall_ns: field_u64(line, "wall_ns").unwrap_or(0),
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(capacity: usize) -> Arc<Tracer> {
        let tracer = Tracer::new();
        tracer.enable_with_capacity(capacity);
        tracer
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_name_closures() {
        let tracer = Tracer::new();
        let span = tracer.start(Lane::Trusted, "rmi", None, 0, || {
            panic!("name closure must not run while disabled")
        });
        assert!(span.is_none());
        tracer.instant(Lane::Trusted, "sgx", None, 0, || {
            panic!("name closure must not run while disabled")
        });
        assert_eq!(tracer.event_count(), 0);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn spans_nest_and_export_balances() {
        let tracer = enabled(64);
        let root = tracer.start(Lane::Untrusted, "rmi", None, 100, || "call".into()).unwrap();
        let child = tracer
            .start(Lane::Trusted, "sgx", Some(root.context()), 200, || "ecall".into())
            .unwrap();
        assert_eq!(child.context().trace_id, root.context().trace_id);
        let root_ctx = root.context();
        tracer.finish(child, 300);
        tracer.finish(root, 400);

        let json = tracer.to_chrome_json(&[("rmi_calls", 1)]);
        let parsed = parse_chrome_trace(&json).unwrap();
        assert_eq!(parsed.events.len(), 4);
        assert_eq!(parsed.other("dropped"), Some(0));
        assert_eq!(parsed.other("rmi_calls"), Some(1));
        let begins: Vec<_> = parsed.events.iter().filter(|e| e.ph == 'B').collect();
        let ends = parsed.events.iter().filter(|e| e.ph == 'E').count();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends, 2);
        let child_b = begins.iter().find(|e| e.cat == "sgx").unwrap();
        assert_eq!(child_b.parent, root_ctx.span_id);
        assert_eq!(child_b.tid, root_ctx.trace_id);
        assert_eq!(child_b.pid, Lane::Trusted.pid());
    }

    #[test]
    fn overflow_counts_drops_and_keeps_the_prefix_intact() {
        let tracer = enabled(8);
        let recorder = Recorder::new();
        tracer.attach_recorder(&recorder);
        let mut kept = Vec::new();
        for i in 0..20 {
            let span = tracer.start(Lane::Trusted, "rmi", None, i, || format!("call{i}")).unwrap();
            kept.push(span.context());
            tracer.finish(span, i + 1);
        }
        assert_eq!(tracer.event_count(), 8);
        assert_eq!(tracer.dropped(), 32);
        assert_eq!(recorder.counter(Counter::TraceDropped), 32);
        // The captured prefix is the first four complete spans.
        let events = tracer.snapshot_events();
        assert_eq!(events.len(), 8);
        for pair in events.chunks(2) {
            assert_eq!(pair[0].phase, TracePhase::Begin);
            assert_eq!(pair[1].phase, TracePhase::End);
            assert_eq!(pair[0].span_id, pair[1].span_id);
        }
        // Export still parses and stays balanced.
        let parsed = parse_chrome_trace(&tracer.to_chrome_json(&[])).unwrap();
        let b = parsed.events.iter().filter(|e| e.ph == 'B').count();
        let e = parsed.events.iter().filter(|e| e.ph == 'E').count();
        assert_eq!(b, e);
    }

    #[test]
    fn export_synthesizes_missing_ends_and_drops_orphan_ends() {
        let tracer = enabled(64);
        let abandoned =
            tracer.start(Lane::Untrusted, "rmi", None, 10, || "abandoned".into()).unwrap();
        let _ = abandoned; // dropped without finish (simulates an error path)
                           // Hand-craft an orphan end by finishing a span twice worth of
                           // ends: start+finish, then push another end via span_at trick.
        let done = tracer.start(Lane::Untrusted, "rmi", None, 20, || "done".into()).unwrap();
        tracer.finish(done, 30);
        let parsed = parse_chrome_trace(&tracer.to_chrome_json(&[])).unwrap();
        let b = parsed.events.iter().filter(|e| e.ph == 'B').count();
        let e = parsed.events.iter().filter(|e| e.ph == 'E').count();
        assert_eq!(b, 2);
        assert_eq!(e, 2, "unfinished span must get a synthetic end");
    }

    #[test]
    fn span_at_records_explicit_interval() {
        let tracer = enabled(16);
        tracer.span_at(Lane::Trusted, "queue", None, 50, 90, 0, || "queue_wait".into());
        let events = tracer.snapshot_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].model_ns, 50);
        assert_eq!(events[1].model_ns, 90);
    }

    #[test]
    fn thread_local_context_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = SpanContext { trace_id: 7, span_id: 1 };
        let inner = SpanContext { trace_id: 7, span_id: 2 };
        {
            let _a = set_current(outer);
            assert_eq!(current(), Some(outer));
            {
                let _b = set_current(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn clear_resets_rings_and_drop_counts() {
        let tracer = enabled(8);
        for i in 0..20 {
            tracer.instant(Lane::Untrusted, "gc", None, i, || "tick".into());
        }
        assert!(tracer.dropped() > 0);
        tracer.clear();
        assert_eq!(tracer.event_count(), 0);
        assert_eq!(tracer.dropped(), 0);
        tracer.instant(Lane::Untrusted, "gc", None, 1, || "tick".into());
        assert_eq!(tracer.event_count(), 1);
    }

    #[test]
    fn names_with_quotes_round_trip() {
        let tracer = enabled(16);
        let span =
            tracer.start(Lane::Trusted, "exec", None, 1, || "weird \"name\"\\path".into()).unwrap();
        tracer.finish(span, 2);
        let parsed = parse_chrome_trace(&tracer.to_chrome_json(&[])).unwrap();
        assert_eq!(parsed.events[0].name, "weird \"name\"\\path");
    }

    #[test]
    fn push_is_cheap_under_concurrency() {
        let tracer = enabled(1024);
        let mut handles = Vec::new();
        for t in 0..4 {
            let tracer = Arc::clone(&tracer);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let span = tracer
                        .start(Lane::Untrusted, "rmi", None, t * 1000 + i, || "c".into())
                        .unwrap();
                    tracer.finish(span, t * 1000 + i + 1);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(tracer.event_count(), 800);
        assert_eq!(tracer.dropped(), 0);
        let parsed = parse_chrome_trace(&tracer.to_chrome_json(&[])).unwrap();
        assert_eq!(parsed.events.len(), 800);
    }
}
