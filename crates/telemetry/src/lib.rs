//! Lock-cheap event/metrics layer for the Montsalvat simulation.
//!
//! Every layer that touches the (simulated) enclave boundary reports
//! into a [`Recorder`]: `sgx-sim` counts transitions, crossing bytes,
//! EPC faults and MEE traffic; `runtime-sim` counts GC cycles and
//! copied bytes; `rmi` counts codec bytes, registry churn and
//! GC-helper sweeps; `montsalvat-core::exec` times per-proxy-call
//! spans for classic vs switchless RMI. A recorder is a fixed block
//! of atomics — recording an event is one `fetch_add` with relaxed
//! ordering, cheap enough to leave on everywhere.
//!
//! [`Recorder::snapshot`] freezes the current values into a
//! [`Snapshot`], snapshots [`Snapshot::merge`] across recorders, and
//! [`Snapshot::to_json`] exports the versioned, machine-readable
//! document that `--telemetry-out` writes (schema
//! [`SCHEMA`], documented in `docs/TELEMETRY.md`).
//!
//! # Example
//!
//! ```
//! use telemetry::{Counter, Hist, Recorder};
//!
//! let recorder = Recorder::new();
//! recorder.incr(Counter::Ecalls);
//! recorder.add(Counter::BytesIn, 128);
//! recorder.record_ns(Hist::RmiCallNs, 42_000);
//!
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter(Counter::Ecalls), 1);
//! assert!(snap.to_json().contains("montsalvat.telemetry/v2"));
//! ```
//!
//! Aggregates answer *how much*; the [`trace`] module answers *which
//! call chain* — causal spans propagated across the enclave boundary
//! and exported as Chrome trace-event JSON (`docs/TRACING.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod recorder;
mod snapshot;
pub mod timeseries;
pub mod trace;

pub use hist::{
    bucket_index, bucket_upper_bound, nearest_rank, AtomicHistogram, HistogramSnapshot, BUCKETS,
};
pub use recorder::{aggregate, Recorder, Span, SpanModel};
pub use snapshot::{extract_counter, Snapshot};

/// Identifier of the JSON schema emitted by [`Snapshot::to_json`].
///
/// The suffix is a major version: metric *additions* keep the same
/// version; renaming or removing a metric, or changing a unit, bumps
/// it. Consumers should accept unknown metric names.
///
/// v2: histogram units now distinguish `model_ns` (cost-clock time)
/// from `wall_ns` (host time); previously both exported as `ns`.
pub const SCHEMA: &str = "montsalvat.telemetry/v2";

macro_rules! metric_enum {
    (
        $(#[$outer:meta])*
        $vis:vis enum $name:ident {
            $($(#[$doc:meta])* $variant:ident => ($metric:literal, $unit:literal),)*
        }
    ) => {
        $(#[$outer])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        $vis enum $name {
            $($(#[$doc])* $variant,)*
        }

        impl $name {
            /// Every variant, in stable export order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// The dotted metric name used in the JSON export.
            pub const fn metric_name(self) -> &'static str {
                match self {
                    $($name::$variant => $metric,)*
                }
            }

            /// The unit recorded values are expressed in.
            pub const fn unit(self) -> &'static str {
                match self {
                    $($name::$variant => $unit,)*
                }
            }

            pub(crate) const COUNT: usize = Self::ALL.len();
        }
    };
}

metric_enum! {
    /// Monotone event counters.
    pub enum Counter {
        /// World→enclave transitions performed by `sgx-sim`'s `Enclave::ecall`.
        Ecalls => ("sgx.ecalls", "calls"),
        /// Enclave→world transitions performed by `Enclave::ocall`.
        Ocalls => ("sgx.ocalls", "calls"),
        /// Bytes marshalled into the enclave across ecalls.
        BytesIn => ("sgx.bytes_in", "bytes"),
        /// Bytes marshalled out of the enclave across ocalls.
        BytesOut => ("sgx.bytes_out", "bytes"),
        /// Bytes charged at MEE (memory-encryption-engine) rates.
        MeeBytes => ("sgx.mee_bytes", "bytes"),
        /// EPC page faults raised by the paging model.
        EpcFaults => ("sgx.epc_faults", "faults"),
        /// Ocalls issued by the libc shim (file + clock relays).
        ShimOcalls => ("sgx.shim_ocalls", "calls"),
        /// Named EDL routine dispatches through the trusted bridge.
        EdlDispatches => ("sgx.edl_dispatches", "calls"),
        /// Stop-and-copy collections completed.
        GcCollections => ("gc.collections", "collections"),
        /// Minor (nursery-evacuation) cycles of the generational block
        /// heap. Semispace never records these; `gc.collections` always
        /// equals minor + major.
        GcMinorCollections => ("gc.minor_collections", "collections"),
        /// Major (full-trace) collections. Every semispace collection
        /// is major.
        GcMajorCollections => ("gc.major_collections", "collections"),
        /// Bytes evacuated by the copying collector.
        GcBytesCopied => ("gc.bytes_copied", "bytes"),
        /// Bytes reclaimed from dead objects.
        GcBytesFreed => ("gc.bytes_freed", "bytes"),
        /// Bytes allocated on simulated heaps.
        HeapAllocBytes => ("gc.alloc_bytes", "bytes"),
        /// Objects allocated on simulated heaps.
        HeapAllocObjects => ("gc.alloc_objects", "objects"),
        /// Classic (relay-based) cross-world RMI invocations.
        RmiCalls => ("rmi.calls", "calls"),
        /// RMI invocations served by switchless worker pools (hits).
        SwitchlessCalls => ("rmi.switchless_calls", "calls"),
        /// Switchless posts that found the mailbox full and fell back
        /// to a classic EENTER/EEXIT crossing.
        SwitchlessFallbacks => ("rmi.switchless_fallbacks", "calls"),
        /// Switchless posts that found no idle worker (pressure signal
        /// driving adaptive scale-up; the call may still be a hit).
        SwitchlessMisses => ("rmi.switchless_misses", "calls"),
        /// Parked switchless workers woken by an arriving job.
        SwitchlessWorkerWakes => ("rmi.switchless_worker_wakes", "wakes"),
        /// Adaptive scale-up events (a worker spawned under miss
        /// pressure).
        SwitchlessScaleUps => ("rmi.switchless_scale_ups", "events"),
        /// Adaptive scale-down events (an idle worker retired).
        SwitchlessScaleDowns => ("rmi.switchless_scale_downs", "events"),
        /// Trace-driven tuner decisions that grew capacity (worker
        /// target raised or batch bound raised).
        SwitchlessTuneUps => ("rmi.switchless_tune_ups", "events"),
        /// Trace-driven tuner decisions that shrank capacity (worker
        /// target lowered or batch bound lowered).
        SwitchlessTuneDowns => ("rmi.switchless_tune_downs", "events"),
        /// Payload bytes serialized for cross-world messages.
        BytesSerialized => ("rmi.bytes_serialized", "bytes"),
        /// Bytes produced by the value codec when encoding.
        CodecBytesOut => ("rmi.codec_bytes_out", "bytes"),
        /// Bytes consumed by the value codec when decoding.
        CodecBytesIn => ("rmi.codec_bytes_in", "bytes"),
        /// Proxy objects constructed for remote references.
        ProxiesCreated => ("rmi.proxies_created", "objects"),
        /// Mirror objects registered on the receiving side.
        MirrorsCreated => ("rmi.mirrors_created", "objects"),
        /// Mirrors released by cross-world GC synchronisation.
        MirrorsReleased => ("rmi.mirrors_released", "objects"),
        /// Periodic GC-helper thread wake-ups.
        GcHelperSweeps => ("rmi.gc_helper_sweeps", "sweeps"),
        /// Weak-proxy-list scans for dead proxies.
        WeakListScans => ("rmi.weaklist_scans", "scans"),
        /// Dead proxies found by weak-list scans.
        WeakDeadFound => ("rmi.weak_dead_found", "objects"),
        /// Relay method dispatches executed on a receiving world.
        RelayDispatches => ("exec.relay_dispatches", "calls"),
        /// Boundary payload encodes performed (marshal calls). Always
        /// equals `serde.fast_path_hits + serde.slow_path_hits`.
        SerdeEncodeCalls => ("serde.encode_calls", "calls"),
        /// Encodes that took the v2 fast path (shape-cached, pooled
        /// buffer, bulk primitives).
        SerdeFastPathHits => ("serde.fast_path_hits", "calls"),
        /// Encodes that took the classic v1 path (fast path disabled
        /// or unavailable).
        SerdeSlowPathHits => ("serde.slow_path_hits", "calls"),
        /// Bulk-copied payload bytes (single-memcpy `Bytes` /
        /// primitive-homogeneous lists) charged at the bulk serde rate.
        SerdeBulkBytes => ("serde.bulk_bytes", "bytes"),
        /// Payload bytes encoded into a reused pooled buffer instead
        /// of a fresh heap allocation.
        SerdePooledBytes => ("serde.pooled_bytes", "bytes"),
        /// Shape-cache misses (first crossing of a class; compiles and
        /// caches the shape, interns the class name).
        SerdeShapeCacheMisses => ("serde.shape_cache_misses", "misses"),
        /// Trace events discarded because a ring buffer was full
        /// (see `telemetry::trace`; `rmi.calls` reconciles against
        /// traced spans plus this).
        TraceDropped => ("trace.dropped", "events"),
        /// Requests completed by the open-loop traffic harness
        /// (`traffic_service`; see `docs/DEPLOYMENT.md`).
        TrafficRequests => ("traffic.requests", "requests"),
        /// Time-series windows discarded because the flight recorder's
        /// ring was full (see [`timeseries`]; fill-then-drop like the
        /// trace lanes).
        TimeseriesDropped => ("timeseries.dropped", "windows"),
        /// Tasks an idle scheduler executor stole from a sibling's
        /// local deque (work-stealing engine only).
        SchedSteals => ("rmi.sched_steals", "events"),
        /// Executor suspensions: a serve task blocked on a nested
        /// crossing parked its state and the executor went back to
        /// serving other tasks (work-stealing engine only).
        SchedSuspends => ("rmi.sched_suspends", "events"),
        /// Queued tasks the timeout worker swept into the
        /// classic-fallback path (each also counts one
        /// `rmi.switchless_fallbacks`).
        SchedTimeouts => ("rmi.sched_timeouts", "events"),
    }
}

metric_enum! {
    /// High-water-mark gauges: [`Recorder::gauge_max`] keeps the
    /// largest value ever reported.
    pub enum Gauge {
        /// Peak number of rooted mirrors in a registry.
        RegistrySizePeak => ("rmi.registry_size_peak", "objects"),
        /// Peak live bytes across simulated heaps.
        HeapLiveBytesPeak => ("gc.heap_live_bytes_peak", "bytes"),
        /// Peak EPC-resident bytes committed by an enclave.
        EpcResidentPeak => ("sgx.epc_resident_peak", "bytes"),
        /// Peak resident switchless workers on one side.
        SwitchlessWorkersPeak => ("rmi.switchless_workers_peak", "workers"),
        /// Peak queued jobs observed in a switchless mailbox.
        SwitchlessQueueDepthPeak => ("rmi.switchless_queue_depth_peak", "jobs"),
        /// Most recent per-drain batch bound chosen by the tuner
        /// (last-value, via [`Recorder::gauge_set`]; equals the
        /// configured `max_batch` until the tuner changes it).
        SwitchlessTargetBatch => ("rmi.switchless_target_batch", "jobs"),
        /// Current EPC-resident bytes committed by an enclave
        /// (last-value, via [`Recorder::gauge_set`]; the per-window
        /// level behind [`EpcResidentPeak`](Gauge::EpcResidentPeak)).
        EpcResident => ("sgx.epc_resident", "bytes"),
        /// Current live bytes on a simulated heap (last-value; the
        /// per-window level behind
        /// [`HeapLiveBytesPeak`](Gauge::HeapLiveBytesPeak)).
        HeapLiveBytes => ("gc.heap_live_bytes", "bytes"),
        /// Current resident switchless workers on one side
        /// (last-value; the per-window level behind
        /// [`SwitchlessWorkersPeak`](Gauge::SwitchlessWorkersPeak)).
        SwitchlessWorkers => ("rmi.switchless_workers", "workers"),
        /// Most recently observed switchless mailbox depth
        /// (last-value; the per-window level behind
        /// [`SwitchlessQueueDepthPeak`](Gauge::SwitchlessQueueDepthPeak)).
        SwitchlessQueueDepth => ("rmi.switchless_queue_depth", "jobs"),
        /// Blocks of the segmented heap holding at least one live
        /// object, sampled after each collection (last-value; block
        /// collector only).
        GcBlocksLive => ("gc.blocks_live", "blocks"),
        /// Committed-but-empty blocks cached on the free-block list,
        /// sampled after each collection (last-value; block collector
        /// only).
        GcBlocksFree => ("gc.blocks_free", "blocks"),
        /// Posted-but-uncompleted scheduler tasks on one side
        /// (last-value; work-stealing engine only — counts tasks
        /// queued, executing or suspended on a nested crossing).
        SchedInflight => ("rmi.sched_inflight", "tasks"),
    }
}

metric_enum! {
    /// Log2-bucketed distributions.
    ///
    /// The unit tags distinguish the two clocks in play: `model_ns`
    /// is cost-clock time (deterministic under `ClockMode::Virtual`,
    /// recorded via [`Recorder::record_ns`] or
    /// [`Recorder::span_model`]), `wall_ns` is host time (recorded
    /// via [`Recorder::span_wall`]). They must never be mixed within
    /// one histogram.
    pub enum Hist {
        /// Model nanoseconds charged per classic (relay) RMI call.
        RmiCallNs => ("rmi.call_ns", "model_ns"),
        /// Model nanoseconds charged per switchless RMI call.
        SwitchlessCallNs => ("rmi.switchless_call_ns", "model_ns"),
        /// Model nanoseconds a switchless job waited in the mailbox
        /// before a worker picked it up (queue wait, excluded from
        /// execution time).
        SwitchlessQueueWaitNs => ("rmi.switchless_queue_wait_ns", "model_ns"),
        /// Wire bytes per enclave-boundary crossing.
        CrossingBytes => ("sgx.crossing_bytes", "bytes"),
        /// Wall-clock nanoseconds per stop-and-copy collection.
        GcPauseNs => ("gc.pause_ns", "wall_ns"),
        /// Wall-clock nanoseconds per *minor* (nursery) cycle — the
        /// minor split of [`GcPauseNs`](Hist::GcPauseNs).
        GcMinorPauseNs => ("gc.minor_pause_ns", "wall_ns"),
        /// Wall-clock nanoseconds per *major* (full) collection — the
        /// major split of [`GcPauseNs`](Hist::GcPauseNs).
        GcMajorPauseNs => ("gc.major_pause_ns", "wall_ns"),
        /// Charged-clock nanoseconds per collection (the model cost of
        /// the pause: MEE copy traffic, marking work, EPC paging).
        /// Recorded only when the heap owner lends a charge clock
        /// (applications do); deterministic under `ClockMode::Virtual`.
        GcPauseModelNs => ("gc.pause_model_ns", "model_ns"),
        /// Jobs served per switchless worker wakeup (batch drain size).
        SwitchlessBatchJobs => ("rmi.switchless_batch_jobs", "jobs"),
        /// Model nanoseconds charged per classic (v1) payload encode.
        SerdeEncodeClassicNs => ("serde.encode_classic_ns", "model_ns"),
        /// Model nanoseconds charged per fast-path (v2) payload encode.
        SerdeEncodeFastNs => ("serde.encode_fast_ns", "model_ns"),
        /// Model nanoseconds an open-loop traffic request spent in the
        /// system — queueing delay on the virtual arrival timeline plus
        /// service time (`traffic_service`; see `docs/DEPLOYMENT.md`).
        TrafficLatencyNs => ("traffic.request_latency_ns", "model_ns"),
        /// Model nanoseconds of pure service time charged per traffic
        /// request (the charged-clock delta of the request's RMI call).
        TrafficServiceNs => ("traffic.service_ns", "model_ns"),
        /// Model nanoseconds a scheduler task waited between post and
        /// executor claim (work-stealing engine; recorded even with
        /// tracing off, so its tuner stays live — unlike
        /// [`SwitchlessQueueWaitNs`](Hist::SwitchlessQueueWaitNs)).
        SchedTaskWaitNs => ("rmi.sched_task_wait_ns", "model_ns"),
    }
}
