//! The [`Recorder`]: the shared sink every instrumented layer writes to.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

use crate::hist::AtomicHistogram;
use crate::snapshot::Snapshot;
use crate::{Counter, Gauge, Hist};

/// Every live recorder, so whole-process exports can [`aggregate`]
/// without threading handles through each experiment's call graph.
fn registry() -> &'static Mutex<Vec<Weak<Recorder>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<Recorder>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Final snapshots of recorders that have been dropped, merged into one
/// accumulator so [`aggregate`] still reflects completed runs
/// (experiment binaries shut their apps down before exporting).
fn graveyard() -> &'static Mutex<Snapshot> {
    static GRAVEYARD: OnceLock<Mutex<Snapshot>> = OnceLock::new();
    GRAVEYARD.get_or_init(|| Mutex::new(Snapshot::default()))
}

/// A fixed block of atomic metrics.
///
/// One recorder is created per [`CostModel`] (so per app/enclave) and
/// shared by `Arc` through every layer that instrument points live
/// in. All operations are relaxed atomics: recording never blocks and
/// never takes a lock.
///
/// [`CostModel`]: ../sgx_sim/cost/struct.CostModel.html
pub struct Recorder {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: [AtomicHistogram; Hist::COUNT],
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Recorder {
    /// Creates a recorder and registers it for process-wide
    /// [`aggregate`] exports.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Recorder> {
        let recorder = Arc::new(Recorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
        });
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&recorder));
        recorder
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Reads a counter's current value.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Raises a high-water-mark gauge to `value` if it is larger than
    /// every previously reported value.
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// Overwrites a gauge with `value` (last-value semantics, for
    /// gauges that track a current setting rather than a peak — e.g.
    /// [`Gauge::SwitchlessTargetBatch`]).
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge as usize].store(value, Ordering::Relaxed);
    }

    /// Reads a gauge's high-water mark.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Records one observation into a histogram.
    pub fn record(&self, hist: Hist, value: u64) {
        self.hists[hist as usize].record(value);
    }

    /// Records a nanosecond duration into a histogram (alias of
    /// [`Recorder::record`] that reads naturally at call sites
    /// charging model time).
    pub fn record_ns(&self, hist: Hist, ns: u64) {
        self.record(hist, ns);
    }

    /// Starts a wall-clock span; the elapsed nanoseconds are recorded
    /// into `hist` when the returned guard drops. `hist` must be a
    /// `wall_ns` histogram — model-time measurements go through
    /// [`Recorder::span_model`] or [`Recorder::record_ns`] instead.
    pub fn span_wall(self: &Arc<Self>, hist: Hist) -> Span {
        debug_assert_eq!(hist.unit(), "wall_ns", "{} is not wall-clock", hist.metric_name());
        Span { recorder: Arc::clone(self), hist, start: Instant::now() }
    }

    /// Starts a model-clock span: `clock` is sampled now and again
    /// when the guard drops (typically `|| cost.charged().as_nanos()`
    /// or `|| cost.now().as_nanos()`), and the difference is recorded
    /// into `hist`. `hist` must be a `model_ns` histogram.
    pub fn span_model<F: Fn() -> u64>(self: &Arc<Self>, hist: Hist, clock: F) -> SpanModel<F> {
        debug_assert_eq!(hist.unit(), "model_ns", "{} is not model-clock", hist.metric_name());
        let start = clock();
        SpanModel { recorder: Arc::clone(self), hist, clock, start }
    }

    /// Freezes every metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            gauges: std::array::from_fn(|i| self.gauges[i].load(Ordering::Relaxed)),
            hists: std::array::from_fn(|i| self.hists[i].snapshot()),
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        // Preserve the totals for whole-process aggregation after the
        // owning app is gone.
        let mut grave = graveyard().lock().unwrap_or_else(|e| e.into_inner());
        grave.merge(&self.snapshot());
    }
}

/// RAII wall-clock phase timer created by [`Recorder::span_wall`].
#[derive(Debug)]
pub struct Span {
    recorder: Arc<Recorder>,
    hist: Hist,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.recorder.record_ns(self.hist, self.start.elapsed().as_nanos() as u64);
    }
}

/// RAII model-clock phase timer created by [`Recorder::span_model`].
pub struct SpanModel<F: Fn() -> u64> {
    recorder: Arc<Recorder>,
    hist: Hist,
    clock: F,
    start: u64,
}

impl<F: Fn() -> u64> std::fmt::Debug for SpanModel<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanModel").field("hist", &self.hist).finish_non_exhaustive()
    }
}

impl<F: Fn() -> u64> Drop for SpanModel<F> {
    fn drop(&mut self) {
        let elapsed = (self.clock)().saturating_sub(self.start);
        self.recorder.record_ns(self.hist, elapsed);
    }
}

/// Merges the snapshots of every recorder this process has created:
/// live recorders plus the accumulated totals of dropped ones.
///
/// Experiment binaries create one app (and so one recorder) per data
/// point and shut each app down when the point completes; this is how
/// `--telemetry-out` captures the run's total boundary activity without
/// plumbing recorder handles through every figure function.
pub fn aggregate() -> Snapshot {
    let recorders: Vec<Arc<Recorder>> = {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.iter().filter_map(Weak::upgrade).collect()
    };
    let mut total = graveyard().lock().unwrap_or_else(|e| e.into_inner()).clone();
    for recorder in recorders {
        total.merge(&recorder.snapshot());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Recorder::new();
        r.incr(Counter::Ecalls);
        r.add(Counter::BytesIn, 100);
        r.gauge_max(Gauge::RegistrySizePeak, 5);
        r.gauge_max(Gauge::RegistrySizePeak, 3);
        assert_eq!(r.counter(Counter::Ecalls), 1);
        assert_eq!(r.counter(Counter::BytesIn), 100);
        assert_eq!(r.gauge(Gauge::RegistrySizePeak), 5);
    }

    #[test]
    fn gauge_set_overwrites_rather_than_maxing() {
        let r = Recorder::new();
        r.gauge_set(Gauge::SwitchlessTargetBatch, 8);
        r.gauge_set(Gauge::SwitchlessTargetBatch, 2);
        assert_eq!(r.gauge(Gauge::SwitchlessTargetBatch), 2);
    }

    #[test]
    fn span_wall_records_elapsed_wall_time() {
        let r = Recorder::new();
        {
            let _span = r.span_wall(Hist::GcPauseNs);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = r.snapshot();
        let h = snap.hist(Hist::GcPauseNs);
        assert_eq!(h.count, 1);
        assert!(h.sum >= 1_000_000, "span too short: {} ns", h.sum);
    }

    #[test]
    fn span_model_records_clock_delta_not_wall_time() {
        let r = Recorder::new();
        let fake_clock = std::sync::atomic::AtomicU64::new(1_000);
        {
            let _span = r.span_model(Hist::RmiCallNs, || fake_clock.load(Ordering::Relaxed));
            // Wall time passes, but the model clock only advances 42ns:
            // the histogram must see 42, not the sleep.
            std::thread::sleep(std::time::Duration::from_millis(1));
            fake_clock.store(1_042, Ordering::Relaxed);
        }
        let snap = r.snapshot();
        let h = snap.hist(Hist::RmiCallNs);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 42, "model span must record clock delta, not wall time");
    }

    #[test]
    fn wall_and_model_histograms_declare_their_clock_in_the_unit() {
        // Pins the clock split: `rmi.call_ns` carries cost-clock
        // charges (exec/ctx.rs), `gc.pause_ns` carries host time
        // (runtime-sim's collector). Mixing them in one histogram was
        // the PR-1 bug this guards against.
        assert_eq!(Hist::RmiCallNs.unit(), "model_ns");
        assert_eq!(Hist::SwitchlessCallNs.unit(), "model_ns");
        assert_eq!(Hist::SwitchlessQueueWaitNs.unit(), "model_ns");
        assert_eq!(Hist::GcPauseNs.unit(), "wall_ns");
    }

    #[test]
    fn aggregate_sums_live_recorders() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.add(Counter::MeeBytes, 7);
        b.add(Counter::MeeBytes, 5);
        let total = aggregate();
        // Other tests' recorders may be alive too, so >= not ==.
        assert!(total.counter(Counter::MeeBytes) >= 12);
    }

    #[test]
    fn dropped_recorders_keep_contributing_via_the_graveyard() {
        let r = Recorder::new();
        r.add(Counter::WeakDeadFound, 1_000_000);
        drop(r);
        let total = aggregate();
        // Concurrent tests may add more, so >= rather than ==.
        assert!(total.counter(Counter::WeakDeadFound) >= 1_000_000);
    }

    #[test]
    fn gauge_set_levels_survive_app_drop_into_the_aggregate() {
        // Last-value gauges ride the same graveyard merge as counters
        // when their app (and so its recorder) is dropped. The merge
        // maxes gauges, so the distinctive level must be visible as a
        // floor in the aggregate afterwards.
        let r = Recorder::new();
        r.gauge_set(Gauge::SwitchlessQueueDepth, 41);
        r.gauge_set(Gauge::SwitchlessQueueDepth, 37_777);
        assert_eq!(r.gauge(Gauge::SwitchlessQueueDepth), 37_777, "set overwrites");
        drop(r);
        let total = aggregate();
        assert!(
            total.gauge(Gauge::SwitchlessQueueDepth) >= 37_777,
            "graveyard lost the last-value gauge: {}",
            total.gauge(Gauge::SwitchlessQueueDepth)
        );
    }
}
