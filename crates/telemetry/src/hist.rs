//! Fixed-bucket atomic histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in every histogram: bucket 0 holds zeros, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`, so the full `u64` range
/// is covered.
pub const BUCKETS: usize = 65;

/// Returns the bucket a value falls into.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Returns the exclusive upper bound of a bucket (`u64::MAX` for the
/// last bucket, which closes the range).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        1
    } else if index >= 64 {
        u64::MAX
    } else {
        1u64 << index
    }
}

/// Nearest-rank position of the `q`-quantile (`q` in `[0, 1]`) in a
/// sorted sample of `count` observations: the 1-based rank
/// `ceil(q * count)`, clamped into `[1, count]`. Returns 0 when the
/// sample is empty. This is the one definition of "percentile" shared
/// by [`HistogramSnapshot::quantile`], the traffic harness's sorted
/// per-request latencies, and the windowed time-series path, so all
/// three report the same statistic.
pub fn nearest_rank(count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    ((q * count as f64).ceil() as u64).clamp(1, count)
}

/// A lock-free histogram over power-of-two buckets.
///
/// Recording is two relaxed `fetch_add`s plus one on the bucket, so
/// it is cheap enough for per-call paths. The bucketing is exact for
/// counts and approximate (factor-of-two) for the distribution shape,
/// which is what the evaluation needs: orders of magnitude, not
/// microsecond precision.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Freezes the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: per-bucket counts plus totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per bucket (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping at `u64::MAX`).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Returns whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`): the exclusive upper
    /// bound of the bucket holding the `ceil(q * count)`-th smallest
    /// observation. Resolution is therefore a factor of two, which is
    /// all the power-of-two bucketing can promise. Returns 0 when the
    /// snapshot is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let rank = nearest_rank(self.count, q);
        if rank == 0 {
            return 0;
        }
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper_bound(index);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Returns the observations recorded since `earlier` was taken,
    /// assuming `earlier` is a prefix of this snapshot (same histogram,
    /// snapshotted earlier). Subtraction saturates bucket-wise so a
    /// racy pair of snapshots degrades to undercounting instead of
    /// wrapping.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, (now, old)) in buckets.iter_mut().zip(self.buckets.iter().zip(&earlier.buckets)) {
            *out = now.saturating_sub(*old);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_its_own_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
    }

    #[test]
    fn buckets_are_half_open_power_of_two_ranges() {
        for i in 1..64 {
            let lo = 1u64 << (i - 1);
            let hi = 1u64 << i;
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi - 1), i, "upper edge of bucket {i}");
            assert_eq!(bucket_index(hi), i + 1, "first value of bucket {}", i + 1);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn upper_bounds_cover_their_bucket() {
        for value in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(value);
            assert!(
                value < bucket_upper_bound(idx) || idx == 64,
                "value {value} outside bucket {idx}"
            );
            if idx > 0 {
                assert!(value >= bucket_upper_bound(idx - 1) || idx == 1);
            }
        }
    }

    #[test]
    fn record_updates_count_sum_and_bucket() {
        let h = AtomicHistogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(1 << 20);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 10 + (1 << 20));
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[bucket_index(5)], 2);
        assert_eq!(snap.buckets[21], 1);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(3);
        a.record(100);
        b.record(3);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 106);
        assert_eq!(merged.buckets[bucket_index(3)], 2);
        assert_eq!(merged.buckets[bucket_index(100)], 1);
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let h = AtomicHistogram::new();
        for v in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        // 3 lands in [2, 4); nine of ten samples are there.
        assert_eq!(snap.quantile(0.5), 4);
        assert_eq!(snap.quantile(0.9), 4);
        // 1000 lands in [512, 1024); only the max reaches it.
        assert_eq!(snap.quantile(1.0), 1024);
        assert_eq!(snap.quantile(0.0), 4, "q=0 is the first observation's bucket");
    }

    #[test]
    fn nearest_rank_matches_the_classic_definition() {
        assert_eq!(nearest_rank(0, 0.95), 0, "empty sample has no rank");
        assert_eq!(nearest_rank(10, 0.0), 1, "q=0 clamps to the minimum");
        assert_eq!(nearest_rank(10, 0.5), 5);
        assert_eq!(nearest_rank(10, 0.95), 10);
        assert_eq!(nearest_rank(10, 1.0), 10);
        assert_eq!(nearest_rank(3, 2.0), 3, "q clamps into [0, 1]");
        assert_eq!(nearest_rank(100, 0.501), 51);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.95), 0);
    }

    #[test]
    fn diff_recovers_the_window() {
        let h = AtomicHistogram::new();
        h.record(5);
        h.record(20);
        let earlier = h.snapshot();
        h.record(5);
        h.record(4096);
        let window = h.snapshot().diff(&earlier);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum, 5 + 4096);
        assert_eq!(window.buckets[bucket_index(5)], 1);
        assert_eq!(window.buckets[bucket_index(4096)], 1);
        assert_eq!(window.buckets[bucket_index(20)], 0);
    }

    #[test]
    fn diff_saturates_instead_of_wrapping() {
        let a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        b.buckets[3] = 2;
        b.count = 2;
        let window = a.diff(&b);
        assert_eq!(window.count, 0);
        assert!(window.buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
    }
}
