//! Frozen metric sets and the versioned JSON export.

use crate::hist::HistogramSnapshot;
use crate::{bucket_upper_bound, Counter, Gauge, Hist, SCHEMA};

/// A point-in-time copy of every metric in a recorder (or a merge of
/// several recorders — see [`crate::aggregate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub(crate) counters: [u64; Counter::COUNT],
    pub(crate) gauges: [u64; Gauge::COUNT],
    pub(crate) hists: [HistogramSnapshot; Hist::COUNT],
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hists: std::array::from_fn(|_| HistogramSnapshot::default()),
        }
    }
}

impl Snapshot {
    /// Reads one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Reads one gauge high-water mark.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize]
    }

    /// Reads one histogram.
    pub fn hist(&self, hist: Hist) -> &HistogramSnapshot {
        &self.hists[hist as usize]
    }

    /// Adds `other` into this snapshot: counters and histogram
    /// buckets sum, gauges take the maximum.
    pub fn merge(&mut self, other: &Snapshot) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += theirs;
        }
        for (mine, theirs) in self.gauges.iter_mut().zip(&other.gauges) {
            *mine = (*mine).max(*theirs);
        }
        for (mine, theirs) in self.hists.iter_mut().zip(&other.hists) {
            mine.merge(theirs);
        }
    }

    /// Returns the activity between `earlier` and this snapshot, for
    /// windowed time-series sampling: counters and histogram buckets
    /// subtract (saturating, so a racy pair degrades to undercounting
    /// instead of wrapping), while gauges keep *this* snapshot's
    /// values — a gauge is a level, not a flow, so the window reports
    /// the level observed at its close.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (mine, old) in out.counters.iter_mut().zip(&earlier.counters) {
            *mine = mine.saturating_sub(*old);
        }
        for (mine, (now, old)) in out.hists.iter_mut().zip(self.hists.iter().zip(&earlier.hists)) {
            *mine = now.diff(old);
        }
        out
    }

    /// Returns whether any counter incremented or any histogram
    /// observed a value — i.e. whether this snapshot (typically a
    /// [`Snapshot::delta_since`] window) records any flow. Gauge
    /// levels alone do not count as activity: an idle window holds its
    /// last-seen levels without being worth storing.
    pub fn has_activity(&self) -> bool {
        self.counters.iter().any(|&c| c != 0) || self.hists.iter().any(|h| h.count != 0)
    }

    /// Serialises the snapshot as the versioned JSON document written
    /// by `--telemetry-out` (see `docs/TELEMETRY.md` for the schema
    /// contract). Metric order is stable across runs, so documents
    /// diff cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));

        out.push_str("  \"counters\": {\n");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let comma = if i + 1 == Counter::ALL.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{}\": {{\"value\": {}, \"unit\": \"{}\"}}{comma}\n",
                c.metric_name(),
                self.counter(*c),
                c.unit(),
            ));
        }
        out.push_str("  },\n");

        out.push_str("  \"gauges\": {\n");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            let comma = if i + 1 == Gauge::ALL.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{}\": {{\"value\": {}, \"unit\": \"{}\"}}{comma}\n",
                g.metric_name(),
                self.gauge(*g),
                g.unit(),
            ));
        }
        out.push_str("  },\n");

        out.push_str("  \"histograms\": {\n");
        for (i, h) in Hist::ALL.iter().enumerate() {
            let comma = if i + 1 == Hist::ALL.len() { "" } else { "," };
            let snap = self.hist(*h);
            out.push_str(&format!(
                "    \"{}\": {{\"unit\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                h.metric_name(),
                h.unit(),
                snap.count,
                snap.sum,
            ));
            let mut first = true;
            for (idx, &n) in snap.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("{{\"lt\": {}, \"count\": {}}}", bucket_upper_bound(idx), n));
            }
            out.push_str(&format!("]}}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Extracts one counter's value from a document produced by
/// [`Snapshot::to_json`]. Intended for tests and quick diff tooling;
/// real consumers should use a JSON parser.
pub fn extract_counter(json: &str, metric_name: &str) -> Option<u64> {
    let key = format!("\"{metric_name}\": {{\"value\": ");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        a.counters[Counter::Ecalls as usize] = 3;
        b.counters[Counter::Ecalls as usize] = 4;
        a.gauges[Gauge::EpcResidentPeak as usize] = 10;
        b.gauges[Gauge::EpcResidentPeak as usize] = 7;
        a.merge(&b);
        assert_eq!(a.counter(Counter::Ecalls), 7);
        assert_eq!(a.gauge(Gauge::EpcResidentPeak), 10);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = Snapshot::default();
        a.counters[Counter::RmiCalls as usize] = 9;
        a.hists[Hist::CrossingBytes as usize].buckets[3] = 2;
        a.hists[Hist::CrossingBytes as usize].count = 2;
        let before = a.clone();
        a.merge(&Snapshot::default());
        assert_eq!(a, before);
    }

    #[test]
    fn delta_since_subtracts_flows_and_keeps_levels() {
        let mut earlier = Snapshot::default();
        earlier.counters[Counter::RmiCalls as usize] = 10;
        earlier.gauges[Gauge::EpcResidentPeak as usize] = 4096;
        earlier.hists[Hist::GcPauseNs as usize].buckets[5] = 2;
        earlier.hists[Hist::GcPauseNs as usize].count = 2;
        earlier.hists[Hist::GcPauseNs as usize].sum = 40;

        let mut now = earlier.clone();
        now.counters[Counter::RmiCalls as usize] = 17;
        now.gauges[Gauge::EpcResidentPeak as usize] = 8192;
        now.hists[Hist::GcPauseNs as usize].buckets[5] = 3;
        now.hists[Hist::GcPauseNs as usize].count = 3;
        now.hists[Hist::GcPauseNs as usize].sum = 70;

        let delta = now.delta_since(&earlier);
        assert_eq!(delta.counter(Counter::RmiCalls), 7);
        assert_eq!(delta.gauge(Gauge::EpcResidentPeak), 8192, "gauges are levels");
        assert_eq!(delta.hist(Hist::GcPauseNs).count, 1);
        assert_eq!(delta.hist(Hist::GcPauseNs).sum, 30);

        assert!(delta.has_activity());
        let idle = now.delta_since(&now);
        assert!(!idle.has_activity(), "gauge levels alone are not activity");
    }

    #[test]
    fn json_has_schema_and_every_metric() {
        let snap = Snapshot::default();
        let json = snap.to_json();
        assert!(json.contains(SCHEMA));
        for c in Counter::ALL {
            assert!(json.contains(c.metric_name()), "missing {}", c.metric_name());
        }
        for g in Gauge::ALL {
            assert!(json.contains(g.metric_name()), "missing {}", g.metric_name());
        }
        for h in Hist::ALL {
            assert!(json.contains(h.metric_name()), "missing {}", h.metric_name());
        }
    }

    #[test]
    fn extract_counter_round_trips() {
        let mut snap = Snapshot::default();
        snap.counters[Counter::BytesSerialized as usize] = 123_456;
        let json = snap.to_json();
        assert_eq!(extract_counter(&json, "rmi.bytes_serialized"), Some(123_456));
        assert_eq!(extract_counter(&json, "sgx.ecalls"), Some(0));
        assert_eq!(extract_counter(&json, "no.such.metric"), None);
    }

    #[test]
    fn json_buckets_only_list_nonzero() {
        let mut snap = Snapshot::default();
        snap.hists[Hist::GcPauseNs as usize].buckets[5] = 4;
        snap.hists[Hist::GcPauseNs as usize].count = 4;
        snap.hists[Hist::GcPauseNs as usize].sum = 80;
        let json = snap.to_json();
        assert!(json.contains("\"gc.pause_ns\": {\"unit\": \"wall_ns\", \"count\": 4, \"sum\": 80, \"buckets\": [{\"lt\": 32, \"count\": 4}]}"));
    }
}
