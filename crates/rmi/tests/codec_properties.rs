//! Property-based tests for the cross-boundary value codec.

use proptest::prelude::*;
use rmi::codec::{decode_value, encode_value, inline_all, resolve_none};
use runtime_sim::heap::{Heap, HeapConfig};
use runtime_sim::value::{ClassId, Value};

fn fresh_heap() -> Heap {
    Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
}

/// Strategy for reference-free values of bounded depth.
fn flat_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Use finite floats so equality comparison is meaningful.
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..8).prop_map(Value::List)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reference-free values roundtrip bit-exactly.
    #[test]
    fn flat_values_roundtrip(v in flat_value()) {
        let src = fresh_heap();
        let mut dst = fresh_heap();
        let bytes = encode_value(&src, &v, &mut inline_all).unwrap();
        let decoded = decode_value(&mut dst, &bytes, &mut resolve_none).unwrap();
        prop_assert_eq!(decoded.unpin(&mut dst), v);
    }

    /// Random object DAGs (allocation order forbids forward refs, so
    /// these are acyclic but share freely) decode to isomorphic graphs.
    #[test]
    fn object_graphs_roundtrip_isomorphically(
        specs in proptest::collection::vec(
            (0u32..8, proptest::collection::vec(any::<u16>(), 0..4), flat_value()),
            1..16,
        )
    ) {
        let mut src = fresh_heap();
        let mut ids = Vec::new();
        for (class, links, payload) in &specs {
            let mut fields = vec![payload.clone()];
            for l in links {
                if !ids.is_empty() {
                    fields.push(Value::Ref(ids[*l as usize % ids.len()]));
                }
            }
            let id = src.alloc(ClassId(*class), fields).unwrap();
            src.add_root(id);
            ids.push(id);
        }
        let top = *ids.last().unwrap();

        let bytes = encode_value(&src, &Value::Ref(top), &mut inline_all).unwrap();
        let mut dst = fresh_heap();
        let decoded = decode_value(&mut dst, &bytes, &mut resolve_none).unwrap();
        let new_top = decoded.value.as_ref_id().unwrap();

        // Structural isomorphism check by parallel traversal.
        let mut stack = vec![(top, new_top)];
        let mut seen = std::collections::HashMap::new();
        while let Some((old, new)) = stack.pop() {
            if let Some(prev) = seen.insert(old, new) {
                prop_assert_eq!(prev, new, "sharing must map consistently");
                continue;
            }
            prop_assert_eq!(src.class_of(old), dst.class_of(new));
            let old_fields = src.fields(old).unwrap().to_vec();
            let new_fields = dst.fields(new).unwrap().to_vec();
            prop_assert_eq!(old_fields.len(), new_fields.len());
            for (of, nf) in old_fields.iter().zip(new_fields.iter()) {
                match (of, nf) {
                    (Value::Ref(o), Value::Ref(n)) => stack.push((*o, *n)),
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decode_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut dst = fresh_heap();
        let _ = decode_value(&mut dst, &bytes, &mut resolve_none);
    }

    /// Encoded size is monotone in payload size for byte arrays.
    #[test]
    fn encoding_overhead_is_bounded(payload in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let src = fresh_heap();
        let v = Value::Bytes(payload.clone());
        let bytes = encode_value(&src, &v, &mut inline_all).unwrap();
        prop_assert_eq!(bytes.len(), payload.len() + 5, "tag + u32 length + payload");
    }
}
