//! The mirror-proxy registry (§5.2).
//!
//! When a relay method materialises a *mirror* object for a proxy in the
//! opposite runtime, it stores a strong reference to the mirror, keyed by
//! the proxy's hash, in a global registry. The strong reference keeps the
//! mirror alive exactly as long as the proxy exists; the GC helper
//! removes the entry once the proxy has been collected, making the mirror
//! eligible for collection (§5.5). Both runtimes own one registry.

use std::collections::HashMap;

use runtime_sim::heap::Heap;
use runtime_sim::value::ObjId;

use crate::hash::ProxyHash;

/// Strong-reference table from proxy hashes to mirror objects.
///
/// Entries *root* their mirror in the owning heap; [`MirrorProxyRegistry::remove`]
/// releases the root, making the mirror collectable.
#[derive(Debug, Default)]
pub struct MirrorProxyRegistry {
    map: HashMap<ProxyHash, ObjId>,
    recorder: Option<std::sync::Arc<telemetry::Recorder>>,
}

impl MirrorProxyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the telemetry recorder this registry reports its peak
    /// size and mirror releases into.
    pub fn set_recorder(&mut self, recorder: std::sync::Arc<telemetry::Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Registers `mirror` under `hash`, rooting it in `heap`.
    ///
    /// Returns the displaced mirror if `hash` was already registered
    /// (a hash collision under the identity scheme); the displaced
    /// mirror's root is released.
    pub fn register(&mut self, heap: &mut Heap, hash: ProxyHash, mirror: ObjId) -> Option<ObjId> {
        heap.add_root(mirror);
        let displaced = self.map.insert(hash, mirror);
        if let Some(old) = displaced {
            heap.remove_root(old);
        }
        if let Some(rec) = &self.recorder {
            rec.gauge_max(telemetry::Gauge::RegistrySizePeak, self.map.len() as u64);
        }
        displaced
    }

    /// Looks up the mirror registered under `hash`.
    pub fn get(&self, hash: ProxyHash) -> Option<ObjId> {
        self.map.get(&hash).copied()
    }

    /// Removes the entry for `hash`, releasing the mirror's root.
    ///
    /// Returns the mirror that was registered, if any.
    pub fn remove(&mut self, heap: &mut Heap, hash: ProxyHash) -> Option<ObjId> {
        let mirror = self.map.remove(&hash)?;
        heap.remove_root(mirror);
        if let Some(rec) = &self.recorder {
            rec.incr(telemetry::Counter::MirrorsReleased);
        }
        Some(mirror)
    }

    /// Number of registered mirrors.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over registered `(hash, mirror)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProxyHash, ObjId)> + '_ {
        self.map.iter().map(|(h, m)| (*h, *m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime_sim::heap::HeapConfig;
    use runtime_sim::value::{ClassId, Value};

    fn heap() -> Heap {
        Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
    }

    #[test]
    fn registered_mirrors_survive_gc() {
        let mut h = heap();
        let mut reg = MirrorProxyRegistry::new();
        let mirror = h.alloc(ClassId(1), vec![Value::Int(1)]).unwrap();
        reg.register(&mut h, ProxyHash(10), mirror);
        h.collect();
        assert!(h.is_live(mirror));
        assert_eq!(reg.get(ProxyHash(10)), Some(mirror));
    }

    #[test]
    fn removal_releases_the_mirror() {
        let mut h = heap();
        let mut reg = MirrorProxyRegistry::new();
        let mirror = h.alloc(ClassId(1), vec![]).unwrap();
        reg.register(&mut h, ProxyHash(10), mirror);
        assert_eq!(reg.remove(&mut h, ProxyHash(10)), Some(mirror));
        h.collect();
        assert!(!h.is_live(mirror), "mirror collectable after removal");
        assert!(reg.is_empty());
    }

    #[test]
    fn collision_displaces_and_unroots_old_mirror() {
        let mut h = heap();
        let mut reg = MirrorProxyRegistry::new();
        let first = h.alloc(ClassId(1), vec![]).unwrap();
        let second = h.alloc(ClassId(1), vec![]).unwrap();
        assert_eq!(reg.register(&mut h, ProxyHash(7), first), None);
        assert_eq!(reg.register(&mut h, ProxyHash(7), second), Some(first));
        h.collect();
        assert!(!h.is_live(first), "displaced mirror released");
        assert!(h.is_live(second));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn recorder_tracks_peak_size_and_releases() {
        use telemetry::{Counter, Gauge, Recorder};
        let rec = Recorder::new();
        let mut h = heap();
        let mut reg = MirrorProxyRegistry::new();
        reg.set_recorder(rec.clone());
        let a = h.alloc(ClassId(0), vec![]).unwrap();
        let b = h.alloc(ClassId(0), vec![]).unwrap();
        reg.register(&mut h, ProxyHash(1), a);
        reg.register(&mut h, ProxyHash(2), b);
        reg.remove(&mut h, ProxyHash(1));
        reg.remove(&mut h, ProxyHash(2));
        assert_eq!(rec.gauge(Gauge::RegistrySizePeak), 2);
        assert_eq!(rec.counter(Counter::MirrorsReleased), 2);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut h = heap();
        let mut reg = MirrorProxyRegistry::new();
        assert_eq!(reg.remove(&mut h, ProxyHash(99)), None);
    }

    #[test]
    fn iter_lists_entries() {
        let mut h = heap();
        let mut reg = MirrorProxyRegistry::new();
        let a = h.alloc(ClassId(0), vec![]).unwrap();
        let b = h.alloc(ClassId(0), vec![]).unwrap();
        reg.register(&mut h, ProxyHash(1), a);
        reg.register(&mut h, ProxyHash(2), b);
        let mut pairs: Vec<_> = reg.iter().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(ProxyHash(1), a), (ProxyHash(2), b)]);
    }
}
