//! The per-runtime proxy weak-reference list (§5.5).
//!
//! When a proxy object is created, Montsalvat stores a weak reference to
//! it, together with its hash, in a global list. The GC helper thread
//! periodically scans the list for weak references whose referent has
//! been collected; each cleared entry yields the hash of a mirror that
//! can now be dropped from the opposite runtime's registry.

use runtime_sim::heap::{Heap, WeakRef};
use runtime_sim::value::ObjId;

use crate::hash::ProxyHash;

/// Weak tracking of live proxies in one runtime.
#[derive(Debug, Default)]
pub struct ProxyWeakList {
    entries: Vec<(WeakRef, ProxyHash)>,
    recorder: Option<std::sync::Arc<telemetry::Recorder>>,
}

impl ProxyWeakList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the telemetry recorder this list reports its scans and
    /// dead-proxy discoveries into.
    pub fn set_recorder(&mut self, recorder: std::sync::Arc<telemetry::Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Starts tracking `proxy` (which carries `hash`).
    pub fn track(&mut self, heap: &mut Heap, proxy: ObjId, hash: ProxyHash) {
        let weak = heap.new_weak(proxy);
        self.entries.push((weak, hash));
    }

    /// Scans for proxies that have been collected: removes their entries
    /// and returns their hashes (the mirrors to release remotely).
    pub fn scan_dead(&mut self, heap: &Heap) -> Vec<ProxyHash> {
        let mut dead = Vec::new();
        self.entries.retain(|(weak, hash)| {
            if heap.weak_get(*weak).is_none() {
                dead.push(*hash);
                false
            } else {
                true
            }
        });
        if let Some(rec) = &self.recorder {
            rec.incr(telemetry::Counter::WeakListScans);
            rec.add(telemetry::Counter::WeakDeadFound, dead.len() as u64);
        }
        dead
    }

    /// Number of proxies still tracked (live or not yet scanned).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no proxies are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime_sim::heap::HeapConfig;
    use runtime_sim::value::{ClassId, Value};

    fn heap() -> Heap {
        Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
    }

    #[test]
    fn live_proxies_are_not_reported() {
        let mut h = heap();
        let mut list = ProxyWeakList::new();
        let proxy = h.alloc(ClassId(1), vec![Value::Int(1)]).unwrap();
        h.add_root(proxy);
        list.track(&mut h, proxy, ProxyHash(11));
        h.collect();
        assert!(list.scan_dead(&h).is_empty());
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn dead_proxies_yield_their_hashes_once() {
        let mut h = heap();
        let mut list = ProxyWeakList::new();
        let live = h.alloc(ClassId(1), vec![]).unwrap();
        h.add_root(live);
        let dead = h.alloc(ClassId(1), vec![]).unwrap();
        list.track(&mut h, live, ProxyHash(1));
        list.track(&mut h, dead, ProxyHash(2));
        h.collect();
        assert_eq!(list.scan_dead(&h), vec![ProxyHash(2)]);
        assert!(list.scan_dead(&h).is_empty(), "entries are removed after reporting");
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn tracking_does_not_keep_proxies_alive() {
        let mut h = heap();
        let mut list = ProxyWeakList::new();
        let proxy = h.alloc(ClassId(1), vec![]).unwrap();
        list.track(&mut h, proxy, ProxyHash(5));
        h.collect();
        assert!(!h.is_live(proxy), "weak tracking is weak");
        assert_eq!(list.scan_dead(&h), vec![ProxyHash(5)]);
    }

    #[test]
    fn recorder_counts_scans_and_dead_hits() {
        use telemetry::{Counter, Recorder};
        let rec = Recorder::new();
        let mut h = heap();
        let mut list = ProxyWeakList::new();
        list.set_recorder(rec.clone());
        let proxy = h.alloc(ClassId(1), vec![]).unwrap();
        list.track(&mut h, proxy, ProxyHash(5));
        h.collect();
        list.scan_dead(&h);
        list.scan_dead(&h);
        assert_eq!(rec.counter(Counter::WeakListScans), 2);
        assert_eq!(rec.counter(Counter::WeakDeadFound), 1);
    }

    #[test]
    fn many_proxies_scan_correctly() {
        let mut h = heap();
        let mut list = ProxyWeakList::new();
        let mut kept = Vec::new();
        for i in 0..100 {
            let p = h.alloc(ClassId(0), vec![]).unwrap();
            if i % 2 == 0 {
                h.add_root(p);
                kept.push(ProxyHash(i as u128));
            }
            list.track(&mut h, p, ProxyHash(i as u128));
        }
        h.collect();
        let mut dead = list.scan_dead(&h);
        dead.sort();
        assert_eq!(dead.len(), 50);
        assert!(dead.iter().all(|h| h.0 % 2 == 1));
        assert_eq!(list.len(), 50);
    }
}
