//! Batched wire frames for switchless crossings.
//!
//! A switchless worker that drains several queued requests in one
//! wakeup moves them across the boundary as one *batch frame* instead
//! of one message per request: a fixed frame header, then each
//! payload length-prefixed. Framing `k` messages together amortises
//! the per-message boundary bookkeeping — the cost model charges the
//! boundary copy once per frame, so a drained batch pays one header
//! instead of `k`.
//!
//! The format is deliberately minimal and self-describing:
//!
//! ```text
//! magic  (2 bytes)  0x4D 0x42          "MB"
//! count  (4 bytes)  u32 little-endian  number of payloads
//! k × [ len (4 bytes, u32 LE) | payload bytes ]
//! ```
//!
//! # Example
//!
//! ```
//! use rmi::batch;
//!
//! let frame = batch::encode(&[b"first".as_slice(), b"second".as_slice()]);
//! assert_eq!(frame.len(), batch::frame_len(&[5, 6]));
//! let decoded = batch::decode(&frame).unwrap();
//! assert_eq!(decoded, vec![b"first".to_vec(), b"second".to_vec()]);
//! ```

/// The two magic bytes opening every batch frame.
pub const MAGIC: [u8; 2] = *b"MB";

/// Fixed overhead of one frame: magic plus the payload count.
pub const HEADER_LEN: usize = 6;

/// Per-payload overhead inside a frame (the length prefix).
pub const PER_PAYLOAD_LEN: usize = 4;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The buffer does not start with [`MAGIC`] or is shorter than a
    /// frame header.
    BadHeader,
    /// A length prefix points past the end of the buffer.
    Truncated,
    /// Bytes remain after the declared payloads.
    TrailingBytes,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::BadHeader => write!(f, "batch frame has a bad header"),
            BatchError::Truncated => write!(f, "batch frame is truncated"),
            BatchError::TrailingBytes => write!(f, "batch frame has trailing bytes"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Total wire bytes of a frame holding payloads of the given lengths,
/// computed without materialising it. This is what the switchless
/// engine charges boundary-copy costs on.
pub fn frame_len(payload_lens: &[usize]) -> usize {
    HEADER_LEN + payload_lens.iter().map(|l| PER_PAYLOAD_LEN + l).sum::<usize>()
}

/// Encodes `payloads` into one batch frame.
pub fn encode(payloads: &[&[u8]]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(frame_len(&payloads.iter().map(|p| p.len()).collect::<Vec<_>>()));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// Decodes a batch frame back into its payloads.
///
/// # Errors
///
/// Fails on a missing/foreign header, a length prefix running past the
/// buffer, or trailing bytes after the declared payload count.
pub fn decode(frame: &[u8]) -> Result<Vec<Vec<u8>>, BatchError> {
    if frame.len() < HEADER_LEN || frame[..2] != MAGIC {
        return Err(BatchError::BadHeader);
    }
    let count = u32::from_le_bytes(frame[2..6].try_into().expect("4 bytes")) as usize;
    let mut payloads = Vec::with_capacity(count.min(1024));
    let mut at = HEADER_LEN;
    for _ in 0..count {
        if frame.len() < at + PER_PAYLOAD_LEN {
            return Err(BatchError::Truncated);
        }
        let len = u32::from_le_bytes(frame[at..at + PER_PAYLOAD_LEN].try_into().expect("4 bytes"))
            as usize;
        at += PER_PAYLOAD_LEN;
        if frame.len() < at + len {
            return Err(BatchError::Truncated);
        }
        payloads.push(frame[at..at + len].to_vec());
        at += len;
    }
    if at != frame.len() {
        return Err(BatchError::TrailingBytes);
    }
    Ok(payloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_round_trips() {
        let frame = encode(&[]);
        assert_eq!(frame.len(), HEADER_LEN);
        assert_eq!(decode(&frame).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn frame_len_matches_encode() {
        let payloads: Vec<Vec<u8>> = vec![vec![1; 3], vec![], vec![9; 300]];
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let lens: Vec<usize> = payloads.iter().map(|p| p.len()).collect();
        assert_eq!(encode(&refs).len(), frame_len(&lens));
    }

    #[test]
    fn batching_amortises_headers() {
        // k messages in one frame must cost less wire than k frames.
        let lens = [64usize, 64, 64, 64];
        let batched = frame_len(&lens);
        let separate: usize = lens.iter().map(|&l| frame_len(&[l])).sum();
        assert!(batched < separate, "batched {batched} vs separate {separate}");
    }

    #[test]
    fn decode_rejects_corruption() {
        assert_eq!(decode(b"XX\0\0\0\0"), Err(BatchError::BadHeader));
        assert_eq!(decode(b"MB"), Err(BatchError::BadHeader));
        let mut frame = encode(&[b"abc".as_slice()]);
        frame.truncate(frame.len() - 1);
        assert_eq!(decode(&frame), Err(BatchError::Truncated));
        let mut padded = encode(&[b"abc".as_slice()]);
        padded.push(0);
        assert_eq!(decode(&padded), Err(BatchError::TrailingBytes));
    }

    #[test]
    fn payload_order_is_preserved() {
        let frame = encode(&[b"a".as_slice(), b"bb".as_slice(), b"ccc".as_slice()]);
        let decoded = decode(&frame).unwrap();
        assert_eq!(decoded, vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]);
    }
}
