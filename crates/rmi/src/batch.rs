//! Batched wire frames for switchless crossings.
//!
//! A switchless worker that drains several queued requests in one
//! wakeup moves them across the boundary as one *batch frame* instead
//! of one message per request: a fixed frame header, then each
//! payload length-prefixed. Framing `k` messages together amortises
//! the per-message boundary bookkeeping — the cost model charges the
//! boundary copy once per frame, so a drained batch pays one header
//! instead of `k`.
//!
//! The format is deliberately minimal and self-describing:
//!
//! ```text
//! magic  (2 bytes)  0x4D 0x42          "MB"
//! count  (4 bytes)  u32 little-endian  number of payloads
//! k × [ len (4 bytes, u32 LE) | payload bytes ]
//! ```
//!
//! # Example
//!
//! ```
//! use rmi::batch;
//!
//! let frame = batch::encode(&[b"first".as_slice(), b"second".as_slice()]);
//! assert_eq!(frame.len(), batch::frame_len(&[5, 6]));
//! let decoded = batch::decode(&frame).unwrap();
//! assert_eq!(decoded, vec![b"first".to_vec(), b"second".to_vec()]);
//! ```

//! When tracing is enabled the switchless engine uses the *traced*
//! variant instead ([`encode_traced`] / [`decode_traced`], magic
//! `"MT"`): each payload gains a one-byte flag and, when set, a
//! 16-byte [`TraceContext`] so the serving side can parent its spans
//! under the caller's — queued jobs hop threads, so the thread-local
//! context used by classic crossings does not reach them.

use crate::codec::TraceContext;
use crate::pool::{self, PooledBuf};

/// The two magic bytes opening every batch frame.
pub const MAGIC: [u8; 2] = *b"MB";

/// The two magic bytes opening every *traced* batch frame.
pub const TRACED_MAGIC: [u8; 2] = *b"MT";

/// Per-payload overhead added by the traced format's context flag.
pub const PER_PAYLOAD_FLAG_LEN: usize = 1;

/// Fixed overhead of one frame: magic plus the payload count.
pub const HEADER_LEN: usize = 6;

/// Per-payload overhead inside a frame (the length prefix).
pub const PER_PAYLOAD_LEN: usize = 4;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The buffer does not start with [`MAGIC`] or is shorter than a
    /// frame header.
    BadHeader,
    /// A length prefix points past the end of the buffer.
    Truncated,
    /// Bytes remain after the declared payloads.
    TrailingBytes,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::BadHeader => write!(f, "batch frame has a bad header"),
            BatchError::Truncated => write!(f, "batch frame is truncated"),
            BatchError::TrailingBytes => write!(f, "batch frame has trailing bytes"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Total wire bytes of a frame holding payloads of the given lengths,
/// computed without materialising it. This is what the switchless
/// engine charges boundary-copy costs on.
pub fn frame_len(payload_lens: &[usize]) -> usize {
    HEADER_LEN + payload_lens.iter().map(|l| PER_PAYLOAD_LEN + l).sum::<usize>()
}

/// Encodes `payloads` into one batch frame. The frame buffer comes
/// from the thread-local [`crate::pool`], so a drain loop assembling
/// one frame per wakeup reuses the same allocation.
pub fn encode(payloads: &[&[u8]]) -> PooledBuf {
    let mut out = pool::acquire();
    out.reserve(frame_len(&payloads.iter().map(|p| p.len()).collect::<Vec<_>>()));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// Decodes a batch frame back into its payloads.
///
/// # Errors
///
/// Fails on a missing/foreign header, a length prefix running past the
/// buffer, or trailing bytes after the declared payload count.
pub fn decode(frame: &[u8]) -> Result<Vec<Vec<u8>>, BatchError> {
    if frame.len() < HEADER_LEN || frame[..2] != MAGIC {
        return Err(BatchError::BadHeader);
    }
    let count = u32::from_le_bytes(frame[2..6].try_into().expect("4 bytes")) as usize;
    let mut payloads = Vec::with_capacity(count.min(1024));
    let mut at = HEADER_LEN;
    for _ in 0..count {
        if frame.len() < at + PER_PAYLOAD_LEN {
            return Err(BatchError::Truncated);
        }
        let len = u32::from_le_bytes(frame[at..at + PER_PAYLOAD_LEN].try_into().expect("4 bytes"))
            as usize;
        at += PER_PAYLOAD_LEN;
        if frame.len() < at + len {
            return Err(BatchError::Truncated);
        }
        payloads.push(frame[at..at + len].to_vec());
        at += len;
    }
    if at != frame.len() {
        return Err(BatchError::TrailingBytes);
    }
    Ok(payloads)
}

/// Total wire bytes of a *traced* frame: per payload, its length and
/// whether it carries a [`TraceContext`]. What the switchless engine
/// charges boundary-copy costs on when tracing rides the wire.
pub fn traced_frame_len(payloads: &[(usize, bool)]) -> usize {
    HEADER_LEN
        + payloads
            .iter()
            .map(|&(len, has_ctx)| {
                PER_PAYLOAD_FLAG_LEN
                    + if has_ctx { TraceContext::WIRE_LEN } else { 0 }
                    + PER_PAYLOAD_LEN
                    + len
            })
            .sum::<usize>()
}

/// Encodes payloads plus optional per-payload trace contexts into one
/// traced batch frame, assembled in a pooled buffer like [`encode`].
pub fn encode_traced(payloads: &[(&[u8], Option<TraceContext>)]) -> PooledBuf {
    let lens: Vec<(usize, bool)> = payloads.iter().map(|(p, c)| (p.len(), c.is_some())).collect();
    let mut out = pool::acquire();
    out.reserve(traced_frame_len(&lens));
    out.extend_from_slice(&TRACED_MAGIC);
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for (payload, ctx) in payloads {
        match ctx {
            Some(ctx) => {
                out.push(1);
                out.extend_from_slice(&ctx.to_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// One payload decoded from a traced frame, with the trace context
/// it carried (if any).
pub type TracedPayload = (Vec<u8>, Option<TraceContext>);

/// Decodes a traced batch frame back into payloads and their
/// contexts.
///
/// # Errors
///
/// Same failure modes as [`decode`]; an unknown context flag byte is
/// reported as [`BatchError::BadHeader`].
pub fn decode_traced(frame: &[u8]) -> Result<Vec<TracedPayload>, BatchError> {
    if frame.len() < HEADER_LEN || frame[..2] != TRACED_MAGIC {
        return Err(BatchError::BadHeader);
    }
    let count = u32::from_le_bytes(frame[2..6].try_into().expect("4 bytes")) as usize;
    let mut payloads = Vec::with_capacity(count.min(1024));
    let mut at = HEADER_LEN;
    for _ in 0..count {
        if frame.len() < at + PER_PAYLOAD_FLAG_LEN {
            return Err(BatchError::Truncated);
        }
        let ctx = match frame[at] {
            0 => {
                at += PER_PAYLOAD_FLAG_LEN;
                None
            }
            1 => {
                at += PER_PAYLOAD_FLAG_LEN;
                if frame.len() < at + TraceContext::WIRE_LEN {
                    return Err(BatchError::Truncated);
                }
                let ctx = TraceContext::from_bytes(&frame[at..]).expect("length checked");
                at += TraceContext::WIRE_LEN;
                Some(ctx)
            }
            _ => return Err(BatchError::BadHeader),
        };
        if frame.len() < at + PER_PAYLOAD_LEN {
            return Err(BatchError::Truncated);
        }
        let len = u32::from_le_bytes(frame[at..at + PER_PAYLOAD_LEN].try_into().expect("4 bytes"))
            as usize;
        at += PER_PAYLOAD_LEN;
        if frame.len() < at + len {
            return Err(BatchError::Truncated);
        }
        payloads.push((frame[at..at + len].to_vec(), ctx));
        at += len;
    }
    if at != frame.len() {
        return Err(BatchError::TrailingBytes);
    }
    Ok(payloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_round_trips() {
        let frame = encode(&[]);
        assert_eq!(frame.len(), HEADER_LEN);
        assert_eq!(decode(&frame).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn frame_len_matches_encode() {
        let payloads: Vec<Vec<u8>> = vec![vec![1; 3], vec![], vec![9; 300]];
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let lens: Vec<usize> = payloads.iter().map(|p| p.len()).collect();
        assert_eq!(encode(&refs).len(), frame_len(&lens));
    }

    #[test]
    fn batching_amortises_headers() {
        // k messages in one frame must cost less wire than k frames.
        let lens = [64usize, 64, 64, 64];
        let batched = frame_len(&lens);
        let separate: usize = lens.iter().map(|&l| frame_len(&[l])).sum();
        assert!(batched < separate, "batched {batched} vs separate {separate}");
    }

    #[test]
    fn decode_rejects_corruption() {
        assert_eq!(decode(b"XX\0\0\0\0"), Err(BatchError::BadHeader));
        assert_eq!(decode(b"MB"), Err(BatchError::BadHeader));
        let mut frame = encode(&[b"abc".as_slice()]);
        let cut = frame.len() - 1;
        frame.truncate(cut);
        assert_eq!(decode(&frame), Err(BatchError::Truncated));
        let mut padded = encode(&[b"abc".as_slice()]);
        padded.push(0);
        assert_eq!(decode(&padded), Err(BatchError::TrailingBytes));
    }

    #[test]
    fn payload_order_is_preserved() {
        let frame = encode(&[b"a".as_slice(), b"bb".as_slice(), b"ccc".as_slice()]);
        let decoded = decode(&frame).unwrap();
        assert_eq!(decoded, vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]);
    }

    #[test]
    fn traced_frame_round_trips_mixed_contexts() {
        let ctx = TraceContext { trace_id: 7, parent_span_id: 3 };
        let items: Vec<(&[u8], Option<TraceContext>)> =
            vec![(b"with".as_slice(), Some(ctx)), (b"without".as_slice(), None)];
        let frame = encode_traced(&items);
        assert_eq!(frame.len(), traced_frame_len(&[(4, true), (7, false)]));
        let decoded = decode_traced(&frame).unwrap();
        assert_eq!(decoded, vec![(b"with".to_vec(), Some(ctx)), (b"without".to_vec(), None)]);
    }

    #[test]
    fn traced_and_classic_magics_are_disjoint() {
        let classic = encode(&[b"x".as_slice()]);
        assert_eq!(decode_traced(&classic), Err(BatchError::BadHeader));
        let traced = encode_traced(&[(b"x".as_slice(), None)]);
        assert_eq!(decode(&traced), Err(BatchError::BadHeader));
    }

    #[test]
    fn traced_frame_rejects_corruption() {
        let ctx = TraceContext { trace_id: 1, parent_span_id: 2 };
        let mut frame = encode_traced(&[(b"abc".as_slice(), Some(ctx))]);
        let cut = frame.len() - 1;
        frame.truncate(cut);
        assert_eq!(decode_traced(&frame), Err(BatchError::Truncated));
        let mut bad_flag = encode_traced(&[(b"abc".as_slice(), None)]);
        bad_flag[HEADER_LEN] = 9;
        assert_eq!(decode_traced(&bad_flag), Err(BatchError::BadHeader));
        let mut padded = encode_traced(&[(b"abc".as_slice(), None)]);
        padded.push(0);
        assert_eq!(decode_traced(&padded), Err(BatchError::TrailingBytes));
    }

    #[test]
    fn traced_context_cost_is_only_paid_when_present() {
        let with = traced_frame_len(&[(64, true)]);
        let without = traced_frame_len(&[(64, false)]);
        assert_eq!(with - without, TraceContext::WIRE_LEN);
        // An untraced traced-frame costs one flag byte over classic.
        assert_eq!(without, frame_len(&[64]) + PER_PAYLOAD_FLAG_LEN);
    }
}
