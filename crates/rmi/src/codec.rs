//! Serialization of managed values across the enclave boundary.
//!
//! Relay methods pass primitives by value, annotated-class references by
//! proxy hash, and *neutral* objects by serialized copy (§5.2). This
//! module implements that wire format: a compact, self-describing binary
//! encoding of [`Value`] graphs with
//!
//! - inline deep copies for neutral objects,
//! - back-references so shared substructure and cycles encode finitely,
//! - hash references for objects the caller maps to proxies/mirrors.
//!
//! The caller supplies the policy that decides, per object reference,
//! whether to inline or hash-reference it — keeping the codec free of
//! class-annotation knowledge.
//!
//! Two wire formats coexist (`docs/SERDE.md`):
//!
//! - **v1** (`montsalvat.rmi/v1`) — the original tag stream, produced
//!   by [`encode_value`]. Still decoded for compatibility.
//! - **v2** (`montsalvat.rmi/v2`) — opens with [`WIRE_V2_MARKER`]
//!   (a byte no v1 stream can start with, so [`decode_value`] sniffs
//!   the version) and adds *bulk* tags: `Value::Bytes` and
//!   primitive-homogeneous `Value::List`s encode as one
//!   length-prefixed memcpy instead of one tag per element.
//!   [`encode_value_v2`] / [`encode_values_v2`] write into a
//!   caller-supplied (typically pooled — see [`crate::pool`]) buffer
//!   and report how many payload bytes went through the bulk path so
//!   the cost model can charge them at the cheaper bulk rate.
//!
//! Decoding either format refuses nesting deeper than
//! [`MAX_DECODE_DEPTH`] with [`CodecError::TooDeep`] — malformed or
//! adversarial payloads must not overflow the stack inside the
//! enclave.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use runtime_sim::heap::Heap;
use runtime_sim::value::{ClassId, ObjId, Value};

use crate::hash::ProxyHash;

/// The compact trace-context header an RMI message can carry across
/// the boundary so a call entering the other runtime continues the
/// caller's trace (see `telemetry::trace` and `docs/TRACING.md`).
///
/// Wire format: `trace_id` then `parent_span_id`, both u64
/// little-endian — [`TraceContext::WIRE_LEN`] bytes total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The call tree the message belongs to.
    pub trace_id: u64,
    /// The caller-side span the receiving side should parent its
    /// spans under.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Encoded size in bytes.
    pub const WIRE_LEN: usize = 16;

    /// Serialises the context for the wire.
    pub fn to_bytes(self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..].copy_from_slice(&self.parent_span_id.to_le_bytes());
        out
    }

    /// Reads a context back from [`TraceContext::to_bytes`] output.
    /// Returns `None` when fewer than [`TraceContext::WIRE_LEN`]
    /// bytes are given.
    pub fn from_bytes(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() < Self::WIRE_LEN {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            parent_span_id: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        })
    }
}

/// How a heap reference crosses the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefEncoding {
    /// Deep-copy the referenced object into the stream (neutral classes).
    Inline,
    /// Replace the reference by a proxy/mirror hash (annotated classes).
    Hash(ProxyHash),
}

/// Errors produced by [`encode_value`] / [`decode_value`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodecError {
    /// The policy rejected a reference (e.g. a trusted object would leak).
    ForbiddenRef {
        /// The offending reference.
        id: ObjId,
        /// Why the policy rejected it.
        reason: String,
    },
    /// A reference pointed at a dead object.
    DeadRef(ObjId),
    /// The byte stream ended mid-value.
    Truncated,
    /// An unknown tag byte was read.
    BadTag(u8),
    /// A back-reference index pointed outside the decoded set.
    BadBackRef(u32),
    /// A hash reference could not be resolved by the receiver.
    UnknownHash(ProxyHash),
    /// The receiving heap refused the allocation.
    AllocFailed(String),
    /// The stream nested values deeper than [`MAX_DECODE_DEPTH`].
    TooDeep,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::ForbiddenRef { id, reason } => {
                write!(f, "reference {id} may not cross the boundary: {reason}")
            }
            CodecError::DeadRef(id) => write!(f, "reference {id} is dead"),
            CodecError::Truncated => write!(f, "byte stream truncated"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t}"),
            CodecError::BadBackRef(i) => write!(f, "back-reference {i} out of range"),
            CodecError::UnknownHash(h) => write!(f, "unresolvable object hash {h}"),
            CodecError::AllocFailed(m) => write!(f, "receiver allocation failed: {m}"),
            CodecError::TooDeep => {
                write!(f, "value nesting exceeds the decode depth bound {MAX_DECODE_DEPTH}")
            }
        }
    }
}

impl Error for CodecError {}

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_OBJ: u8 = 7;
const TAG_BACKREF: u8 = 8;
const TAG_HASHREF: u8 = 9;
// v2-only bulk tags: a homogeneous primitive list as one raw copy.
const TAG_INTS: u8 = 10;
const TAG_FLOATS: u8 = 11;

/// First byte of every v2 stream. No v1 stream can start with it (v1
/// first bytes are the tags `0..=9`), so [`decode_value`] accepts both
/// formats through one entry point.
pub const WIRE_V2_MARKER: u8 = 0xF2;

/// Maximum value-nesting depth [`decode_value`] accepts before
/// returning [`CodecError::TooDeep`]. Deep enough for any legitimate
/// object graph (cycles and sharing flatten through back-references),
/// shallow enough that decoding runs in bounded stack space.
pub const MAX_DECODE_DEPTH: usize = 128;

/// Byte accounting from a v2 encode, for split-rate cost charging:
/// `bulk_bytes` moved through a single-memcpy bulk tag and are charged
/// at `serde_bulk_ns_per_byte`; the remaining
/// [`EncodeStats::element_bytes`] paid the per-element graph walk.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EncodeStats {
    /// Total bytes this encode appended to the output buffer.
    pub total_bytes: u64,
    /// Payload bytes written by bulk (single-memcpy) tags.
    pub bulk_bytes: u64,
}

impl EncodeStats {
    /// Bytes that took the per-element path (tags, headers, scalars).
    pub fn element_bytes(&self) -> u64 {
        self.total_bytes - self.bulk_bytes
    }
}

/// Encodes `value` against `heap`, consulting `policy` for every object
/// reference encountered.
///
/// # Errors
///
/// Fails if the policy rejects a reference, or a reference is dead.
pub fn encode_value(
    heap: &Heap,
    value: &Value,
    policy: &mut impl FnMut(ObjId) -> Result<RefEncoding, CodecError>,
) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    let mut seen: HashMap<ObjId, u32> = HashMap::new();
    let mut bulk = 0;
    encode_inner(heap, value, policy, &mut seen, &mut out, false, &mut bulk)?;
    Ok(out)
}

/// Encodes `value` in wire format v2 into `out`, appending.
///
/// The buffer is caller-supplied so steady-state crossings can reuse a
/// pooled one ([`crate::pool::acquire`]). Returns the byte accounting
/// for split-rate cost charging.
///
/// # Errors
///
/// Same failure modes as [`encode_value`].
pub fn encode_value_v2(
    heap: &Heap,
    value: &Value,
    policy: &mut impl FnMut(ObjId) -> Result<RefEncoding, CodecError>,
    out: &mut Vec<u8>,
) -> Result<EncodeStats, CodecError> {
    let start = out.len();
    let mut seen: HashMap<ObjId, u32> = HashMap::new();
    let mut bulk = 0;
    out.push(WIRE_V2_MARKER);
    encode_inner(heap, value, policy, &mut seen, out, true, &mut bulk)?;
    Ok(EncodeStats { total_bytes: (out.len() - start) as u64, bulk_bytes: bulk })
}

/// Encodes an argument slice as one v2 list without materialising a
/// `Value::List` (the v1 marshal path cloned every argument into one).
/// Decodes as a `Value::List` of the arguments.
///
/// # Errors
///
/// Same failure modes as [`encode_value`].
pub fn encode_values_v2(
    heap: &Heap,
    values: &[Value],
    policy: &mut impl FnMut(ObjId) -> Result<RefEncoding, CodecError>,
    out: &mut Vec<u8>,
) -> Result<EncodeStats, CodecError> {
    let start = out.len();
    let mut seen: HashMap<ObjId, u32> = HashMap::new();
    let mut bulk = 0;
    out.push(WIRE_V2_MARKER);
    encode_list(heap, values, policy, &mut seen, out, true, &mut bulk)?;
    Ok(EncodeStats { total_bytes: (out.len() - start) as u64, bulk_bytes: bulk })
}

/// Encodes a list body, taking the bulk path (v2 only) when every
/// element is the same fixed-width primitive.
fn encode_list(
    heap: &Heap,
    vs: &[Value],
    policy: &mut impl FnMut(ObjId) -> Result<RefEncoding, CodecError>,
    seen: &mut HashMap<ObjId, u32>,
    out: &mut Vec<u8>,
    v2: bool,
    bulk: &mut u64,
) -> Result<(), CodecError> {
    if v2 && !vs.is_empty() {
        if vs.iter().all(|v| matches!(v, Value::Int(_))) {
            out.push(TAG_INTS);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                if let Value::Int(i) = v {
                    out.extend_from_slice(&i.to_le_bytes());
                }
            }
            *bulk += 8 * vs.len() as u64;
            return Ok(());
        }
        if vs.iter().all(|v| matches!(v, Value::Float(_))) {
            out.push(TAG_FLOATS);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                if let Value::Float(x) = v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            *bulk += 8 * vs.len() as u64;
            return Ok(());
        }
    }
    out.push(TAG_LIST);
    out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
    for v in vs {
        encode_inner(heap, v, policy, seen, out, v2, bulk)?;
    }
    Ok(())
}

fn encode_inner(
    heap: &Heap,
    value: &Value,
    policy: &mut impl FnMut(ObjId) -> Result<RefEncoding, CodecError>,
    seen: &mut HashMap<ObjId, u32>,
    out: &mut Vec<u8>,
    v2: bool,
    bulk: &mut u64,
) -> Result<(), CodecError> {
    match value {
        Value::Unit => out.push(TAG_UNIT),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
            if v2 {
                *bulk += b.len() as u64;
            }
        }
        Value::List(vs) => encode_list(heap, vs, policy, seen, out, v2, bulk)?,
        Value::Ref(id) => {
            if let Some(&idx) = seen.get(id) {
                out.push(TAG_BACKREF);
                out.extend_from_slice(&idx.to_le_bytes());
                return Ok(());
            }
            match policy(*id)? {
                RefEncoding::Hash(h) => {
                    out.push(TAG_HASHREF);
                    out.extend_from_slice(&h.0.to_le_bytes());
                }
                RefEncoding::Inline => {
                    let class = heap.class_of(*id).ok_or(CodecError::DeadRef(*id))?;
                    let fields = heap.fields(*id).ok_or(CodecError::DeadRef(*id))?;
                    // Register before encoding fields so cycles terminate.
                    let idx = seen.len() as u32;
                    seen.insert(*id, idx);
                    out.push(TAG_OBJ);
                    out.extend_from_slice(&class.0.to_le_bytes());
                    out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
                    for f in fields {
                        encode_inner(heap, f, policy, seen, out, v2, bulk)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Result of decoding: the value plus every object the decode allocated.
///
/// Allocated objects are left **rooted** in the receiving heap so an
/// automatic collection cannot reclaim them before the caller takes
/// ownership; call [`DecodedValue::unpin`] once the result is anchored.
#[derive(Debug)]
pub struct DecodedValue {
    /// The decoded value.
    pub value: Value,
    /// Objects allocated by the decode, in allocation order.
    pub allocated: Vec<ObjId>,
    /// Payload bytes that arrived through v2 bulk encodings
    /// ([`Value::Bytes`] bodies, `TAG_INTS`/`TAG_FLOATS` element
    /// blocks) and decode as straight copies — the cost model bills
    /// them at the bulk rate instead of the graph-walk rate. Always
    /// `0` for a v1 stream.
    pub bulk_bytes: u64,
}

impl DecodedValue {
    /// Releases the temporary roots on all allocated objects.
    pub fn unpin(self, heap: &mut Heap) -> Value {
        for id in &self.allocated {
            heap.remove_root(*id);
        }
        self.value
    }
}

/// Decodes a value into `heap`, resolving hash references via `resolve`.
///
/// Accepts both wire formats: a stream opening with
/// [`WIRE_V2_MARKER`] decodes as v2 (bulk tags allowed), anything
/// else as v1 — v1 payloads remain decodable unchanged.
///
/// # Errors
///
/// Fails on malformed input, unresolvable hashes, allocation failure,
/// or nesting beyond [`MAX_DECODE_DEPTH`].
pub fn decode_value(
    heap: &mut Heap,
    bytes: &[u8],
    resolve: &mut impl FnMut(ProxyHash) -> Result<Value, CodecError>,
) -> Result<DecodedValue, CodecError> {
    let (v2, body) = match bytes.first() {
        Some(&WIRE_V2_MARKER) => (true, &bytes[1..]),
        _ => (false, bytes),
    };
    let mut cursor = Cursor { bytes: body, pos: 0 };
    let mut allocated = Vec::new();
    let mut bulk = 0u64;
    let value = decode_inner(heap, &mut cursor, resolve, &mut allocated, v2, 0, &mut bulk)?;
    Ok(DecodedValue { value, allocated, bulk_bytes: if v2 { bulk } else { 0 } })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Validates a claimed element count against the remaining input:
    /// every encoded element occupies at least one byte, so any larger
    /// claim is malformed (and would otherwise drive huge allocations).
    fn checked_count(&self, claimed: u32) -> Result<usize, CodecError> {
        if claimed as usize > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(claimed as usize)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

fn decode_inner(
    heap: &mut Heap,
    cur: &mut Cursor<'_>,
    resolve: &mut impl FnMut(ProxyHash) -> Result<Value, CodecError>,
    allocated: &mut Vec<ObjId>,
    v2: bool,
    depth: usize,
    bulk: &mut u64,
) -> Result<Value, CodecError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(CodecError::TooDeep);
    }
    match cur.u8()? {
        TAG_UNIT => Ok(Value::Unit),
        TAG_BOOL => Ok(Value::Bool(cur.u8()? != 0)),
        TAG_INT => Ok(Value::Int(cur.i64()?)),
        TAG_FLOAT => Ok(Value::Float(cur.f64()?)),
        TAG_STR => {
            let len = cur.u32()? as usize;
            let raw = cur.take(len)?;
            Ok(Value::Str(String::from_utf8_lossy(raw).into_owned()))
        }
        TAG_BYTES => {
            let len = cur.u32()? as usize;
            *bulk += len as u64;
            Ok(Value::Bytes(cur.take(len)?.to_vec()))
        }
        TAG_LIST => {
            let claimed = cur.u32()?;
            let len = cur.checked_count(claimed)?;
            let mut vs = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                vs.push(decode_inner(heap, cur, resolve, allocated, v2, depth + 1, bulk)?);
            }
            Ok(Value::List(vs))
        }
        TAG_INTS if v2 => {
            let claimed = cur.u32()?;
            let len = cur.checked_count(claimed)?;
            let raw = cur.take(len * 8)?;
            *bulk += raw.len() as u64;
            Ok(Value::List(
                raw.chunks_exact(8)
                    .map(|c| Value::Int(i64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            ))
        }
        TAG_FLOATS if v2 => {
            let claimed = cur.u32()?;
            let len = cur.checked_count(claimed)?;
            let raw = cur.take(len * 8)?;
            *bulk += raw.len() as u64;
            Ok(Value::List(
                raw.chunks_exact(8)
                    .map(|c| Value::Float(f64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            ))
        }
        TAG_OBJ => {
            let class = ClassId(cur.u32()?);
            let claimed = cur.u32()?;
            let nfields = cur.checked_count(claimed)?;
            // Allocate a placeholder first so cyclic back-refs resolve.
            let id = heap
                .alloc(class, vec![Value::Unit; nfields])
                .map_err(|e| CodecError::AllocFailed(e.to_string()))?;
            heap.add_root(id);
            allocated.push(id);
            for idx in 0..nfields {
                let v = decode_inner(heap, cur, resolve, allocated, v2, depth + 1, bulk)?;
                heap.set_field(id, idx, v);
            }
            Ok(Value::Ref(id))
        }
        TAG_BACKREF => {
            let idx = cur.u32()?;
            let id = allocated.get(idx as usize).copied().ok_or(CodecError::BadBackRef(idx))?;
            Ok(Value::Ref(id))
        }
        TAG_HASHREF => {
            let h = ProxyHash(cur.u128()?);
            resolve(h)
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Convenience policy that inlines every reference (valid when the value
/// graph is known to contain only neutral objects).
pub fn inline_all(_: ObjId) -> Result<RefEncoding, CodecError> {
    Ok(RefEncoding::Inline)
}

/// Convenience resolver that rejects every hash (valid when the stream
/// is known to contain no hash references).
pub fn resolve_none(h: ProxyHash) -> Result<Value, CodecError> {
    Err(CodecError::UnknownHash(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime_sim::heap::HeapConfig;

    fn heap() -> Heap {
        Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() })
    }

    #[test]
    fn trace_context_round_trips_and_rejects_short_input() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF_0BAD_F00D, parent_span_id: 42 };
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::from_bytes(&bytes), Some(ctx));
        assert_eq!(TraceContext::from_bytes(&bytes[..15]), None);
    }

    fn roundtrip(value: &Value, src: &Heap, dst: &mut Heap) -> Value {
        let bytes = encode_value(src, value, &mut inline_all).unwrap();
        let decoded = decode_value(dst, &bytes, &mut resolve_none).unwrap();
        decoded.unpin(dst)
    }

    #[test]
    fn primitives_roundtrip() {
        let src = heap();
        let mut dst = heap();
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Int(-17),
            Value::Float(3.5),
            Value::Str("héllo".into()),
            Value::Bytes(vec![1, 2, 3]),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
        ] {
            assert_eq!(roundtrip(&v, &src, &mut dst), v);
        }
    }

    #[test]
    fn neutral_objects_deep_copy() {
        let mut src = heap();
        let inner = src.alloc(ClassId(5), vec![Value::Int(7)]).unwrap();
        let outer = src.alloc(ClassId(6), vec![Value::Ref(inner), Value::from("s")]).unwrap();
        src.add_root(outer);

        let mut dst = heap();
        let out = roundtrip(&Value::Ref(outer), &src, &mut dst);
        let new_outer = out.as_ref_id().unwrap();
        assert_eq!(dst.class_of(new_outer), Some(ClassId(6)));
        let new_inner = dst.field(new_outer, 0).unwrap().as_ref_id().unwrap();
        assert_eq!(dst.class_of(new_inner), Some(ClassId(5)));
        assert_eq!(dst.field(new_inner, 0), Some(&Value::Int(7)));
        // Copies, not aliases.
        assert_eq!(dst.live_objects(), 2);
    }

    #[test]
    fn shared_substructure_is_preserved() {
        let mut src = heap();
        let shared = src.alloc(ClassId(1), vec![Value::Int(9)]).unwrap();
        let top = src.alloc(ClassId(2), vec![Value::Ref(shared), Value::Ref(shared)]).unwrap();
        src.add_root(top);

        let mut dst = heap();
        let out = roundtrip(&Value::Ref(top), &src, &mut dst);
        let new_top = out.as_ref_id().unwrap();
        let a = dst.field(new_top, 0).unwrap().as_ref_id().unwrap();
        let b = dst.field(new_top, 1).unwrap().as_ref_id().unwrap();
        assert_eq!(a, b, "sharing survives the roundtrip");
        assert_eq!(dst.live_objects(), 2, "shared object copied once");
    }

    #[test]
    fn cycles_roundtrip() {
        let mut src = heap();
        let a = src.alloc(ClassId(0), vec![Value::Unit]).unwrap();
        let b = src.alloc(ClassId(0), vec![Value::Ref(a)]).unwrap();
        src.set_field(a, 0, Value::Ref(b));
        src.add_root(a);

        let mut dst = heap();
        let out = roundtrip(&Value::Ref(a), &src, &mut dst);
        let na = out.as_ref_id().unwrap();
        let nb = dst.field(na, 0).unwrap().as_ref_id().unwrap();
        assert_eq!(dst.field(nb, 0).unwrap().as_ref_id(), Some(na));
    }

    #[test]
    fn hash_refs_substitute_via_resolver() {
        let mut src = heap();
        let trusted = src.alloc(ClassId(9), vec![]).unwrap();
        src.add_root(trusted);
        let the_hash = ProxyHash(0xdead_beef);
        let bytes =
            encode_value(&src, &Value::Ref(trusted), &mut |_id| Ok(RefEncoding::Hash(the_hash)))
                .unwrap();

        let mut dst = heap();
        let mirror = dst.alloc(ClassId(9), vec![]).unwrap();
        dst.add_root(mirror);
        let decoded = decode_value(&mut dst, &bytes, &mut |h| {
            assert_eq!(h, the_hash);
            Ok(Value::Ref(mirror))
        })
        .unwrap();
        assert_eq!(decoded.value.as_ref_id(), Some(mirror));
        assert!(decoded.allocated.is_empty());
    }

    #[test]
    fn policy_can_forbid_refs() {
        let mut src = heap();
        let secret = src.alloc(ClassId(3), vec![Value::from("key")]).unwrap();
        src.add_root(secret);
        let err = encode_value(&src, &Value::Ref(secret), &mut |id| {
            Err(CodecError::ForbiddenRef { id, reason: "trusted field would leak".into() })
        })
        .unwrap_err();
        assert!(matches!(err, CodecError::ForbiddenRef { .. }));
    }

    #[test]
    fn dead_refs_are_rejected() {
        let mut src = heap();
        let id = src.alloc(ClassId(0), vec![]).unwrap();
        src.collect(); // reclaims the unrooted object
        let err = encode_value(&src, &Value::Ref(id), &mut inline_all).unwrap_err();
        assert_eq!(err, CodecError::DeadRef(id));
    }

    #[test]
    fn truncated_and_bad_tag_inputs_error() {
        let mut dst = heap();
        assert_eq!(
            decode_value(&mut dst, &[], &mut resolve_none).unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(
            decode_value(&mut dst, &[TAG_INT, 1, 2], &mut resolve_none).unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(
            decode_value(&mut dst, &[42], &mut resolve_none).unwrap_err(),
            CodecError::BadTag(42)
        );
    }

    #[test]
    fn bad_backref_is_detected() {
        let mut bytes = vec![TAG_BACKREF];
        bytes.extend_from_slice(&7u32.to_le_bytes());
        let mut dst = heap();
        assert_eq!(
            decode_value(&mut dst, &bytes, &mut resolve_none).unwrap_err(),
            CodecError::BadBackRef(7)
        );
    }

    fn roundtrip_v2(value: &Value, src: &Heap, dst: &mut Heap) -> (Value, EncodeStats) {
        let mut bytes = Vec::new();
        let stats = encode_value_v2(src, value, &mut inline_all, &mut bytes).unwrap();
        assert_eq!(stats.total_bytes as usize, bytes.len());
        let decoded = decode_value(dst, &bytes, &mut resolve_none).unwrap();
        (decoded.unpin(dst), stats)
    }

    #[test]
    fn v2_roundtrips_through_the_same_decoder() {
        let mut src = heap();
        let obj = src.alloc(ClassId(4), vec![Value::Int(1), Value::from("f")]).unwrap();
        src.add_root(obj);
        let mut dst = heap();
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Int(-17),
            Value::Float(3.5),
            Value::Str("héllo".into()),
            Value::Bytes(vec![1, 2, 3]),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
            Value::List(vec![]),
        ] {
            assert_eq!(roundtrip_v2(&v, &src, &mut dst).0, v);
        }
        let (copied, _) = roundtrip_v2(&Value::Ref(obj), &src, &mut dst);
        let new_id = copied.as_ref_id().unwrap();
        assert_eq!(dst.class_of(new_id), Some(ClassId(4)));
    }

    #[test]
    fn v2_bulk_encodes_homogeneous_primitive_lists() {
        let src = heap();
        let mut dst = heap();
        let ints = Value::List((0..100).map(Value::Int).collect());
        let (out, stats) = roundtrip_v2(&ints, &src, &mut dst);
        assert_eq!(out, ints);
        assert_eq!(stats.bulk_bytes, 800, "one memcpy of 100 × 8 bytes");
        // marker + tag + count + payload
        assert_eq!(stats.total_bytes, 1 + 1 + 4 + 800);

        let floats = Value::List((0..10).map(|i| Value::Float(i as f64)).collect());
        let (out, stats) = roundtrip_v2(&floats, &src, &mut dst);
        assert_eq!(out, floats);
        assert_eq!(stats.bulk_bytes, 80);

        // A mixed list takes the per-element path.
        let mixed = Value::List(vec![Value::Int(1), Value::Float(2.0)]);
        let (out, stats) = roundtrip_v2(&mixed, &src, &mut dst);
        assert_eq!(out, mixed);
        assert_eq!(stats.bulk_bytes, 0);
    }

    #[test]
    fn v2_counts_bytes_payloads_as_bulk() {
        let src = heap();
        let mut dst = heap();
        let v = Value::Bytes(vec![7; 4096]);
        let (out, stats) = roundtrip_v2(&v, &src, &mut dst);
        assert_eq!(out, v);
        assert_eq!(stats.bulk_bytes, 4096);
        assert_eq!(stats.element_bytes(), 1 + 1 + 4, "marker, tag, length prefix");
    }

    #[test]
    fn v2_bulk_lists_are_smaller_than_v1() {
        let src = heap();
        let ints = Value::List((0..64).map(Value::Int).collect());
        let v1 = encode_value(&src, &ints, &mut inline_all).unwrap();
        let mut v2 = Vec::new();
        encode_value_v2(&src, &ints, &mut inline_all, &mut v2).unwrap();
        assert!(v2.len() < v1.len(), "v2 {} vs v1 {}", v2.len(), v1.len());
    }

    #[test]
    fn encode_values_v2_matches_a_decoded_list() {
        let src = heap();
        let mut dst = heap();
        let args = vec![Value::Bytes(vec![1, 2]), Value::Int(9)];
        let mut bytes = Vec::new();
        encode_values_v2(&src, &args, &mut inline_all, &mut bytes).unwrap();
        let decoded = decode_value(&mut dst, &bytes, &mut resolve_none).unwrap();
        assert_eq!(decoded.unpin(&mut dst), Value::List(args));
    }

    #[test]
    fn bulk_tags_are_rejected_in_v1_streams() {
        // A v1 stream (no marker) must not accept v2-only tags.
        let mut bytes = vec![TAG_INTS];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&5i64.to_le_bytes());
        let mut dst = heap();
        assert_eq!(
            decode_value(&mut dst, &bytes, &mut resolve_none).unwrap_err(),
            CodecError::BadTag(TAG_INTS)
        );
    }

    #[test]
    fn pinned_v1_wire_bytes_still_decode() {
        // Golden v1 payload assembled by hand: [Int(7), Str("hi"),
        // Bytes([1,2])]. Guards decode compatibility for payloads
        // produced before the v2 marker existed.
        let mut bytes = vec![TAG_LIST];
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.push(TAG_INT);
        bytes.extend_from_slice(&7i64.to_le_bytes());
        bytes.push(TAG_STR);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(b"hi");
        bytes.push(TAG_BYTES);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2]);

        let mut dst = heap();
        let decoded = decode_value(&mut dst, &bytes, &mut resolve_none).unwrap();
        assert_eq!(
            decoded.unpin(&mut dst),
            Value::List(vec![Value::Int(7), Value::Str("hi".into()), Value::Bytes(vec![1, 2]),])
        );
    }

    fn nested_list_bytes(depth: usize, v2: bool) -> Vec<u8> {
        let mut bytes = Vec::new();
        if v2 {
            bytes.push(WIRE_V2_MARKER);
        }
        for _ in 0..depth {
            bytes.push(TAG_LIST);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(TAG_UNIT);
        bytes
    }

    #[test]
    fn decode_depth_is_bounded_in_both_formats() {
        let mut dst = heap();
        for v2 in [false, true] {
            let deep = nested_list_bytes(MAX_DECODE_DEPTH + 1, v2);
            assert_eq!(
                decode_value(&mut dst, &deep, &mut resolve_none).unwrap_err(),
                CodecError::TooDeep,
                "v2={v2}"
            );
            let ok = nested_list_bytes(MAX_DECODE_DEPTH, v2);
            assert!(decode_value(&mut dst, &ok, &mut resolve_none).is_ok(), "v2={v2}");
        }
    }

    #[test]
    fn encode_into_a_reused_buffer_appends_cleanly() {
        let src = heap();
        let mut dst = heap();
        let mut buf = crate::pool::acquire();
        for round in 0..3 {
            buf.clear();
            let v = Value::Bytes(vec![round as u8; 32]);
            encode_value_v2(&src, &v, &mut inline_all, &mut buf).unwrap();
            let decoded = decode_value(&mut dst, &buf, &mut resolve_none).unwrap();
            assert_eq!(decoded.unpin(&mut dst), v);
        }
    }

    #[test]
    fn decoded_objects_survive_gc_until_unpinned() {
        let mut src = heap();
        let obj = src.alloc(ClassId(1), vec![Value::Int(5)]).unwrap();
        src.add_root(obj);
        let bytes = encode_value(&src, &Value::Ref(obj), &mut inline_all).unwrap();

        let mut dst = heap();
        let decoded = decode_value(&mut dst, &bytes, &mut resolve_none).unwrap();
        let new_id = decoded.value.as_ref_id().unwrap();
        dst.collect();
        assert!(dst.is_live(new_id), "pinned through GC");
        decoded.unpin(&mut dst);
        dst.collect();
        assert!(!dst.is_live(new_id), "reclaimed after unpin");
    }
}
