//! The GC helper thread (§5.5).
//!
//! Montsalvat spawns one helper thread per runtime. Each periodically
//! scans its runtime's proxy weak-reference list; hashes of collected
//! proxies are relayed to the opposite runtime, whose mirror-proxy
//! registry drops the matching strong references — making the mirrors
//! eligible for collection. This module provides the thread harness;
//! the scan-and-relay closure is wired up by the partitioned-application
//! runtime, which owns the worlds and the enclave.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A periodic scanner thread with graceful shutdown.
///
/// The helper runs `tick` every `interval` until stopped or dropped.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::time::Duration;
/// use rmi::gc_helper::GcHelper;
///
/// let hits = Arc::new(AtomicU64::new(0));
/// let seen = Arc::clone(&hits);
/// let helper = GcHelper::spawn("trusted-gc-helper", Duration::from_millis(5), move || {
///     seen.fetch_add(1, Ordering::Relaxed);
/// });
/// std::thread::sleep(Duration::from_millis(40));
/// helper.stop();
/// assert!(hits.load(Ordering::Relaxed) > 0);
/// ```
#[derive(Debug)]
pub struct GcHelper {
    stop: Arc<AtomicBool>,
    ticks: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl GcHelper {
    /// Spawns a helper named `name` running `tick` every `interval`.
    pub fn spawn(
        name: impl Into<String>,
        interval: Duration,
        mut tick: impl FnMut() + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let ticks = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let tick_count = Arc::clone(&ticks);
        let handle = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    tick();
                    tick_count.fetch_add(1, Ordering::Relaxed);
                    // Sleep in short slices so shutdown is prompt even
                    // with long scan intervals.
                    let mut remaining = interval;
                    let slice = Duration::from_millis(5);
                    while remaining > Duration::ZERO && !stop_flag.load(Ordering::Acquire) {
                        let nap = remaining.min(slice);
                        std::thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn gc helper thread");
        GcHelper { stop, ticks, handle: Some(handle) }
    }

    /// Like [`GcHelper::spawn`], but also counts every completed sweep
    /// into `recorder` as [`telemetry::Counter::GcHelperSweeps`].
    pub fn spawn_recorded(
        name: impl Into<String>,
        interval: Duration,
        recorder: Arc<telemetry::Recorder>,
        mut tick: impl FnMut() + Send + 'static,
    ) -> Self {
        Self::spawn(name, interval, move || {
            tick();
            recorder.incr(telemetry::Counter::GcHelperSweeps);
        })
    }

    /// Number of completed scan ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Stops the helper and waits for its thread to exit.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GcHelper {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_ticks_repeatedly() {
        let helper = GcHelper::spawn("t", Duration::from_millis(1), || {});
        std::thread::sleep(Duration::from_millis(30));
        assert!(helper.ticks() >= 2);
        helper.stop();
    }

    #[test]
    fn recorded_helper_counts_sweeps() {
        let rec = telemetry::Recorder::new();
        let helper = GcHelper::spawn_recorded("t", Duration::from_millis(1), rec.clone(), || {});
        std::thread::sleep(Duration::from_millis(30));
        helper.stop();
        let sweeps = rec.counter(telemetry::Counter::GcHelperSweeps);
        assert!(sweeps >= 2, "expected sweeps recorded, got {sweeps}");
    }

    #[test]
    fn stop_is_prompt_even_with_long_interval() {
        let helper = GcHelper::spawn("t", Duration::from_secs(60), || {});
        std::thread::sleep(Duration::from_millis(10));
        let started = std::time::Instant::now();
        helper.stop();
        assert!(started.elapsed() < Duration::from_secs(1), "stop did not block on interval");
    }

    #[test]
    fn drop_stops_the_thread() {
        let ran = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&ran);
        {
            let _helper = GcHelper::spawn("t", Duration::from_millis(1), move || {
                seen.fetch_add(1, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(10));
        }
        let after_drop = ran.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ran.load(Ordering::Relaxed), after_drop, "no ticks after drop");
    }
}
