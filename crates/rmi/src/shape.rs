//! Shape-cached class metadata for the serde fast path.
//!
//! The v1 boundary path re-derived per-class layout facts on every
//! crossing and cloned the class-name `String` into every proxy-hash
//! hint. This module caches both, per app:
//!
//! - [`ShapeCache`] maps `ClassId → Arc<CompiledShape>` — field
//!   count, primitive-only flag, fixed wire width and the interned
//!   class-name id — compiled once on a class's first crossing and
//!   read lock-free-in-spirit thereafter (the read path clones one
//!   `Arc` under a briefly-held read lock; writes copy-on-write the
//!   whole map so readers never block on a miss being filled).
//! - [`NameInterner`] maps class names to dense `u32` ids. A name
//!   crosses the wire in full exactly once per (class, peer) pair;
//!   every later crossing references it by id (wire format v2's
//!   interned hint encoding — see `docs/SERDE.md`).

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use runtime_sim::value::ClassId;

/// Per-class facts the encoder needs on every crossing, compiled once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledShape {
    /// Number of declared fields.
    pub field_count: u32,
    /// Every field is a primitive (no heap references can occur), so
    /// marshalling values of this class never needs the annotated-ref
    /// scan pass.
    pub primitive_only: bool,
    /// Exact encoded width in bytes when every instance encodes to
    /// the same size (fixed-width primitive fields only); `None` for
    /// variable-width shapes. Used to pre-size encode buffers.
    pub fixed_width: Option<u32>,
    /// The class name's id in the app's [`NameInterner`].
    pub name_id: u32,
}

/// Copy-on-write map from [`ClassId`] to its [`CompiledShape`].
#[derive(Debug, Default)]
pub struct ShapeCache {
    map: RwLock<Arc<HashMap<ClassId, Arc<CompiledShape>>>>,
}

impl ShapeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a compiled shape; `None` means the caller should
    /// compile one and [`ShapeCache::insert`] it (a *shape-cache
    /// miss*, counted by `serde.shape_cache_misses`).
    pub fn get(&self, class: ClassId) -> Option<Arc<CompiledShape>> {
        self.map.read().expect("shape cache poisoned").get(&class).cloned()
    }

    /// Publishes a compiled shape. Replaces the map copy-on-write so
    /// concurrent readers keep their snapshot; inserting the same
    /// class twice keeps the latest shape.
    pub fn insert(&self, class: ClassId, shape: CompiledShape) -> Arc<CompiledShape> {
        let shape = Arc::new(shape);
        let mut guard = self.map.write().expect("shape cache poisoned");
        let mut next: HashMap<ClassId, Arc<CompiledShape>> = (**guard).clone();
        next.insert(class, Arc::clone(&shape));
        *guard = Arc::new(next);
        shape
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.map.read().expect("shape cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How a class name rides a wire hint: the full string on the first
/// crossing of that class, the 4-byte intern id thereafter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameRef {
    /// First crossing — carries the name so the peer can populate its
    /// own table. Costs `4 + len` modelled wire bytes.
    Named(u32, Arc<str>),
    /// Subsequent crossings — the id alone. Costs 4 modelled bytes.
    Id(u32),
}

impl NameRef {
    /// The intern id, whichever encoding is used.
    pub fn id(&self) -> u32 {
        match self {
            NameRef::Named(id, _) => *id,
            NameRef::Id(id) => *id,
        }
    }

    /// Modelled wire bytes this hint-name encoding occupies.
    pub fn wire_len(&self) -> usize {
        match self {
            NameRef::Named(_, name) => 4 + name.len(),
            NameRef::Id(_) => 4,
        }
    }
}

#[derive(Debug, Default)]
struct InternInner {
    by_name: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

/// Bidirectional `String ↔ u32` table of class names, shared by both
/// worlds of an app (modelling the per-peer table each side builds
/// from the `Named` hints it has seen).
#[derive(Debug, Default)]
pub struct NameInterner {
    inner: RwLock<InternInner>,
}

impl NameInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id and whether this call created
    /// it (`true` exactly once per distinct name — the crossing that
    /// must carry [`NameRef::Named`]).
    pub fn intern(&self, name: &str) -> (u32, bool) {
        if let Some(&id) = self.inner.read().expect("interner poisoned").by_name.get(name) {
            return (id, false);
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        if let Some(&id) = inner.by_name.get(name) {
            return (id, false);
        }
        let id = inner.names.len() as u32;
        let name: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&name));
        inner.by_name.insert(name, id);
        (id, true)
    }

    /// The name behind `id`, if interned.
    pub fn resolve(&self, id: u32) -> Option<Arc<str>> {
        self.inner.read().expect("interner poisoned").names.get(id as usize).cloned()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_reports_first_use() {
        let interner = NameInterner::new();
        let (a, fresh_a) = interner.intern("KvStore");
        let (b, fresh_b) = interner.intern("Writer");
        let (a2, fresh_a2) = interner.intern("KvStore");
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.resolve(a).as_deref(), Some("KvStore"));
        assert_eq!(interner.resolve(b).as_deref(), Some("Writer"));
        assert_eq!(interner.resolve(99), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn name_ref_wire_len_shrinks_after_first_crossing() {
        let first = NameRef::Named(0, Arc::from("SomeClassName"));
        let later = NameRef::Id(0);
        assert_eq!(first.wire_len(), 4 + "SomeClassName".len());
        assert_eq!(later.wire_len(), 4);
        assert_eq!(first.id(), later.id());
    }

    #[test]
    fn shape_cache_round_trips_and_overwrites() {
        let cache = ShapeCache::new();
        assert!(cache.get(ClassId(3)).is_none());
        let shape = CompiledShape {
            field_count: 2,
            primitive_only: true,
            fixed_width: Some(18),
            name_id: 0,
        };
        cache.insert(ClassId(3), shape.clone());
        assert_eq!(cache.get(ClassId(3)).as_deref(), Some(&shape));
        assert_eq!(cache.len(), 1);

        let wider = CompiledShape { field_count: 3, ..shape };
        cache.insert(ClassId(3), wider.clone());
        assert_eq!(cache.get(ClassId(3)).as_deref(), Some(&wider));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn readers_keep_their_snapshot_across_inserts() {
        let cache = ShapeCache::new();
        let shape =
            CompiledShape { field_count: 1, primitive_only: false, fixed_width: None, name_id: 7 };
        let inserted = cache.insert(ClassId(1), shape);
        let held = cache.get(ClassId(1)).unwrap();
        cache.insert(
            ClassId(2),
            CompiledShape { field_count: 9, primitive_only: true, fixed_width: None, name_id: 8 },
        );
        assert_eq!(held, inserted, "snapshot unaffected by later inserts");
        assert_eq!(cache.len(), 2);
    }
}
