//! # rmi — the RMI-like cross-enclave object layer of the Montsalvat reproduction
//!
//! Montsalvat lets objects in the trusted and untrusted runtimes call
//! each other through an RMI-like mechanism (§5.2, §5.5 of the paper).
//! This crate provides the mechanism's building blocks, independent of
//! class metadata:
//!
//! - [`hash`] — proxy identity hashes ([`ProxyHash`]),
//!   with both the prototype's Java-identity scheme and the recommended
//!   wide scheme;
//! - [`codec`] — the wire format that deep-copies neutral objects,
//!   preserves shared substructure/cycles, and hash-references
//!   annotated objects;
//! - [`batch`] — batched wire frames: several queued switchless
//!   requests cross the boundary as one length-prefixed frame, so a
//!   worker wakeup that drains a batch pays one frame header;
//! - [`pool`] — thread-local pooled encode/decode buffers with
//!   high-water-mark trimming, so steady-state crossings allocate no
//!   fresh payload memory;
//! - [`shape`] — the per-app shape cache and class-name interner
//!   behind the wire-format-v2 fast path (`docs/SERDE.md`);
//! - [`registry`] — the mirror-proxy registry holding strong references
//!   to mirror objects, keyed by proxy hash;
//! - [`weaklist`] — the per-runtime weak-reference list of live proxies;
//! - [`gc_helper`] — the periodic scanner thread that drives
//!   cross-runtime garbage-collection consistency.
//!
//! The partitioned-application runtime in `montsalvat-core` wires these
//! pieces to the enclave simulator (crossings, charges) and the class
//! model (which references are neutral vs. annotated).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod gc_helper;
pub mod hash;
pub mod pool;
pub mod registry;
pub mod shape;
pub mod weaklist;

pub use codec::{
    decode_value, encode_value, encode_value_v2, encode_values_v2, CodecError, DecodedValue,
    EncodeStats, RefEncoding, TraceContext,
};
pub use gc_helper::GcHelper;
pub use hash::{HashScheme, ProxyHash, ProxyHasher};
pub use pool::PooledBuf;
pub use registry::MirrorProxyRegistry;
pub use shape::{CompiledShape, NameInterner, NameRef, ShapeCache};
pub use weaklist::ProxyWeakList;
