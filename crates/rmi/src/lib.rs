//! # rmi — the RMI-like cross-enclave object layer of the Montsalvat reproduction
//!
//! Montsalvat lets objects in the trusted and untrusted runtimes call
//! each other through an RMI-like mechanism (§5.2, §5.5 of the paper).
//! This crate provides the mechanism's building blocks, independent of
//! class metadata:
//!
//! - [`hash`] — proxy identity hashes ([`ProxyHash`]),
//!   with both the prototype's Java-identity scheme and the recommended
//!   wide scheme;
//! - [`codec`] — the wire format that deep-copies neutral objects,
//!   preserves shared substructure/cycles, and hash-references
//!   annotated objects;
//! - [`batch`] — batched wire frames: several queued switchless
//!   requests cross the boundary as one length-prefixed frame, so a
//!   worker wakeup that drains a batch pays one frame header;
//! - [`registry`] — the mirror-proxy registry holding strong references
//!   to mirror objects, keyed by proxy hash;
//! - [`weaklist`] — the per-runtime weak-reference list of live proxies;
//! - [`gc_helper`] — the periodic scanner thread that drives
//!   cross-runtime garbage-collection consistency.
//!
//! The partitioned-application runtime in `montsalvat-core` wires these
//! pieces to the enclave simulator (crossings, charges) and the class
//! model (which references are neutral vs. annotated).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod gc_helper;
pub mod hash;
pub mod registry;
pub mod weaklist;

pub use codec::{decode_value, encode_value, CodecError, DecodedValue, RefEncoding, TraceContext};
pub use gc_helper::GcHelper;
pub use hash::{HashScheme, ProxyHash, ProxyHasher};
pub use registry::MirrorProxyRegistry;
pub use weaklist::ProxyWeakList;
