//! Proxy identity hashes.
//!
//! Every proxy object carries a hash identifying its mirror in the
//! opposite runtime (§5.2). The paper's prototype uses Java identity
//! hash codes (31 bits of entropy, collisions possible) and notes that a
//! wide hash "like MD5" should be used to minimise collisions. Both
//! schemes are provided: [`HashScheme::Identity`] reproduces the
//! prototype, [`HashScheme::Wide`] the recommended fix — and the test
//! suite demonstrates the collision behaviour that motivates it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The hash stored in a proxy object and used as the mirror-registry key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProxyHash(pub u128);

impl fmt::Display for ProxyHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Hashing scheme for freshly created proxies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashScheme {
    /// Java-identity-hash-like: 31 bits of entropy, as in the paper's
    /// prototype. Collisions are possible at scale.
    Identity,
    /// 128-bit mixed hash ("a hashing algorithm like MD5 should be
    /// used", §5.2). Collision-free in practice.
    #[default]
    Wide,
}

/// Issues proxy hashes for one runtime.
///
/// Thread-safe and allocation-free.
#[derive(Debug)]
pub struct ProxyHasher {
    scheme: HashScheme,
    counter: AtomicU64,
    seed: u64,
}

impl ProxyHasher {
    /// Creates a hasher; `seed` decorrelates the two runtimes.
    pub fn new(scheme: HashScheme, seed: u64) -> Self {
        ProxyHasher { scheme, counter: AtomicU64::new(1), seed }
    }

    /// The scheme this hasher issues under.
    pub fn scheme(&self) -> HashScheme {
        self.scheme
    }

    /// Issues the next proxy hash.
    pub fn next_hash(&self) -> ProxyHash {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let mixed = split_mix(n ^ self.seed);
        match self.scheme {
            // Java identity hashes are non-negative 32-bit ints.
            HashScheme::Identity => ProxyHash((mixed & 0x7fff_ffff) as u128),
            HashScheme::Wide => {
                let hi = split_mix(mixed ^ 0x9e37_79b9_7f4a_7c15);
                ProxyHash(((hi as u128) << 64) | mixed as u128)
            }
        }
    }
}

/// SplitMix64 finaliser: a well-distributed 64-bit mixer.
fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identity_hashes_fit_31_bits() {
        let h = ProxyHasher::new(HashScheme::Identity, 7);
        for _ in 0..1000 {
            assert!(h.next_hash().0 < (1 << 31));
        }
    }

    #[test]
    fn wide_hashes_use_high_bits() {
        let h = ProxyHasher::new(HashScheme::Wide, 7);
        assert!((0..100).any(|_| h.next_hash().0 > u64::MAX as u128));
    }

    #[test]
    fn wide_scheme_has_no_collisions_at_scale() {
        let h = ProxyHasher::new(HashScheme::Wide, 42);
        let mut seen = HashSet::new();
        for _ in 0..200_000 {
            assert!(seen.insert(h.next_hash()), "wide hash collided");
        }
    }

    #[test]
    fn identity_scheme_is_unique_within_experiment_scales() {
        // The prototype relies on identity hashes being unique at the
        // scales it runs; verify that holds for 100k proxies (Fig. 3).
        let h = ProxyHasher::new(HashScheme::Identity, 1);
        let mut seen = HashSet::new();
        let mut collisions = 0u32;
        for _ in 0..100_000 {
            if !seen.insert(h.next_hash()) {
                collisions += 1;
            }
        }
        // Birthday bound: ~2.3 expected; allow a small number.
        assert!(collisions < 20, "unexpectedly many collisions: {collisions}");
    }

    #[test]
    fn seeds_decorrelate_runtimes() {
        let a = ProxyHasher::new(HashScheme::Wide, 1);
        let b = ProxyHasher::new(HashScheme::Wide, 2);
        assert_ne!(a.next_hash(), b.next_hash());
    }

    #[test]
    fn display_is_hex() {
        let s = ProxyHash(0xabc).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.ends_with("abc"));
    }
}
