//! Thread-local pooled byte buffers for boundary serde.
//!
//! Every RMI crossing needs a scratch buffer to encode its payload
//! into, and the switchless drain needs one per assembled batch frame.
//! Allocating those buffers fresh puts a malloc/free pair on the
//! hottest path in the system. This module keeps a small per-thread
//! free list of `Vec<u8>` buffers instead: [`acquire`] hands out a
//! cleared buffer (reusing a pooled one when available), and dropping
//! the returned [`PooledBuf`] gives the allocation back to the
//! dropping thread's pool. Steady-state crossings whose payloads fit
//! the retained capacity therefore perform **zero** heap allocation
//! for payload bytes.
//!
//! Retention is bounded two ways:
//!
//! - at most [`MAX_POOLED_BUFS`] buffers are kept per thread, and no
//!   buffer above the configured capacity cap is ever retained;
//! - a *high-water mark* of observed payload sizes is kept per
//!   thread, and once per [`TRIM_WINDOW`] releases any retained
//!   buffer whose capacity exceeds twice the recent high-water mark
//!   is shrunk back to it — a burst of huge payloads cannot pin its
//!   peak footprint forever.
//!
//! The capacity cap is read once per process from
//! `MONTSALVAT_SERDE_POOL` (bytes; `0` disables pooling entirely),
//! defaulting to [`DEFAULT_CAP_BYTES`]. See `docs/SERDE.md`.

use std::cell::RefCell;
use std::sync::OnceLock;

/// Default per-buffer retention cap: buffers that grew beyond this are
/// dropped rather than pooled (1 MiB).
pub const DEFAULT_CAP_BYTES: usize = 1 << 20;

/// Maximum buffers retained per thread.
pub const MAX_POOLED_BUFS: usize = 8;

/// Releases between high-water-mark trim passes.
pub const TRIM_WINDOW: u32 = 64;

static CAP: OnceLock<usize> = OnceLock::new();

/// The process-wide retention cap in bytes (`0` = pooling disabled),
/// from `MONTSALVAT_SERDE_POOL` or [`DEFAULT_CAP_BYTES`].
pub fn cap_bytes() -> usize {
    *CAP.get_or_init(|| {
        std::env::var("MONTSALVAT_SERDE_POOL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CAP_BYTES)
    })
}

/// The per-thread free list plus its trimming state.
#[derive(Debug, Default)]
struct Pool {
    free: Vec<Vec<u8>>,
    /// Largest payload length released since the last trim pass.
    high_water: usize,
    releases: u32,
    reuses: u64,
}

impl Pool {
    fn acquire(&mut self) -> PooledBuf {
        match self.free.pop() {
            Some(buf) => {
                self.reuses += 1;
                PooledBuf { buf, pooled: true }
            }
            None => PooledBuf { buf: Vec::new(), pooled: false },
        }
    }

    fn release(&mut self, mut buf: Vec<u8>, cap: usize) {
        self.high_water = self.high_water.max(buf.len());
        self.releases += 1;
        if buf.capacity() > 0 && buf.capacity() <= cap && self.free.len() < MAX_POOLED_BUFS {
            buf.clear();
            self.free.push(buf);
        }
        if self.releases >= TRIM_WINDOW {
            self.trim();
        }
    }

    /// Shrinks retained buffers far above the recent high-water mark,
    /// then opens a fresh observation window.
    fn trim(&mut self) {
        let hwm = self.high_water;
        for buf in &mut self.free {
            if buf.capacity() > hwm.saturating_mul(2) {
                buf.shrink_to(hwm);
            }
        }
        self.high_water = 0;
        self.releases = 0;
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// A byte buffer borrowed from the thread-local pool.
///
/// Dereferences to `Vec<u8>` for use as an encode target; dropping it
/// returns the allocation to the dropping thread's pool (cross-thread
/// drops simply seed that thread's pool). [`PooledBuf::was_pooled`]
/// reports whether the capacity was reused — the signal behind the
/// `serde.pooled_bytes` counter.
#[derive(Debug, Default)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pooled: bool,
}

impl PooledBuf {
    /// Wraps an existing vector without touching the pool (its bytes
    /// still return to the pool on drop).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        PooledBuf { buf, pooled: false }
    }

    /// Whether this buffer's capacity came from the pool rather than
    /// a fresh allocation.
    pub fn was_pooled(&self) -> bool {
        self.pooled
    }

    /// Consumes the buffer without returning it to the pool.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pooled = false;
        std::mem::take(&mut self.buf)
    }
}

/// Hands out a cleared buffer, reusing pooled capacity when available.
/// With pooling disabled (`MONTSALVAT_SERDE_POOL=0`) this is a plain
/// fresh allocation.
pub fn acquire() -> PooledBuf {
    if cap_bytes() == 0 {
        return PooledBuf { buf: Vec::new(), pooled: false };
    }
    POOL.with(|p| p.borrow_mut().acquire())
}

/// Number of times this thread's pool satisfied an [`acquire`] from
/// retained capacity.
pub fn thread_reuses() -> u64 {
    POOL.with(|p| p.borrow().reuses)
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let cap = cap_bytes();
        if cap == 0 {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        // A panicking thread may drop after its TLS is torn down;
        // losing the buffer is fine then.
        let _ = POOL.try_with(|p| p.borrow_mut().release(buf, cap));
    }
}

impl Clone for PooledBuf {
    fn clone(&self) -> Self {
        let mut out = acquire();
        out.extend_from_slice(&self.buf);
        out
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl Eq for PooledBuf {}

impl From<Vec<u8>> for PooledBuf {
    fn from(buf: Vec<u8>) -> Self {
        PooledBuf::from_vec(buf)
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_acquire_reuses_released_capacity() {
        // Warm the pool on a dedicated thread so parallel tests cannot
        // interfere with the reuse observation.
        std::thread::spawn(|| {
            let mut a = acquire();
            a.extend_from_slice(&[7u8; 100]);
            let ptr = a.as_ptr();
            drop(a);
            let b = acquire();
            assert!(b.was_pooled(), "released capacity must be reused");
            assert!(b.is_empty(), "pooled buffers come back cleared");
            assert_eq!(b.as_ptr(), ptr, "same allocation round-trips");
            assert!(thread_reuses() >= 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let mut pool = Pool::default();
        pool.release(Vec::with_capacity(64), 32);
        assert!(pool.free.is_empty(), "beyond-cap buffer dropped");
        pool.release(Vec::with_capacity(16), 32);
        assert_eq!(pool.free.len(), 1);
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool = Pool::default();
        for _ in 0..(MAX_POOLED_BUFS + 4) {
            pool.release(Vec::with_capacity(8), 1024);
        }
        assert_eq!(pool.free.len(), MAX_POOLED_BUFS);
    }

    #[test]
    fn trim_shrinks_to_recent_high_water_mark() {
        let mut pool = Pool::default();
        // One burst-sized buffer gets retained...
        pool.release(Vec::with_capacity(4096), 1 << 20);
        // ...then a window of small payloads establishes a low mark
        // (the burst release already opened the window).
        for _ in 0..(TRIM_WINDOW - 1) {
            let mut small = Vec::with_capacity(16);
            small.extend_from_slice(&[0u8; 10]);
            pool.release(small, 1 << 20);
        }
        assert!(
            pool.free.iter().all(|b| b.capacity() <= 2 * 16),
            "burst capacity trimmed back toward the working size"
        );
        assert_eq!(pool.releases, 0, "trim opens a fresh window");
    }

    #[test]
    fn clone_copies_bytes() {
        let mut a = acquire();
        a.extend_from_slice(b"payload");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), b"payload");
    }

    #[test]
    fn into_vec_detaches_from_the_pool() {
        let mut a = acquire();
        a.extend_from_slice(&[1, 2, 3]);
        let v = a.into_vec();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
