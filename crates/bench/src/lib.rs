//! Shared helpers for the Criterion benches (see `benches/`).
