//! Tracing overhead on the RMI call path: the same classic crossing
//! with the tracer disabled vs enabled.
//!
//! Runs under `ClockMode::Virtual` so wall-clock measures the real
//! instrumentation work (ring reservation, event construction, name
//! formatting), not the modelled charges. The enabled case clears the
//! ring between Criterion batches so every measured call pays a live
//! push, never the cheaper ring-full drop path. Headline numbers are
//! recorded in `docs/TRACING.md`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat_core::transform::transform;
use runtime_sim::value::Value;
use sgx_sim::cost::ClockMode;
use telemetry::trace::{Lane, Tracer};

fn launch(tracer: Option<Arc<Tracer>>) -> PartitionedApp {
    let tp = transform(&experiments::progs::proxy_bench_program());
    let options = ImageOptions::with_entry_points(experiments::progs::proxy_bench_entries());
    let (t, u) = build_partitioned_images(&tp, &options, &options).expect("images");
    let config = AppConfig {
        gc_helper_interval: None,
        clock_mode: ClockMode::Virtual,
        trace: tracer,
        ..AppConfig::default()
    };
    PartitionedApp::launch(&t, &u, config).expect("launch")
}

fn bench_trace_overhead(c: &mut Criterion) {
    // Disabled: the app's private tracer never gets enabled, so every
    // instrumentation point takes the None fast path (no allocation,
    // no name formatting).
    let disabled = launch(Some(Tracer::new()));
    c.bench_function("rmi_call_x100_trace_disabled", |b| {
        disabled
            .enter_untrusted(|ctx| {
                let obj = ctx.new_object("TObj", &[Value::Int(0)])?;
                let mut i = 0i64;
                b.iter(|| {
                    for _ in 0..100 {
                        i += 1;
                        ctx.call(&obj, "set", &[Value::Int(i)]).unwrap();
                    }
                });
                Ok(())
            })
            .unwrap();
    });
    disabled.shutdown();

    let tracer = Tracer::new();
    tracer.enable_with_capacity(65_536);
    let enabled = launch(Some(Arc::clone(&tracer)));
    c.bench_function("rmi_call_x100_trace_enabled", |b| {
        enabled
            .enter_untrusted(|ctx| {
                let obj = ctx.new_object("TObj", &[Value::Int(0)])?;
                let mut i = 0i64;
                b.iter_batched(
                    || tracer.clear(),
                    |()| {
                        for _ in 0..100 {
                            i += 1;
                            ctx.call(&obj, "set", &[Value::Int(i)]).unwrap();
                        }
                    },
                    BatchSize::PerIteration,
                );
                Ok(())
            })
            .unwrap();
    });
    enabled.shutdown();

    // The raw cost of one skipped instrumentation point, isolating the
    // disabled fast path the call benches amortise over a whole
    // crossing.
    let off = Tracer::new();
    c.bench_function("trace_start_disabled", |b| {
        b.iter(|| {
            assert!(off
                .start(Lane::Trusted, "bench", None, 0, || unreachable!("disabled never names"))
                .is_none());
        });
    });
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
