//! One Criterion bench per figure/table of the paper's evaluation.
//!
//! Each bench regenerates the corresponding experiment at `Quick` scale
//! (the binaries in `crates/experiments` produce the full-scale data).
//! The measured quantity is the wall time of regenerating the artefact —
//! useful for tracking harness regressions; the *scientific* numbers
//! are the simulation-time outputs recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::Scale;

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_proxy_creation", |b| {
        b.iter(|| std::hint::black_box(experiments::micro::fig3(Scale::Quick)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4a_rmi_invocations", |b| {
        b.iter(|| std::hint::black_box(experiments::micro::fig4a(Scale::Quick)))
    });
    c.bench_function("fig4b_rmi_serialization", |b| {
        b.iter(|| std::hint::black_box(experiments::micro::fig4b(Scale::Quick)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5a_gc_performance", |b| {
        b.iter(|| std::hint::black_box(experiments::gc::fig5a(Scale::Quick)))
    });
    c.bench_function("fig5b_gc_consistency", |b| {
        b.iter(|| std::hint::black_box(experiments::gc::fig5b(Scale::Quick)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_partition_sweep", |b| {
        b.iter(|| std::hint::black_box(experiments::synthetic::fig6(Scale::Quick)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_paldb", |b| {
        b.iter(|| std::hint::black_box(experiments::paldb::fig7(Scale::Quick)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_graphchi", |b| {
        b.iter(|| std::hint::black_box(experiments::graph::fig9(Scale::Quick)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_paldb_vs_jvm", |b| {
        b.iter(|| std::hint::black_box(experiments::paldb::fig10(Scale::Quick)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_graphchi_vs_jvm", |b| {
        b.iter(|| std::hint::black_box(experiments::graph::fig11(Scale::Quick)))
    });
}

fn bench_fig12_table1(c: &mut Criterion) {
    c.bench_function("fig12_specjvm", |b| {
        b.iter(|| std::hint::black_box(experiments::spec::fig12(Scale::Quick)))
    });
    c.bench_function("table1_gains", |b| {
        b.iter(|| {
            let runs = experiments::spec::fig12(Scale::Quick);
            std::hint::black_box(experiments::spec::table1(&runs))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7,
              bench_fig9, bench_fig10, bench_fig11, bench_fig12_table1
}
criterion_main!(figures);
