//! Mechanism-level Criterion benches: the individual operations the
//! figures are built from, measured in wall time under
//! `ClockMode::Spin` so the cost model is physically realised.
//!
//! These are the ablation benches DESIGN.md calls out: each measures
//! one design choice (crossing cost, serialization, GC copy, registry,
//! store writes, sharding) in isolation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat_core::transform::transform;
use runtime_sim::heap::{Heap, HeapConfig};
use runtime_sim::value::{ClassId, Value};
use sgx_sim::cost::{ClockMode, CostModel, CostParams};
use sgx_sim::enclave::{Enclave, EnclaveConfig};

fn spin_app() -> PartitionedApp {
    let tp = transform(&experiments::progs::proxy_bench_program());
    let options = ImageOptions::with_entry_points(experiments::progs::proxy_bench_entries());
    let (trusted, untrusted) =
        build_partitioned_images(&tp, &options, &options).expect("images build");
    let config =
        AppConfig { gc_helper_interval: None, clock_mode: ClockMode::Spin, ..AppConfig::default() };
    PartitionedApp::launch(&trusted, &untrusted, config).expect("launch")
}

fn bench_crossings(c: &mut Criterion) {
    let cost = Arc::new(CostModel::new(CostParams::paper_defaults(), ClockMode::Spin));
    let enclave = Enclave::create(&EnclaveConfig::default(), b"bench", cost).expect("enclave");
    c.bench_function("raw_ecall_transition", |b| {
        b.iter(|| enclave.ecall("bench", 64, || std::hint::black_box(1)).unwrap())
    });
    c.bench_function("raw_ocall_transition", |b| {
        b.iter(|| enclave.ocall("bench", 64, || std::hint::black_box(1)).unwrap())
    });
}

fn bench_proxy_ops(c: &mut Criterion) {
    let app = spin_app();
    c.bench_function("proxy_creation_spin", |b| {
        b.iter(|| {
            app.enter_untrusted(|ctx| ctx.new_object("TObj", &[Value::Int(1)])).unwrap();
        })
    });
    let app2 = spin_app();
    c.bench_function("proxy_rmi_setter_spin", |b| {
        app2.enter_untrusted(|ctx| {
            let obj = ctx.new_object("TObj", &[Value::Int(1)])?;
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                ctx.call(&obj, "set", &[Value::Int(i)]).unwrap();
            });
            Ok(())
        })
        .unwrap();
    });
    let app3 = spin_app();
    c.bench_function("concrete_setter_spin", |b| {
        app3.enter_untrusted(|ctx| {
            let obj = ctx.new_object("UObj", &[Value::Int(1)])?;
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                ctx.call(&obj, "set", &[Value::Int(i)]).unwrap();
            });
            Ok(())
        })
        .unwrap();
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut heap = Heap::new(HeapConfig::default());
    let list = Value::List((0..1000).map(|i| Value::Str(format!("{i:016}"))).collect());
    let obj = heap.alloc(ClassId(1), vec![list]).expect("alloc");
    heap.add_root(obj);
    c.bench_function("codec_encode_1000_strings", |b| {
        b.iter(|| {
            rmi::codec::encode_value(&heap, &Value::Ref(obj), &mut rmi::codec::inline_all).unwrap()
        })
    });
    let bytes =
        rmi::codec::encode_value(&heap, &Value::Ref(obj), &mut rmi::codec::inline_all).unwrap();
    c.bench_function("codec_decode_1000_strings", |b| {
        b.iter_batched(
            || Heap::new(HeapConfig::default()),
            |mut dst| {
                let d = rmi::codec::decode_value(&mut dst, &bytes, &mut rmi::codec::resolve_none)
                    .unwrap();
                std::hint::black_box(d.unpin(&mut dst))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_gc(c: &mut Criterion) {
    c.bench_function("gc_collect_10k_objects", |b| {
        b.iter_batched(
            || {
                let mut heap =
                    Heap::new(HeapConfig { gc_threshold_bytes: u64::MAX, ..HeapConfig::default() });
                for i in 0..10_000 {
                    let id = heap.alloc(ClassId(0), vec![Value::Int(i)]).unwrap();
                    if i % 2 == 0 {
                        heap.add_root(id);
                    }
                }
                heap
            },
            |mut heap| std::hint::black_box(heap.collect()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_kvstore(c: &mut Criterion) {
    let dir = std::env::temp_dir();
    c.bench_function("kvstore_build_1k_records", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let path = dir.join(format!("bench_store_{}_{n}.paldb", std::process::id()));
            let mut w = kvstore::StoreWriter::create(&kvstore::Backend::Host, &path).unwrap();
            for i in 0..1000u32 {
                w.put(format!("key{i}").as_bytes(), b"value-payload-0123456789").unwrap();
            }
            w.finalize().unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
}

fn bench_graphchi(c: &mut Criterion) {
    let edges = graphchi::rmat::generate(2000, 10_000, graphchi::rmat::RmatParams::default(), 7);
    c.bench_function("fastsharder_10k_edges", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let dir = std::env::temp_dir().join(format!("bench_shard_{}_{n}", std::process::id()));
            let g =
                graphchi::sharder::shard(&graphchi::Backend::Host, &dir, 2000, &edges, 4).unwrap();
            g.cleanup();
            std::fs::remove_dir_all(&dir).ok();
        })
    });
}

fn bench_kernels(c: &mut Criterion) {
    for w in specjvm::Workload::all() {
        c.bench_function(&format!("kernel_{w}"), |b| b.iter(|| std::hint::black_box(w.run_once())));
    }
}

criterion_group! {
    name = mechanisms;
    config = Criterion::default().sample_size(10);
    targets = bench_crossings, bench_proxy_ops, bench_codec, bench_gc,
              bench_kvstore, bench_graphchi, bench_kernels
}
criterion_main!(mechanisms);
