//! Ablation: classic ecall/ocall RMI crossings vs switchless
//! (transition-less) calls — the paper's §7 future-work item.
//!
//! Runs under `ClockMode::Spin` so Criterion's wall-clock measurement
//! observes the cost model: the classic path realises the transition +
//! relay charges (~45 µs per crossing), the switchless path only the
//! hand-off (~1 µs) plus real thread communication.

use criterion::{criterion_group, criterion_main, Criterion};
use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
use montsalvat_core::exec::switchless::SwitchlessConfig;
use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat_core::transform::transform;
use runtime_sim::value::Value;
use sgx_sim::cost::ClockMode;

fn launch(switchless: bool) -> PartitionedApp {
    let tp = transform(&experiments::progs::proxy_bench_program());
    let options = ImageOptions::with_entry_points(experiments::progs::proxy_bench_entries());
    let (t, u) = build_partitioned_images(&tp, &options, &options).expect("images");
    let config = AppConfig {
        gc_helper_interval: None,
        clock_mode: ClockMode::Spin,
        switchless: switchless.then(SwitchlessConfig::default),
        ..AppConfig::default()
    };
    PartitionedApp::launch(&t, &u, config).expect("launch")
}

fn bench_rmi_modes(c: &mut Criterion) {
    let classic = launch(false);
    c.bench_function("rmi_classic_transition", |b| {
        classic
            .enter_untrusted(|ctx| {
                let obj = ctx.new_object("TObj", &[Value::Int(0)])?;
                let mut i = 0i64;
                b.iter(|| {
                    i += 1;
                    ctx.call(&obj, "set", &[Value::Int(i)]).unwrap();
                });
                Ok(())
            })
            .unwrap();
    });
    let switchless = launch(true);
    c.bench_function("rmi_switchless", |b| {
        switchless
            .enter_untrusted(|ctx| {
                let obj = ctx.new_object("TObj", &[Value::Int(0)])?;
                let mut i = 0i64;
                b.iter(|| {
                    i += 1;
                    ctx.call(&obj, "set", &[Value::Int(i)]).unwrap();
                });
                Ok(())
            })
            .unwrap();
    });
}

criterion_group! {
    name = switchless;
    config = Criterion::default().sample_size(20);
    targets = bench_rmi_modes
}
criterion_main!(switchless);
