//! Bench: the adaptive switchless engine under bursty concurrent load,
//! against a fixed two-worker pool and classic crossings.
//!
//! Each iteration is one *burst*: several caller threads fire a volley
//! of proxy calls at once, then go quiet — the access pattern the
//! adaptive engine is built for (scale up under the burst, park and
//! retire afterwards). Runs under `ClockMode::Spin` so Criterion's
//! wall-clock measurement observes the cost model.
//!
//! Set `MONTSALVAT_BENCH_QUICK=1` (as CI's bench-smoke job does) to
//! shrink samples and burst sizes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
use montsalvat_core::exec::switchless::SwitchlessConfig;
use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat_core::transform::transform;
use runtime_sim::value::Value;
use sgx_sim::cost::ClockMode;

fn quick() -> bool {
    std::env::var("MONTSALVAT_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn launch(switchless: Option<SwitchlessConfig>) -> Arc<PartitionedApp> {
    let tp = transform(&experiments::progs::proxy_bench_program());
    let options = ImageOptions::with_entry_points(experiments::progs::proxy_bench_entries());
    let (t, u) = build_partitioned_images(&tp, &options, &options).expect("images");
    let config = AppConfig {
        gc_helper_interval: None,
        clock_mode: ClockMode::Spin,
        switchless,
        ..AppConfig::default()
    };
    Arc::new(PartitionedApp::launch(&t, &u, config).expect("launch"))
}

/// One burst: `threads` callers each perform `calls` proxy calls.
fn burst(app: &Arc<PartitionedApp>, threads: usize, calls: i64) {
    let mut handles = Vec::with_capacity(threads);
    for _ in 0..threads {
        let app = Arc::clone(app);
        handles.push(std::thread::spawn(move || {
            app.enter_untrusted(|ctx| {
                let obj = ctx.new_object("TObj", &[Value::Int(0)])?;
                for i in 0..calls {
                    ctx.call(&obj, "set", &[Value::Int(i)])?;
                }
                Ok(())
            })
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_bursty_modes(c: &mut Criterion) {
    let (threads, calls) = if quick() { (4, 4) } else { (8, 16) };

    let classic = launch(None);
    c.bench_function("burst_classic", |b| b.iter(|| burst(&classic, threads, calls)));
    classic_shutdown(classic);

    let fixed = launch(Some(SwitchlessConfig::fixed(2)));
    c.bench_function("burst_switchless_fixed2", |b| b.iter(|| burst(&fixed, threads, calls)));

    let adaptive = launch(Some(SwitchlessConfig {
        min_workers: 1,
        max_workers: 8,
        ..SwitchlessConfig::default()
    }));
    c.bench_function("burst_switchless_adaptive", |b| b.iter(|| burst(&adaptive, threads, calls)));

    // The adaptive engine with the trace-driven tuner attached. The
    // global tracer is off in benches, so the tuner stays inert — this
    // mode exists to pin its overhead at (near) zero against the plain
    // adaptive engine.
    let autotuned = launch(Some(SwitchlessConfig {
        min_workers: 1,
        max_workers: 8,
        ..SwitchlessConfig::autotuned()
    }));
    c.bench_function("burst_switchless_autotuned", |b| {
        b.iter(|| burst(&autotuned, threads, calls))
    });
}

fn classic_shutdown(app: Arc<PartitionedApp>) {
    if let Ok(app) = Arc::try_unwrap(app) {
        app.shutdown();
    }
}

criterion_group! {
    name = switchless_adaptive;
    config = Criterion::default().sample_size(if quick() { 10 } else { 20 });
    targets = bench_bursty_modes
}
criterion_main!(switchless_adaptive);
