//! Simulated enclave lifecycle, transitions and attestation.
//!
//! An [`Enclave`] is the meeting point of the whole cost model: it owns
//! the [`EpcState`] for its memory, counts
//! ecall/ocall transitions, and charges the shared
//! [`CostModel`] for every modelled effect.
//!
//! Trusted code is represented as closures executed under
//! [`Enclave::ecall`]; untrusted relays run under [`Enclave::ocall`].
//! The closure-based design keeps the simulation honest: every crossing
//! in the system is forced through these two functions, so the counters
//! reported by [`Enclave::stats`] are ground truth for the experiments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use telemetry::trace::{self, Lane};
use telemetry::{Counter, Gauge, Hist, Recorder};

use crate::cost::CostModel;
use crate::epc::EpcState;
use crate::error::SgxError;

/// Build-time configuration of an enclave, mirroring the SGX SDK's
/// enclave configuration XML.
#[derive(Debug, Clone, PartialEq)]
pub struct EnclaveConfig {
    /// Maximum enclave heap size in bytes (paper uses 4 GB, §6.1).
    pub heap_max: u64,
    /// Maximum enclave stack size in bytes (paper uses 8 MB, §6.1).
    pub stack_max: u64,
    /// Debug enclaves allow inspection; production enclaves do not.
    pub debug: bool,
    /// Failure injection: the enclave is "lost" after serving this many
    /// transitions (simulates power transitions / TCB recovery). `None`
    /// disables injection.
    pub fail_after_transitions: Option<u64>,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            heap_max: 4 * 1024 * 1024 * 1024,
            stack_max: 8 * 1024 * 1024,
            debug: false,
            fail_after_transitions: None,
        }
    }
}

/// SHA-256-shaped enclave measurement (MRENCLAVE analogue).
///
/// The digest is a non-cryptographic 256-bit FNV construction — adequate
/// for simulation (identity, tamper-evidence in tests) and clearly *not*
/// for production use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Measures an image byte-string the way signing measures the enclave
    /// shared object.
    pub fn of(image: &[u8]) -> Self {
        // Four independent 64-bit FNV-1a lanes with distinct offsets.
        let mut lanes = [
            0xcbf29ce484222325u64,
            0x84222325cbf29ce4u64,
            0x9ce484222325cbf2u64,
            0x25cbf29ce4842223u64,
        ];
        for (i, &b) in image.iter().enumerate() {
            let lane = &mut lanes[i % 4];
            *lane ^= b as u64;
            *lane = lane.wrapping_mul(0x100000001b3);
        }
        // Mix image length so prefixes differ.
        lanes[0] ^= image.len() as u64;
        let mut out = [0u8; 32];
        for (i, lane) in lanes.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&lane.to_le_bytes());
        }
        Measurement(out)
    }

    /// Hex rendering, as tooling would print MRENCLAVE.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// Snapshot of an enclave's transition counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionStats {
    /// Calls *into* the enclave.
    pub ecalls: u64,
    /// Calls *out of* the enclave.
    pub ocalls: u64,
    /// Bytes marshalled inward across the boundary.
    pub bytes_in: u64,
    /// Bytes marshalled outward across the boundary.
    pub bytes_out: u64,
    /// EPC page faults charged.
    pub epc_faults: u64,
    /// In-enclave heap traffic charged through the MEE, in bytes.
    pub mee_bytes: u64,
}

/// Attestation quote stub (remote attestation, §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Measurement of the quoted enclave.
    pub measurement: Measurement,
    /// Caller-chosen report data bound into the quote.
    pub report_data: [u8; 32],
    /// Simulated signature over (measurement, report_data).
    pub signature: [u8; 32],
}

/// A simulated SGX enclave.
///
/// Cheap to share: wrap in an [`Arc`] and hand clones to both worlds.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sgx_sim::cost::{ClockMode, CostModel, CostParams};
/// use sgx_sim::enclave::{Enclave, EnclaveConfig};
///
/// # fn main() -> Result<(), sgx_sim::SgxError> {
/// let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
/// let enclave = Enclave::create(&EnclaveConfig::default(), b"image bytes", cost)?;
/// let sum = enclave.ecall("add", 16, || 2 + 2)?;
/// assert_eq!(sum, 4);
/// assert_eq!(enclave.stats().ecalls, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Enclave {
    id: u64,
    measurement: Measurement,
    config: EnclaveConfig,
    cost: Arc<CostModel>,
    epc: Mutex<EpcState>,
    transitions_served: AtomicU64,
    lost: AtomicBool,
}

static NEXT_ENCLAVE_ID: AtomicU64 = AtomicU64::new(1);

impl Enclave {
    /// Creates (loads and initialises) an enclave from an image.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::CreateFailed`] if the configuration is invalid
    /// (zero-sized heap/stack or an empty image).
    pub fn create(
        config: &EnclaveConfig,
        image: &[u8],
        cost: Arc<CostModel>,
    ) -> Result<Arc<Self>, SgxError> {
        if image.is_empty() {
            return Err(SgxError::CreateFailed { reason: "empty enclave image".into() });
        }
        if config.heap_max == 0 || config.stack_max == 0 {
            return Err(SgxError::CreateFailed {
                reason: "heap_max and stack_max must be non-zero".into(),
            });
        }
        // Loading the image measures and EPC-commits its pages.
        let measurement = Measurement::of(image);
        let mut epc = EpcState::new();
        let charge = epc.grow(image.len() as u64, cost.params());
        cost.charge_ns(charge.ns);
        let recorder = cost.recorder();
        recorder.add(Counter::EpcFaults, charge.faults);
        recorder.gauge_max(Gauge::EpcResidentPeak, epc.resident_bytes());
        recorder.gauge_set(Gauge::EpcResident, epc.resident_bytes());
        Ok(Arc::new(Enclave {
            id: NEXT_ENCLAVE_ID.fetch_add(1, Ordering::Relaxed),
            measurement,
            config: config.clone(),
            cost,
            epc: Mutex::new(epc),
            transitions_served: AtomicU64::new(0),
            lost: AtomicBool::new(false),
        }))
    }

    /// The enclave's unique id within this process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The enclave measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The configuration this enclave was created with.
    pub fn config(&self) -> &EnclaveConfig {
        &self.config
    }

    /// The shared cost model.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// The telemetry recorder this enclave reports transitions into
    /// (the cost model's recorder).
    pub fn recorder(&self) -> &Arc<Recorder> {
        self.cost.recorder()
    }

    /// Current transition counters.
    ///
    /// Since the telemetry subsystem landed this is a *view* over the
    /// shared [`Recorder`]: the enclave no longer keeps bespoke atomic
    /// counters, so these numbers are by construction identical to the
    /// `sgx.*` counters in an exported snapshot. (Each enclave gets its
    /// own recorder via its cost model unless a caller explicitly
    /// shares one across enclaves.)
    pub fn stats(&self) -> TransitionStats {
        let epc = self.epc.lock();
        let recorder = self.cost.recorder();
        TransitionStats {
            ecalls: recorder.counter(Counter::Ecalls),
            ocalls: recorder.counter(Counter::Ocalls),
            bytes_in: recorder.counter(Counter::BytesIn),
            bytes_out: recorder.counter(Counter::BytesOut),
            epc_faults: epc.faults(),
            mee_bytes: recorder.counter(Counter::MeeBytes),
        }
    }

    /// Bytes currently resident in the EPC for this enclave.
    pub fn epc_resident_bytes(&self) -> u64 {
        self.epc.lock().resident_bytes()
    }

    fn check_alive(&self) -> Result<(), SgxError> {
        if self.lost.load(Ordering::Acquire) {
            return Err(SgxError::EnclaveLost);
        }
        if let Some(limit) = self.config.fail_after_transitions {
            if self.transitions_served.load(Ordering::Relaxed) >= limit {
                self.lost.store(true, Ordering::Release);
                return Err(SgxError::EnclaveLost);
            }
        }
        Ok(())
    }

    fn charge_crossing(&self, bytes: usize) {
        self.transitions_served.fetch_add(1, Ordering::Relaxed);
        self.cost.charge_ns(self.cost.params().crossing_ns(bytes as u64));
    }

    /// Runs `f` inside a transition span on `lane`. The span becomes
    /// the current context for `f`'s duration, so nested crossings and
    /// RMI spans parent under it — this is where the EENTER/EEXIT pair
    /// shows up on the trace timeline.
    fn traced_transition<R>(
        &self,
        lane: Lane,
        cat: &'static str,
        routine: &str,
        f: impl FnOnce() -> R,
    ) -> R {
        let tracer = self.cost.tracer();
        let prefix = if lane == Lane::Trusted { "ecall" } else { "ocall" };
        let Some(span) = tracer.start(lane, cat, trace::current(), self.cost.now_ns(), || {
            format!("{prefix}:{routine}")
        }) else {
            return f();
        };
        let out = {
            let _scope = trace::set_current(span.context());
            f()
        };
        tracer.finish(span, self.cost.now_ns());
        out
    }

    /// Enters the enclave: runs `f` as trusted code, charging one
    /// transition that carries `bytes_in` bytes inward.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::EnclaveLost`] if the enclave was destroyed or
    /// failure injection tripped.
    pub fn ecall<R>(
        &self,
        routine: &str,
        bytes_in: usize,
        f: impl FnOnce() -> R,
    ) -> Result<R, SgxError> {
        self.check_alive()?;
        let recorder = self.cost.recorder();
        recorder.incr(Counter::Ecalls);
        recorder.incr(Counter::EdlDispatches);
        recorder.add(Counter::BytesIn, bytes_in as u64);
        recorder.record(Hist::CrossingBytes, bytes_in as u64);
        self.charge_crossing(bytes_in);
        Ok(self.traced_transition(Lane::Trusted, "sgx", routine, f))
    }

    /// Exits the enclave: runs `f` as untrusted code, charging one
    /// transition that carries `bytes_out` bytes outward.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::EnclaveLost`] if the enclave was destroyed or
    /// failure injection tripped.
    pub fn ocall<R>(
        &self,
        routine: &str,
        bytes_out: usize,
        f: impl FnOnce() -> R,
    ) -> Result<R, SgxError> {
        self.check_alive()?;
        let recorder = self.cost.recorder();
        recorder.incr(Counter::Ocalls);
        recorder.incr(Counter::EdlDispatches);
        // The libc shim namespaces its edge routines "shim_*"; counting
        // them here keeps every shim call site automatically covered.
        let shim = routine.starts_with("shim_");
        if shim {
            recorder.incr(Counter::ShimOcalls);
        }
        recorder.add(Counter::BytesOut, bytes_out as u64);
        recorder.record(Hist::CrossingBytes, bytes_out as u64);
        self.charge_crossing(bytes_out);
        let cat = if shim { "shim" } else { "sgx" };
        Ok(self.traced_transition(Lane::Untrusted, cat, routine, f))
    }

    /// Commits `bytes` of enclave heap growth, charging EPC paging as
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::OutOfEnclaveMemory`] if the enclave heap
    /// maximum would be exceeded.
    pub fn alloc_heap(&self, bytes: u64) -> Result<(), SgxError> {
        let mut epc = self.epc.lock();
        if epc.resident_bytes() + bytes > self.config.heap_max {
            return Err(SgxError::OutOfEnclaveMemory {
                requested: bytes,
                heap_max: self.config.heap_max,
            });
        }
        let charge = epc.grow(bytes, self.cost.params());
        let resident = epc.resident_bytes();
        drop(epc);
        let recorder = self.cost.recorder();
        recorder.add(Counter::EpcFaults, charge.faults);
        recorder.gauge_max(Gauge::EpcResidentPeak, resident);
        recorder.gauge_set(Gauge::EpcResident, resident);
        self.cost.charge_ns(charge.ns);
        self.trace_aex(charge.faults);
        Ok(())
    }

    /// Marks EPC page faults on the trace: each fault implies an
    /// asynchronous enclave exit (AEX) for the paging handler, so
    /// bursts show up as instants inside whatever span they interrupt.
    fn trace_aex(&self, faults: u64) {
        if faults == 0 {
            return;
        }
        self.cost.tracer().instant(
            Lane::Trusted,
            "sgx",
            trace::current(),
            self.cost.now_ns(),
            || format!("aex:epc_faults={faults}"),
        );
    }

    /// Releases `bytes` of enclave heap.
    pub fn free_heap(&self, bytes: u64) {
        let mut epc = self.epc.lock();
        epc.shrink(bytes);
        let resident = epc.resident_bytes();
        drop(epc);
        self.cost.recorder().gauge_set(Gauge::EpcResident, resident);
    }

    /// Charges MEE + EPC costs for `bytes` of ordinary in-enclave heap
    /// traffic (allocation writes, large scans).
    pub fn charge_heap_traffic(&self, bytes: u64) {
        self.charge_traffic_at(bytes, self.cost.params().mee_ns_per_byte);
    }

    /// Charges MEE + EPC costs for `bytes` copied by a stop-and-copy
    /// collection — the heavy, read-and-rewrite-everything rate (§6.4).
    pub fn charge_gc_copy(&self, bytes: u64) {
        self.charge_traffic_at(bytes, self.cost.params().mee_gc_ns_per_byte);
    }

    /// Charges tracing work for `objects` marked by a collection
    /// (`gc_mark_ns_per_obj` each). The block collector's mark phase
    /// reads headers and chases pointers without copying, so it pays
    /// this per-object rate instead of the per-byte copy rate.
    pub fn charge_gc_mark(&self, objects: u64) {
        let ns = (objects as f64 * self.cost.params().gc_mark_ns_per_obj) as u64;
        self.cost.charge_ns(ns);
    }

    /// Charges EPC paging for GC work that touched `blocks` heap blocks
    /// of `block_bytes` each — the segmented collector's per-block
    /// residency charge, replacing the semispace model's whole-live-set
    /// touch (see `docs/GC.md`). MEE traffic is *not* charged here;
    /// evacuated bytes pay [`Enclave::charge_gc_copy`] separately.
    pub fn charge_gc_blocks(&self, blocks: u64, block_bytes: u64) {
        let params = self.cost.params();
        let charge = self.epc.lock().touch_blocks(blocks, block_bytes, params);
        self.cost.recorder().add(Counter::EpcFaults, charge.faults);
        self.cost.charge_ns(charge.ns);
        self.trace_aex(charge.faults);
    }

    fn charge_traffic_at(&self, bytes: u64, ns_per_byte: f64) {
        let recorder = self.cost.recorder();
        recorder.add(Counter::MeeBytes, bytes);
        let params = self.cost.params();
        let mee_ns = (bytes as f64 * ns_per_byte) as u64;
        let epc_charge = self.epc.lock().touch(bytes, params);
        recorder.add(Counter::EpcFaults, epc_charge.faults);
        self.cost.charge_ns(mee_ns + epc_charge.ns);
        self.trace_aex(epc_charge.faults);
    }

    /// Runs a compute kernel inside the enclave, surcharging MEE costs
    /// when `working_set_bytes` spills out of the last-level cache.
    ///
    /// The kernel's real execution time is measured and the surcharge is
    /// `(mee_compute_factor - 1) ×` that time.
    pub fn run_compute<R>(&self, working_set_bytes: u64, f: impl FnOnce() -> R) -> R {
        let params = self.cost.params();
        let start = std::time::Instant::now();
        let out = f();
        let real_ns = start.elapsed().as_nanos() as u64;
        if working_set_bytes > params.llc_bytes {
            let surcharge = (real_ns as f64 * (params.mee_compute_factor - 1.0)) as u64;
            self.cost.charge_ns(surcharge);
        }
        out
    }

    /// Produces an attestation quote binding `report_data` to this
    /// enclave's measurement (remote-attestation stub, §4).
    pub fn quote(&self, report_data: [u8; 32]) -> Quote {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&self.measurement.0);
        buf.extend_from_slice(&report_data);
        Quote { measurement: self.measurement, report_data, signature: Measurement::of(&buf).0 }
    }

    /// Verifies that `quote` was produced over its contents by the
    /// simulated quoting infrastructure.
    pub fn verify_quote(quote: &Quote) -> bool {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&quote.measurement.0);
        buf.extend_from_slice(&quote.report_data);
        Measurement::of(&buf).0 == quote.signature
    }

    /// Destroys the enclave; subsequent transitions fail with
    /// [`SgxError::EnclaveLost`].
    pub fn destroy(&self) {
        self.lost.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ClockMode, CostParams};

    fn enclave() -> Arc<Enclave> {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        Enclave::create(&EnclaveConfig::default(), b"test image", cost).unwrap()
    }

    #[test]
    fn create_rejects_empty_image() {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        let err = Enclave::create(&EnclaveConfig::default(), b"", cost).unwrap_err();
        assert!(matches!(err, SgxError::CreateFailed { .. }));
    }

    #[test]
    fn create_rejects_zero_heap() {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        let cfg = EnclaveConfig { heap_max: 0, ..EnclaveConfig::default() };
        assert!(Enclave::create(&cfg, b"img", cost).is_err());
    }

    #[test]
    fn measurement_is_deterministic_and_tamper_evident() {
        assert_eq!(Measurement::of(b"abc"), Measurement::of(b"abc"));
        assert_ne!(Measurement::of(b"abc"), Measurement::of(b"abd"));
        assert_ne!(Measurement::of(b"a"), Measurement::of(b"aa"));
        assert_eq!(Measurement::of(b"abc").to_hex().len(), 64);
    }

    #[test]
    fn transitions_count_and_charge() {
        let e = enclave();
        let before = e.cost().charged();
        e.ecall("f", 100, || ()).unwrap();
        e.ocall("g", 200, || ()).unwrap();
        let s = e.stats();
        assert_eq!((s.ecalls, s.ocalls), (1, 1));
        assert_eq!((s.bytes_in, s.bytes_out), (100, 200));
        assert!(e.cost().charged() > before);
    }

    #[test]
    fn failure_injection_loses_enclave() {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        let cfg = EnclaveConfig { fail_after_transitions: Some(2), ..EnclaveConfig::default() };
        let e = Enclave::create(&cfg, b"img", cost).unwrap();
        assert!(e.ecall("a", 0, || ()).is_ok());
        assert!(e.ocall("b", 0, || ()).is_ok());
        assert_eq!(e.ecall("c", 0, || ()).unwrap_err(), SgxError::EnclaveLost);
        // And it stays lost.
        assert_eq!(e.ocall("d", 0, || ()).unwrap_err(), SgxError::EnclaveLost);
    }

    #[test]
    fn destroy_blocks_transitions() {
        let e = enclave();
        e.destroy();
        assert_eq!(e.ecall("f", 0, || ()).unwrap_err(), SgxError::EnclaveLost);
    }

    #[test]
    fn heap_alloc_respects_heap_max() {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        let cfg = EnclaveConfig { heap_max: 1024 * 1024, ..EnclaveConfig::default() };
        let e = Enclave::create(&cfg, b"i", cost).unwrap();
        assert!(e.alloc_heap(512 * 1024).is_ok());
        let err = e.alloc_heap(600 * 1024).unwrap_err();
        assert!(matches!(err, SgxError::OutOfEnclaveMemory { .. }));
    }

    #[test]
    fn heap_traffic_charges_mee() {
        let e = enclave();
        let before = e.cost().charged();
        e.charge_heap_traffic(1_000_000);
        assert!(e.cost().charged() > before);
        assert_eq!(e.stats().mee_bytes, 1_000_000);
    }

    #[test]
    fn epc_overcommit_charges_faults() {
        let cost = Arc::new(CostModel::new(
            CostParams { epc_usable_bytes: 64 * 1024, ..CostParams::default() },
            ClockMode::Virtual,
        ));
        let e = Enclave::create(&EnclaveConfig::default(), b"i", cost).unwrap();
        e.alloc_heap(256 * 1024).unwrap();
        assert!(e.stats().epc_faults > 0);
    }

    #[test]
    fn stats_are_a_view_over_the_recorder() {
        let e = enclave();
        e.ecall("f", 64, || ()).unwrap();
        e.ocall("shim_write", 32, || ()).unwrap();
        e.charge_heap_traffic(500);
        let s = e.stats();
        let r = e.recorder();
        assert_eq!(s.ecalls, r.counter(Counter::Ecalls));
        assert_eq!(s.ocalls, r.counter(Counter::Ocalls));
        assert_eq!(s.bytes_in, r.counter(Counter::BytesIn));
        assert_eq!(s.bytes_out, r.counter(Counter::BytesOut));
        assert_eq!(s.mee_bytes, r.counter(Counter::MeeBytes));
        assert_eq!(s.epc_faults, r.counter(Counter::EpcFaults));
        assert_eq!(r.counter(Counter::ShimOcalls), 1);
        assert_eq!(r.counter(Counter::EdlDispatches), 2);
        assert_eq!(e.recorder().snapshot().hist(telemetry::Hist::CrossingBytes).count, 2);
    }

    #[test]
    fn epc_fault_mirror_matches_paging_model() {
        let cost = Arc::new(CostModel::new(
            CostParams { epc_usable_bytes: 64 * 1024, ..CostParams::default() },
            ClockMode::Virtual,
        ));
        let e = Enclave::create(&EnclaveConfig::default(), b"i", cost).unwrap();
        e.alloc_heap(256 * 1024).unwrap();
        e.charge_heap_traffic(512 * 1024);
        assert_eq!(e.stats().epc_faults, e.recorder().counter(Counter::EpcFaults));
        assert!(e.stats().epc_faults > 0);
    }

    #[test]
    fn nested_transitions_trace_as_one_tree() {
        let tracer = telemetry::trace::Tracer::new();
        tracer.enable_with_capacity(64);
        let cost = Arc::new(CostModel::with_recorder_and_tracer(
            CostParams::default(),
            ClockMode::Virtual,
            telemetry::Recorder::new(),
            Arc::clone(&tracer),
        ));
        let e = Enclave::create(&EnclaveConfig::default(), b"img", cost).unwrap();
        e.ecall("relay", 16, || {
            e.ocall("shim_write", 8, || ()).unwrap();
        })
        .unwrap();
        let events = tracer.snapshot_events();
        let begins: Vec<_> =
            events.iter().filter(|ev| ev.phase == trace::TracePhase::Begin).collect();
        assert_eq!(begins.len(), 2);
        let ecall = begins.iter().find(|ev| ev.name == "ecall:relay").unwrap();
        let ocall = begins.iter().find(|ev| ev.name == "ocall:shim_write").unwrap();
        assert_eq!(ecall.lane, Lane::Trusted);
        assert_eq!(ecall.parent_span_id, 0, "outer ecall is the root");
        assert_eq!(ocall.lane, Lane::Untrusted);
        assert_eq!(ocall.cat, "shim");
        assert_eq!(ocall.parent_span_id, ecall.span_id, "ocall nests under the ecall");
        assert_eq!(ocall.trace_id, ecall.trace_id, "one connected tree");
        assert!(trace::current().is_none(), "context restored after the crossing");
    }

    #[test]
    fn quotes_verify_and_detect_tampering() {
        let e = enclave();
        let q = e.quote([7u8; 32]);
        assert!(Enclave::verify_quote(&q));
        let mut bad = q.clone();
        bad.report_data[0] ^= 1;
        assert!(!Enclave::verify_quote(&bad));
    }

    #[test]
    fn compute_surcharge_applies_only_to_large_working_sets() {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        let e = Enclave::create(&EnclaveConfig::default(), b"i", cost).unwrap();
        let before = e.cost().charged();
        e.run_compute(1024, || std::thread::sleep(std::time::Duration::from_millis(2)));
        assert_eq!(e.cost().charged(), before, "small working set is free");
        e.run_compute(64 * 1024 * 1024, || std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(e.cost().charged() > before, "large working set pays MEE surcharge");
    }
}
