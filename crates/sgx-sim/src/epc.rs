//! Enclave page cache (EPC) residency model.
//!
//! Real SGX keeps enclave pages in a fixed-size, encrypted EPC region.
//! When the combined resident set of all enclaves exceeds the usable EPC,
//! the kernel driver swaps pages between the EPC and regular DRAM, which
//! the paper (§2.1) notes comes "at a significant cost". This module
//! tracks the resident bytes of one enclave and converts over-commitment
//! into page-fault charges.

use crate::cost::CostParams;

/// Accounting state for one enclave's EPC usage.
///
/// The model is deterministic: growth beyond the usable EPC charges one
/// page swap per newly over-committed page, and heap *traffic* while
/// over-committed pays a proportional fault surcharge (a fraction of
/// touched pages miss the EPC).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpcState {
    resident_bytes: u64,
    peak_bytes: u64,
    faults: u64,
}

/// Outcome of an EPC accounting step: nanoseconds to charge and the
/// number of page faults the step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpcCharge {
    /// Nanoseconds of paging work to charge against the clock.
    pub ns: u64,
    /// Page swaps this step caused.
    pub faults: u64,
}

impl EpcState {
    /// Creates an empty accounting state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently resident (committed) in this enclave.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// High-water mark of resident bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Total page faults charged so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Whether the resident set currently exceeds the usable EPC.
    pub fn over_committed(&self, params: &CostParams) -> bool {
        self.resident_bytes > params.epc_usable_bytes
    }

    /// Records `bytes` of enclave memory growth and returns the paging
    /// charge. Pages that newly spill past the usable EPC each cost one
    /// swap.
    pub fn grow(&mut self, bytes: u64, params: &CostParams) -> EpcCharge {
        let before = self.resident_bytes;
        self.resident_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
        let over_before = before.saturating_sub(params.epc_usable_bytes);
        let over_after = self.resident_bytes.saturating_sub(params.epc_usable_bytes);
        let new_over = over_after.saturating_sub(over_before);
        let faults = new_over.div_ceil(params.epc_page_bytes.max(1));
        self.faults += faults;
        EpcCharge { ns: faults * params.epc_fault_ns, faults }
    }

    /// Records `bytes` of enclave memory shrink (e.g. after GC returns a
    /// semispace). Never charges.
    pub fn shrink(&mut self, bytes: u64) {
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
    }

    /// Charges for `bytes` of heap traffic (reads/writes of enclave
    /// memory). While over-committed, a fraction of touched pages equal
    /// to the over-commit ratio is assumed to miss the EPC and swap.
    pub fn touch(&mut self, bytes: u64, params: &CostParams) -> EpcCharge {
        if !self.over_committed(params) || bytes == 0 {
            return EpcCharge::default();
        }
        let over = self.resident_bytes - params.epc_usable_bytes;
        // Fraction of the resident set that cannot be cached in the EPC.
        let miss_ratio = over as f64 / self.resident_bytes as f64;
        let pages_touched = bytes.div_ceil(params.epc_page_bytes.max(1));
        let faults = (pages_touched as f64 * miss_ratio).ceil() as u64;
        self.faults += faults;
        EpcCharge { ns: faults * params.epc_fault_ns, faults }
    }

    /// Charges for GC work that touched `blocks` heap blocks of
    /// `block_bytes` each (the segmented collector's marking and
    /// evacuation granule; see `docs/GC.md`). Per-block accounting:
    /// each touched block contributes its own page count, rounded up
    /// per block, and the same over-commit miss ratio as
    /// [`EpcState::touch`] decides how many of those pages swap. Free
    /// while the enclave fits the usable EPC, like all touch traffic.
    pub fn touch_blocks(
        &mut self,
        blocks: u64,
        block_bytes: u64,
        params: &CostParams,
    ) -> EpcCharge {
        if !self.over_committed(params) || blocks == 0 || block_bytes == 0 {
            return EpcCharge::default();
        }
        let over = self.resident_bytes - params.epc_usable_bytes;
        let miss_ratio = over as f64 / self.resident_bytes as f64;
        let pages_per_block = block_bytes.div_ceil(params.epc_page_bytes.max(1));
        let faults = (blocks as f64 * pages_per_block as f64 * miss_ratio).ceil() as u64;
        self.faults += faults;
        EpcCharge { ns: faults * params.epc_fault_ns, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams {
            epc_usable_bytes: 1024 * 1024,
            epc_page_bytes: 4096,
            epc_fault_ns: 40_000,
            ..CostParams::paper_defaults()
        }
    }

    #[test]
    fn growth_under_epc_is_free() {
        let p = params();
        let mut e = EpcState::new();
        let c = e.grow(512 * 1024, &p);
        assert_eq!(c, EpcCharge::default());
        assert!(!e.over_committed(&p));
        assert_eq!(e.resident_bytes(), 512 * 1024);
    }

    #[test]
    fn growth_past_epc_charges_per_page() {
        let p = params();
        let mut e = EpcState::new();
        e.grow(1024 * 1024, &p);
        let c = e.grow(8192, &p);
        assert_eq!(c.faults, 2);
        assert_eq!(c.ns, 80_000);
        assert!(e.over_committed(&p));
    }

    #[test]
    fn shrink_restores_headroom() {
        let p = params();
        let mut e = EpcState::new();
        e.grow(2 * 1024 * 1024, &p);
        e.shrink(1536 * 1024);
        assert!(!e.over_committed(&p));
        assert_eq!(e.peak_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn touch_only_charges_when_over_committed() {
        let p = params();
        let mut e = EpcState::new();
        e.grow(512 * 1024, &p);
        assert_eq!(e.touch(64 * 1024, &p), EpcCharge::default());
        e.grow(1024 * 1024, &p); // now 1.5 MiB resident, 1 MiB usable
        let c = e.touch(300 * 1024, &p);
        assert!(c.faults > 0);
        // Miss ratio is 1/3, ~74 pages touched -> ~25 faults.
        assert!((20..=30).contains(&c.faults), "faults {}", c.faults);
    }

    #[test]
    fn touch_blocks_charges_per_block_when_over_committed() {
        let p = params();
        let mut e = EpcState::new();
        e.grow(512 * 1024, &p);
        assert_eq!(e.touch_blocks(16, 32 * 1024, &p), EpcCharge::default(), "fits EPC: free");
        e.grow(1024 * 1024, &p); // 1.5 MiB resident vs 1 MiB usable
        let c = e.touch_blocks(16, 32 * 1024, &p);
        // 8 pages per 32 KiB block, miss ratio 1/3 -> ~43 faults.
        assert!((40..=48).contains(&c.faults), "faults {}", c.faults);
        assert_eq!(c.ns, c.faults * p.epc_fault_ns);
        // Touching the same volume as one flat range charges the same
        // order: per-block rounding can only add pages, never remove.
        let mut flat = EpcState::new();
        flat.grow(1536 * 1024, &p);
        let f = flat.touch(16 * 32 * 1024, &p);
        assert!(c.faults >= f.faults, "block rounding is conservative");
    }

    #[test]
    fn touch_blocks_rounds_pages_up_per_block() {
        let p = params();
        let mut e = EpcState::new();
        e.grow(2 * 1024 * 1024, &p);
        // A 100-byte "block" still costs one page per block touched.
        let c = e.touch_blocks(10, 100, &p);
        let flat = {
            let mut s = EpcState::new();
            s.grow(2 * 1024 * 1024, &p);
            s.touch(1000, &p)
        };
        assert!(c.faults > flat.faults, "per-block rounding charges each block's page");
    }

    #[test]
    fn faults_accumulate() {
        let p = params();
        let mut e = EpcState::new();
        e.grow(2 * 1024 * 1024, &p);
        let before = e.faults();
        e.touch(100 * 4096, &p);
        assert!(e.faults() > before);
    }
}
