//! The cost model that turns simulated SGX events into time.
//!
//! Real SGX overheads come from three sources the literature quantifies
//! well: enclave transitions (ecalls/ocalls cost ~13,100 cycles
//! [Weichbrodt et al., sgx-perf]), memory-encryption-engine (MEE) work on
//! traffic between the CPU caches and the EPC [Weisse et al., HotCalls],
//! and EPC paging once the resident set exceeds the usable EPC
//! [Brenner et al.; Taassori et al.]. This module keeps every such unit
//! cost in one place ([`CostParams`]) and lets the rest of the simulator
//! *charge* nanoseconds against a clock ([`CostModel`]).
//!
//! Two clock modes are supported:
//!
//! - [`ClockMode::Virtual`] — charges accumulate in an atomic counter;
//!   [`CostModel::now`] reports *real elapsed time + charged time*. This is
//!   fast and is what the experiment binaries use.
//! - [`ClockMode::Spin`] — charges busy-wait for the charged duration, so
//!   plain wall-clock measurement (e.g. Criterion) observes the model.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::cost::{ClockMode, CostModel, CostParams};
//!
//! let model = CostModel::new(CostParams::default(), ClockMode::Virtual);
//! let before = model.now();
//! model.charge_ns(1_000_000); // simulate 1 ms of modelled work
//! assert!(model.now() - before >= std::time::Duration::from_millis(1));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use telemetry::trace::Tracer;
use telemetry::Recorder;

/// Unit costs for every modelled SGX effect.
///
/// Defaults reproduce the evaluation platform of the paper (§6.1): a
/// quad-core Xeon E3-1270 at 3.80 GHz with 93.5 MB of usable EPC, SGX SDK
/// v2.11. Every field may be overridden to explore other platforms; the
/// experiment harness prints the parameter set it ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// CPU clock in GHz, used to convert cycles to nanoseconds.
    pub cpu_ghz: f64,
    /// Cycles for one hardware enclave transition (EENTER/EEXIT pair).
    /// The paper cites up to 13,100 cycles (§2.1).
    pub transition_cycles: u64,
    /// Fixed software overhead per relayed call on top of the hardware
    /// transition: isolate attach, edge-routine marshalling, registry
    /// lookup. Calibrated against Fig. 3/4 of the paper, whose
    /// end-to-end proxy operations cost tens of microseconds while the
    /// hardware transition alone is ~3.4 µs — the difference is the
    /// prototype's relay software, modelled here as one constant.
    pub relay_overhead_ns: u64,
    /// Marshalling cost per byte copied across the enclave boundary
    /// (edge-routine `memcpy` plus MEE work on the copy).
    pub copy_ns_per_byte: f64,
    /// Serialization/deserialization cost per byte for neutral-object
    /// parameters (object-graph walk, not just the copy).
    pub serde_ns_per_byte: f64,
    /// Multiplier on `serde_ns_per_byte` when the (de)serialization
    /// runs inside the enclave: decoded objects are constructed
    /// straight into EPC memory and every buffer access is
    /// bounds-checked by the edge routines.
    pub serde_enclave_factor: f64,
    /// Serialization cost per byte moved by the *bulk* fast path —
    /// `Value::Bytes` and primitive-homogeneous lists encoded as one
    /// length-prefixed `memcpy` (wire format v2, `docs/SERDE.md`).
    /// Bulk bytes skip the per-element object-graph walk, so the rate
    /// is near the raw copy cost rather than `serde_ns_per_byte`.
    pub serde_bulk_ns_per_byte: f64,
    /// MEE charge per byte of ordinary in-enclave heap traffic
    /// (allocation writes, large scans). Cache-resident writes defer
    /// most MEE work, so this rate is modest.
    pub mee_ns_per_byte: f64,
    /// MEE charge per byte *copied by the collector*: a stop-and-copy
    /// phase reads and rewrites the whole live set straight through the
    /// MEE (the paper's explanation for in-enclave GC overhead, §6.4),
    /// so this rate is an order of magnitude above `mee_ns_per_byte`.
    pub mee_gc_ns_per_byte: f64,
    /// Multiplier applied to *compute* time spent inside the enclave on
    /// working sets that spill out of the last-level cache (§6.5: MEE
    /// makes cache-missing CPU work more expensive).
    pub mee_compute_factor: f64,
    /// Last-level-cache size in bytes; working sets below this see no
    /// compute penalty inside the enclave (8 MB L3 on the paper's Xeon).
    pub llc_bytes: u64,
    /// Usable EPC in bytes (93.5 MB on the paper's platform, §6.1).
    pub epc_usable_bytes: u64,
    /// Cost of one EPC page swap (encrypt + evict + load), ~40 µs/page.
    pub epc_fault_ns: u64,
    /// EPC page size in bytes.
    pub epc_page_bytes: u64,
    /// Cost of one *switchless* call hand-off (worker mailbox,
    /// cache-line ping-pong; no hardware transition) — Tian et al.,
    /// SysTEX'18.
    pub switchless_call_ns: u64,
    /// Cost of waking one parked switchless worker (futex/condvar
    /// wake plus the scheduler hop before it picks the job up). Paid
    /// once per worker wakeup; the batch drain amortises it across
    /// every job served by that wakeup.
    pub switchless_wake_ns: u64,
    /// Cost of a *failed* switchless probe: testing the mailbox,
    /// finding it full and deciding to fall back. The falling-back
    /// caller then additionally pays the full classic crossing
    /// (transition + relay), so a fallback is always strictly more
    /// expensive than a plain classic call.
    pub switchless_fallback_ns: u64,
    /// Cost of one work-stealing deque steal: a CAS on the victim's
    /// queue plus pulling its cold task state toward the thief's core.
    /// Far below a transition — stealing must stay profitable whenever
    /// it saves even a fraction of a crossing.
    pub sched_steal_ns: u64,
    /// Cost of suspending a serve task blocked on a nested crossing:
    /// parking the task's state so the executor thread can serve other
    /// tasks instead of blocking (the scheduler's help-first switch).
    pub sched_suspend_ns: u64,
    /// Cost of resuming a suspended serve task once its nested reply
    /// arrives (reloading parked state onto the executor).
    pub sched_resume_ns: u64,
    /// Heap-block granule of the segmented (block) collector, in
    /// bytes. EPC residency and GC paging are charged per block of
    /// this size touched, instead of per semispace flip; applications
    /// propagate it into `HeapConfig::block_bytes` at launch (see
    /// `docs/GC.md`).
    pub gc_block_bytes: u64,
    /// Tracing cost per object marked by a collection (header read,
    /// pointer chase, mark-bit write — through the MEE when
    /// in-enclave). Charged by the block collector, whose mark phase
    /// does not copy; the semispace copy already folds tracing into
    /// `mee_gc_ns_per_byte`.
    pub gc_mark_ns_per_obj: f64,
}

impl CostParams {
    /// Parameters matching the paper's evaluation platform (§6.1).
    pub fn paper_defaults() -> Self {
        CostParams {
            cpu_ghz: 3.8,
            transition_cycles: 13_100,
            relay_overhead_ns: 40_000,
            copy_ns_per_byte: 1.5,
            serde_ns_per_byte: 6.0,
            serde_enclave_factor: 8.0,
            serde_bulk_ns_per_byte: 0.75,
            mee_ns_per_byte: 0.25,
            mee_gc_ns_per_byte: 4.0,
            mee_compute_factor: 1.8,
            llc_bytes: 8 * 1024 * 1024,
            epc_usable_bytes: 93 * 1024 * 1024 + 512 * 1024,
            epc_fault_ns: 40_000,
            epc_page_bytes: 4096,
            switchless_call_ns: 800,
            switchless_wake_ns: 1_500,
            switchless_fallback_ns: 200,
            sched_steal_ns: 150,
            sched_suspend_ns: 300,
            sched_resume_ns: 250,
            gc_block_bytes: 32 * 1024,
            gc_mark_ns_per_obj: 25.0,
        }
    }

    /// Paper defaults with per-field overrides read from `MONTSALVAT_*`
    /// environment variables.
    ///
    /// Each [`CostParams`] field maps to one variable named after it in
    /// upper snake case — `MONTSALVAT_CPU_GHZ`,
    /// `MONTSALVAT_TRANSITION_CYCLES`, `MONTSALVAT_RELAY_OVERHEAD_NS`,
    /// `MONTSALVAT_COPY_NS_PER_BYTE`, `MONTSALVAT_SERDE_NS_PER_BYTE`,
    /// `MONTSALVAT_SERDE_ENCLAVE_FACTOR`,
    /// `MONTSALVAT_SERDE_BULK_NS_PER_BYTE`, `MONTSALVAT_MEE_NS_PER_BYTE`,
    /// `MONTSALVAT_MEE_GC_NS_PER_BYTE`, `MONTSALVAT_MEE_COMPUTE_FACTOR`,
    /// `MONTSALVAT_LLC_BYTES`, `MONTSALVAT_EPC_USABLE_BYTES`,
    /// `MONTSALVAT_EPC_FAULT_NS`, `MONTSALVAT_EPC_PAGE_BYTES`,
    /// `MONTSALVAT_SWITCHLESS_CALL_NS`,
    /// `MONTSALVAT_SWITCHLESS_WAKE_NS`,
    /// `MONTSALVAT_SWITCHLESS_FALLBACK_NS`,
    /// `MONTSALVAT_SCHED_STEAL_NS`, `MONTSALVAT_SCHED_SUSPEND_NS`,
    /// `MONTSALVAT_SCHED_RESUME_NS`,
    /// `MONTSALVAT_GC_BLOCK_BYTES`,
    /// `MONTSALVAT_GC_MARK_NS_PER_OBJ` — documented field-by-field in
    /// `docs/COST_MODEL.md`. Unset or unparseable variables keep the
    /// paper default, so with a clean environment this equals
    /// [`CostParams::paper_defaults`].
    pub fn from_env() -> Self {
        fn get<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let d = Self::paper_defaults();
        CostParams {
            cpu_ghz: get("MONTSALVAT_CPU_GHZ", d.cpu_ghz),
            transition_cycles: get("MONTSALVAT_TRANSITION_CYCLES", d.transition_cycles),
            relay_overhead_ns: get("MONTSALVAT_RELAY_OVERHEAD_NS", d.relay_overhead_ns),
            copy_ns_per_byte: get("MONTSALVAT_COPY_NS_PER_BYTE", d.copy_ns_per_byte),
            serde_ns_per_byte: get("MONTSALVAT_SERDE_NS_PER_BYTE", d.serde_ns_per_byte),
            serde_enclave_factor: get("MONTSALVAT_SERDE_ENCLAVE_FACTOR", d.serde_enclave_factor),
            serde_bulk_ns_per_byte: get(
                "MONTSALVAT_SERDE_BULK_NS_PER_BYTE",
                d.serde_bulk_ns_per_byte,
            ),
            mee_ns_per_byte: get("MONTSALVAT_MEE_NS_PER_BYTE", d.mee_ns_per_byte),
            mee_gc_ns_per_byte: get("MONTSALVAT_MEE_GC_NS_PER_BYTE", d.mee_gc_ns_per_byte),
            mee_compute_factor: get("MONTSALVAT_MEE_COMPUTE_FACTOR", d.mee_compute_factor),
            llc_bytes: get("MONTSALVAT_LLC_BYTES", d.llc_bytes),
            epc_usable_bytes: get("MONTSALVAT_EPC_USABLE_BYTES", d.epc_usable_bytes),
            epc_fault_ns: get("MONTSALVAT_EPC_FAULT_NS", d.epc_fault_ns),
            epc_page_bytes: get("MONTSALVAT_EPC_PAGE_BYTES", d.epc_page_bytes),
            switchless_call_ns: get("MONTSALVAT_SWITCHLESS_CALL_NS", d.switchless_call_ns),
            switchless_wake_ns: get("MONTSALVAT_SWITCHLESS_WAKE_NS", d.switchless_wake_ns),
            switchless_fallback_ns: get(
                "MONTSALVAT_SWITCHLESS_FALLBACK_NS",
                d.switchless_fallback_ns,
            ),
            sched_steal_ns: get("MONTSALVAT_SCHED_STEAL_NS", d.sched_steal_ns),
            sched_suspend_ns: get("MONTSALVAT_SCHED_SUSPEND_NS", d.sched_suspend_ns),
            sched_resume_ns: get("MONTSALVAT_SCHED_RESUME_NS", d.sched_resume_ns),
            gc_block_bytes: get("MONTSALVAT_GC_BLOCK_BYTES", d.gc_block_bytes),
            gc_mark_ns_per_obj: get("MONTSALVAT_GC_MARK_NS_PER_OBJ", d.gc_mark_ns_per_obj),
        }
    }

    /// Nanoseconds for the hardware part of one enclave transition.
    pub fn transition_ns(&self) -> u64 {
        (self.transition_cycles as f64 / self.cpu_ghz) as u64
    }

    /// Charge for one raw crossing moving `bytes` across the boundary
    /// (hardware transition + boundary copy). RMI crossings additionally
    /// pay `relay_overhead_ns`, charged by the relay layer; plain shim
    /// relays (file I/O, clock) pay only this.
    pub fn crossing_ns(&self, bytes: u64) -> u64 {
        self.transition_ns() + (bytes as f64 * self.copy_ns_per_byte) as u64
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// How charged nanoseconds are realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockMode {
    /// Accumulate charges in a virtual counter (fast; default).
    #[default]
    Virtual,
    /// Busy-wait for every charge so wall-clock time observes the model.
    Spin,
}

impl ClockMode {
    /// Reads the mode from the `MONTSALVAT_CLOCK` environment variable
    /// (`"spin"` selects [`ClockMode::Spin`]), defaulting to `Virtual`.
    pub fn from_env() -> Self {
        match std::env::var("MONTSALVAT_CLOCK").as_deref() {
            Ok("spin") => ClockMode::Spin,
            _ => ClockMode::Virtual,
        }
    }
}

/// A clock that merges real elapsed time with modelled charges.
///
/// Cloneable handles are not provided; share it behind an
/// [`std::sync::Arc`]. All operations are lock-free.
#[derive(Debug)]
pub struct CostModel {
    params: CostParams,
    mode: ClockMode,
    origin: Instant,
    charged_ns: AtomicU64,
    recorder: Arc<Recorder>,
    tracer: Arc<Tracer>,
}

impl CostModel {
    /// Creates a model with the given parameters and clock mode, plus a
    /// fresh [`telemetry::Recorder`] that every layer sharing this model
    /// (enclave, heaps, RMI) reports its boundary events into. Trace
    /// events go to the process-global [`Tracer`] (disabled unless
    /// `--trace-out` / `MONTSALVAT_TRACE=1` turns it on).
    pub fn new(params: CostParams, mode: ClockMode) -> Self {
        Self::with_recorder(params, mode, Recorder::new())
    }

    /// Creates a model reporting into an existing recorder — used when a
    /// caller (a test, an experiment harness) wants to read one app's
    /// telemetry in isolation from every other recorder in the process.
    pub fn with_recorder(params: CostParams, mode: ClockMode, recorder: Arc<Recorder>) -> Self {
        Self::with_recorder_and_tracer(params, mode, recorder, Arc::clone(Tracer::global()))
    }

    /// Fully explicit constructor: recorder *and* tracer supplied, so a
    /// test can capture one app's trace in isolation.
    pub fn with_recorder_and_tracer(
        params: CostParams,
        mode: ClockMode,
        recorder: Arc<Recorder>,
        tracer: Arc<Tracer>,
    ) -> Self {
        tracer.attach_recorder(&recorder);
        CostModel {
            params,
            mode,
            origin: Instant::now(),
            charged_ns: AtomicU64::new(0),
            recorder,
            tracer,
        }
    }

    /// The unit-cost table this model charges with.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The telemetry recorder shared by every layer built on this model.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The trace sink shared by every layer built on this model.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// [`CostModel::now`] as integer nanoseconds — the model-time
    /// timestamp trace events carry.
    pub fn now_ns(&self) -> u64 {
        self.now().as_nanos() as u64
    }

    /// The clock mode selected at construction.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Charges `ns` nanoseconds of modelled time.
    ///
    /// In [`ClockMode::Spin`] this busy-waits; in [`ClockMode::Virtual`]
    /// it only bumps the virtual counter.
    pub fn charge_ns(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        match self.mode {
            ClockMode::Virtual => {
                self.charged_ns.fetch_add(ns, Ordering::Relaxed);
            }
            ClockMode::Spin => spin_for(Duration::from_nanos(ns)),
        }
    }

    /// Total modelled time charged so far (zero in spin mode, where the
    /// charges were realised as real time instead).
    pub fn charged(&self) -> Duration {
        Duration::from_nanos(self.charged_ns.load(Ordering::Relaxed))
    }

    /// Simulation-time reading: real time elapsed since construction plus
    /// all virtual charges.
    pub fn now(&self) -> Duration {
        self.origin.elapsed() + self.charged()
    }

    /// Times `f` in simulation time (real elapsed + charges it incurred).
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, Duration) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

/// Busy-waits for approximately `d`. Used by [`ClockMode::Spin`].
///
/// Short waits spin pure for accuracy; past a couple of microseconds
/// each iteration also yields the core, so on oversubscribed hosts
/// (notably single-core CI runners) a spinning charge cannot starve a
/// thread that was just woken to serve it. Yielding never returns
/// early — the wait still lasts at least `d`.
pub fn spin_for(d: Duration) {
    const PURE_SPIN: Duration = Duration::from_micros(2);
    let start = Instant::now();
    while start.elapsed() < d {
        if start.elapsed() >= PURE_SPIN {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_transition_is_about_3_4_us() {
        let p = CostParams::paper_defaults();
        let ns = p.transition_ns();
        assert!((3_300..3_600).contains(&ns), "transition {ns} ns");
    }

    #[test]
    fn crossing_scales_with_bytes() {
        let p = CostParams::paper_defaults();
        assert!(p.crossing_ns(4096) > p.crossing_ns(0));
        let delta = p.crossing_ns(1000) - p.crossing_ns(0);
        assert_eq!(delta, (1000.0 * p.copy_ns_per_byte) as u64);
    }

    #[test]
    fn virtual_charges_advance_now() {
        let m = CostModel::new(CostParams::default(), ClockMode::Virtual);
        let t0 = m.now();
        m.charge_ns(5_000_000);
        assert!(m.now() - t0 >= Duration::from_millis(5));
        assert_eq!(m.charged(), Duration::from_millis(5));
    }

    #[test]
    fn spin_mode_takes_real_time() {
        let m = CostModel::new(CostParams::default(), ClockMode::Spin);
        let wall = Instant::now();
        m.charge_ns(2_000_000);
        assert!(wall.elapsed() >= Duration::from_millis(2));
        assert_eq!(m.charged(), Duration::ZERO);
    }

    #[test]
    fn measure_includes_charges() {
        let m = CostModel::new(CostParams::default(), ClockMode::Virtual);
        let ((), d) = m.measure(|| m.charge_ns(1_000_000));
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn from_env_defaults_to_paper_values() {
        // No MONTSALVAT_* variables are set in the test environment, so
        // the env constructor must reproduce the paper platform.
        assert_eq!(CostParams::from_env(), CostParams::paper_defaults());
    }

    #[test]
    fn models_report_into_their_own_recorder() {
        let m = CostModel::new(CostParams::default(), ClockMode::Virtual);
        m.recorder().incr(telemetry::Counter::Ecalls);
        assert_eq!(m.recorder().counter(telemetry::Counter::Ecalls), 1);
        let fresh = CostModel::new(CostParams::default(), ClockMode::Virtual);
        assert_eq!(fresh.recorder().counter(telemetry::Counter::Ecalls), 0);
    }

    #[test]
    fn switchless_charges_stay_below_the_transition() {
        let p = CostParams::paper_defaults();
        // A switchless hit must be far cheaper than the hardware
        // transition it replaces; even the worst case — a hit that
        // also pays a whole worker wake, nothing amortised — stays
        // below one transition. The fallback probe must be a small
        // surcharge on the classic path, not a second transition.
        assert!(p.switchless_call_ns < p.transition_ns() / 2);
        assert!(p.switchless_call_ns + p.switchless_wake_ns < p.transition_ns());
        assert!(p.switchless_fallback_ns < p.transition_ns() / 10);
        // The scheduler's bookkeeping must be cheap relative to the
        // crossing it schedules: a steal, and even a full
        // suspend/resume round-trip, each stay well under one
        // transition, or parking a task could cost more than blocking
        // the thread.
        assert!(p.sched_steal_ns < p.transition_ns() / 10);
        assert!(p.sched_suspend_ns + p.sched_resume_ns < p.transition_ns() / 2);
    }

    #[test]
    fn bulk_serde_is_cheaper_than_the_graph_walk() {
        let p = CostParams::paper_defaults();
        // The bulk fast path skips the per-element walk, so it must be
        // well under the graph-walk rate, but it still performs a real
        // boundary copy, so it cannot undercut half the memcpy rate.
        assert!(p.serde_bulk_ns_per_byte < p.serde_ns_per_byte / 2.0);
        assert!(p.serde_bulk_ns_per_byte >= p.copy_ns_per_byte / 4.0);
    }

    #[test]
    fn zero_charge_is_free() {
        let m = CostModel::new(CostParams::default(), ClockMode::Virtual);
        m.charge_ns(0);
        assert_eq!(m.charged(), Duration::ZERO);
    }
}
