//! Enclave definition language (EDL) model and renderer.
//!
//! The Intel SGX SDK describes an enclave's boundary in an `.edl` file;
//! the `Edger8r` tool then generates marshalling "edge routines" from it
//! (§2.1). Montsalvat's SGX code generator emits these EDL files for the
//! relay methods it creates (§5.3). This module models the subset of EDL
//! the paper needs and renders syntactically faithful `.edl` text, so the
//! generated interface is an inspectable artefact of the build.

use std::fmt;

/// Direction of an edge routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// A trusted routine, entered via ecall.
    Ecall,
    /// An untrusted routine, reached via ocall.
    Ocall,
}

/// C-level type of an EDL parameter or return value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EdlType {
    /// `void`
    Void,
    /// `int`
    Int,
    /// `long` (64-bit in the generated code)
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `[in, size=<len>] const char*` style buffer pointer.
    Buffer {
        /// Name of the sibling parameter carrying the buffer length.
        size_param: String,
    },
    /// `size_t`
    Size,
}

impl fmt::Display for EdlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdlType::Void => write!(f, "void"),
            EdlType::Int => write!(f, "int"),
            EdlType::Long => write!(f, "long"),
            EdlType::Float => write!(f, "float"),
            EdlType::Double => write!(f, "double"),
            EdlType::Buffer { .. } => write!(f, "char*"),
            EdlType::Size => write!(f, "size_t"),
        }
    }
}

/// One parameter of an edge routine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdlParam {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: EdlType,
}

impl EdlParam {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: EdlType) -> Self {
        EdlParam { name: name.into(), ty }
    }

    fn render(&self) -> String {
        match &self.ty {
            EdlType::Buffer { size_param } => {
                format!("[in, size={}] const char* {}", size_param, self.name)
            }
            ty => format!("{ty} {}", self.name),
        }
    }
}

/// One edge routine (ecall or ocall).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdlFn {
    /// Routine name, e.g. `ecall_relayAddAccount`.
    pub name: String,
    /// Return type.
    pub ret: EdlType,
    /// Parameters in order.
    pub params: Vec<EdlParam>,
    /// Which side of the boundary the routine lives on.
    pub direction: Direction,
}

impl EdlFn {
    fn render(&self) -> String {
        let qualifier = match self.direction {
            Direction::Ecall => "public ",
            Direction::Ocall => "",
        };
        let params = self.params.iter().map(EdlParam::render).collect::<Vec<_>>().join(", ");
        format!("        {qualifier}{} {}({params});", self.ret, self.name)
    }
}

/// A full enclave interface specification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdlSpec {
    /// Name used in the rendered header comment.
    pub enclave_name: String,
    /// Trusted routines (ecalls).
    pub trusted: Vec<EdlFn>,
    /// Untrusted routines (ocalls).
    pub untrusted: Vec<EdlFn>,
}

impl EdlSpec {
    /// Creates an empty spec for `enclave_name`.
    pub fn new(enclave_name: impl Into<String>) -> Self {
        EdlSpec { enclave_name: enclave_name.into(), ..EdlSpec::default() }
    }

    /// Adds a routine to the appropriate section.
    pub fn push(&mut self, f: EdlFn) {
        match f.direction {
            Direction::Ecall => self.trusted.push(f),
            Direction::Ocall => self.untrusted.push(f),
        }
    }

    /// Whether `routine` is declared (in either direction).
    pub fn contains(&self, routine: &str) -> bool {
        self.trusted.iter().chain(&self.untrusted).any(|f| f.name == routine)
    }

    /// Renders `.edl` text in the Intel SDK's syntax.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("/* Generated EDL for enclave `{}` */\n", self.enclave_name));
        out.push_str("enclave {\n    trusted {\n");
        for f in &self.trusted {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str("    };\n    untrusted {\n");
        for f in &self.untrusted {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str("    };\n};\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdlSpec {
        let mut spec = EdlSpec::new("bank");
        spec.push(EdlFn {
            name: "ecall_relayAccount".into(),
            ret: EdlType::Void,
            params: vec![
                EdlParam::new("hash", EdlType::Long),
                EdlParam::new("buf", EdlType::Buffer { size_param: "len".into() }),
                EdlParam::new("len", EdlType::Size),
                EdlParam::new("b", EdlType::Int),
            ],
            direction: Direction::Ecall,
        });
        spec.push(EdlFn {
            name: "ocall_relayPerson".into(),
            ret: EdlType::Void,
            params: vec![EdlParam::new("hash", EdlType::Long)],
            direction: Direction::Ocall,
        });
        spec
    }

    #[test]
    fn push_routes_by_direction() {
        let spec = sample();
        assert_eq!(spec.trusted.len(), 1);
        assert_eq!(spec.untrusted.len(), 1);
    }

    #[test]
    fn contains_finds_both_sections() {
        let spec = sample();
        assert!(spec.contains("ecall_relayAccount"));
        assert!(spec.contains("ocall_relayPerson"));
        assert!(!spec.contains("ecall_missing"));
    }

    #[test]
    fn render_has_sdk_structure() {
        let text = sample().render();
        assert!(text.contains("enclave {"));
        assert!(text.contains("trusted {"));
        assert!(text.contains("untrusted {"));
        assert!(text.contains("public void ecall_relayAccount"));
        assert!(text.contains("[in, size=len] const char* buf"));
        assert!(!text.contains("public void ocall_relayPerson"), "ocalls are not public");
    }
}
