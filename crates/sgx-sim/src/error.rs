//! Error types for the SGX simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulated SGX substrate.
///
/// The variants mirror the failure classes of the real Intel SGX SDK:
/// enclave creation can fail (bad configuration, EPC pressure), an enclave
/// can be lost at runtime (power transition, microcode TCB recovery), and
/// edge routines can be invoked against a mismatched interface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// Enclave creation was rejected.
    CreateFailed {
        /// Human-readable reason, e.g. `"heap_max exceeds platform limit"`.
        reason: String,
    },
    /// The enclave has been destroyed (or lost) and can no longer serve
    /// transitions.
    EnclaveLost,
    /// An ecall/ocall referenced an edge routine that is not part of the
    /// enclave's EDL interface.
    InterfaceMismatch {
        /// Name of the routine that failed to resolve.
        routine: String,
    },
    /// The caller attempted an enclave-side allocation that exceeds the
    /// configured enclave heap maximum.
    OutOfEnclaveMemory {
        /// Bytes requested at the point of failure.
        requested: u64,
        /// Configured maximum enclave heap in bytes.
        heap_max: u64,
    },
    /// A relayed host (shim) operation failed on the untrusted side.
    HostIo {
        /// Stringified `std::io::Error` (kept as text so the error stays
        /// `Clone + Eq` for test assertions).
        message: String,
    },
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::CreateFailed { reason } => {
                write!(f, "enclave creation failed: {reason}")
            }
            SgxError::EnclaveLost => write!(f, "enclave lost or destroyed"),
            SgxError::InterfaceMismatch { routine } => {
                write!(f, "edge routine not in enclave interface: {routine}")
            }
            SgxError::OutOfEnclaveMemory { requested, heap_max } => write!(
                f,
                "enclave heap exhausted: requested {requested} bytes with heap_max {heap_max}"
            ),
            SgxError::HostIo { message } => write!(f, "relayed host i/o failed: {message}"),
        }
    }
}

impl Error for SgxError {}

impl From<std::io::Error> for SgxError {
    fn from(err: std::io::Error) -> Self {
        SgxError::HostIo { message: err.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SgxError::EnclaveLost;
        let s = e.to_string();
        assert!(s.starts_with("enclave lost"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SgxError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SgxError = io.into();
        assert!(matches!(e, SgxError::HostIo { .. }));
        assert!(e.to_string().contains("missing"));
    }
}
