//! # sgx-sim — a software model of Intel SGX for systems experiments
//!
//! This crate is the hardware substrate of the
//! [Montsalvat](https://doi.org/10.1145/3464298.3493406) reproduction.
//! Real SGX could not be assumed (the reproduction runs on commodity
//! hardware), so the enclave is simulated: trusted code runs as ordinary
//! closures, but **every architectural cost the paper measures is
//! modelled and charged** against a shared clock:
//!
//! - ecall/ocall transitions (~13,100 cycles each, §2.1) plus
//!   per-byte marshalling — [`enclave::Enclave::ecall`] /
//!   [`enclave::Enclave::ocall`];
//! - memory-encryption-engine (MEE) work on in-enclave heap traffic and
//!   cache-spilling compute — [`enclave::Enclave::charge_heap_traffic`] /
//!   [`enclave::Enclave::run_compute`];
//! - EPC paging once the resident set exceeds the usable EPC
//!   (93.5 MB on the paper's platform) — [`epc::EpcState`];
//! - the in-enclave libc **shim** that relays unsupported calls to an
//!   untrusted helper (§5.4) — [`shim`];
//! - the EDL interface description consumed by Edger8r (§2.1) —
//!   [`edl`].
//!
//! Counters ([`enclave::TransitionStats`]) record ground-truth event
//! counts so experiments report *measured* crossings/bytes/faults, with
//! only the unit costs taken from the paper and its citations.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use sgx_sim::cost::{ClockMode, CostModel, CostParams};
//! use sgx_sim::enclave::{Enclave, EnclaveConfig};
//!
//! # fn main() -> Result<(), sgx_sim::SgxError> {
//! let cost = Arc::new(CostModel::new(CostParams::paper_defaults(), ClockMode::Virtual));
//! let enclave = Enclave::create(&EnclaveConfig::default(), b"trusted.so", cost)?;
//!
//! // Trusted work happens under an ecall and is counted + charged.
//! let secret_len = enclave.ecall("ecall_process", 32, || "hunter2".len())?;
//! assert_eq!(secret_len, 7);
//! assert_eq!(enclave.stats().ecalls, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod edl;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod shim;

pub use cost::{ClockMode, CostModel, CostParams};
pub use enclave::{Enclave, EnclaveConfig, Measurement, Quote, TransitionStats};
pub use error::SgxError;
