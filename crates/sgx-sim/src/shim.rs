//! The in-enclave libc shim and its untrusted helper (§5.4).
//!
//! Enclaves run in user mode and cannot issue system calls. Rather than
//! embedding a library OS, Montsalvat redefines unsupported libc routines
//! inside the enclave as thin wrappers that relay the call to an
//! untrusted *shim helper* via ocalls. This module reproduces that
//! design: [`ShimFile`] and [`shim_clock_ns`] are the enclave-side
//! wrappers; every operation crosses the boundary (counted and charged by
//! the [`Enclave`]) and is served by the host OS outside.
//!
//! Untrusted code uses [`HostFile`], which calls the host OS directly and
//! pays nothing — the asymmetry the partitioning experiments exploit.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::enclave::Enclave;
use crate::error::SgxError;

/// A file handle held by trusted code; every operation is relayed to the
/// untrusted runtime with an ocall.
///
/// # Examples
///
/// ```no_run
/// # use std::sync::Arc;
/// # use sgx_sim::cost::{ClockMode, CostModel, CostParams};
/// # use sgx_sim::enclave::{Enclave, EnclaveConfig};
/// # use sgx_sim::shim::ShimFile;
/// # fn main() -> Result<(), sgx_sim::SgxError> {
/// # let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
/// # let enclave = Enclave::create(&EnclaveConfig::default(), b"img", cost)?;
/// let mut f = ShimFile::create(Arc::clone(&enclave), "/tmp/secret.bin")?;
/// f.write_all(b"sealed data")?; // one ocall
/// assert!(enclave.stats().ocalls >= 2); // create + write
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShimFile {
    enclave: Arc<Enclave>,
    inner: File,
    path: PathBuf,
}

impl ShimFile {
    /// Creates (truncating) a file through the shim. Costs one ocall.
    ///
    /// # Errors
    ///
    /// Relays of host I/O failures surface as [`SgxError::HostIo`];
    /// a lost enclave surfaces as [`SgxError::EnclaveLost`].
    pub fn create(enclave: Arc<Enclave>, path: impl AsRef<Path>) -> Result<Self, SgxError> {
        let path = path.as_ref().to_path_buf();
        let path_bytes = path.as_os_str().len();
        let inner = enclave.ocall("shim_open", path_bytes, || {
            OpenOptions::new().create(true).write(true).truncate(true).read(true).open(&path)
        })??;
        Ok(ShimFile { enclave, inner, path })
    }

    /// Opens an existing file read-only through the shim. Costs one ocall.
    ///
    /// # Errors
    ///
    /// See [`ShimFile::create`].
    pub fn open(enclave: Arc<Enclave>, path: impl AsRef<Path>) -> Result<Self, SgxError> {
        let path = path.as_ref().to_path_buf();
        let path_bytes = path.as_os_str().len();
        let inner = enclave.ocall("shim_open", path_bytes, || File::open(&path))??;
        Ok(ShimFile { enclave, inner, path })
    }

    /// The path this handle was opened with.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes the whole buffer; one ocall carrying `buf.len()` bytes out.
    ///
    /// # Errors
    ///
    /// See [`ShimFile::create`].
    pub fn write_all(&mut self, buf: &[u8]) -> Result<(), SgxError> {
        let inner = &mut self.inner;
        self.enclave.ocall("shim_write", buf.len(), || inner.write_all(buf))??;
        Ok(())
    }

    /// Reads exactly `buf.len()` bytes; one ocall carrying them back in.
    ///
    /// Data returned by an ocall still crosses the boundary inward, so
    /// the byte count is charged as an additional inward copy.
    ///
    /// # Errors
    ///
    /// See [`ShimFile::create`].
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), SgxError> {
        let inner = &mut self.inner;
        self.enclave.ocall("shim_read", buf.len(), || inner.read_exact(buf))??;
        Ok(())
    }

    /// Seeks; one ocall.
    ///
    /// # Errors
    ///
    /// See [`ShimFile::create`].
    pub fn seek(&mut self, pos: SeekFrom) -> Result<u64, SgxError> {
        let inner = &mut self.inner;
        let off = self.enclave.ocall("shim_lseek", 8, || inner.seek(pos))??;
        Ok(off)
    }

    /// Flushes and syncs to stable storage; one ocall.
    ///
    /// # Errors
    ///
    /// See [`ShimFile::create`].
    pub fn sync_all(&mut self) -> Result<(), SgxError> {
        let inner = &mut self.inner;
        self.enclave.ocall("shim_fsync", 0, || inner.sync_all())??;
        Ok(())
    }
}

/// Deletes a file through the shim. Costs one ocall.
///
/// # Errors
///
/// See [`ShimFile::create`].
pub fn shim_remove_file(enclave: &Enclave, path: impl AsRef<Path>) -> Result<(), SgxError> {
    let path = path.as_ref();
    enclave.ocall("shim_unlink", path.as_os_str().len(), || std::fs::remove_file(path))??;
    Ok(())
}

/// Reads the host wall clock through the shim (`clock_gettime` relay).
/// Costs one ocall.
///
/// # Errors
///
/// Returns [`SgxError::EnclaveLost`] if the enclave is gone.
pub fn shim_clock_ns(enclave: &Enclave) -> Result<u128, SgxError> {
    enclave.ocall("shim_clock_gettime", 16, || {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    })
}

/// A file handle held by untrusted code: direct host I/O, no crossings.
///
/// Exists so application code can be written once against a common shape
/// and handed either a [`ShimFile`] (trusted placement) or a
/// [`HostFile`] (untrusted placement).
#[derive(Debug)]
pub struct HostFile {
    inner: File,
    path: PathBuf,
}

impl HostFile {
    /// Creates (truncating) a file directly on the host.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failure as [`SgxError::HostIo`].
    pub fn create(path: impl AsRef<Path>) -> Result<Self, SgxError> {
        let path = path.as_ref().to_path_buf();
        let inner =
            OpenOptions::new().create(true).write(true).truncate(true).read(true).open(&path)?;
        Ok(HostFile { inner, path })
    }

    /// Opens an existing file read-only directly on the host.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failure as [`SgxError::HostIo`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SgxError> {
        let path = path.as_ref().to_path_buf();
        Ok(HostFile { inner: File::open(&path)?, path })
    }

    /// The path this handle was opened with.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes the whole buffer.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failure as [`SgxError::HostIo`].
    pub fn write_all(&mut self, buf: &[u8]) -> Result<(), SgxError> {
        self.inner.write_all(buf)?;
        Ok(())
    }

    /// Reads exactly `buf.len()` bytes.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failure as [`SgxError::HostIo`].
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), SgxError> {
        self.inner.read_exact(buf)?;
        Ok(())
    }

    /// Seeks.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failure as [`SgxError::HostIo`].
    pub fn seek(&mut self, pos: SeekFrom) -> Result<u64, SgxError> {
        Ok(self.inner.seek(pos)?)
    }

    /// Flushes and syncs to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failure as [`SgxError::HostIo`].
    pub fn sync_all(&mut self) -> Result<(), SgxError> {
        self.inner.sync_all()?;
        Ok(())
    }
}

/// Selects where a component's file I/O executes: directly on the host
/// (untrusted placement) or relayed through the enclave shim (trusted
/// placement).
///
/// Components written against this type (the KV store, the graph
/// sharder/engine) can be placed on either side of the boundary without
/// code changes — the essence of what class-level partitioning moves
/// around.
#[derive(Debug, Clone)]
pub enum IoBackend {
    /// Direct host I/O.
    Host,
    /// Relayed I/O through the enclave shim (each operation an ocall).
    Enclave(Arc<Enclave>),
}

impl IoBackend {
    /// Creates (truncating) a file on this backend.
    ///
    /// # Errors
    ///
    /// Propagates host/relay I/O failure.
    pub fn create(&self, path: impl AsRef<Path>) -> Result<BackendFile, SgxError> {
        match self {
            IoBackend::Host => Ok(BackendFile::Host(HostFile::create(path)?)),
            IoBackend::Enclave(e) => Ok(BackendFile::Shim(ShimFile::create(Arc::clone(e), path)?)),
        }
    }

    /// Opens an existing file on this backend.
    ///
    /// # Errors
    ///
    /// Propagates host/relay I/O failure.
    pub fn open(&self, path: impl AsRef<Path>) -> Result<BackendFile, SgxError> {
        match self {
            IoBackend::Host => Ok(BackendFile::Host(HostFile::open(path)?)),
            IoBackend::Enclave(e) => Ok(BackendFile::Shim(ShimFile::open(Arc::clone(e), path)?)),
        }
    }
}

/// A file handle on either side of the enclave boundary.
#[derive(Debug)]
pub enum BackendFile {
    /// Direct host handle.
    Host(HostFile),
    /// Enclave-shim handle (each operation is an ocall).
    Shim(ShimFile),
}

impl BackendFile {
    /// Writes the whole buffer.
    ///
    /// # Errors
    ///
    /// Propagates host/relay I/O failure.
    pub fn write_all(&mut self, buf: &[u8]) -> Result<(), SgxError> {
        match self {
            BackendFile::Host(f) => f.write_all(buf),
            BackendFile::Shim(f) => f.write_all(buf),
        }
    }

    /// Reads exactly `buf.len()` bytes.
    ///
    /// # Errors
    ///
    /// Propagates host/relay I/O failure.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), SgxError> {
        match self {
            BackendFile::Host(f) => f.read_exact(buf),
            BackendFile::Shim(f) => f.read_exact(buf),
        }
    }

    /// Seeks.
    ///
    /// # Errors
    ///
    /// Propagates host/relay I/O failure.
    pub fn seek(&mut self, pos: SeekFrom) -> Result<u64, SgxError> {
        match self {
            BackendFile::Host(f) => f.seek(pos),
            BackendFile::Shim(f) => f.seek(pos),
        }
    }

    /// Syncs to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates host/relay I/O failure.
    pub fn sync_all(&mut self) -> Result<(), SgxError> {
        match self {
            BackendFile::Host(f) => f.sync_all(),
            BackendFile::Shim(f) => f.sync_all(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ClockMode, CostModel, CostParams};
    use crate::enclave::EnclaveConfig;

    fn enclave() -> Arc<Enclave> {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        Enclave::create(&EnclaveConfig::default(), b"shim test", cost).unwrap()
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sgx_sim_shim_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn shim_roundtrip_counts_ocalls() {
        let e = enclave();
        let path = temp_path("roundtrip");
        let mut f = ShimFile::create(Arc::clone(&e), &path).unwrap();
        f.write_all(b"hello enclave").unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        let mut buf = [0u8; 13];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello enclave");
        let s = e.stats();
        // create + write + seek + read = 4 ocalls
        assert_eq!(s.ocalls, 4);
        assert!(s.bytes_out >= 13);
        shim_remove_file(&e, &path).unwrap();
    }

    #[test]
    fn host_file_costs_nothing() {
        let e = enclave();
        let path = temp_path("host");
        let mut f = HostFile::create(&path).unwrap();
        f.write_all(b"plain").unwrap();
        assert_eq!(e.stats().ocalls, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shim_open_missing_file_is_host_io_error() {
        let e = enclave();
        let err = ShimFile::open(e, "/nonexistent/definitely/missing").unwrap_err();
        assert!(matches!(err, SgxError::HostIo { .. }));
    }

    #[test]
    fn shim_clock_advances() {
        let e = enclave();
        let a = shim_clock_ns(&e).unwrap();
        let b = shim_clock_ns(&e).unwrap();
        assert!(b >= a);
        assert_eq!(e.stats().ocalls, 2);
    }

    #[test]
    fn lost_enclave_fails_shim_ops() {
        let e = enclave();
        let path = temp_path("lost");
        let mut f = ShimFile::create(Arc::clone(&e), &path).unwrap();
        e.destroy();
        assert_eq!(f.write_all(b"x").unwrap_err(), SgxError::EnclaveLost);
        std::fs::remove_file(&path).unwrap();
    }
}
