//! Property tests for the cost model and EPC accounting.

use proptest::prelude::*;
use sgx_sim::cost::{ClockMode, CostModel, CostParams};
use sgx_sim::epc::EpcState;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crossing cost is monotone in the byte count.
    #[test]
    fn crossing_cost_is_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let p = CostParams::paper_defaults();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(p.crossing_ns(lo) <= p.crossing_ns(hi));
        prop_assert!(p.crossing_ns(0) >= p.transition_ns());
    }

    /// Virtual charges accumulate exactly.
    #[test]
    fn virtual_charges_sum(charges in proptest::collection::vec(0u64..1_000_000, 0..64)) {
        let m = CostModel::new(CostParams::paper_defaults(), ClockMode::Virtual);
        for &c in &charges {
            m.charge_ns(c);
        }
        prop_assert_eq!(m.charged().as_nanos() as u64, charges.iter().sum::<u64>());
    }

    /// EPC accounting: resident bytes track grow/shrink exactly; faults
    /// only occur while over-committed; growth below the limit is free.
    #[test]
    fn epc_accounting_is_exact(ops in proptest::collection::vec((any::<bool>(), 0u64..256*1024), 1..64)) {
        let params = CostParams { epc_usable_bytes: 1024 * 1024, ..CostParams::paper_defaults() };
        let mut epc = EpcState::new();
        let mut expected: u64 = 0;
        for (grow, bytes) in ops {
            if grow {
                let before_over = expected > params.epc_usable_bytes;
                let charge = epc.grow(bytes, &params);
                expected += bytes;
                if expected <= params.epc_usable_bytes {
                    prop_assert_eq!(charge.faults, 0);
                } else if !before_over {
                    prop_assert!(charge.faults > 0 || bytes == 0);
                }
            } else {
                epc.shrink(bytes);
                expected = expected.saturating_sub(bytes);
            }
            prop_assert_eq!(epc.resident_bytes(), expected);
            prop_assert!(epc.peak_bytes() >= epc.resident_bytes());
        }
    }

    /// Touch never charges while under the EPC limit and always charges
    /// something for large touches while far over it.
    #[test]
    fn touch_charges_match_commitment(resident in 1u64..4*1024*1024, touch in 1u64..1024*1024) {
        let params = CostParams { epc_usable_bytes: 1024 * 1024, ..CostParams::paper_defaults() };
        let mut epc = EpcState::new();
        epc.grow(resident, &params);
        let charge = epc.touch(touch, &params);
        if resident <= params.epc_usable_bytes {
            prop_assert_eq!(charge.faults, 0);
        } else if resident > 2 * params.epc_usable_bytes && touch > 64 * 1024 {
            prop_assert!(charge.faults > 0);
        }
    }
}
