//! Property tests for the write-once store: arbitrary key/value maps
//! roundtrip exactly, including binary keys, hash collisions under
//! probing, and duplicate-key overwrites.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use kvstore::{Backend, StoreReader, StoreWriter};
use proptest::prelude::*;

fn temp_path() -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "kv_prop_{}_{}.paldb",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The store is an exact map: every inserted key reads back its
    /// latest value; absent keys read back `None`.
    #[test]
    fn store_is_an_exact_map(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..40), proptest::collection::vec(any::<u8>(), 0..120)),
            0..200,
        ),
        probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..40),
    ) {
        let path = temp_path();
        let mut w = StoreWriter::create(&Backend::Host, &path).unwrap();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (k, v) in &pairs {
            w.put(k, v).unwrap();
            model.insert(k.clone(), v.clone());
        }
        let stats = w.finalize().unwrap();
        prop_assert_eq!(stats.records as usize, pairs.len());

        let r = StoreReader::open(&Backend::Host, &path).unwrap();
        for (k, v) in &model {
            let read = r.get(k).unwrap();
            prop_assert_eq!(read.as_deref(), Some(v.as_slice()));
        }
        for probe in &probes {
            prop_assert_eq!(r.get(probe).unwrap(), model.get(probe).cloned());
        }
        // Iteration yields exactly the live map.
        let iterated: HashMap<Vec<u8>, Vec<u8>> = r.iter().collect();
        prop_assert_eq!(&iterated, &model);
        std::fs::remove_file(&path).ok();
    }

    /// Opening arbitrary bytes as a store never panics.
    #[test]
    fn open_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let path = temp_path();
        std::fs::write(&path, &bytes).unwrap();
        let _ = StoreReader::open(&Backend::Host, &path);
        std::fs::remove_file(&path).ok();
    }
}
