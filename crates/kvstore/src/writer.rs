//! The write-once store writer.
//!
//! Like PalDB, the store is built in one pass: records are appended with
//! regular (non-mmap) I/O — one write per record, which inside an
//! enclave means one ocall per record (§6.5) — and `finalize` writes the
//! hash index and footer.

use std::path::{Path, PathBuf};

use crate::backend::{Backend, KvFile};
use crate::format::{encode_record, key_hash, StoreError, FOOTER_LEN, MAGIC, SLOT_LEN};

/// Statistics of a store build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteStats {
    /// Records written.
    pub records: u64,
    /// Data-section bytes.
    pub data_bytes: u64,
    /// Total file bytes including index and footer.
    pub file_bytes: u64,
    /// Individual write calls issued.
    pub write_calls: u64,
}

/// A single-pass store writer.
///
/// # Examples
///
/// ```no_run
/// use kvstore::{Backend, StoreWriter};
///
/// # fn main() -> Result<(), kvstore::StoreError> {
/// let mut writer = StoreWriter::create(&Backend::Host, "/tmp/store.paldb")?;
/// writer.put(b"user:1", b"alice")?;
/// writer.put(b"user:2", b"bob")?;
/// let stats = writer.finalize()?;
/// assert_eq!(stats.records, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StoreWriter {
    file: KvFile,
    path: PathBuf,
    entries: Vec<(u64, Vec<u8>, u64)>, // (hash, key, offset)
    offset: u64,
    stats: WriteStats,
}

impl StoreWriter {
    /// Creates a store file on `backend`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failure as [`StoreError::Io`].
    pub fn create(backend: &Backend, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = backend.create(&path)?;
        Ok(StoreWriter { file, path, entries: Vec::new(), offset: 0, stats: WriteStats::default() })
    }

    /// The store file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one key/value pair. Re-putting a key makes the newest
    /// value win at read time.
    ///
    /// # Errors
    ///
    /// Propagates I/O failure and oversized keys/values.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let record = encode_record(key, value)?;
        self.file.write_all(&record)?;
        self.entries.push((key_hash(key), key.to_vec(), self.offset));
        self.offset += record.len() as u64;
        self.stats.records += 1;
        self.stats.data_bytes += record.len() as u64;
        self.stats.write_calls += 1;
        Ok(())
    }

    /// Writes the index and footer, syncs, and returns the build stats.
    ///
    /// # Errors
    ///
    /// Propagates I/O failure.
    pub fn finalize(mut self) -> Result<WriteStats, StoreError> {
        // Open-addressed table at ≤ 50% load.
        let n_slots = (self.entries.len().max(1) * 2).next_power_of_two() as u64;
        let mut slots = vec![(0u64, 0u64); n_slots as usize];
        let mask = n_slots - 1;
        // Deduplicate: the latest offset per key wins (linear probing by
        // hash; key equality resolved at read time via the record, so
        // here later inserts simply overwrite same-key slots).
        for (hash, key, offset) in &self.entries {
            let mut slot = hash & mask;
            loop {
                let (slot_hash, slot_off) = slots[slot as usize];
                if slot_off == 0 {
                    slots[slot as usize] = (*hash, offset + 1);
                    break;
                }
                if slot_hash == *hash {
                    // Same hash: same key overwrites; a colliding
                    // different key probes on.
                    let same_key = {
                        // Compare against the recorded key for the
                        // earlier entry with this offset.
                        self.entries
                            .iter()
                            .find(|(_, _, o)| o + 1 == slot_off)
                            .map(|(_, k, _)| k == key)
                            .unwrap_or(false)
                    };
                    if same_key {
                        slots[slot as usize] = (*hash, offset + 1);
                        break;
                    }
                }
                slot = (slot + 1) & mask;
            }
        }
        let index_offset = self.offset;
        let mut index = Vec::with_capacity(8 + slots.len() * SLOT_LEN);
        index.extend_from_slice(&n_slots.to_le_bytes());
        for (h, o) in &slots {
            index.extend_from_slice(&h.to_le_bytes());
            index.extend_from_slice(&o.to_le_bytes());
        }
        self.file.write_all(&index)?;
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&self.stats.records.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        self.file.write_all(&footer)?;
        self.file.sync_all()?;
        self.stats.write_calls += 2;
        self.stats.file_bytes = index_offset + index.len() as u64 + FOOTER_LEN as u64;
        Ok(self.stats)
    }
}
