//! Storage backends: direct host I/O or enclave-shim I/O.
//!
//! The store is written once and read many times. Where the code runs
//! decides what I/O costs: an in-enclave writer pays one ocall per write
//! (the effect the paper's `RUWT` scheme suffers from, §6.5), while an
//! in-enclave reader pays a single bulk ocall to map the store (PalDB
//! memory-maps the store file, making reads cheap).
//!
//! The mechanism is the shared [`sgx_sim::shim::IoBackend`]; this module
//! re-exports it under the store's vocabulary.

/// Where the store's I/O executes.
pub use sgx_sim::shim::IoBackend as Backend;

/// A file handle on either backend.
pub use sgx_sim::shim::BackendFile as KvFile;

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::cost::{ClockMode, CostModel, CostParams};
    use sgx_sim::enclave::{Enclave, EnclaveConfig};
    use std::io::SeekFrom;
    use std::sync::Arc;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kv_backend_{}_{name}", std::process::id()))
    }

    #[test]
    fn host_backend_roundtrips() {
        let path = temp("host");
        let backend = Backend::Host;
        let mut f = backend.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        let mut buf = [0u8; 5];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enclave_backend_counts_ocalls() {
        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        let enclave = Enclave::create(&EnclaveConfig::default(), b"kv", cost).unwrap();
        let path = temp("enclave");
        let backend = Backend::Enclave(Arc::clone(&enclave));
        let mut f = backend.create(&path).unwrap();
        f.write_all(b"data").unwrap();
        assert_eq!(enclave.stats().ocalls, 2, "create + write");
        std::fs::remove_file(&path).unwrap();
    }
}
