//! The store reader.
//!
//! PalDB optimises reads by memory-mapping the store file (§6.5). The
//! reader reproduces that profile: `open` maps the whole file in one
//! bulk read (a single ocall when running in an enclave), after which
//! every `get` is a pure in-memory probe with zero crossings.

use std::io::SeekFrom;
use std::path::Path;

use crate::backend::Backend;
use crate::format::{decode_record, key_hash, StoreError, FOOTER_LEN, MAGIC, SLOT_LEN};

/// A read-only view of a finalized store.
#[derive(Debug)]
pub struct StoreReader {
    data: Vec<u8>,
    index_offset: usize,
    n_slots: u64,
    n_records: u64,
}

impl StoreReader {
    /// Opens and "memory-maps" a finalized store.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a corrupt/unfinalized file.
    pub fn open(backend: &Backend, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut file = backend.open(path)?;
        let len = file.seek(SeekFrom::End(0))? as usize;
        if len < FOOTER_LEN {
            return Err(StoreError::Corrupt("file shorter than footer".into()));
        }
        file.seek(SeekFrom::Start(0))?;
        // The mmap analogue: one bulk transfer.
        let mut data = vec![0u8; len];
        file.read_exact(&mut data)?;

        let footer = &data[len - FOOTER_LEN..];
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes")) as usize;
        let n_records = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let magic = u64::from_le_bytes(footer[16..24].try_into().expect("8 bytes"));
        if magic != MAGIC {
            return Err(StoreError::Corrupt("bad magic (store not finalized?)".into()));
        }
        if index_offset + 8 > len - FOOTER_LEN {
            return Err(StoreError::Corrupt("index offset out of range".into()));
        }
        let n_slots =
            u64::from_le_bytes(data[index_offset..index_offset + 8].try_into().expect("8 bytes"));
        if !n_slots.is_power_of_two()
            || index_offset + 8 + (n_slots as usize) * SLOT_LEN > len - FOOTER_LEN
        {
            return Err(StoreError::Corrupt("index truncated".into()));
        }
        Ok(StoreReader { data, index_offset, n_slots, n_records })
    }

    /// Number of records written (including superseded duplicates).
    pub fn record_count(&self) -> u64 {
        self.n_records
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> usize {
        self.data.len()
    }

    fn slot(&self, i: u64) -> (u64, u64) {
        let base = self.index_offset + 8 + (i as usize) * SLOT_LEN;
        let h = u64::from_le_bytes(self.data[base..base + 8].try_into().expect("8 bytes"));
        let o = u64::from_le_bytes(self.data[base + 8..base + 16].try_into().expect("8 bytes"));
        (h, o)
    }

    /// Looks up `key`; pure in-memory probing, no I/O.
    ///
    /// # Errors
    ///
    /// Fails only if the file is corrupt (dangling offsets).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let hash = key_hash(key);
        let mask = self.n_slots - 1;
        let mut i = hash & mask;
        for _ in 0..self.n_slots {
            let (slot_hash, slot_off) = self.slot(i);
            if slot_off == 0 {
                return Ok(None);
            }
            if slot_hash == hash {
                let (k, v) =
                    decode_record(&self.data[..self.index_offset], (slot_off - 1) as usize)?;
                if k == key {
                    return Ok(Some(v.to_vec()));
                }
            }
            i = (i + 1) & mask;
        }
        Ok(None)
    }

    /// Iterates over the *live* key/value pairs (latest value per key).
    pub fn iter(&self) -> StoreIter<'_> {
        StoreIter { reader: self, slot: 0 }
    }
}

/// Iterator over live `(key, value)` pairs, in index order.
#[derive(Debug)]
pub struct StoreIter<'a> {
    reader: &'a StoreReader,
    slot: u64,
}

impl Iterator for StoreIter<'_> {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        while self.slot < self.reader.n_slots {
            let (_, off) = self.reader.slot(self.slot);
            self.slot += 1;
            if off != 0 {
                if let Ok((k, v)) =
                    decode_record(&self.reader.data[..self.reader.index_offset], (off - 1) as usize)
                {
                    return Some((k.to_vec(), v.to_vec()));
                }
            }
        }
        None
    }
}
