//! # kvstore — a PalDB-style embeddable write-once key-value store
//!
//! LinkedIn's PalDB is the first macro-benchmark of the paper (§6.5):
//! an embeddable, write-once KV store that does *regular I/O for
//! writes* but *memory-maps the store file for reads*. That asymmetry
//! is exactly what Montsalvat's partitioning exploits — placing the
//! writer outside the enclave (`RTWU`) removes the write-induced
//! ocalls, while reads stay cheap in either placement.
//!
//! This crate reproduces the store with the same profile over the
//! enclave simulator's two I/O paths:
//!
//! - [`StoreWriter`] appends one record per `put` (one ocall each when
//!   in-enclave) and finalizes with an open-addressed hash index;
//! - [`StoreReader`] "maps" the file with a single bulk read and serves
//!   `get`s from memory with zero crossings.
//!
//! # Examples
//!
//! ```
//! use kvstore::{Backend, StoreReader, StoreWriter};
//!
//! # fn main() -> Result<(), kvstore::StoreError> {
//! let path = std::env::temp_dir().join(format!("kv_doc_{}.paldb", std::process::id()));
//! let mut writer = StoreWriter::create(&Backend::Host, &path)?;
//! writer.put(b"k1", b"v1")?;
//! writer.put(b"k2", b"v2")?;
//! writer.finalize()?;
//!
//! let reader = StoreReader::open(&Backend::Host, &path)?;
//! assert_eq!(reader.get(b"k1")?, Some(b"v1".to_vec()));
//! assert_eq!(reader.get(b"missing")?, None);
//! # std::fs::remove_file(&path).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod format;
pub mod reader;
pub mod writer;

pub use backend::{Backend, KvFile};
pub use format::StoreError;
pub use reader::{StoreIter, StoreReader};
pub use writer::{StoreWriter, WriteStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kvstore_lib_{}_{name}.paldb", std::process::id()))
    }

    fn build(path: &PathBuf, pairs: &[(&[u8], &[u8])]) -> WriteStats {
        let mut w = StoreWriter::create(&Backend::Host, path).unwrap();
        for (k, v) in pairs {
            w.put(k, v).unwrap();
        }
        w.finalize().unwrap()
    }

    #[test]
    fn write_then_read_all_keys() {
        let path = temp("rw");
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..500)
            .map(|i| (format!("key-{i}").into_bytes(), format!("value-{i:04}").into_bytes()))
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        let stats = build(&path, &refs);
        assert_eq!(stats.records, 500);
        assert_eq!(stats.write_calls, 502, "one write per record + index + footer");

        let r = StoreReader::open(&Backend::Host, &path).unwrap();
        for (k, v) in &pairs {
            assert_eq!(r.get(k).unwrap().as_deref(), Some(v.as_slice()), "key {k:?}");
        }
        assert_eq!(r.get(b"not-present").unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_key_latest_value_wins() {
        let path = temp("dup");
        build(&path, &[(b"k", b"old"), (b"x", b"other"), (b"k", b"new")]);
        let r = StoreReader::open(&Backend::Host, &path).unwrap();
        assert_eq!(r.get(b"k").unwrap(), Some(b"new".to_vec()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn iter_returns_live_pairs() {
        let path = temp("iter");
        build(&path, &[(b"a", b"1"), (b"b", b"2"), (b"a", b"3")]);
        let r = StoreReader::open(&Backend::Host, &path).unwrap();
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = r.iter().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(b"a".to_vec(), b"3".to_vec()), (b"b".to_vec(), b"2".to_vec())]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_store_reads_cleanly() {
        let path = temp("empty");
        build(&path, &[]);
        let r = StoreReader::open(&Backend::Host, &path).unwrap();
        assert_eq!(r.get(b"anything").unwrap(), None);
        assert_eq!(r.iter().count(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinalized_store_is_rejected() {
        let path = temp("unfinal");
        let mut w = StoreWriter::create(&Backend::Host, &path).unwrap();
        w.put(b"k", b"v").unwrap();
        drop(w); // never finalized
        let err = StoreReader::open(&Backend::Host, &path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = temp("trunc");
        build(&path, &[(b"k", b"v")]);
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..10]).unwrap();
        assert!(StoreReader::open(&Backend::Host, &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reads_cost_no_crossings_in_enclave() {
        use sgx_sim::cost::{ClockMode, CostModel, CostParams};
        use sgx_sim::enclave::{Enclave, EnclaveConfig};
        use std::sync::Arc;

        let path = temp("enclave_reads");
        build(&path, &[(b"alpha", b"1"), (b"beta", b"2")]);

        let cost = Arc::new(CostModel::new(CostParams::default(), ClockMode::Virtual));
        let enclave = Enclave::create(&EnclaveConfig::default(), b"kv", cost).unwrap();
        let backend = Backend::Enclave(Arc::clone(&enclave));
        let r = StoreReader::open(&backend, &path).unwrap();
        let ocalls_after_open = enclave.stats().ocalls;
        for _ in 0..100 {
            assert_eq!(r.get(b"alpha").unwrap(), Some(b"1".to_vec()));
        }
        assert_eq!(enclave.stats().ocalls, ocalls_after_open, "gets are pure memory probes");
        std::fs::remove_file(&path).unwrap();
    }
}
