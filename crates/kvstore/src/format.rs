//! On-disk format of the write-once store.
//!
//! ```text
//! [record]*           data section, in put order
//! [index]             open-addressed hash table
//! [footer]            fixed-size trailer
//!
//! record := klen:u32 vlen:u32 key[klen] value[vlen]
//! index  := n_slots:u64 (slot := key_hash:u64 offset_plus_1:u64)*
//! footer := index_offset:u64 n_records:u64 magic:u64
//! ```
//!
//! The index stores `offset + 1` so that zero means "empty slot".

use std::error::Error;
use std::fmt;

/// Magic number in the footer.
pub const MAGIC: u64 = 0x4d4f_4e54_5341_4c56; // "MONTSALV"

/// Size of the fixed footer in bytes.
pub const FOOTER_LEN: usize = 24;

/// Size of one index slot in bytes.
pub const SLOT_LEN: usize = 16;

/// Errors raised by store operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying I/O (host or relayed) failed.
    Io(sgx_sim::SgxError),
    /// The file is not a valid store (bad magic, truncated sections).
    Corrupt(String),
    /// `put` after `finalize`, or reads before `finalize`.
    Lifecycle(String),
    /// Key or value exceeds `u32::MAX` bytes.
    TooLarge,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o failed: {e}"),
            StoreError::Corrupt(m) => write!(f, "store file corrupt: {m}"),
            StoreError::Lifecycle(m) => write!(f, "store lifecycle violation: {m}"),
            StoreError::TooLarge => write!(f, "key or value too large"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sgx_sim::SgxError> for StoreError {
    fn from(e: sgx_sim::SgxError) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a hash of a key.
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Avoid 0 so tests can use 0 as a sentinel safely.
    h.max(1)
}

/// Encodes a record header + payload.
pub fn encode_record(key: &[u8], value: &[u8]) -> Result<Vec<u8>, StoreError> {
    if key.len() > u32::MAX as usize || value.len() > u32::MAX as usize {
        return Err(StoreError::TooLarge);
    }
    let mut out = Vec::with_capacity(8 + key.len() + value.len());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    Ok(out)
}

/// Decodes the record at `offset` in `data`; returns `(key, value)`.
pub fn decode_record(data: &[u8], offset: usize) -> Result<(&[u8], &[u8]), StoreError> {
    let header_end = offset
        .checked_add(8)
        .filter(|&e| e <= data.len())
        .ok_or_else(|| StoreError::Corrupt(format!("record header at {offset} out of range")))?;
    let klen = u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    let vlen =
        u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes")) as usize;
    let key_end = header_end
        .checked_add(klen)
        .filter(|&e| e <= data.len())
        .ok_or_else(|| StoreError::Corrupt(format!("key at {offset} out of range")))?;
    let val_end = key_end
        .checked_add(vlen)
        .filter(|&e| e <= data.len())
        .ok_or_else(|| StoreError::Corrupt(format!("value at {offset} out of range")))?;
    Ok((&data[header_end..key_end], &data[key_end..val_end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let rec = encode_record(b"key", b"value!").unwrap();
        let (k, v) = decode_record(&rec, 0).unwrap();
        assert_eq!(k, b"key");
        assert_eq!(v, b"value!");
    }

    #[test]
    fn empty_key_and_value_are_legal() {
        let rec = encode_record(b"", b"").unwrap();
        let (k, v) = decode_record(&rec, 0).unwrap();
        assert!(k.is_empty() && v.is_empty());
    }

    #[test]
    fn truncated_records_are_detected() {
        let rec = encode_record(b"abcdef", b"ghij").unwrap();
        assert!(decode_record(&rec[..rec.len() - 1], 0).is_err());
        assert!(decode_record(&rec, 4).is_err());
        assert!(decode_record(&rec, rec.len() + 10).is_err());
    }

    #[test]
    fn hash_is_stable_and_nonzero() {
        assert_eq!(key_hash(b"alpha"), key_hash(b"alpha"));
        assert_ne!(key_hash(b"alpha"), key_hash(b"beta"));
        assert_ne!(key_hash(b""), 0);
    }
}
