//! # baselines — the deployment configurations of the paper's evaluation
//!
//! The evaluation (§6) compares four ways of deploying the same
//! application:
//!
//! | Paper label  | Here                        | Model |
//! |--------------|-----------------------------|-------|
//! | `NoSGX-NI`   | [`Deployment::NoSgxNative`] | native image on the host |
//! | `SGX-NI` / `NoPart-NI` | [`Deployment::SgxNative`] | native image inside the enclave |
//! | `NoSGX+JVM`  | [`Deployment::NoSgxJvm`]    | JVM model on the host |
//! | `SCONE+JVM`  | [`Deployment::SconeJvm`]    | JVM model inside the enclave (SCONE container) |
//!
//! The JVM model ([`JvmModel`]) captures the two causes the paper gives
//! for SCONE+JVM's slowness (§6.6): (1) class loading, bytecode
//! interpretation and dynamic compilation — a startup charge plus
//! per-call and compute multipliers — and (2) a larger in-enclave
//! working set (the JVM's own heap), which drives extra MEE/EPC
//! traffic. It also captures the one counter-effect the paper reports
//! (Table 1, `monte_carlo`): HotSpot's generational collector handles
//! allocation-heavy workloads better than the native image's serial
//! full-heap collector, modelled as a lower GC-copy factor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use montsalvat_core::exec::app::{AppConfig, Placement};
use montsalvat_core::exec::world::ExecModel;

/// Parameters of the JVM-in-SCONE execution model.
#[derive(Debug, Clone, PartialEq)]
pub struct JvmModel {
    /// Base JVM startup (class loading, JIT warm-up) in nanoseconds.
    pub startup_ns: u64,
    /// Additional startup per application class.
    pub per_class_load_ns: u64,
    /// Per-method-invocation overhead (dispatch, residual
    /// interpretation) in nanoseconds.
    pub call_overhead_ns: u64,
    /// Multiplier on compute-kernel time (average of interpreted and
    /// JIT-compiled execution over the benchmark's lifetime).
    pub compute_factor: f64,
    /// Multiplier on GC copy traffic relative to the native image's
    /// serial stop-and-copy collector (< 1: the generational JVM
    /// collector moves less memory on allocation-heavy loads \[28\]).
    pub gc_copy_factor: f64,
    /// The JVM runtime's own heap footprint, committed at startup (in
    /// an enclave this consumes scarce EPC).
    pub runtime_heap_overhead_bytes: u64,
}

impl Default for JvmModel {
    fn default() -> Self {
        JvmModel {
            startup_ns: 400_000_000, // 0.4 s JVM bring-up
            per_class_load_ns: 500_000,
            call_overhead_ns: 120,
            compute_factor: 1.35,
            gc_copy_factor: 0.25,
            runtime_heap_overhead_bytes: 32 * 1024 * 1024,
        }
    }
}

impl JvmModel {
    /// Converts this model into runtime [`ExecModel`] knobs for an
    /// application with `class_count` classes.
    pub fn exec_model(&self, class_count: usize) -> ExecModel {
        ExecModel {
            call_overhead_ns: self.call_overhead_ns,
            compute_factor: self.compute_factor,
            gc_copy_factor: self.gc_copy_factor,
            startup_ns: self.startup_ns + self.per_class_load_ns * class_count as u64,
            runtime_heap_overhead_bytes: self.runtime_heap_overhead_bytes,
        }
    }
}

/// A deployment configuration from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// Native image on the host (`NoSGX-NI`): the fastest, least secure.
    NoSgxNative,
    /// Native image inside the enclave (`SGX-NI`, and `NoPart-NI` when
    /// the image is unpartitioned).
    SgxNative,
    /// JVM on the host (`NoSGX+JVM`).
    NoSgxJvm,
    /// JVM inside an enclave via a SCONE-style container (`SCONE+JVM`).
    SconeJvm,
}

impl Deployment {
    /// All four deployments.
    pub fn all() -> [Deployment; 4] {
        [Deployment::NoSgxNative, Deployment::SgxNative, Deployment::NoSgxJvm, Deployment::SconeJvm]
    }

    /// The paper's label for this deployment.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::NoSgxNative => "NoSGX-NI",
            Deployment::SgxNative => "SGX-NI",
            Deployment::NoSgxJvm => "NoSGX+JVM",
            Deployment::SconeJvm => "SCONE+JVM",
        }
    }

    /// Whether the application runs inside the enclave.
    pub fn placement(&self) -> Placement {
        match self {
            Deployment::NoSgxNative | Deployment::NoSgxJvm => Placement::Host,
            Deployment::SgxNative | Deployment::SconeJvm => Placement::Enclave,
        }
    }

    /// Whether the JVM model applies.
    pub fn is_jvm(&self) -> bool {
        matches!(self, Deployment::NoSgxJvm | Deployment::SconeJvm)
    }

    /// Builds the [`AppConfig`] for running an application with
    /// `class_count` classes under this deployment.
    pub fn app_config(&self, jvm: &JvmModel, class_count: usize) -> AppConfig {
        let exec_model =
            if self.is_jvm() { jvm.exec_model(class_count) } else { ExecModel::native_image() };
        AppConfig { exec_model, gc_helper_interval: None, ..AppConfig::default() }
    }
}

impl std::fmt::Display for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_match_labels() {
        assert_eq!(Deployment::NoSgxNative.placement(), Placement::Host);
        assert_eq!(Deployment::SconeJvm.placement(), Placement::Enclave);
        assert!(Deployment::SconeJvm.is_jvm());
        assert!(!Deployment::SgxNative.is_jvm());
    }

    #[test]
    fn jvm_model_scales_startup_with_classes() {
        let jvm = JvmModel::default();
        let small = jvm.exec_model(10);
        let large = jvm.exec_model(1000);
        assert!(large.startup_ns > small.startup_ns);
        assert_eq!(small.compute_factor, jvm.compute_factor);
    }

    #[test]
    fn native_deployments_have_no_overheads() {
        let cfg = Deployment::NoSgxNative.app_config(&JvmModel::default(), 100);
        assert_eq!(cfg.exec_model, ExecModel::native_image());
        let cfg = Deployment::SconeJvm.app_config(&JvmModel::default(), 100);
        assert!(cfg.exec_model.startup_ns > 0);
    }

    #[test]
    fn jvm_gc_copies_less_than_serial_native_gc() {
        // The Table-1 monte_carlo anomaly depends on this inequality.
        assert!(JvmModel::default().gc_copy_factor < 1.0);
    }
}
