//! Reachability analysis ("points-to analysis", §5.3).
//!
//! GraalVM native-image determines the program elements to compile by a
//! points-to analysis that "starts with all entry points and iteratively
//! processes all transitively reachable classes, fields and methods"
//! (Wimmer et al.). At the granularity of this model — methods and
//! classes, no flow sensitivity — that is a fixed-point reachability
//! computation over the call graph, which this module implements. Its
//! results drive pruning: unreachable methods are not compiled into an
//! image, and generated proxies whose methods are never called disappear
//! entirely (the paper's automatic proxy pruning).

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::class::{ClassDef, MethodRef};

/// Result of a reachability analysis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Reachability {
    /// Reachable methods.
    pub methods: BTreeSet<MethodRef>,
    /// Classes with at least one reachable method (or that are
    /// instantiated by a reachable method).
    pub classes: BTreeSet<String>,
}

impl Reachability {
    /// Whether `class.method` is reachable.
    pub fn contains_method(&self, class: &str, method: &str) -> bool {
        self.methods.contains(&MethodRef::new(class, method))
    }

    /// Whether any part of `class` is reachable.
    pub fn contains_class(&self, class: &str) -> bool {
        self.classes.contains(class)
    }
}

/// Computes the methods and classes transitively reachable from
/// `entry_points` within `classes`.
///
/// Entry points that do not resolve in `classes` are ignored (they
/// belong to the other image; cross-image edges flow through relay entry
/// points instead, as in Fig. 2 of the paper).
pub fn analyze(classes: &[ClassDef], entry_points: &[MethodRef]) -> Reachability {
    let by_name: HashMap<&str, &ClassDef> = classes.iter().map(|c| (c.name.as_str(), c)).collect();

    let mut reach = Reachability::default();
    let mut queue: VecDeque<MethodRef> = VecDeque::new();

    for entry in entry_points {
        if let Some(class) = by_name.get(entry.class.as_str()) {
            if class.find_method(&entry.method).is_some() {
                queue.push_back(entry.clone());
            }
        }
    }

    while let Some(mref) = queue.pop_front() {
        if !reach.methods.insert(mref.clone()) {
            continue;
        }
        reach.classes.insert(mref.class.clone());
        let class = by_name[mref.class.as_str()];
        let method = class.find_method(&mref.method).expect("queued methods resolve");
        for edge in method.call_edges() {
            // Edges into the other image do not resolve here and are
            // intentionally dropped; the other image analyses them from
            // its own relay entry points.
            if let Some(target) = by_name.get(edge.class.as_str()) {
                if target.find_method(&edge.method).is_some() {
                    reach.classes.insert(edge.class.clone());
                    queue.push_back(edge);
                }
            }
        }
    }
    reach
}

/// Prunes `classes` to the reachable subset: unreachable classes are
/// dropped entirely; reachable classes keep only reachable methods
/// (fields are always kept — field layout is per class).
pub fn prune(classes: Vec<ClassDef>, reach: &Reachability) -> Vec<ClassDef> {
    classes
        .into_iter()
        .filter(|c| reach.contains_class(&c.name))
        .map(|mut c| {
            c.methods.retain(|m| reach.contains_method(&c.name, &m.name));
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Trust;
    use crate::class::{ClassRole, MethodDef, MethodKind};
    use crate::samples::bank_program;
    use crate::transform::transform;

    #[test]
    fn main_reaches_untrusted_classes_and_proxies() {
        let tp = transform(&bank_program());
        let mut untrusted_classes = tp.untrusted_set.clone();
        untrusted_classes.extend(tp.neutral_set.clone());
        let reach = analyze(&untrusted_classes, std::slice::from_ref(&tp.main));
        // Fig. 2: main reaches Person methods and proxies for Account
        // and AccountRegistry.
        assert!(reach.contains_method("Person", "<init>"));
        assert!(reach.contains_method("Person", "transfer"));
        assert!(reach.contains_method("Account", "updateBalance"), "proxy method reachable");
        assert!(reach.contains_method("AccountRegistry", "addAccount"));
        // StringUtil is never called by main — pruned.
        assert!(!reach.contains_class("StringUtil"));
    }

    #[test]
    fn trusted_image_reaches_via_relays() {
        let tp = transform(&bank_program());
        let mut trusted_classes = tp.trusted_set.clone();
        trusted_classes.extend(tp.neutral_set.clone());
        let entries = tp.relay_entry_points(Trust::Trusted);
        let reach = analyze(&trusted_classes, &entries);
        assert!(reach.contains_method("Account", "updateBalance"));
        assert!(reach.contains_method("AccountRegistry", "addAccount"));
        // The Person proxy is NOT reachable from any trusted class
        // (§5.3: "proxy class Person will not be included inside the
        // trusted image").
        assert!(!reach.contains_class("Person"));
        assert!(!reach.contains_class("Main"));
    }

    #[test]
    fn prune_drops_unreachable_proxies() {
        let tp = transform(&bank_program());
        let mut trusted_classes = tp.trusted_set.clone();
        trusted_classes.extend(tp.neutral_set.clone());
        let entries = tp.relay_entry_points(Trust::Trusted);
        let reach = analyze(&trusted_classes, &entries);
        let pruned = prune(trusted_classes, &reach);
        assert!(pruned.iter().all(|c| c.role == ClassRole::Concrete || c.name != "Person"));
        assert!(!pruned.iter().any(|c| c.name == "Person" || c.name == "Main"));
        // Concrete trusted classes survive with their methods.
        assert!(pruned.iter().any(|c| c.name == "Account"));
    }

    #[test]
    fn analysis_is_monotone_in_entry_points() {
        let tp = transform(&bank_program());
        let mut classes = tp.untrusted_set.clone();
        classes.extend(tp.neutral_set.clone());
        let small = analyze(&classes, std::slice::from_ref(&tp.main));
        let mut entries = vec![tp.main.clone()];
        entries.push(MethodRef::new("StringUtil", "greet"));
        let large = analyze(&classes, &entries);
        assert!(small.methods.is_subset(&large.methods));
        assert!(large.contains_class("StringUtil"));
    }

    #[test]
    fn analysis_is_idempotent() {
        let tp = transform(&bank_program());
        let mut classes = tp.untrusted_set.clone();
        classes.extend(tp.neutral_set.clone());
        let first = analyze(&classes, std::slice::from_ref(&tp.main));
        // Re-running from the same entries gives the same fixed point.
        let second = analyze(&classes, std::slice::from_ref(&tp.main));
        assert_eq!(first, second);
        // Using every reached method as an entry changes nothing.
        let entries: Vec<MethodRef> = first.methods.iter().cloned().collect();
        let third = analyze(&classes, &entries);
        assert_eq!(first, third);
    }

    #[test]
    fn missing_entry_points_are_ignored() {
        let classes = vec![ClassDef::new("A").method(MethodDef::interpreted(
            "m",
            MethodKind::Static,
            0,
            0,
            vec![],
        ))];
        let reach = analyze(&classes, &[MethodRef::new("Ghost", "m"), MethodRef::new("A", "m")]);
        assert!(reach.contains_method("A", "m"));
        assert!(!reach.contains_class("Ghost"));
    }

    #[test]
    fn cyclic_call_graphs_terminate() {
        let a = ClassDef::new("A").method(MethodDef {
            name: "f".into(),
            kind: MethodKind::Static,
            param_count: 0,
            locals: 0,
            body: crate::class::MethodBody::Instrs(vec![]),
            declared_calls: vec![MethodRef::new("B", "g")],
        });
        let b = ClassDef::new("B").method(MethodDef {
            name: "g".into(),
            kind: MethodKind::Static,
            param_count: 0,
            locals: 0,
            body: crate::class::MethodBody::Instrs(vec![]),
            declared_calls: vec![MethodRef::new("A", "f")],
        });
        let reach = analyze(&[a, b], &[MethodRef::new("A", "f")]);
        assert_eq!(reach.methods.len(), 2);
    }
}
