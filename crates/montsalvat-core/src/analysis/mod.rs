//! Static and dynamic partition analyses.
//!
//! Two complementary analyses decide *what goes where*:
//!
//! - [`reachability`] — the build-time points-to analysis (§5.3 of the
//!   paper): starting from each image's entry points it computes the
//!   transitively reachable methods and classes, which drives pruning
//!   of unreachable methods and generated proxies.
//! - [`advisor`] — the run-time partition advisor: it reads a causal
//!   trace captured from a partitioned run (`--trace-out`, schema
//!   `montsalvat.trace/v1`), prices every proxied class's boundary
//!   crossings against the cost model
//!   ([`CostParams`](sgx_sim::cost::CostParams)), and emits a ranked
//!   re-annotation plan — the repo's answer to the paper leaving the
//!   choice of `@Trusted`/`@Untrusted` annotations to the developer.
//!
//! The historical `analysis::{Reachability, analyze, prune}` paths are
//! preserved as re-exports; the advisor API is additionally re-exported
//! here for symmetry. The advisor's cost equations are documented
//! term-by-term in `docs/PARTITIONING.md`.

pub mod advisor;
pub mod reachability;

pub use advisor::{
    advise, advise_with_classes, class_meta, decide, decide_raw, extract_class_costs, AdvicePlan,
    AdvisorConfig, ClassCosts, ClassMeta, Decision, Recommendation, Verdict, ADVICE_SCHEMA,
};
pub use reachability::{analyze, prune, Reachability};
