//! The partition advisor: from a captured causal trace to a ranked
//! re-annotation plan.
//!
//! Montsalvat leaves choosing the `@Trusted`/`@Untrusted` partition to
//! the developer. This module closes that loop for the *performance*
//! half of the decision: it replays a `--trace-out` capture (schema
//! `montsalvat.trace/v1`), prices every proxied class's boundary
//! crossings with [`CostParams`], and recommends the annotation moves
//! whose predicted model-time savings clear a configurable threshold.
//! Security placement stays with the developer — classes named in
//! [`AdvisorConfig::pinned`] are never moved, and every suggestion is
//! advisory output, not an applied transformation.
//!
//! # The cost equations
//!
//! For each cat-`"rmi"` span (one per boundary crossing) the advisor
//! walks the span's subtree, stopping at nested `"rmi"` spans, and
//! splits the crossing region into *overhead that exists only because
//! the class lives on the other side* and *work that moves with the
//! class*:
//!
//! ```text
//! X(call) = n_sgx  · (transition_ns + relay_overhead_ns)   crossings
//!         + n_sw   · switchless_call_ns                    switchless hand-offs
//!         + n_shim · transition_ns                         shim I/O relays
//!         + payload_bytes · copy_ns_per_byte               boundary copies
//!         + serde_ns                                       observed serde spans
//!         + queue_ns                                       observed queue waits
//!
//! W(call) = exclusive model time of "exec"/"gc" spans in the region
//! ```
//!
//! Moving a class across the boundary removes `X`, removes the
//! overhead of the crossings its methods make to classes on the
//! destination side (the first-level nested `"rmi"` spans —
//! [`ClassCosts::nested_crossing_ns`]), and rescales `W` by the MEE
//! compute factor (`×1/mee_compute_factor` leaving the enclave,
//! `×mee_compute_factor` entering it):
//!
//! ```text
//! predicted_savings = X + nested_X + W·(1 − move_factor)
//! ```
//!
//! Every term maps to a [`CostParams`] field with a `MONTSALVAT_*`
//! override; `docs/PARTITIONING.md` documents the contract term by
//! term, including the decision rule, its thresholds, and the
//! tolerance band the self-verifying `partition_advisor` experiment
//! asserts.
//!
//! # Example
//!
//! Price a synthetic capture of a crossing-heavy trusted class and
//! check the advisor recommends moving it out:
//!
//! ```
//! use montsalvat_core::analysis::advisor::{advise, AdvisorConfig, Verdict};
//! use montsalvat_core::annotation::Trust;
//! use sgx_sim::cost::CostParams;
//! use telemetry::trace::{parse_chrome_trace, Lane, Tracer};
//!
//! let tracer = Tracer::new();
//! tracer.enable_with_capacity(1024);
//! for i in 0..16u64 {
//!     let t0 = i * 100_000;
//!     // The proxy call, recorded on the caller's (untrusted) lane …
//!     let call = tracer
//!         .start(Lane::Untrusted, "rmi", None, t0, || "Store.relay$put".into())
//!         .expect("tracing enabled");
//!     let ctx = call.context();
//!     // … its marshalling, the enclave transition, and the remote serve.
//!     tracer.span_at(Lane::Untrusted, "serde", Some(ctx), t0, t0 + 1_000, 0, || {
//!         "marshal:fast b=128".into()
//!     });
//!     let ecall = tracer
//!         .start(Lane::Trusted, "sgx", Some(ctx), t0 + 1_000, || "ecall:relay".into())
//!         .expect("tracing enabled");
//!     tracer.span_at(Lane::Trusted, "exec", Some(ecall.context()), t0 + 2_000, t0 + 3_000, 0, || {
//!         "serve:Store.relay$put".into()
//!     });
//!     tracer.finish(ecall, t0 + 4_000);
//!     tracer.finish(call, t0 + 5_000);
//! }
//! let trace = parse_chrome_trace(&tracer.to_chrome_json(&[])).unwrap();
//! let plan = advise(&trace, &CostParams::paper_defaults(), &AdvisorConfig::default());
//! let store = &plan.recommendations[0];
//! assert_eq!(store.class, "Store");
//! assert_eq!(store.verdict, Verdict::Move);
//! assert_eq!(store.suggested, Trust::Untrusted);
//! assert!(store.predicted_savings_ns > 0);
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sgx_sim::cost::CostParams;
use telemetry::trace::ParsedTrace;

use crate::annotation::{Side, Trust};
use crate::class::{ClassDef, ClassRole, CTOR};

/// Thresholds and pins governing the decision rule.
///
/// The defaults are deliberately relative (fractions, sample counts)
/// rather than absolute nanoseconds, so scaling every cost parameter by
/// a common factor never flips a verdict (the property pinned by the
/// `advisor_properties` proptest suite).
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorConfig {
    /// Minimum traced crossings of a class before the advisor will
    /// recommend moving it (fewer → [`Verdict::Hold`]).
    pub min_samples: u64,
    /// Minimum predicted savings as a fraction of the class's total
    /// boundary-attributed time `X + nested_X + W`.
    pub min_savings_frac: f64,
    /// Sample count at which confidence reaches 0.5: `confidence =
    /// n / (n + confidence_halfway)`.
    pub confidence_halfway: u64,
    /// Minimum confidence for a [`Verdict::Move`].
    pub min_confidence: f64,
    /// Relative tolerance band for prediction-vs-observed verification
    /// (echoed into exports; asserted by the `partition_advisor`
    /// experiment, see `docs/PARTITIONING.md`).
    pub tolerance: f64,
    /// Classes that must keep their annotation regardless of cost —
    /// the security half of the partitioning decision.
    pub pinned: BTreeSet<String>,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            min_samples: 8,
            min_savings_frac: 0.05,
            confidence_halfway: 16,
            min_confidence: 0.25,
            tolerance: 0.25,
            pinned: BTreeSet::new(),
        }
    }
}

/// Per-class costs extracted from a trace: the inputs of the decision
/// rule, aggregated over every crossing of the class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassCosts {
    /// Class name (the prefix of its `Class.relay$method` rmi spans).
    pub class: String,
    /// The side the class currently lives on, inferred from the caller
    /// lane of its rmi spans (a crossing recorded on the untrusted lane
    /// targets a trusted class, and vice versa).
    pub home: Side,
    /// Traced crossings (rmi spans) targeting this class.
    pub calls: u64,
    /// Crossings served over a classic transition (an `"sgx"` span in
    /// the region; includes switchless fallbacks).
    pub classic_crossings: u64,
    /// Crossings served switchlessly (no `"sgx"` span in the region).
    pub switchless_crossings: u64,
    /// Shim I/O relays (`"shim"` spans) issued while serving.
    pub shim_relays: u64,
    /// Serde payload bytes (the `b=<n>` suffix of `"serde"` spans).
    pub payload_bytes: u64,
    /// Observed model time inside `"serde"` spans of the regions.
    pub serde_ns: u64,
    /// Observed model time inside `"queue"` wait spans of the regions.
    pub queue_ns: u64,
    /// Exclusive model time of `"exec"` and `"gc"` spans in the
    /// regions — the in-world work `W` that moves with the class.
    pub exec_ns: u64,
    /// Crossing overhead of first-level nested rmi spans (crossings
    /// *made by* this class's methods). If the class moves, those
    /// calls become local, so their overhead is saved too.
    pub nested_crossing_ns: u64,
}

impl ClassCosts {
    /// The modelled crossing overhead `X + nested_X` in nanoseconds:
    /// transition and relay charges priced from `params`, plus the
    /// observed serde and queue-wait time, plus the overhead of nested
    /// crossings that a move would make local.
    pub fn crossing_overhead_ns(&self, params: &CostParams) -> f64 {
        let transition = params.transition_ns() as f64;
        self.classic_crossings as f64 * (transition + params.relay_overhead_ns as f64)
            + self.switchless_crossings as f64 * params.switchless_call_ns as f64
            + self.shim_relays as f64 * transition
            + self.payload_bytes as f64 * params.copy_ns_per_byte
            + self.serde_ns as f64
            + self.queue_ns as f64
            + self.nested_crossing_ns as f64
    }

    /// The multiplier `W` picks up when the class changes side:
    /// `1/mee_compute_factor` moving out of the enclave,
    /// `mee_compute_factor` moving in.
    pub fn move_factor(&self, params: &CostParams) -> f64 {
        match self.home {
            Side::Trusted => 1.0 / params.mee_compute_factor,
            Side::Untrusted => params.mee_compute_factor,
        }
    }
}

/// What the advisor recommends for one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Re-annotate: predicted savings clear every threshold.
    Move,
    /// Keep the current annotation (see the recommendation rationale).
    Hold,
}

impl Verdict {
    /// Lower-case label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            Verdict::Move => "move",
            Verdict::Hold => "hold",
        }
    }
}

/// Output of the pure decision rule [`decide_raw`].
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Move or hold.
    pub verdict: Verdict,
    /// `X + nested_X + W·(1 − move_factor)`, nanoseconds (negative
    /// when moving would slow the class down).
    pub predicted_savings_ns: f64,
    /// Predicted savings over the class's total boundary-attributed
    /// time `X + nested_X + W` (0 when that total is 0).
    pub savings_frac: f64,
    /// `calls / (calls + confidence_halfway)` — how much evidence the
    /// trace holds for this class.
    pub confidence: f64,
    /// Why the verdict came out this way.
    pub rationale: &'static str,
}

/// The pure decision rule over already-priced aggregates.
///
/// `crossing_ns` is `X + nested_X` ([`ClassCosts::crossing_overhead_ns`]),
/// `exec_ns` is `W`, `move_factor` is [`ClassCosts::move_factor`].
/// Every threshold in `cfg` is relative, so scaling `crossing_ns` and
/// `exec_ns` by a common positive factor leaves the verdict unchanged.
///
/// ```
/// use montsalvat_core::analysis::advisor::{decide_raw, AdvisorConfig, Verdict};
///
/// let cfg = AdvisorConfig::default();
/// // Crossing-dominated: 44 µs of overhead per call, trivial work.
/// let d = decide_raw(64.0 * 44_000.0, 64.0 * 500.0, 64, 1.0 / 1.8, false, &cfg);
/// assert_eq!(d.verdict, Verdict::Move);
/// // Two samples are not evidence.
/// let d = decide_raw(2.0 * 44_000.0, 0.0, 2, 1.0 / 1.8, false, &cfg);
/// assert_eq!(d.verdict, Verdict::Hold);
/// assert_eq!(d.rationale, "insufficient samples");
/// ```
pub fn decide_raw(
    crossing_ns: f64,
    exec_ns: f64,
    calls: u64,
    move_factor: f64,
    pinned: bool,
    cfg: &AdvisorConfig,
) -> Decision {
    let predicted = crossing_ns + exec_ns * (1.0 - move_factor);
    let total = crossing_ns + exec_ns;
    let savings_frac = if total > 0.0 { predicted / total } else { 0.0 };
    let confidence = calls as f64 / (calls + cfg.confidence_halfway) as f64;
    let hold = |rationale| Decision {
        verdict: Verdict::Hold,
        predicted_savings_ns: predicted,
        savings_frac,
        confidence,
        rationale,
    };
    if pinned {
        return hold("pinned: security placement overrides the cost model");
    }
    if calls < cfg.min_samples {
        return hold("insufficient samples");
    }
    if confidence < cfg.min_confidence {
        return hold("low confidence");
    }
    if predicted <= 0.0 {
        return hold("predicted loss: the move would slow in-world execution more than it saves");
    }
    if savings_frac < cfg.min_savings_frac {
        return hold("below savings threshold");
    }
    Decision {
        verdict: Verdict::Move,
        predicted_savings_ns: predicted,
        savings_frac,
        confidence,
        rationale: "crossing overhead outweighs the re-homed execution cost",
    }
}

/// Program-level metadata that refines a recommendation (built by
/// [`class_meta`] from the pre-transform class definitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMeta {
    /// The declared annotation.
    pub declared: Trust,
    /// No fields and no constructor: the class can be `@Neutral`
    /// (copied into both images, every call local) instead of merely
    /// swapping sides.
    pub stateless: bool,
}

/// Extracts [`ClassMeta`] from pre-transform class definitions
/// (generated proxies are skipped).
pub fn class_meta(classes: &[ClassDef]) -> BTreeMap<String, ClassMeta> {
    classes
        .iter()
        .filter(|c| c.role == ClassRole::Concrete)
        .map(|c| {
            let stateless = c.fields.is_empty() && c.find_method(CTOR).is_none();
            (c.name.clone(), ClassMeta { declared: c.trust, stateless })
        })
        .collect()
}

/// One ranked entry of an [`AdvicePlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Class name.
    pub class: String,
    /// Current annotation (declared, or inferred from the trace).
    pub current: Trust,
    /// Suggested annotation (`current` again on a hold).
    pub suggested: Trust,
    /// Move or hold.
    pub verdict: Verdict,
    /// Traced crossings backing this recommendation.
    pub calls: u64,
    /// `X + nested_X`, rounded to whole nanoseconds.
    pub crossing_overhead_ns: u64,
    /// `W`, the in-world execution time that would move.
    pub exec_ns: u64,
    /// Predicted model-time saving of the move (negative = loss).
    pub predicted_savings_ns: i64,
    /// Savings as a fraction of boundary-attributed time.
    pub savings_frac: f64,
    /// Sample-count confidence, `calls / (calls + halfway)`.
    pub confidence: f64,
    /// Why.
    pub rationale: String,
}

/// Applies the decision rule to one class's extracted costs.
///
/// With `meta`, the declared annotation is used as `current`, and
/// stateless classes are promoted to an `@Neutral` suggestion (both
/// images get a copy; every call becomes local) instead of a plain
/// side swap.
pub fn decide(
    costs: &ClassCosts,
    params: &CostParams,
    cfg: &AdvisorConfig,
    meta: Option<&ClassMeta>,
) -> Recommendation {
    let current = meta.map(|m| m.declared).unwrap_or(match costs.home {
        Side::Trusted => Trust::Trusted,
        Side::Untrusted => Trust::Untrusted,
    });
    let crossing_ns = costs.crossing_overhead_ns(params);
    let decision = decide_raw(
        crossing_ns,
        costs.exec_ns as f64,
        costs.calls,
        costs.move_factor(params),
        cfg.pinned.contains(&costs.class),
        cfg,
    );
    let suggested = match decision.verdict {
        Verdict::Hold => current,
        Verdict::Move => {
            if meta.is_some_and(|m| m.stateless) {
                Trust::Neutral
            } else {
                match costs.home {
                    Side::Trusted => Trust::Untrusted,
                    Side::Untrusted => Trust::Trusted,
                }
            }
        }
    };
    Recommendation {
        class: costs.class.clone(),
        current,
        suggested,
        verdict: decision.verdict,
        calls: costs.calls,
        crossing_overhead_ns: crossing_ns.round() as u64,
        exec_ns: costs.exec_ns,
        predicted_savings_ns: decision.predicted_savings_ns.round() as i64,
        savings_frac: decision.savings_frac,
        confidence: decision.confidence,
        rationale: decision.rationale.to_owned(),
    }
}

/// A ranked re-annotation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvicePlan {
    /// Recommendations, moves first, by predicted savings descending.
    pub recommendations: Vec<Recommendation>,
    /// Sum of predicted savings over [`Verdict::Move`] entries.
    pub total_predicted_savings_ns: i64,
    /// Crossings observed in the trace (rmi spans).
    pub rmi_spans: u64,
    /// Telemetry's `rmi.calls`, when the capture carried it in
    /// `otherData` — reconciles trace coverage against telemetry.
    pub rmi_calls: Option<u64>,
    /// Events the capture dropped (full ring): sample counts are a
    /// lower bound when nonzero.
    pub dropped: u64,
    /// The tolerance band (from [`AdvisorConfig::tolerance`]) that
    /// verification of this plan should be held to.
    pub tolerance: f64,
}

impl AdvicePlan {
    /// The recommendations with a [`Verdict::Move`].
    pub fn moves(&self) -> impl Iterator<Item = &Recommendation> {
        self.recommendations.iter().filter(|r| r.verdict == Verdict::Move)
    }

    /// Renders the plan as an aligned text table with a summary line.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== partition advice ({} crossings traced{}{}) ==",
            self.rmi_spans,
            match self.rmi_calls {
                Some(n) => format!(", telemetry rmi.calls = {n}"),
                None => String::new(),
            },
            if self.dropped > 0 {
                format!(", {} events dropped", self.dropped)
            } else {
                String::new()
            },
        );
        let _ = writeln!(
            out,
            "{:<14} {:>10} -> {:<10} {:>5} {:>6} {:>12} {:>12} {:>12} {:>6} {:>6}  rationale",
            "class",
            "current",
            "suggested",
            "move?",
            "calls",
            "crossing µs",
            "exec µs",
            "saving µs",
            "frac",
            "conf"
        );
        for r in &self.recommendations {
            let _ = writeln!(
                out,
                "{:<14} {:>10} -> {:<10} {:>5} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>6.2} {:>6.2}  {}",
                r.class,
                r.current.annotation_name(),
                r.suggested.annotation_name(),
                r.verdict.label(),
                r.calls,
                r.crossing_overhead_ns as f64 / 1000.0,
                r.exec_ns as f64 / 1000.0,
                r.predicted_savings_ns as f64 / 1000.0,
                r.savings_frac,
                r.confidence,
                r.rationale
            );
        }
        let _ = writeln!(
            out,
            "total predicted saving of suggested moves: {:.1} µs (verify within ±{:.0}%)",
            self.total_predicted_savings_ns as f64 / 1000.0,
            self.tolerance * 100.0
        );
        out
    }

    /// Serialises the plan as versioned JSON (schema
    /// [`ADVICE_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.recommendations.len() * 256);
        out.push_str("{\n");
        out.push_str(&format!("\"schema\": \"{ADVICE_SCHEMA}\",\n"));
        out.push_str(&format!(
            "\"total_predicted_savings_ns\": {},\n\"rmi_spans\": {},\n",
            self.total_predicted_savings_ns, self.rmi_spans
        ));
        if let Some(calls) = self.rmi_calls {
            out.push_str(&format!("\"rmi_calls\": {calls},\n"));
        }
        out.push_str(&format!(
            "\"dropped\": {},\n\"tolerance\": {},\n\"recommendations\": [\n",
            self.dropped, self.tolerance
        ));
        for (i, r) in self.recommendations.iter().enumerate() {
            let comma = if i + 1 == self.recommendations.len() { "" } else { "," };
            out.push_str(&format!(
                "{{\"class\": \"{}\", \"current\": \"{}\", \"suggested\": \"{}\", \
                 \"verdict\": \"{}\", \"calls\": {}, \"crossing_overhead_ns\": {}, \
                 \"exec_ns\": {}, \"predicted_savings_ns\": {}, \"savings_frac\": {:.4}, \
                 \"confidence\": {:.4}, \"rationale\": \"{}\"}}{comma}\n",
                r.class,
                r.current.annotation_name(),
                r.suggested.annotation_name(),
                r.verdict.label(),
                r.calls,
                r.crossing_overhead_ns,
                r.exec_ns,
                r.predicted_savings_ns,
                r.savings_frac,
                r.confidence,
                r.rationale
            ));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Identifier of the JSON document written by [`AdvicePlan::to_json`]
/// and `montsalvat advise --json`. Same versioning contract as the
/// telemetry schema: field additions keep the version, renames bump it.
pub const ADVICE_SCHEMA: &str = "montsalvat.advice/v1";

// ---------------------------------------------------------------------------
// Trace extraction
// ---------------------------------------------------------------------------

/// One reconstructed span.
struct Span {
    cat: String,
    name: String,
    pid: u64,
    parent: u64,
    begin_ns: u64,
    end_ns: u64,
    children: Vec<usize>,
}

impl Span {
    fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// Per-crossing-region components, before pricing.
#[derive(Default, Clone, Copy)]
struct Region {
    classic: u64,
    switchless: u64,
    shim: u64,
    payload_bytes: u64,
    serde_ns: u64,
    queue_ns: u64,
    exec_ns: u64,
}

impl Region {
    /// The priced overhead `X` of this single crossing.
    fn overhead_ns(&self, params: &CostParams) -> f64 {
        let transition = params.transition_ns() as f64;
        self.classic as f64 * (transition + params.relay_overhead_ns as f64)
            + self.switchless as f64 * params.switchless_call_ns as f64
            + self.shim as f64 * transition
            + self.payload_bytes as f64 * params.copy_ns_per_byte
            + self.serde_ns as f64
            + self.queue_ns as f64
    }
}

fn payload_bytes(name: &str) -> u64 {
    name.rsplit_once("b=").and_then(|(_, n)| n.trim().parse().ok()).unwrap_or(0)
}

/// Computes per-class boundary costs from a parsed trace.
///
/// `params` prices the transition terms and the overhead of nested
/// crossings; the serde, queue and exec terms are read off the trace's
/// model-time spans directly.
pub fn extract_class_costs(trace: &ParsedTrace, params: &CostParams) -> Vec<ClassCosts> {
    // Reconstruct the span forest from begin/end events.
    let mut spans: Vec<Span> = Vec::new();
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    for ev in &trace.events {
        match ev.ph {
            'B' => {
                by_id.insert(ev.span, spans.len());
                spans.push(Span {
                    cat: ev.cat.clone(),
                    name: ev.name.clone(),
                    pid: ev.pid,
                    parent: ev.parent,
                    begin_ns: ev.model_ns,
                    end_ns: ev.model_ns,
                    children: Vec::new(),
                });
            }
            'E' => {
                if let Some(&i) = by_id.get(&ev.span) {
                    spans[i].end_ns = spans[i].end_ns.max(ev.model_ns);
                }
            }
            _ => {}
        }
    }
    for i in 0..spans.len() {
        let parent = spans[i].parent;
        if parent != 0 {
            if let Some(&p) = by_id.get(&parent) {
                spans[p].children.push(i);
            }
        }
    }

    // Walk each rmi span's region: the subtree up to (exclusive of)
    // nested rmi spans. Exclusive time strips child durations so the
    // wrapping "sgx"/"exec" spans don't double-count their contents.
    let exclusive = |i: usize| -> u64 {
        let kids: u64 = spans[i].children.iter().map(|&k| spans[k].dur_ns()).sum();
        spans[i].dur_ns().saturating_sub(kids)
    };
    let rmi_spans: Vec<usize> = (0..spans.len()).filter(|&i| spans[i].cat == "rmi").collect();
    let mut regions: HashMap<usize, (Region, Vec<usize>)> = HashMap::new();
    for &r in &rmi_spans {
        let mut region = Region::default();
        let mut nested = Vec::new();
        let mut stack = spans[r].children.clone();
        while let Some(i) = stack.pop() {
            match spans[i].cat.as_str() {
                "rmi" => {
                    nested.push(i);
                    continue; // the nested crossing owns its subtree
                }
                "serde" => {
                    region.serde_ns += spans[i].dur_ns();
                    region.payload_bytes += payload_bytes(&spans[i].name);
                }
                "queue" if !spans[i].name.starts_with("tune:") => {
                    region.queue_ns += spans[i].dur_ns();
                }
                "exec" | "gc" => region.exec_ns += exclusive(i),
                "sgx" => region.classic += 1,
                "shim" => region.shim += 1,
                _ => {}
            }
            stack.extend(spans[i].children.iter().copied());
        }
        if region.classic == 0 {
            region.switchless = 1;
        }
        regions.insert(r, (region, nested));
    }

    // Aggregate per class; the nested term prices first-level nested
    // crossings with the same params the caller will decide with.
    let mut by_class: BTreeMap<String, ClassCosts> = BTreeMap::new();
    for &r in &rmi_spans {
        let (region, nested) = &regions[&r];
        let class = spans[r].name.split('.').next().unwrap_or("").to_owned();
        if class.is_empty() {
            continue;
        }
        // The rmi span lives on the caller's lane; its target class
        // lives on the opposite side.
        let home = if spans[r].pid == telemetry::trace::Lane::Untrusted.pid() {
            Side::Trusted
        } else {
            Side::Untrusted
        };
        let nested_x: f64 = nested
            .iter()
            .filter_map(|n| regions.get(n))
            .map(|(reg, _)| reg.overhead_ns(params))
            .sum();
        let entry = by_class.entry(class.clone()).or_insert_with(|| ClassCosts {
            class,
            home,
            calls: 0,
            classic_crossings: 0,
            switchless_crossings: 0,
            shim_relays: 0,
            payload_bytes: 0,
            serde_ns: 0,
            queue_ns: 0,
            exec_ns: 0,
            nested_crossing_ns: 0,
        });
        entry.calls += 1;
        entry.classic_crossings += region.classic;
        entry.switchless_crossings += region.switchless;
        entry.shim_relays += region.shim;
        entry.payload_bytes += region.payload_bytes;
        entry.serde_ns += region.serde_ns;
        entry.queue_ns += region.queue_ns;
        entry.exec_ns += region.exec_ns;
        entry.nested_crossing_ns += nested_x.round() as u64;
    }
    by_class.into_values().collect()
}

/// Runs the advisor over a parsed trace without program metadata: the
/// current annotations are inferred from caller lanes, and suggestions
/// are plain side swaps (no `@Neutral` promotion).
pub fn advise(trace: &ParsedTrace, params: &CostParams, cfg: &AdvisorConfig) -> AdvicePlan {
    advise_inner(trace, params, cfg, &BTreeMap::new())
}

/// Runs the advisor with the program's pre-transform class definitions:
/// declared annotations are cross-checked, and stateless classes are
/// promoted to `@Neutral` suggestions. See [`advise`].
pub fn advise_with_classes(
    trace: &ParsedTrace,
    params: &CostParams,
    cfg: &AdvisorConfig,
    classes: &[ClassDef],
) -> AdvicePlan {
    advise_inner(trace, params, cfg, &class_meta(classes))
}

fn advise_inner(
    trace: &ParsedTrace,
    params: &CostParams,
    cfg: &AdvisorConfig,
    meta: &BTreeMap<String, ClassMeta>,
) -> AdvicePlan {
    let costs = extract_class_costs(trace, params);
    let mut recommendations: Vec<Recommendation> =
        costs.iter().map(|c| decide(c, params, cfg, meta.get(&c.class))).collect();
    recommendations.sort_by(|a, b| {
        let rank = |r: &Recommendation| match r.verdict {
            Verdict::Move => 0,
            Verdict::Hold => 1,
        };
        rank(a)
            .cmp(&rank(b))
            .then(b.predicted_savings_ns.cmp(&a.predicted_savings_ns))
            .then(a.class.cmp(&b.class))
    });
    let total_predicted_savings_ns = recommendations
        .iter()
        .filter(|r| r.verdict == Verdict::Move)
        .map(|r| r.predicted_savings_ns)
        .sum();
    AdvicePlan {
        recommendations,
        total_predicted_savings_ns,
        rmi_spans: costs.iter().map(|c| c.calls).sum(),
        rmi_calls: trace.other("rmi_calls"),
        dropped: trace.other("dropped").unwrap_or(0),
        tolerance: cfg.tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams::paper_defaults()
    }

    fn costs(class: &str, home: Side, calls: u64, exec_ns: u64) -> ClassCosts {
        ClassCosts {
            class: class.into(),
            home,
            calls,
            classic_crossings: calls,
            switchless_crossings: 0,
            shim_relays: 0,
            payload_bytes: 128 * calls,
            serde_ns: 1_000 * calls,
            queue_ns: 0,
            exec_ns,
            nested_crossing_ns: 0,
        }
    }

    /// The table the decision rule is specified by (docs/PARTITIONING.md).
    #[test]
    fn decision_rule_table() {
        let p = params();
        let cfg = AdvisorConfig::default();
        struct Case {
            name: &'static str,
            costs: ClassCosts,
            pinned: bool,
            verdict: Verdict,
            rationale: &'static str,
        }
        let cases = [
            Case {
                name: "clear win: crossing-dominated trusted class",
                costs: costs("Store", Side::Trusted, 64, 64 * 500),
                pinned: false,
                verdict: Verdict::Move,
                rationale: "crossing overhead outweighs the re-homed execution cost",
            },
            Case {
                name: "clear loss: compute-heavy untrusted class pulled into the enclave",
                costs: costs("Ledger", Side::Untrusted, 64, 64 * 500_000),
                pinned: false,
                verdict: Verdict::Hold,
                rationale:
                    "predicted loss: the move would slow in-world execution more than it saves",
            },
            Case {
                name: "insufficient samples",
                costs: costs("Config", Side::Trusted, 2, 0),
                pinned: false,
                verdict: Verdict::Hold,
                rationale: "insufficient samples",
            },
            Case {
                name: "pinned stays put regardless of savings",
                costs: costs("Keys", Side::Trusted, 64, 0),
                pinned: true,
                verdict: Verdict::Hold,
                rationale: "pinned: security placement overrides the cost model",
            },
        ];
        for case in cases {
            let mut cfg = cfg.clone();
            if case.pinned {
                cfg.pinned.insert(case.costs.class.clone());
            }
            let rec = decide(&case.costs, &p, &cfg, None);
            assert_eq!(rec.verdict, case.verdict, "{}", case.name);
            assert_eq!(rec.rationale, case.rationale, "{}", case.name);
        }
    }

    #[test]
    fn savings_threshold_holds_marginal_moves() {
        let p = params();
        let cfg = AdvisorConfig { min_savings_frac: 0.5, ..Default::default() };
        // Compute-heavy trusted class: moving out still saves (W/1.8),
        // but the fraction is far below 50%.
        let c = costs("Engine", Side::Trusted, 64, 64 * 10_000_000);
        let rec = decide(&c, &p, &cfg, None);
        assert_eq!(rec.verdict, Verdict::Hold);
        assert_eq!(rec.rationale, "below savings threshold");
        assert!(rec.predicted_savings_ns > 0, "savings are positive, just relatively small");
    }

    #[test]
    fn stateless_classes_are_promoted_to_neutral() {
        let p = params();
        let cfg = AdvisorConfig::default();
        let c = costs("Fmt", Side::Trusted, 64, 0);
        let meta = ClassMeta { declared: Trust::Trusted, stateless: true };
        let rec = decide(&c, &p, &cfg, Some(&meta));
        assert_eq!(rec.verdict, Verdict::Move);
        assert_eq!(rec.suggested, Trust::Neutral);
        let stateful = ClassMeta { declared: Trust::Trusted, stateless: false };
        let rec = decide(&c, &p, &cfg, Some(&stateful));
        assert_eq!(rec.suggested, Trust::Untrusted);
    }

    #[test]
    fn nested_crossings_count_toward_the_move() {
        let p = params();
        let cfg = AdvisorConfig::default();
        let mut c = costs("Gateway", Side::Trusted, 64, 0);
        let without = decide(&c, &p, &cfg, None).predicted_savings_ns;
        c.nested_crossing_ns = 64 * 44_000;
        let with = decide(&c, &p, &cfg, None).predicted_savings_ns;
        assert_eq!(with - without, 64 * 44_000);
    }

    #[test]
    fn extraction_attributes_regions_and_nested_crossings() {
        use telemetry::trace::{parse_chrome_trace, Lane, Tracer};
        let tracer = Tracer::new();
        tracer.enable_with_capacity(256);
        // Untrusted main calls trusted Gateway; Gateway's serve calls
        // untrusted Ledger (a nested crossing back out).
        let call = tracer
            .start(Lane::Untrusted, "rmi", None, 0, || "Gateway.relay$handle".into())
            .unwrap();
        let ctx = call.context();
        tracer.span_at(Lane::Untrusted, "serde", Some(ctx), 0, 2_000, 0, || {
            "marshal:fast b=64".into()
        });
        let ecall =
            tracer.start(Lane::Trusted, "sgx", Some(ctx), 2_000, || "ecall:relay".into()).unwrap();
        let serve = tracer
            .start(Lane::Trusted, "exec", Some(ecall.context()), 3_000, || {
                "serve:Gateway.relay$handle".into()
            })
            .unwrap();
        let nested = tracer
            .start(Lane::Trusted, "rmi", Some(serve.context()), 4_000, || {
                "Ledger.relay$record".into()
            })
            .unwrap();
        tracer.span_at(Lane::Trusted, "serde", Some(nested.context()), 4_000, 4_500, 0, || {
            "marshal:fast b=32".into()
        });
        let ocall = tracer
            .start(Lane::Untrusted, "sgx", Some(nested.context()), 4_500, || "ocall:relay".into())
            .unwrap();
        tracer.span_at(Lane::Untrusted, "exec", Some(ocall.context()), 5_000, 9_000, 0, || {
            "serve:Ledger.relay$record".into()
        });
        tracer.finish(ocall, 9_500);
        tracer.finish(nested, 10_000);
        tracer.finish(serve, 12_000);
        tracer.finish(ecall, 12_500);
        tracer.finish(call, 13_000);

        let trace = parse_chrome_trace(&tracer.to_chrome_json(&[])).unwrap();
        let p = params();
        let costs = extract_class_costs(&trace, &p);
        let gateway = costs.iter().find(|c| c.class == "Gateway").unwrap();
        let ledger = costs.iter().find(|c| c.class == "Ledger").unwrap();

        assert_eq!(gateway.home, Side::Trusted);
        assert_eq!(ledger.home, Side::Untrusted);
        assert_eq!((gateway.calls, ledger.calls), (1, 1));
        assert_eq!(gateway.payload_bytes, 64);
        assert_eq!(ledger.payload_bytes, 32);
        assert_eq!(gateway.serde_ns, 2_000);
        // Gateway's exec time excludes the nested Ledger crossing
        // (serve 3000..12000 minus the 4000..10000 nested rmi span).
        assert_eq!(gateway.exec_ns, 3_000);
        // Ledger's work is its own, not Gateway's.
        assert_eq!(ledger.exec_ns, 4_000);
        // Gateway's nested term prices Ledger's crossing overhead.
        let ledger_region_x = ledger.crossing_overhead_ns(&p);
        assert_eq!(gateway.nested_crossing_ns, ledger_region_x.round() as u64);
        assert!(gateway.classic_crossings == 1 && ledger.classic_crossings == 1);
    }

    #[test]
    fn plan_ranks_moves_first_and_sums_their_savings() {
        use telemetry::trace::{parse_chrome_trace, Lane, Tracer};
        let tracer = Tracer::new();
        tracer.enable_with_capacity(4096);
        for i in 0..16u64 {
            let t0 = i * 1_000_000;
            let call = tracer
                .start(Lane::Untrusted, "rmi", None, t0, || "Store.relay$put".into())
                .unwrap();
            let ecall = tracer
                .start(Lane::Trusted, "sgx", Some(call.context()), t0, || "ecall:relay".into())
                .unwrap();
            tracer.finish(ecall, t0 + 1_000);
            tracer.finish(call, t0 + 2_000);
            // A two-sample class rides along.
            if i < 2 {
                let c2 = tracer
                    .start(Lane::Untrusted, "rmi", None, t0 + 10_000, || "Config.relay$get".into())
                    .unwrap();
                tracer.finish(c2, t0 + 11_000);
            }
        }
        let trace = parse_chrome_trace(&tracer.to_chrome_json(&[])).unwrap();
        let plan = advise(&trace, &params(), &AdvisorConfig::default());
        assert_eq!(plan.recommendations.len(), 2);
        assert_eq!(plan.recommendations[0].class, "Store");
        assert_eq!(plan.recommendations[0].verdict, Verdict::Move);
        assert_eq!(plan.recommendations[1].verdict, Verdict::Hold);
        assert_eq!(plan.total_predicted_savings_ns, plan.recommendations[0].predicted_savings_ns);
        assert_eq!(plan.moves().count(), 1);
        let json = plan.to_json();
        assert!(json.contains(ADVICE_SCHEMA));
        assert!(json.contains("\"class\": \"Store\""));
        let table = plan.render_table();
        assert!(table.contains("Store") && table.contains("move"));
    }
}
