//! The bytecode transformer (§5.2).
//!
//! For every annotated class the transformer produces, exactly as the
//! paper's Javassist pass does:
//!
//! - a **proxy class** for the opposite runtime: same method names, all
//!   bodies stripped and replaced by transitions to the corresponding
//!   relay routine (Listings 2 and 3); proxy fields are removed and a
//!   single `__hash` field added;
//! - **relay methods** injected into the concrete class: static
//!   `@CEntryPoint`-style wrappers that look up the mirror in the
//!   mirror-proxy registry and forward the call (Listing 4), with
//!   constructor relays instead instantiating and registering the
//!   mirror.
//!
//! Neutral classes are not modified. The transformer also emits the EDL
//! interface declaring one edge routine per relay (§5.3, "SGX code
//! generator").

use sgx_sim::edl::{Direction, EdlFn, EdlParam, EdlSpec, EdlType};

use crate::annotation::Trust;
use crate::class::{ClassDef, ClassRole, MethodBody, MethodDef, MethodKind, MethodRef, Program};

/// Field name that carries the proxy hash in generated proxy classes.
pub const PROXY_HASH_FIELD: &str = "__hash";

/// Name of the relay method generated for `method`.
pub fn relay_name(method: &str) -> String {
    format!("relay${method}")
}

/// Whether `method` is a generated relay method.
pub fn is_relay_name(method: &str) -> bool {
    method.starts_with("relay$")
}

/// Name of the edge routine (ecall/ocall) generated for a relay.
pub fn edge_routine_name(trust: Trust, class: &str, method: &str) -> String {
    let prefix = match trust {
        Trust::Trusted => "ecall",
        Trust::Untrusted => "ocall",
        Trust::Neutral => "local",
    };
    let sanitized: String =
        method.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
    format!("{prefix}_relay_{class}_{sanitized}")
}

/// Output of the bytecode transformer: the three class sets consumed by
/// native-image generation (§5.3) plus the generated EDL interface.
#[derive(Debug, Clone)]
pub struct TransformedProgram {
    /// Set *T*: modified trusted classes (with relays) and proxies for
    /// untrusted classes.
    pub trusted_set: Vec<ClassDef>,
    /// Set *U*: modified untrusted classes (with relays) and proxies for
    /// trusted classes.
    pub untrusted_set: Vec<ClassDef>,
    /// Set *N*: unmodified neutral classes.
    pub neutral_set: Vec<ClassDef>,
    /// The application's main entry point.
    pub main: MethodRef,
    /// Generated enclave interface.
    pub edl: EdlSpec,
}

impl TransformedProgram {
    /// All relay methods of annotated classes with `trust`, as
    /// `MethodRef`s (these become image entry points).
    pub fn relay_entry_points(&self, trust: Trust) -> Vec<MethodRef> {
        let set = match trust {
            Trust::Trusted => &self.trusted_set,
            Trust::Untrusted => &self.untrusted_set,
            Trust::Neutral => return Vec::new(),
        };
        let mut entries = Vec::new();
        for class in set {
            if class.role == ClassRole::Concrete && class.trust == trust {
                for m in &class.methods {
                    if is_relay_name(&m.name) {
                        entries.push(MethodRef::new(class.name.clone(), m.name.clone()));
                    }
                }
            }
        }
        entries
    }
}

/// Runs the transformer over a validated program.
pub fn transform(program: &Program) -> TransformedProgram {
    let mut trusted_set = Vec::new();
    let mut untrusted_set = Vec::new();
    let mut neutral_set = Vec::new();
    let mut edl = EdlSpec::new("montsalvat_enclave");

    for class in &program.classes {
        match class.trust {
            Trust::Neutral => neutral_set.push(class.clone()),
            Trust::Trusted => {
                let concrete = with_relays(class);
                let proxy = make_proxy(class);
                declare_edges(&mut edl, class, Direction::Ecall);
                trusted_set.push(concrete);
                untrusted_set.push(proxy);
            }
            Trust::Untrusted => {
                let concrete = with_relays(class);
                let proxy = make_proxy(class);
                declare_edges(&mut edl, class, Direction::Ocall);
                untrusted_set.push(concrete);
                trusted_set.push(proxy);
            }
        }
    }

    TransformedProgram { trusted_set, untrusted_set, neutral_set, main: program.main.clone(), edl }
}

/// Clones `class` and injects one relay method per original method.
fn with_relays(class: &ClassDef) -> ClassDef {
    let mut out = class.clone();
    for method in &class.methods {
        let is_ctor = method.kind == MethodKind::Constructor;
        out.methods.push(MethodDef {
            name: relay_name(&method.name),
            kind: MethodKind::Static,
            // Relays receive the proxy hash plus the original arguments;
            // the hash travels out of band in this model, so the count
            // matches the original method.
            param_count: method.param_count,
            locals: method.param_count,
            body: MethodBody::Relay { target: method.name.clone(), is_ctor },
            // The relay makes its target reachable (Fig. 2).
            declared_calls: vec![MethodRef::new(class.name.clone(), method.name.clone())],
        });
    }
    out
}

/// Builds the proxy class: fields replaced by `__hash`, methods stripped
/// to transitions.
fn make_proxy(class: &ClassDef) -> ClassDef {
    ClassDef {
        name: class.name.clone(),
        trust: class.trust,
        role: ClassRole::Proxy,
        fields: vec![PROXY_HASH_FIELD.to_owned()],
        methods: class
            .methods
            .iter()
            .map(|m| MethodDef {
                name: m.name.clone(),
                kind: m.kind,
                param_count: m.param_count,
                locals: m.param_count,
                body: MethodBody::ProxyCall { relay: relay_name(&m.name) },
                declared_calls: Vec::new(),
            })
            .collect(),
    }
}

/// Declares one edge routine per method of `class` in the EDL.
fn declare_edges(edl: &mut EdlSpec, class: &ClassDef, direction: Direction) {
    for method in &class.methods {
        edl.push(EdlFn {
            name: edge_routine_name(class.trust, &class.name, &method.name),
            ret: EdlType::Buffer { size_param: "ret_len".into() },
            params: vec![
                EdlParam::new("hash", EdlType::Long),
                EdlParam::new("args", EdlType::Buffer { size_param: "args_len".into() }),
                EdlParam::new("args_len", EdlType::Size),
                EdlParam::new("ret_len", EdlType::Size),
            ],
            direction,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{Instr, CTOR};
    use crate::samples::bank_program;

    #[test]
    fn annotated_classes_split_into_both_sets() {
        let tp = transform(&bank_program());
        let names = |set: &[ClassDef]| {
            let mut v: Vec<(String, ClassRole)> =
                set.iter().map(|c| (c.name.clone(), c.role)).collect();
            v.sort();
            v
        };
        // Trusted set: concrete Account + AccountRegistry, proxy Person + Main.
        assert_eq!(
            names(&tp.trusted_set),
            vec![
                ("Account".into(), ClassRole::Concrete),
                ("AccountRegistry".into(), ClassRole::Concrete),
                ("Main".into(), ClassRole::Proxy),
                ("Person".into(), ClassRole::Proxy),
            ]
        );
        assert_eq!(
            names(&tp.untrusted_set),
            vec![
                ("Account".into(), ClassRole::Proxy),
                ("AccountRegistry".into(), ClassRole::Proxy),
                ("Main".into(), ClassRole::Concrete),
                ("Person".into(), ClassRole::Concrete),
            ]
        );
    }

    #[test]
    fn proxies_are_stripped_to_hash_and_transitions() {
        let tp = transform(&bank_program());
        let proxy_account = tp
            .untrusted_set
            .iter()
            .find(|c| c.name == "Account" && c.role == ClassRole::Proxy)
            .unwrap();
        assert_eq!(proxy_account.fields, vec![PROXY_HASH_FIELD.to_owned()]);
        for m in &proxy_account.methods {
            match &m.body {
                MethodBody::ProxyCall { relay } => assert!(is_relay_name(relay)),
                other => panic!("proxy method must be a transition, got {other:?}"),
            }
        }
        // Same public methods as the original.
        assert!(proxy_account.find_method(CTOR).is_some());
        assert!(proxy_account.find_method("updateBalance").is_some());
    }

    #[test]
    fn relays_are_static_and_target_their_method() {
        let tp = transform(&bank_program());
        let account = tp
            .trusted_set
            .iter()
            .find(|c| c.name == "Account" && c.role == ClassRole::Concrete)
            .unwrap();
        let relay = account.find_method(&relay_name("updateBalance")).unwrap();
        assert_eq!(relay.kind, MethodKind::Static);
        match &relay.body {
            MethodBody::Relay { target, is_ctor } => {
                assert_eq!(target, "updateBalance");
                assert!(!is_ctor);
            }
            other => panic!("expected relay body, got {other:?}"),
        }
        let ctor_relay = account.find_method(&relay_name(CTOR)).unwrap();
        assert!(matches!(&ctor_relay.body, MethodBody::Relay { is_ctor: true, .. }));
        // Relay edge makes the target reachable.
        assert_eq!(relay.declared_calls, vec![MethodRef::new("Account", "updateBalance")]);
    }

    #[test]
    fn neutral_classes_are_untouched() {
        let tp = transform(&bank_program());
        assert_eq!(tp.neutral_set.len(), 1);
        let util = &tp.neutral_set[0];
        assert_eq!(util.name, "StringUtil");
        assert!(util.methods.iter().all(|m| !is_relay_name(&m.name)));
    }

    #[test]
    fn edl_declares_one_routine_per_annotated_method() {
        let program = bank_program();
        let tp = transform(&program);
        let annotated_methods: usize = program
            .classes
            .iter()
            .filter(|c| c.trust.is_annotated())
            .map(|c| c.methods.len())
            .sum();
        assert_eq!(tp.edl.trusted.len() + tp.edl.untrusted.len(), annotated_methods);
        assert!(tp.edl.contains(&edge_routine_name(Trust::Trusted, "Account", "updateBalance")));
        assert!(tp.edl.contains(&edge_routine_name(Trust::Untrusted, "Person", "getAccount")));
    }

    #[test]
    fn relay_entry_points_cover_all_relays() {
        let tp = transform(&bank_program());
        let trusted_entries = tp.relay_entry_points(Trust::Trusted);
        // Account has 3 methods, AccountRegistry has 3 -> 6 relays.
        assert_eq!(trusted_entries.len(), 6);
        assert!(trusted_entries
            .iter()
            .all(|e| is_relay_name(&e.method)
                && (e.class == "Account" || e.class == "AccountRegistry")));
    }

    #[test]
    fn transform_is_idempotent_on_instruction_bodies() {
        // Transforming must not alter original method bodies.
        let program = bank_program();
        let tp = transform(&program);
        let orig = program.class("Person").unwrap().find_method("transfer").unwrap();
        let kept = tp
            .untrusted_set
            .iter()
            .find(|c| c.name == "Person" && c.role == ClassRole::Concrete)
            .unwrap()
            .find_method("transfer")
            .unwrap();
        match (&orig.body, &kept.body) {
            (MethodBody::Instrs(a), MethodBody::Instrs(b)) => assert_eq!(a, b),
            _ => panic!("expected instruction bodies"),
        }
        let _ = Instr::Return { value: None }; // keep Instr import exercised
    }
}
