//! Sample programs, including the paper's illustrative bank example.
//!
//! [`bank_program`] reproduces Listing 1 of the paper: trusted classes
//! `Account` and `AccountRegistry`, untrusted classes `Person` and
//! `Main`, and a neutral `StringUtil`. It is used throughout the test
//! suite, the documentation and the examples.

use runtime_sim::value::Value;

use crate::annotation::Trust;
use crate::class::{
    BinOp, ClassDef, Instr, MethodDef, MethodKind, MethodRef, Operand, Program, CTOR,
};

/// Builds the paper's Listing-1 bank application.
///
/// Class layout:
///
/// - `@Trusted Account { owner, balance; <init>(owner, balance);
///   updateBalance(v); balance() }`
/// - `@Trusted AccountRegistry { reg; <init>(); addAccount(a); size() }`
/// - `@Untrusted Person { name, account; <init>(name, amount);
///   getAccount(); transfer(other, amount) }`
/// - `@Untrusted Main { static main() }`
/// - neutral `StringUtil { static greet(name) }`
pub fn bank_program() -> Program {
    let account = ClassDef::new("Account")
        .trust(Trust::Trusted)
        .field("owner")
        .field("balance")
        .method(MethodDef::interpreted(
            CTOR,
            MethodKind::Constructor,
            2,
            2,
            vec![
                Instr::SetField {
                    recv: Operand::This,
                    field: "owner".into(),
                    value: Operand::Local(0),
                },
                Instr::SetField {
                    recv: Operand::This,
                    field: "balance".into(),
                    value: Operand::Local(1),
                },
                Instr::Return { value: None },
            ],
        ))
        .method(MethodDef::interpreted(
            "updateBalance",
            MethodKind::Instance,
            1,
            2,
            vec![
                Instr::GetField { dst: 1, recv: Operand::This, field: "balance".into() },
                Instr::BinOp { dst: 1, op: BinOp::Add, a: Operand::Local(1), b: Operand::Local(0) },
                Instr::SetField {
                    recv: Operand::This,
                    field: "balance".into(),
                    value: Operand::Local(1),
                },
                Instr::Return { value: None },
            ],
        ))
        .method(MethodDef::interpreted(
            "balance",
            MethodKind::Instance,
            0,
            1,
            vec![
                Instr::GetField { dst: 0, recv: Operand::This, field: "balance".into() },
                Instr::Return { value: Some(Operand::Local(0)) },
            ],
        ));

    let registry = ClassDef::new("AccountRegistry")
        .trust(Trust::Trusted)
        .field("reg")
        .method(MethodDef::interpreted(
            CTOR,
            MethodKind::Constructor,
            0,
            0,
            vec![
                Instr::SetField {
                    recv: Operand::This,
                    field: "reg".into(),
                    value: Operand::Const(Value::List(Vec::new())),
                },
                Instr::Return { value: None },
            ],
        ))
        .method(MethodDef::interpreted(
            "addAccount",
            MethodKind::Instance,
            1,
            1,
            vec![
                Instr::ListPush {
                    recv: Operand::This,
                    field: "reg".into(),
                    value: Operand::Local(0),
                },
                Instr::Return { value: None },
            ],
        ))
        .method(MethodDef::interpreted(
            "size",
            MethodKind::Instance,
            0,
            1,
            vec![
                Instr::ListLen { dst: 0, recv: Operand::This, field: "reg".into() },
                Instr::Return { value: Some(Operand::Local(0)) },
            ],
        ));

    let person = ClassDef::new("Person")
        .trust(Trust::Untrusted)
        .field("name")
        .field("account")
        .method(MethodDef::interpreted(
            CTOR,
            MethodKind::Constructor,
            2,
            3,
            vec![
                Instr::SetField {
                    recv: Operand::This,
                    field: "name".into(),
                    value: Operand::Local(0),
                },
                Instr::New {
                    dst: 2,
                    class: "Account".into(),
                    args: vec![Operand::Local(0), Operand::Local(1)],
                },
                Instr::SetField {
                    recv: Operand::This,
                    field: "account".into(),
                    value: Operand::Local(2),
                },
                Instr::Return { value: None },
            ],
        ))
        .method(MethodDef::interpreted(
            "getAccount",
            MethodKind::Instance,
            0,
            1,
            vec![
                Instr::GetField { dst: 0, recv: Operand::This, field: "account".into() },
                Instr::Return { value: Some(Operand::Local(0)) },
            ],
        ))
        .method(MethodDef::interpreted(
            "transfer",
            MethodKind::Instance,
            2,
            5,
            vec![
                // p.getAccount().updateBalance(v)
                Instr::Call {
                    dst: Some(2),
                    class: "Person".into(),
                    recv: Operand::Local(0),
                    method: "getAccount".into(),
                    args: vec![],
                },
                Instr::Call {
                    dst: None,
                    class: "Account".into(),
                    recv: Operand::Local(2),
                    method: "updateBalance".into(),
                    args: vec![Operand::Local(1)],
                },
                // this.account.updateBalance(-v)
                Instr::GetField { dst: 3, recv: Operand::This, field: "account".into() },
                Instr::BinOp {
                    dst: 4,
                    op: BinOp::Sub,
                    a: Operand::Const(Value::Int(0)),
                    b: Operand::Local(1),
                },
                Instr::Call {
                    dst: None,
                    class: "Account".into(),
                    recv: Operand::Local(3),
                    method: "updateBalance".into(),
                    args: vec![Operand::Local(4)],
                },
                Instr::Return { value: None },
            ],
        ));

    let main = ClassDef::new("Main").trust(Trust::Untrusted).method(MethodDef::interpreted(
        "main",
        MethodKind::Static,
        0,
        4,
        vec![
            Instr::New {
                dst: 0,
                class: "Person".into(),
                args: vec![Operand::Const(Value::from("Alice")), Operand::Const(Value::Int(100))],
            },
            Instr::New {
                dst: 1,
                class: "Person".into(),
                args: vec![Operand::Const(Value::from("Bob")), Operand::Const(Value::Int(25))],
            },
            Instr::Call {
                dst: None,
                class: "Person".into(),
                recv: Operand::Local(0),
                method: "transfer".into(),
                args: vec![Operand::Local(1), Operand::Const(Value::Int(25))],
            },
            Instr::New { dst: 2, class: "AccountRegistry".into(), args: vec![] },
            Instr::Call {
                dst: Some(3),
                class: "Person".into(),
                recv: Operand::Local(0),
                method: "getAccount".into(),
                args: vec![],
            },
            Instr::Call {
                dst: None,
                class: "AccountRegistry".into(),
                recv: Operand::Local(2),
                method: "addAccount".into(),
                args: vec![Operand::Local(3)],
            },
            Instr::Return { value: None },
        ],
    ));

    let string_util = ClassDef::new("StringUtil").method(MethodDef::interpreted(
        "greet",
        MethodKind::Static,
        1,
        2,
        vec![
            Instr::BinOp {
                dst: 1,
                op: BinOp::Add,
                a: Operand::Const(Value::from("hello ")),
                b: Operand::Local(0),
            },
            Instr::Return { value: Some(Operand::Local(1)) },
        ],
    ));

    Program::new(vec![account, registry, person, main, string_util], MethodRef::new("Main", "main"))
        .expect("bank program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Side;

    #[test]
    fn bank_program_validates() {
        let p = bank_program();
        assert_eq!(p.classes.len(), 5);
        assert_eq!(p.main, MethodRef::new("Main", "main"));
    }

    #[test]
    fn trust_annotations_match_listing_1() {
        let p = bank_program();
        assert!(p.class("Account").unwrap().home_is(Side::Trusted));
        assert!(p.class("AccountRegistry").unwrap().home_is(Side::Trusted));
        assert!(p.class("Person").unwrap().home_is(Side::Untrusted));
        assert!(p.class("Main").unwrap().home_is(Side::Untrusted));
        assert_eq!(p.class("StringUtil").unwrap().trust, Trust::Neutral);
    }
}
