//! The class and method model ("bytecode" of the reproduction).
//!
//! Montsalvat operates on compiled Java classes. Here an application is
//! a [`Program`] of [`ClassDef`]s, each holding fields and
//! [`MethodDef`]s. Method bodies come in two forms:
//!
//! - [`MethodBody::Instrs`] — a small typed instruction list the
//!   interpreter executes (used by the paper's synthetic programs and
//!   the illustrative bank example), from which call edges are derived
//!   automatically for reachability analysis;
//! - [`MethodBody::Native`] — a Rust closure with an explicit declared
//!   call-edge list (used by the realistic workloads, where writing the
//!   logic as instructions would be artificial).
//!
//! The transformer (§5.2) rewrites these definitions; the two extra body
//! forms [`MethodBody::ProxyCall`] and [`MethodBody::Relay`] exist only
//! in transformer output, mirroring the stripped proxy methods and the
//! injected `@CEntryPoint` relay methods of the paper.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use runtime_sim::value::Value;

use crate::annotation::{Side, Trust};
use crate::error::BuildError;

/// A `(class, method)` pair used for entry points and call edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodRef {
    /// Receiver/owning class name.
    pub class: String,
    /// Method name.
    pub method: String,
}

impl MethodRef {
    /// Convenience constructor.
    pub fn new(class: impl Into<String>, method: impl Into<String>) -> Self {
        MethodRef { class: class.into(), method: method.into() }
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.method)
    }
}

/// Kind of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Constructor (named `<init>` by convention in this model).
    Constructor,
    /// Instance method (receives `this`).
    Instance,
    /// Static method.
    Static,
}

/// An operand of an interpreted instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A local register (parameters occupy the first registers).
    Local(u16),
    /// An inline constant.
    Const(Value),
    /// The receiver object.
    This,
}

/// Arithmetic operators for [`Instr::BinOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer or float depending on operands).
    Div,
}

/// One interpreted instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: u16,
        /// Constant to load.
        value: Value,
    },
    /// `dst = new class(args...)`
    New {
        /// Destination register.
        dst: u16,
        /// Class to instantiate.
        class: String,
        /// Constructor arguments.
        args: Vec<Operand>,
    },
    /// `dst = recv.method(args...)` — `class` is the static receiver
    /// type (as in `invokevirtual`), used by reachability analysis.
    Call {
        /// Destination register (`None` discards the result).
        dst: Option<u16>,
        /// Static receiver class.
        class: String,
        /// Receiver operand.
        recv: Operand,
        /// Invoked method name.
        method: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = class.method(args...)` (static dispatch).
    CallStatic {
        /// Destination register (`None` discards the result).
        dst: Option<u16>,
        /// Owning class.
        class: String,
        /// Invoked method name.
        method: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = recv.field`
    GetField {
        /// Destination register.
        dst: u16,
        /// Receiver operand.
        recv: Operand,
        /// Field name.
        field: String,
    },
    /// `recv.field = value`
    SetField {
        /// Receiver operand.
        recv: Operand,
        /// Field name.
        field: String,
        /// Value operand.
        value: Operand,
    },
    /// `dst = a op b`
    BinOp {
        /// Destination register.
        dst: u16,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Appends `value` to the list stored in `recv.field`.
    ListPush {
        /// Receiver operand.
        recv: Operand,
        /// List-valued field name.
        field: String,
        /// Appended operand.
        value: Operand,
    },
    /// `dst = recv.field.len()` for a list-valued field.
    ListLen {
        /// Destination register.
        dst: u16,
        /// Receiver operand.
        recv: Operand,
        /// List-valued field name.
        field: String,
    },
    /// Run a CPU kernel over `working_set_bytes` of data for `passes`
    /// passes (models e.g. "an FFT on a 1 MB double array", §6.5).
    Compute {
        /// Working-set size in bytes.
        working_set_bytes: usize,
        /// Number of passes over the working set.
        passes: u32,
    },
    /// Write `bytes` of data to this runtime's scratch file (models
    /// "writes 4 KB of data to a file", §6.5).
    IoWrite {
        /// Bytes to write.
        bytes: usize,
    },
    /// Return from the method.
    Return {
        /// Returned operand (`None` returns unit).
        value: Option<Operand>,
    },
}

/// Execution context handed to native method bodies; defined in
/// [`crate::exec::ctx`].
pub use crate::exec::ctx::Ctx;

/// Signature of a native method body.
///
/// Receives the execution context, the receiver (for instance methods),
/// and the argument values; returns the method result.
pub type NativeFn = Arc<
    dyn for<'a> Fn(
            &mut Ctx<'a>,
            Option<runtime_sim::value::ObjId>,
            &[Value],
        ) -> Result<Value, crate::error::VmError>
        + Send
        + Sync,
>;

/// A method body.
#[derive(Clone)]
pub enum MethodBody {
    /// Interpreted instruction list.
    Instrs(Vec<Instr>),
    /// Native Rust closure.
    Native(NativeFn),
    /// Transformer output: a stripped proxy method that crosses the
    /// boundary to the named relay (Listing 2/3 of the paper).
    ProxyCall {
        /// Name of the relay routine invoked in the opposite runtime.
        relay: String,
    },
    /// Transformer output: a static `@CEntryPoint` relay wrapper that
    /// looks up the mirror and invokes the target method (Listing 4).
    Relay {
        /// The concrete method this relay forwards to.
        target: String,
        /// Whether the target is a constructor (relay then instantiates
        /// the mirror and registers it).
        is_ctor: bool,
    },
}

impl fmt::Debug for MethodBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodBody::Instrs(is) => f.debug_tuple("Instrs").field(&is.len()).finish(),
            MethodBody::Native(_) => f.write_str("Native(..)"),
            MethodBody::ProxyCall { relay } => {
                f.debug_struct("ProxyCall").field("relay", relay).finish()
            }
            MethodBody::Relay { target, is_ctor } => {
                f.debug_struct("Relay").field("target", target).field("is_ctor", is_ctor).finish()
            }
        }
    }
}

/// A method definition.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// Method name (constructors use `<init>`).
    pub name: String,
    /// Kind (constructor / instance / static).
    pub kind: MethodKind,
    /// Parameter count.
    pub param_count: usize,
    /// Number of local registers (must be ≥ `param_count`; parameters
    /// occupy the first registers).
    pub locals: usize,
    /// The body.
    pub body: MethodBody,
    /// Declared call edges for native bodies (derived automatically for
    /// interpreted bodies).
    pub declared_calls: Vec<MethodRef>,
}

/// Name constructors use in this model (Java's `<init>`).
pub const CTOR: &str = "<init>";

impl MethodDef {
    /// Creates an interpreted method.
    pub fn interpreted(
        name: impl Into<String>,
        kind: MethodKind,
        param_count: usize,
        locals: usize,
        instrs: Vec<Instr>,
    ) -> Self {
        MethodDef {
            name: name.into(),
            kind,
            param_count,
            locals: locals.max(param_count),
            body: MethodBody::Instrs(instrs),
            declared_calls: Vec::new(),
        }
    }

    /// Creates a native method with explicit call edges.
    pub fn native(
        name: impl Into<String>,
        kind: MethodKind,
        param_count: usize,
        calls: Vec<MethodRef>,
        body: NativeFn,
    ) -> Self {
        MethodDef {
            name: name.into(),
            kind,
            param_count,
            locals: param_count,
            body: MethodBody::Native(body),
            declared_calls: calls,
        }
    }

    /// All call edges of this method: declared ones plus those derived
    /// from its instruction body.
    pub fn call_edges(&self) -> Vec<MethodRef> {
        let mut edges = self.declared_calls.clone();
        if let MethodBody::Instrs(instrs) = &self.body {
            for instr in instrs {
                match instr {
                    Instr::New { class, .. } => edges.push(MethodRef::new(class.clone(), CTOR)),
                    Instr::Call { class, method, .. } | Instr::CallStatic { class, method, .. } => {
                        edges.push(MethodRef::new(class.clone(), method.clone()));
                    }
                    _ => {}
                }
            }
        }
        edges
    }
}

/// Role of a class definition in a (possibly transformed) class set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ClassRole {
    /// An application class as written.
    #[default]
    Concrete,
    /// A transformer-generated proxy standing in for a concrete class
    /// that lives in the opposite runtime.
    Proxy,
}

/// A class definition.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Class name (unique within a program).
    pub name: String,
    /// Trust annotation.
    pub trust: Trust,
    /// Role (concrete or generated proxy).
    pub role: ClassRole,
    /// Field names, in slot order. All fields are private (the paper's
    /// encapsulation assumption, §5.1); access goes through methods.
    pub fields: Vec<String>,
    /// Methods.
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// Creates a neutral, concrete class with no members.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            trust: Trust::Neutral,
            role: ClassRole::Concrete,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Sets the trust annotation (builder style).
    pub fn trust(mut self, trust: Trust) -> Self {
        self.trust = trust;
        self
    }

    /// Adds a field (builder style).
    pub fn field(mut self, name: impl Into<String>) -> Self {
        self.fields.push(name.into());
        self
    }

    /// Adds a method (builder style).
    pub fn method(mut self, method: MethodDef) -> Self {
        self.methods.push(method);
        self
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// Looks up a method by name.
    pub fn find_method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Whether instances of this class belong in `side`'s runtime.
    pub fn home_is(&self, side: Side) -> bool {
        self.trust.home_side() == Some(side)
    }
}

/// A complete application: classes plus the `main` entry point.
#[derive(Debug, Clone)]
pub struct Program {
    /// All application classes.
    pub classes: Vec<ClassDef>,
    /// The main entry point (must be a static method of an untrusted or
    /// neutral class; §5.3 places `main` in the untrusted image).
    pub main: MethodRef,
}

impl Program {
    /// Creates a program and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for duplicate classes/methods, dangling
    /// call edges, or a missing `main`.
    pub fn new(classes: Vec<ClassDef>, main: MethodRef) -> Result<Self, BuildError> {
        let program = Program { classes, main };
        program.validate()?;
        Ok(program)
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    fn validate(&self) -> Result<(), BuildError> {
        let mut names: HashMap<&str, &ClassDef> = HashMap::new();
        for class in &self.classes {
            if names.insert(class.name.as_str(), class).is_some() {
                return Err(BuildError::DuplicateClass(class.name.clone()));
            }
            let mut method_names = std::collections::HashSet::new();
            for m in &class.methods {
                if !method_names.insert(m.name.as_str()) {
                    return Err(BuildError::DuplicateMethod {
                        class: class.name.clone(),
                        method: m.name.clone(),
                    });
                }
            }
        }
        // Call edges must resolve.
        for class in &self.classes {
            for method in &class.methods {
                for edge in method.call_edges() {
                    let target = names
                        .get(edge.class.as_str())
                        .ok_or_else(|| BuildError::UnknownClass(edge.class.clone()))?;
                    if target.find_method(&edge.method).is_none() {
                        return Err(BuildError::UnknownMethod {
                            class: edge.class.clone(),
                            method: edge.method.clone(),
                        });
                    }
                }
            }
        }
        // Main must exist and be static.
        let main_class = names.get(self.main.class.as_str()).ok_or(BuildError::MissingMain)?;
        match main_class.find_method(&self.main.method) {
            Some(m) if m.kind == MethodKind::Static => Ok(()),
            _ => Err(BuildError::MissingMain),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_main() -> MethodDef {
        MethodDef::interpreted(
            "main",
            MethodKind::Static,
            0,
            0,
            vec![Instr::Return { value: None }],
        )
    }

    #[test]
    fn builder_assembles_classes() {
        let c = ClassDef::new("Account")
            .trust(Trust::Trusted)
            .field("owner")
            .field("balance")
            .method(MethodDef::interpreted(CTOR, MethodKind::Constructor, 2, 2, vec![]));
        assert_eq!(c.field_index("balance"), Some(1));
        assert!(c.find_method(CTOR).is_some());
        assert!(c.home_is(Side::Trusted));
        assert!(!c.home_is(Side::Untrusted));
    }

    #[test]
    fn duplicate_classes_rejected() {
        let err = Program::new(
            vec![ClassDef::new("A").method(static_main()), ClassDef::new("A")],
            MethodRef::new("A", "main"),
        )
        .unwrap_err();
        assert_eq!(err, BuildError::DuplicateClass("A".into()));
    }

    #[test]
    fn dangling_call_edges_rejected() {
        let bad = ClassDef::new("A").method(MethodDef::interpreted(
            "main",
            MethodKind::Static,
            0,
            1,
            vec![Instr::New { dst: 0, class: "Ghost".into(), args: vec![] }],
        ));
        let err = Program::new(vec![bad], MethodRef::new("A", "main")).unwrap_err();
        assert_eq!(err, BuildError::UnknownClass("Ghost".into()));
    }

    #[test]
    fn missing_or_nonstatic_main_rejected() {
        let err = Program::new(vec![ClassDef::new("A")], MethodRef::new("A", "main")).unwrap_err();
        assert_eq!(err, BuildError::MissingMain);

        let inst_main = ClassDef::new("A").method(MethodDef::interpreted(
            "main",
            MethodKind::Instance,
            0,
            0,
            vec![],
        ));
        let err = Program::new(vec![inst_main], MethodRef::new("A", "main")).unwrap_err();
        assert_eq!(err, BuildError::MissingMain);
    }

    #[test]
    fn call_edges_derived_from_instructions() {
        let m = MethodDef::interpreted(
            "run",
            MethodKind::Static,
            0,
            2,
            vec![
                Instr::New { dst: 0, class: "B".into(), args: vec![] },
                Instr::Call {
                    dst: None,
                    class: "B".into(),
                    recv: Operand::Local(0),
                    method: "go".into(),
                    args: vec![],
                },
                Instr::CallStatic {
                    dst: None,
                    class: "C".into(),
                    method: "s".into(),
                    args: vec![],
                },
            ],
        );
        let edges = m.call_edges();
        assert_eq!(
            edges,
            vec![MethodRef::new("B", CTOR), MethodRef::new("B", "go"), MethodRef::new("C", "s"),]
        );
    }

    #[test]
    fn native_methods_carry_declared_edges() {
        let body: NativeFn = Arc::new(|_, _, _| Ok(Value::Unit));
        let m = MethodDef::native(
            "write",
            MethodKind::Instance,
            1,
            vec![MethodRef::new("Store", "put")],
            body,
        );
        assert_eq!(m.call_edges(), vec![MethodRef::new("Store", "put")]);
    }
}
