//! SGX code generation (§5.3–§5.4).
//!
//! Montsalvat extends the native-image generator with a pass that emits
//! C definitions for the ecall/ocall transition routines added to proxy
//! classes (Listing 6), together with the EDL files consumed by the
//! Intel SDK's `Edger8r`. In the reproduction the *executable* edge
//! routines are the dispatch closures of the partitioned runtime; this
//! module renders the equivalent C sources as inspectable build
//! artefacts, so the generated interface can be reviewed exactly as it
//! would be in the paper's toolchain.

use sgx_sim::edl::{Direction, EdlSpec};

use crate::transform::TransformedProgram;

/// All textual artefacts of the SGX module build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgxArtifacts {
    /// The `.edl` interface file.
    pub edl: String,
    /// Generated C source for the untrusted side (ecall wrappers that
    /// enter the enclave).
    pub untrusted_bridge_c: String,
    /// Generated C source for the trusted side (ocall wrappers that
    /// leave the enclave).
    pub trusted_bridge_c: String,
}

/// Renders the SGX build artefacts for a transformed program.
pub fn generate(tp: &TransformedProgram) -> SgxArtifacts {
    SgxArtifacts {
        edl: tp.edl.render(),
        untrusted_bridge_c: render_bridges(&tp.edl, Direction::Ecall),
        trusted_bridge_c: render_bridges(&tp.edl, Direction::Ocall),
    }
}

/// Renders Listing-6-style bridge definitions for one direction.
fn render_bridges(edl: &EdlSpec, direction: Direction) -> String {
    let (fns, header, isolate) = match direction {
        Direction::Ecall => (&edl.trusted, "/* ecall bridges: untrusted -> enclave */", "enclave"),
        Direction::Ocall => (&edl.untrusted, "/* ocall bridges: enclave -> untrusted */", "host"),
    };
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    out.push_str("#include \"montsalvat_edge.h\"\n\n");
    for f in fns {
        let params: Vec<String> =
            f.params.iter().map(|p| format!("{} {}", c_type(&p.ty), p.name)).collect();
        out.push_str(&format!(
            "void {name}({params}) {{\n    graal_isolate_t* ctx = get_{isolate}_isolate();\n    {relay}(ctx, {args});\n}}\n\n",
            name = f.name,
            params = params.join(", "),
            relay = f.name.replacen("ecall_", "", 1).replacen("ocall_", "", 1),
            args = f.params.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(", "),
        ));
    }
    out
}

fn c_type(ty: &sgx_sim::edl::EdlType) -> &'static str {
    use sgx_sim::edl::EdlType;
    match ty {
        EdlType::Void => "void",
        EdlType::Int => "int",
        EdlType::Long => "long",
        EdlType::Float => "float",
        EdlType::Double => "double",
        EdlType::Buffer { .. } => "const char*",
        EdlType::Size => "size_t",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::bank_program;
    use crate::transform::transform;

    #[test]
    fn artefacts_cover_all_relays() {
        let tp = transform(&bank_program());
        let artefacts = generate(&tp);
        // EDL declares both directions.
        assert!(artefacts.edl.contains("ecall_relay_Account_updateBalance"));
        assert!(artefacts.edl.contains("ocall_relay_Person_getAccount"));
        // Bridges reference the isolate context (Listing 6 pattern).
        assert!(artefacts.untrusted_bridge_c.contains("get_enclave_isolate()"));
        assert!(artefacts.trusted_bridge_c.contains("get_host_isolate()"));
        assert!(artefacts.untrusted_bridge_c.contains("void ecall_relay_Account_updateBalance"));
    }

    #[test]
    fn bridge_param_lists_match_edl() {
        let tp = transform(&bank_program());
        let artefacts = generate(&tp);
        assert!(artefacts
            .untrusted_bridge_c
            .contains("long hash, const char* args, size_t args_len, size_t ret_len"));
    }

    #[test]
    fn generation_is_deterministic() {
        let tp = transform(&bank_program());
        assert_eq!(generate(&tp), generate(&tp));
    }
}
