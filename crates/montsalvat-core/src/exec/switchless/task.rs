//! Suspendable serve tasks: the unit of work the work-stealing
//! [`scheduler`](super::scheduler) queues, steals and times out.
//!
//! A posted crossing becomes one [`ServeTask`] holding everything the
//! serving side needs (class, relay, wire message, reply channel). Two
//! small atomic state machines live on the task:
//!
//! - **The claim protocol** ([`ServeTask::claim_for_run`] /
//!   [`ServeTask::claim_for_timeout`]): a task starts `QUEUED`; an
//!   executor CASes it to `RUNNING` before serving, and the timeout
//!   worker CASes it to `TIMED_OUT` before sweeping it into the
//!   classic-fallback path. Exactly one CAS can win, so every posted
//!   call completes exactly once — as a served hit or a fallback —
//!   no matter how post/steal/run/timeout interleave. The loser just
//!   drops its reference; stale deque entries are skipped at claim
//!   time instead of being hunted down.
//! - **The lifecycle stage** ([`TaskStage`]): queued → decode →
//!   execute → encode → complete. The executor advances it around the
//!   serve call and `exec::ctx::serve_relay_inner` advances it at the
//!   unmarshal/dispatch/marshal boundaries via [`note_stage`], which
//!   resolves the current task through a thread-local — a no-op on
//!   classic crossings and pool workers. When the executing body
//!   performs a *nested* crossing, the task's state stays parked in
//!   the `Execute` stage on the executor's stack while the executor
//!   serves other tasks (see `Scheduler::wait_for_completion`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use rmi::hash::ProxyHash;

use crate::error::VmError;
use crate::exec::ctx::WireMsg;

/// Claim state: queued, not yet owned by anyone.
pub(crate) const QUEUED: u8 = 0;
/// Claim state: an executor owns the task and will send the reply.
pub(crate) const RUNNING: u8 = 1;
/// Claim state: the timeout worker swept the task; the poster falls
/// back to a classic crossing.
pub(crate) const TIMED_OUT: u8 = 2;

/// Lifecycle stage of a serve task's explicit state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum TaskStage {
    /// Posted, waiting in the injector or a deque.
    Queued = 0,
    /// Claimed; the serving side is unmarshalling arguments.
    Decode = 1,
    /// The relay body is executing (possibly suspended on a nested
    /// crossing).
    Execute = 2,
    /// The reply is being marshalled.
    Encode = 3,
    /// The reply has been produced.
    Complete = 4,
}

/// What the poster receives on the task's reply channel.
pub(crate) enum TaskCompletion {
    /// An executor served the task; this is the relay's reply.
    Served(Result<WireMsg, VmError>),
    /// The timeout worker swept the task before any executor claimed
    /// it; the poster must perform a classic crossing.
    TimedOut,
}

/// One posted crossing, queued for the work-stealing scheduler.
pub(crate) struct ServeTask {
    /// Class whose relay is being called.
    pub class_name: String,
    /// Relay method name.
    pub relay: String,
    /// Receiver proxy hash, when the call targets an instance.
    pub recv_hash: Option<ProxyHash>,
    /// The marshalled request.
    pub msg: WireMsg,
    /// Where the claimed outcome is delivered (capacity 1).
    pub reply: Sender<TaskCompletion>,
    /// `(model_ns, wall_ns)` at post time when tracing was on, for the
    /// cat-`queue` task-wait span; `None` when the post was untraced.
    pub posted: Option<(u64, u64)>,
    /// Model time at post, for `rmi.sched_task_wait_ns` and the tuner.
    pub posted_model_ns: u64,
    claim: AtomicU8,
    stage: AtomicU8,
}

impl ServeTask {
    /// Builds a freshly posted (QUEUED) task.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        class_name: String,
        relay: String,
        recv_hash: Option<ProxyHash>,
        msg: WireMsg,
        reply: Sender<TaskCompletion>,
        posted: Option<(u64, u64)>,
        posted_model_ns: u64,
    ) -> ServeTask {
        ServeTask {
            class_name,
            relay,
            recv_hash,
            msg,
            reply,
            posted,
            posted_model_ns,
            claim: AtomicU8::new(QUEUED),
            stage: AtomicU8::new(TaskStage::Queued as u8),
        }
    }

    /// Attempts to claim the task for execution (QUEUED → RUNNING).
    /// Returns false when the timeout worker already swept it.
    pub(crate) fn claim_for_run(&self) -> bool {
        self.claim.compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Attempts to claim the task for a timeout sweep (QUEUED →
    /// TIMED_OUT). Returns false when an executor already owns it.
    pub(crate) fn claim_for_timeout(&self) -> bool {
        self.claim.compare_exchange(QUEUED, TIMED_OUT, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Current claim state (tests only; production code never reads
    /// the state back — it races the CAS and acts on the result).
    #[cfg(test)]
    pub(crate) fn claim_state(&self) -> u8 {
        self.claim.load(Ordering::Acquire)
    }

    /// Advances the lifecycle stage.
    pub(crate) fn set_stage(&self, stage: TaskStage) {
        self.stage.store(stage as u8, Ordering::Relaxed);
    }

    /// Current lifecycle stage as its raw discriminant (tests only;
    /// the stage exists for diagnostics, not control flow).
    #[cfg(test)]
    pub(crate) fn stage(&self) -> u8 {
        self.stage.load(Ordering::Relaxed)
    }
}

thread_local! {
    /// The task the current thread is serving, if any — a stack, so
    /// an executor that suspends into serving another task restores
    /// the outer task afterwards.
    static CURRENT_TASK: RefCell<Vec<Arc<ServeTask>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `task` as the thread's current task (nestable).
pub(crate) fn with_current_task<R>(task: &Arc<ServeTask>, f: impl FnOnce() -> R) -> R {
    CURRENT_TASK.with(|c| c.borrow_mut().push(Arc::clone(task)));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT_TASK.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// Advances the current task's lifecycle stage, if the calling thread
/// is serving one. Classic crossings and pool workers have no current
/// task, so this is free for them.
pub(crate) fn note_stage(stage: TaskStage) {
    CURRENT_TASK.with(|c| {
        if let Some(task) = c.borrow().last() {
            task.set_stage(stage);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn msg() -> WireMsg {
        WireMsg { recv_hash: None, hints: Vec::new(), payload: vec![1].into(), trace: None }
    }

    fn task() -> Arc<ServeTask> {
        let (tx, _rx) = bounded(1);
        Arc::new(ServeTask::new("C".into(), "r".into(), None, msg(), tx, None, 0))
    }

    #[test]
    fn exactly_one_claim_wins() {
        let t = task();
        assert!(t.claim_for_run());
        assert!(!t.claim_for_timeout(), "run claim excludes timeout claim");
        assert!(!t.claim_for_run(), "claims are not reentrant");
        assert_eq!(t.claim_state(), RUNNING);

        let t = task();
        assert!(t.claim_for_timeout());
        assert!(!t.claim_for_run(), "timeout claim excludes run claim");
        assert_eq!(t.claim_state(), TIMED_OUT);
    }

    #[test]
    fn stage_notes_reach_the_current_task_and_nest() {
        let outer = task();
        let inner = task();
        note_stage(TaskStage::Execute);
        assert_eq!(outer.stage(), TaskStage::Queued as u8, "no current task, no effect");
        with_current_task(&outer, || {
            note_stage(TaskStage::Decode);
            with_current_task(&inner, || {
                note_stage(TaskStage::Execute);
            });
            // The inner task's stage changed; the outer task's is
            // restored as the target of further notes.
            note_stage(TaskStage::Encode);
        });
        assert_eq!(inner.stage(), TaskStage::Execute as u8);
        assert_eq!(outer.stage(), TaskStage::Encode as u8);
    }
}
