//! The scheduler's dedicated timeout worker.
//!
//! One thread per [`Scheduler`](super::scheduler::Scheduler) sweeps
//! both sides' deadline registries: any task still `QUEUED` past
//! [`SchedulerConfig::task_timeout`](super::SchedulerConfig::task_timeout)
//! is claimed (`QUEUED → TIMED_OUT`, so no executor can serve it
//! afterwards) and its poster is released into the classic-fallback
//! path. This bounds the poster's wait even when every executor is
//! wedged behind long-running bodies: a crossing is *eventually*
//! served or classically retried, never stranded.
//!
//! The registry is a per-side FIFO of `(wall deadline, Weak<task>)`
//! pairs. Deadlines are a constant offset from the post, so FIFO order
//! is deadline order and each sweep only inspects the overdue prefix.
//! Completed tasks age out as dead weak references. The worker charges
//! no model time itself — the poster pays the fallback probe when it
//! observes the sweep — so sweep cadence never skews model-time
//! latency.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sgx_sim::cost::CostModel;

use super::scheduler::SchedSide;
use super::task::TaskCompletion;

/// Body of the `sched-timeout` thread: periodically sweep every side
/// until all of them are stopping. The sweep interval tracks the task
/// timeout (a quarter of it, clamped to 1–20 ms) so an overdue task is
/// detected within a small multiple of its deadline without busy
/// polling.
pub(crate) fn timeout_loop(sides: &[Arc<SchedSide>], cost: &Arc<CostModel>, timeout: Duration) {
    let sweep = (timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(20));
    loop {
        if sides.iter().all(|s| s.stop.load(Ordering::Relaxed)) {
            return;
        }
        std::thread::sleep(sweep);
        let now = Instant::now();
        for side in sides {
            sweep_overdue(side, cost, now);
        }
    }
}

/// Sweeps `side`'s overdue prefix: every registered task whose
/// deadline has passed and that is still unclaimed is moved to
/// `TIMED_OUT`, counted (`rmi.sched_timeouts` plus the shared
/// `rmi.switchless_fallbacks` the invariant gates read), and its
/// poster released with [`TaskCompletion::TimedOut`]. Returns how many
/// tasks were swept.
pub(crate) fn sweep_overdue(side: &Arc<SchedSide>, cost: &Arc<CostModel>, now: Instant) -> usize {
    let mut swept = 0;
    loop {
        let entry = {
            let mut registry = side.timeouts.lock();
            match registry.front() {
                Some((deadline, _)) if *deadline <= now => registry.pop_front(),
                _ => None,
            }
        };
        let Some((_, weak)) = entry else { break };
        // A dead reference is a task that completed and was dropped;
        // skip it and keep draining the overdue prefix.
        let Some(task) = weak.upgrade() else { continue };
        if !task.claim_for_timeout() {
            // An executor owns it (or already served it): its reply
            // will arrive the normal way.
            continue;
        }
        side.queued.fetch_sub(1, Ordering::Relaxed);
        let inflight = side.inflight.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        let recorder = cost.recorder();
        recorder.incr(telemetry::Counter::SchedTimeouts);
        recorder.incr(telemetry::Counter::SwitchlessFallbacks);
        side.fallbacks.fetch_add(1, Ordering::Relaxed);
        recorder.gauge_set(telemetry::Gauge::SchedInflight, inflight as u64);
        recorder.gauge_set(
            telemetry::Gauge::SwitchlessQueueDepth,
            side.queued.load(Ordering::Relaxed) as u64,
        );
        // The stale queue entry stays wherever it is; whichever
        // executor eventually pops it fails the run claim and drops it.
        let _ = task.reply.send(TaskCompletion::TimedOut);
        swept += 1;
    }
    swept
}
