//! Adaptive switchless (transition-less) RMI calls — the paper's first
//! future-work item (§7, after Tian et al., SysTEX'18).
//!
//! A classic crossing pays the full EENTER/EEXIT transition plus relay
//! software on *every* call. In the switchless design, each runtime
//! keeps resident serving capacity; a caller posts its request and the
//! opposite side serves it without any hardware transition — the cost
//! drops to a cache-line hand-off plus the marshalling itself.
//!
//! Two serving engines implement the mechanism behind one posting
//! interface (`SwitchlessEngine`):
//!
//! - **`engine` — the thread-per-worker pool** (PR 2's adaptive
//!   engine, the default): per-side worker pools with bounded
//!   mailboxes, classic fallback on overflow, miss-driven scaling,
//!   small-batch draining and the optional trace-driven [`tuner`].
//!   Each posted crossing occupies one OS worker thread until its
//!   reply is sent — including any time that worker spends blocked on
//!   a *nested* crossing.
//! - **`scheduler` — the work-stealing task scheduler**
//!   ([`SwitchlessConfig::scheduler`] or `MONTSALVAT_SCHEDULER=1`):
//!   posted crossings become suspendable serve `task`s (explicit
//!   state machine: decode → execute → encode → complete) queued on a
//!   bounded shared injector; a small pool of executor threads drains
//!   per-executor local deques first, steals from sibling deques
//!   second and grabs injector batches last. An executor blocked on a
//!   nested crossing *suspends* — it parks the task's state on its
//!   stack and serves other tasks while it waits — so tens of
//!   thousands of crossings can be in flight on a handful of threads.
//!   A dedicated `timeout` worker sweeps overdue tasks into the
//!   classic-fallback path, and a full injector rejects immediately
//!   (backpressure) instead of blocking. The same [`tuner`] control
//!   law drives executor-pool sizing and the steal-batch bound.
//!
//! Both engines preserve the accounting invariant the CI bench gates
//! check: every posted call resolves as exactly one switchless hit
//! (`rmi.switchless_calls`) or one classic fallback
//! (`rmi.switchless_fallbacks`), so `rmi.calls == hits + fallbacks`.
//! The ablation binaries `switchless_ablation` (pool vs classic) and
//! `scheduler_ablation` (scheduler vs pool at ≥ 10k in-flight calls)
//! compare them; `docs/SWITCHLESS.md` documents both designs.

pub(crate) mod engine;
pub(crate) mod scheduler;
pub(crate) mod task;
pub(crate) mod timeout;
pub mod tuner;

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use rmi::hash::ProxyHash;
use sgx_sim::cost::CostModel;
use telemetry::HistogramSnapshot;

use crate::annotation::Side;
use crate::error::VmError;
use crate::exec::ctx::WireMsg;
use tuner::{Tuner, TunerConfig};

pub(crate) use engine::SwitchlessPool;
pub(crate) use scheduler::Scheduler;

/// Configuration of the switchless call machinery (both engines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchlessConfig {
    /// Resident workers each side keeps even when idle (≥ 1).
    pub min_workers: usize,
    /// Upper bound miss-driven scaling may grow a side's pool to
    /// (raised to `min_workers` if set lower).
    pub max_workers: usize,
    /// Mailbox slots per side; a caller finding all slots taken falls
    /// back to a classic crossing (≥ 1).
    pub mailbox_capacity: usize,
    /// Most queued requests one worker wakeup drains as a single
    /// batch frame (1 disables batching).
    pub max_batch: usize,
    /// Misses (posts that found no idle worker or a full mailbox)
    /// accumulated before the engine spawns another worker.
    pub scale_up_misses: u64,
    /// How long an idle worker parks between mailbox polls; a worker
    /// idle past this retires if the pool is above `min_workers`.
    pub idle_park: Duration,
    /// Trace-driven feedback controller; `None` (the default) keeps
    /// PR 2's miss-counter engine as the only scaling mechanism.
    pub autotune: Option<TunerConfig>,
    /// Work-stealing task scheduler; `None` (the default) keeps the
    /// thread-per-worker pool. See [`SchedulerConfig`].
    pub scheduler: Option<SchedulerConfig>,
}

impl Default for SwitchlessConfig {
    /// The adaptive defaults: scale between 1 and 4 workers per side,
    /// a 16-slot mailbox, 4-deep batch drain.
    fn default() -> Self {
        SwitchlessConfig {
            min_workers: 1,
            max_workers: 4,
            mailbox_capacity: 16,
            max_batch: 4,
            scale_up_misses: 4,
            idle_park: Duration::from_millis(20),
            autotune: None,
            scheduler: None,
        }
    }
}

impl SwitchlessConfig {
    /// A fixed pool of `workers` per side: no adaptive scaling, the
    /// pre-adaptive engine's shape (used as the ablation baseline).
    pub fn fixed(workers: usize) -> Self {
        let workers = workers.max(1);
        SwitchlessConfig { min_workers: workers, max_workers: workers, ..Self::default() }
    }

    /// The adaptive defaults with the trace-driven tuner attached
    /// (default [`TunerConfig`]).
    pub fn autotuned() -> Self {
        SwitchlessConfig { autotune: Some(TunerConfig::default()), ..Self::default() }
    }

    /// The work-stealing task scheduler with default
    /// [`SchedulerConfig`] bounds (`min_workers`/`max_workers` size
    /// the executor pool).
    pub fn scheduled() -> Self {
        SwitchlessConfig { scheduler: Some(SchedulerConfig::default()), ..Self::default() }
    }

    /// Applies the `MONTSALVAT_AUTOTUNE` environment override: `1`
    /// (or `true`/`on`) attaches the default tuner if none is
    /// configured, `0` (or `false`/`off`) detaches any configured
    /// tuner; other values leave the config alone.
    pub fn with_env_autotune(mut self) -> Self {
        match std::env::var("MONTSALVAT_AUTOTUNE").ok().as_deref() {
            Some("1") | Some("true") | Some("on") if self.autotune.is_none() => {
                self.autotune = Some(TunerConfig::default());
            }
            Some("0") | Some("false") | Some("off") => self.autotune = None,
            _ => {}
        }
        self
    }

    /// Applies the `MONTSALVAT_SCHEDULER` environment override: `1`
    /// (or `true`/`on`) attaches the default work-stealing scheduler
    /// if none is configured, `0` (or `false`/`off`) detaches any
    /// configured scheduler; other values leave the config alone.
    pub fn with_env_scheduler(mut self) -> Self {
        match std::env::var("MONTSALVAT_SCHEDULER").ok().as_deref() {
            Some("1") | Some("true") | Some("on") if self.scheduler.is_none() => {
                self.scheduler = Some(SchedulerConfig::default());
            }
            Some("0") | Some("false") | Some("off") => self.scheduler = None,
            _ => {}
        }
        self
    }

    /// Clamps the invariants the engines rely on: at least one
    /// worker, `max_workers ≥ min_workers`, a real mailbox slot and a
    /// positive batch depth.
    pub(crate) fn normalized(&self) -> Self {
        let min_workers = self.min_workers.max(1);
        SwitchlessConfig {
            min_workers,
            max_workers: self.max_workers.max(min_workers),
            mailbox_capacity: self.mailbox_capacity.max(1),
            max_batch: self.max_batch.max(1),
            scale_up_misses: self.scale_up_misses.max(1),
            idle_park: self.idle_park.max(Duration::from_millis(1)),
            autotune: self.autotune.as_ref().map(TunerConfig::normalized),
            scheduler: self.scheduler.as_ref().map(SchedulerConfig::normalized),
        }
    }
}

/// Bounds of the work-stealing task scheduler (the second engine; see
/// the module docs and `docs/SWITCHLESS.md`). Executor-pool sizing
/// comes from the surrounding [`SwitchlessConfig`]'s
/// `min_workers`/`max_workers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Most tasks queued per side (injector plus local deques) before
    /// a post is rejected into the classic-fallback path. This is the
    /// backpressure bound: a full scheduler *never* blocks a poster.
    pub injector_capacity: usize,
    /// Most tasks one executor grabs from the injector per visit; the
    /// grabbed surplus lands on its local deque where siblings can
    /// steal it. The tuner's `target_batch` retunes this at run time.
    pub steal_batch: usize,
    /// Wall-clock age past which a still-queued task is swept into the
    /// classic-fallback path by the timeout worker.
    pub task_timeout: Duration,
}

impl Default for SchedulerConfig {
    /// Defaults sized for the open-loop traffic harness: a deep
    /// injector (tens of thousands of in-flight tasks), small steal
    /// batches, a generous sweep age.
    fn default() -> Self {
        SchedulerConfig {
            injector_capacity: 16_384,
            steal_batch: 4,
            task_timeout: Duration::from_millis(250),
        }
    }
}

impl SchedulerConfig {
    /// Clamps the invariants the scheduler relies on: at least one
    /// injector slot, a positive steal batch, a nonzero timeout.
    pub(crate) fn normalized(&self) -> Self {
        SchedulerConfig {
            injector_capacity: self.injector_capacity.max(1),
            steal_batch: self.steal_batch.max(1),
            task_timeout: self.task_timeout.max(Duration::from_millis(1)),
        }
    }
}

/// The relay dispatcher an engine serves posts with: bound to the
/// application, it executes `class.relay` on the given side.
pub(crate) type ServeFn = Arc<
    dyn Fn(Side, &str, &str, Option<ProxyHash>, &WireMsg) -> Result<WireMsg, VmError> + Send + Sync,
>;

/// One posted request: serve `class.relay` with `msg` in the worker's
/// world, reply on `reply`.
pub(crate) struct SwitchlessJob {
    pub class_name: String,
    pub relay: String,
    pub recv_hash: Option<ProxyHash>,
    pub msg: WireMsg,
    pub reply: Sender<Result<WireMsg, VmError>>,
    /// `(model_ns, wall_ns)` at post time when tracing was on, so the
    /// serving worker can attribute queue wait separately from
    /// execution; `None` when the post was untraced.
    pub posted: Option<(u64, u64)>,
}

/// Outcome of posting a call to an engine.
pub(crate) enum PostOutcome {
    /// A worker served the call; this is the relay's reply.
    Served(Result<WireMsg, VmError>),
    /// The engine could not serve the call (full mailbox/injector or a
    /// swept timeout) — the caller must perform a classic crossing
    /// (the probe charge has already been paid).
    Fallback,
}

/// Live worker/queue readings for one side of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SideStats {
    /// Resident workers (parked + serving).
    pub workers: usize,
    /// Workers currently parked on the mailbox.
    pub idle: usize,
    /// Posted jobs not yet picked up by a worker.
    pub queued: usize,
}

/// Live readings of both sides of an engine (see
/// [`PartitionedApp::switchless_stats`](crate::exec::app::PartitionedApp::switchless_stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwitchlessStats {
    /// The enclave-side pool.
    pub trusted: SideStats,
    /// The host-side pool.
    pub untrusted: SideStats,
}

/// Previous-snapshot cursors one tuner tick diffs against.
#[derive(Default)]
pub(crate) struct TunerWindow {
    pub(crate) wait_prev: HistogramSnapshot,
    pub(crate) batch_prev: HistogramSnapshot,
    pub(crate) fallbacks_prev: u64,
}

/// The live tuner: the pure controller plus per-side window cursors.
pub(crate) struct TunerRuntime {
    pub(crate) tuner: Tuner,
    pub(crate) trusted_window: Mutex<TunerWindow>,
    pub(crate) untrusted_window: Mutex<TunerWindow>,
}

impl TunerRuntime {
    /// Builds the runtime when `config.autotune` is set, judging
    /// queue waits against one classic crossing of `cost`'s params.
    pub(crate) fn from_config(config: &SwitchlessConfig, cost: &CostModel) -> Option<TunerRuntime> {
        config.autotune.as_ref().map(|tc| {
            // The yardstick queue waits are judged against: one classic
            // crossing (hardware transition + relay software).
            let crossing = cost.params().transition_ns() + cost.params().relay_overhead_ns;
            TunerRuntime {
                tuner: Tuner::new(tc.clone(), crossing),
                trusted_window: Mutex::new(TunerWindow::default()),
                untrusted_window: Mutex::new(TunerWindow::default()),
            }
        })
    }

    pub(crate) fn window(&self, side: Side) -> &Mutex<TunerWindow> {
        match side {
            Side::Trusted => &self.trusted_window,
            Side::Untrusted => &self.untrusted_window,
        }
    }
}

/// The serving engine an application launched: PR 2's thread-per-
/// worker pool or the work-stealing task scheduler, behind one
/// post/tune/stats/shutdown surface so `exec::ctx` and `exec::app`
/// dispatch uniformly.
#[derive(Clone, Debug)]
pub(crate) enum SwitchlessEngine {
    /// Thread-per-worker pool (the default).
    Pool(Arc<SwitchlessPool>),
    /// Work-stealing task scheduler.
    Sched(Arc<Scheduler>),
}

impl SwitchlessEngine {
    /// Launches the engine `config` selects: the scheduler when
    /// [`SwitchlessConfig::scheduler`] is set, the pool otherwise.
    pub(crate) fn launch(config: &SwitchlessConfig, serve: ServeFn, cost: Arc<CostModel>) -> Self {
        if config.scheduler.is_some() {
            SwitchlessEngine::Sched(Arc::new(Scheduler::spawn(config, serve, cost)))
        } else {
            SwitchlessEngine::Pool(Arc::new(SwitchlessPool::spawn(config, serve, cost)))
        }
    }

    /// Posts a call to `side`. See [`SwitchlessPool::post`] /
    /// [`Scheduler::post`].
    pub(crate) fn post(
        &self,
        side: Side,
        class_name: String,
        relay: String,
        recv_hash: Option<ProxyHash>,
        msg: WireMsg,
    ) -> Result<PostOutcome, VmError> {
        match self {
            SwitchlessEngine::Pool(p) => p.post(side, class_name, relay, recv_hash, msg),
            SwitchlessEngine::Sched(s) => s.post(side, class_name, relay, recv_hash, msg),
        }
    }

    /// One tuner bookkeeping step for a call that completed on `side`.
    pub(crate) fn maybe_tune(&self, side: Side) {
        match self {
            SwitchlessEngine::Pool(p) => p.maybe_tune(side),
            SwitchlessEngine::Sched(s) => s.maybe_tune(side),
        }
    }

    /// Live worker/queue readings.
    pub(crate) fn stats(&self) -> SwitchlessStats {
        match self {
            SwitchlessEngine::Pool(p) => p.stats(),
            SwitchlessEngine::Sched(s) => s.stats(),
        }
    }

    /// Stops the engine's threads if this is the last handle; a handle
    /// still held elsewhere keeps the engine alive (matching the old
    /// `Arc<SwitchlessPool>` take-and-unwrap shutdown).
    pub(crate) fn shutdown(self) {
        match self {
            SwitchlessEngine::Pool(p) => {
                if let Ok(pool) = Arc::try_unwrap(p) {
                    pool.shutdown();
                }
            }
            SwitchlessEngine::Sched(s) => {
                if let Ok(sched) = Arc::try_unwrap(s) {
                    sched.shutdown();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_enforces_invariants() {
        let cfg = SwitchlessConfig {
            min_workers: 0,
            max_workers: 0,
            mailbox_capacity: 0,
            max_batch: 0,
            scale_up_misses: 0,
            idle_park: Duration::ZERO,
            autotune: Some(TunerConfig {
                interval_calls: 0,
                up_wait_pct: 0,
                down_wait_pct: 99,
                batch_limit: 0,
                min_samples: 0,
            }),
            scheduler: Some(SchedulerConfig {
                injector_capacity: 0,
                steal_batch: 0,
                task_timeout: Duration::ZERO,
            }),
        }
        .normalized();
        assert_eq!(cfg.min_workers, 1);
        assert_eq!(cfg.max_workers, 1);
        assert_eq!(cfg.mailbox_capacity, 1);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.scale_up_misses, 1);
        assert!(cfg.idle_park > Duration::ZERO);
        let tc = cfg.autotune.expect("autotune survives normalization");
        assert_eq!(tc.interval_calls, 1);
        assert_eq!(tc.batch_limit, 1);
        assert_eq!(tc.min_samples, 1);
        assert!(tc.down_wait_pct < tc.up_wait_pct, "shrink threshold below grow threshold");
        let sc = cfg.scheduler.expect("scheduler survives normalization");
        assert_eq!(sc.injector_capacity, 1);
        assert_eq!(sc.steal_batch, 1);
        assert!(sc.task_timeout > Duration::ZERO);
    }

    #[test]
    fn autotuned_config_attaches_the_default_tuner() {
        let cfg = SwitchlessConfig::autotuned();
        assert_eq!(cfg.autotune, Some(TunerConfig::default()));
        assert_eq!(SwitchlessConfig::default().autotune, None);
        assert_eq!(SwitchlessConfig::fixed(2).autotune, None);
    }

    #[test]
    fn fixed_config_pins_both_bounds() {
        let cfg = SwitchlessConfig::fixed(3);
        assert_eq!((cfg.min_workers, cfg.max_workers), (3, 3));
    }

    #[test]
    fn scheduled_config_attaches_the_default_scheduler() {
        let cfg = SwitchlessConfig::scheduled();
        assert_eq!(cfg.scheduler, Some(SchedulerConfig::default()));
        assert_eq!(SwitchlessConfig::default().scheduler, None);
        assert_eq!(SwitchlessConfig::fixed(2).scheduler, None);
        assert_eq!(SwitchlessConfig::autotuned().scheduler, None);
    }
}
