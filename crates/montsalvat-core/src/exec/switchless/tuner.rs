//! Trace-driven feedback controller for the switchless engine.
//!
//! PR 2's adaptive engine scales workers from a blunt miss counter: a
//! post that finds no idle worker is a miss, and enough misses spawn a
//! worker. The tracing layer has since started recording the *exact*
//! queue-wait distribution (`rmi.switchless_queue_wait_ns`, cat-`queue`
//! spans), so the controller here closes the loop on that signal
//! instead: it periodically diffs the per-side queue-wait and
//! batch-size histograms into a window, reduces the window to an
//! [`Observation`], and derives a [`Decision`] from observed wait
//! quantiles measured against the modeled cost of a classic crossing.
//!
//! The control law (documented in `docs/SWITCHLESS.md`):
//!
//! - **Grow workers** when the window saw fallbacks or its p95 queue
//!   wait exceeds [`TunerConfig::up_wait_pct`] percent of the crossing
//!   cost — queueing is costing more than the transitions the engine
//!   exists to avoid.
//! - **Shrink batches** when waits are high but the pool is already at
//!   `max_workers` and drains are batching (`mean_batch > 1`): the
//!   wait is dominated by batching delay, so halve the drain bound.
//! - **Shrink workers** when the p95 wait falls below
//!   [`TunerConfig::down_wait_pct`] percent of the crossing cost with
//!   no fallbacks — capacity is idle.
//! - **Grow batches** when waits are low and workers drain full
//!   batches (`mean_batch ≈ max_batch`): raising the bound amortises
//!   the wake and frame header further, up to
//!   [`TunerConfig::batch_limit`].
//! - **Hold** when the window has fewer than
//!   [`TunerConfig::min_samples`] observations — with tracing
//!   disabled no queue waits are recorded at all, so the tuner never
//!   acts and the PR 2 miss-counter path (still wired in the engine's
//!   pool) remains the only scaling mechanism.
//!
//! The controller itself is pure: [`Tuner::decide`] maps an
//! observation to a decision with no clocks, threads or atomics, and
//! [`Observation::synthetic`] injects an arbitrary wait distribution
//! through the *same* histogram/quantile path production uses, so
//! every branch of the law is unit-testable deterministically.

use telemetry::{AtomicHistogram, HistogramSnapshot};

/// Configuration of the trace-driven tuner (attached to a pool via
/// [`super::SwitchlessConfig::autotune`]).
///
/// All thresholds are integers so the containing config keeps its
/// `Eq` derive; percentages are relative to the modeled classic
/// crossing cost (`transition_ns + relay_overhead_ns`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunerConfig {
    /// Posts between controller ticks on one side (≥ 1).
    pub interval_calls: u64,
    /// Grow threshold: scale up when the window's p95 queue wait
    /// exceeds this percentage of the crossing cost (200 = 2×).
    pub up_wait_pct: u64,
    /// Shrink threshold: scale down when the p95 queue wait falls
    /// below this percentage of the crossing cost (25 = 0.25×).
    pub down_wait_pct: u64,
    /// Upper bound the tuner may grow a side's batch drain to (≥ 1).
    pub batch_limit: usize,
    /// Minimum queue-wait observations a window needs before the
    /// controller acts on it; sparser windows hold (≥ 1).
    pub min_samples: u64,
}

impl Default for TunerConfig {
    /// Tick every 64 posts; grow at p95 > 2× crossing, shrink below
    /// 0.25× crossing; batch up to 16; require 8 samples per window.
    fn default() -> Self {
        TunerConfig {
            interval_calls: 64,
            up_wait_pct: 200,
            down_wait_pct: 25,
            batch_limit: 16,
            min_samples: 8,
        }
    }
}

impl TunerConfig {
    /// Clamps the invariants the controller relies on: positive tick
    /// interval, sample floor and batch bound, and a shrink threshold
    /// strictly below the grow threshold.
    pub(crate) fn normalized(&self) -> Self {
        let up_wait_pct = self.up_wait_pct.max(1);
        TunerConfig {
            interval_calls: self.interval_calls.max(1),
            up_wait_pct,
            down_wait_pct: self.down_wait_pct.min(up_wait_pct.saturating_sub(1)),
            batch_limit: self.batch_limit.max(1),
            min_samples: self.min_samples.max(1),
        }
    }
}

/// One controller window reduced to the numbers the law consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Median queue wait in the window (model ns, bucket upper bound).
    pub wait_p50_ns: u64,
    /// 95th-percentile queue wait in the window (model ns).
    pub wait_p95_ns: u64,
    /// Queue-wait observations in the window (0 when tracing is off).
    pub samples: u64,
    /// Mean jobs drained per worker wakeup in the window.
    pub mean_batch: f64,
    /// Classic fallbacks (mailbox full) in the window.
    pub fallbacks: u64,
    /// Resident workers on the observed side at tick time.
    pub workers: usize,
    /// Batch drain bound in force during the window.
    pub max_batch: usize,
}

impl Observation {
    /// Reduces one window — histogram diffs plus the side's fallback
    /// delta and current sizing — to an observation.
    pub fn from_window(
        wait_window: &HistogramSnapshot,
        batch_window: &HistogramSnapshot,
        fallbacks: u64,
        workers: usize,
        max_batch: usize,
    ) -> Self {
        Observation {
            wait_p50_ns: wait_window.quantile(0.50),
            wait_p95_ns: wait_window.quantile(0.95),
            samples: wait_window.count,
            mean_batch: batch_window.mean(),
            fallbacks,
            workers,
            max_batch,
        }
    }

    /// The synthetic wait-distribution injector: builds an observation
    /// from raw queue-wait and batch-size samples by recording them
    /// through the same power-of-two histogram and quantile reduction
    /// the live engine uses. Controller decisions become a pure
    /// function of these inputs — no threads, no clocks.
    pub fn synthetic(
        waits_ns: &[u64],
        batch_sizes: &[u64],
        fallbacks: u64,
        workers: usize,
        max_batch: usize,
    ) -> Self {
        let wait_hist = AtomicHistogram::new();
        for &w in waits_ns {
            wait_hist.record(w);
        }
        let batch_hist = AtomicHistogram::new();
        for &b in batch_sizes {
            batch_hist.record(b);
        }
        Observation::from_window(
            &wait_hist.snapshot(),
            &batch_hist.snapshot(),
            fallbacks,
            workers,
            max_batch,
        )
    }
}

/// What the controller wants done to a side's worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerAction {
    /// Spawn one worker (bounded by `max_workers` at apply time).
    Grow,
    /// Lower the retirement floor by one (bounded by `min_workers`);
    /// an idle worker retires at its next park timeout.
    Shrink,
    /// Leave the pool size alone.
    Hold,
}

/// One controller tick's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Worker-pool adjustment.
    pub workers: WorkerAction,
    /// Batch drain bound after this tick (unchanged unless the law
    /// resized it; always ≥ 1 and ≤ `batch_limit` when grown).
    pub target_batch: usize,
    /// Which branch of the law fired (stable strings, used in tuner
    /// span names and tests).
    pub reason: &'static str,
}

/// The pure feedback controller: thresholds plus the modeled crossing
/// cost it measures waits against.
#[derive(Debug, Clone)]
pub struct Tuner {
    config: TunerConfig,
    crossing_ns: u64,
}

impl Tuner {
    /// Creates a tuner. `crossing_ns` is the modeled cost of one
    /// classic crossing (`transition_ns + relay_overhead_ns`), the
    /// yardstick queue waits are judged against.
    pub fn new(config: TunerConfig, crossing_ns: u64) -> Self {
        Tuner { config: config.normalized(), crossing_ns: crossing_ns.max(1) }
    }

    /// The normalized configuration in force.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Queue-wait level above which the controller grows capacity.
    pub fn up_threshold_ns(&self) -> u64 {
        self.crossing_ns.saturating_mul(self.config.up_wait_pct) / 100
    }

    /// Queue-wait level below which the controller shrinks capacity.
    pub fn down_threshold_ns(&self) -> u64 {
        self.crossing_ns.saturating_mul(self.config.down_wait_pct) / 100
    }

    /// Maps one observation to a decision. Pure: no side effects, no
    /// clocks; sizing bounds are enforced again at apply time, but the
    /// decision already respects `min_workers`/`max_workers` and
    /// `batch_limit` so callers can treat it as final.
    pub fn decide(&self, min_workers: usize, max_workers: usize, obs: &Observation) -> Decision {
        let mut decision = Decision {
            workers: WorkerAction::Hold,
            target_batch: obs.max_batch.max(1),
            reason: "steady",
        };
        if obs.samples < self.config.min_samples {
            // Too sparse to act on — and with tracing disabled this is
            // every window, which is what keeps the tuner inert and
            // the miss-counter engine authoritative.
            decision.reason = "insufficient-samples";
            return decision;
        }
        let up = self.up_threshold_ns();
        let down = self.down_threshold_ns();
        if obs.fallbacks > 0 || obs.wait_p95_ns > up {
            if obs.workers < max_workers {
                decision.workers = WorkerAction::Grow;
                decision.reason = "queue-pressure";
            } else if obs.mean_batch > 1.0 && obs.max_batch > 1 {
                // Can't add workers; waits under a full pool with real
                // batching are dominated by batching delay, so shrink
                // the drain bound instead.
                decision.target_batch = (obs.max_batch / 2).max(1);
                decision.reason = "batch-delay";
            } else {
                decision.reason = "saturated";
            }
        } else if obs.wait_p95_ns < down && obs.fallbacks == 0 {
            if obs.workers > min_workers {
                decision.workers = WorkerAction::Shrink;
                decision.reason = "idle-waits";
            }
            if obs.mean_batch + 0.5 >= obs.max_batch as f64
                && obs.max_batch < self.config.batch_limit
            {
                // Low waits with workers draining full batches: give
                // the frame header more jobs to amortise over.
                decision.target_batch = (obs.max_batch * 2).min(self.config.batch_limit);
                if decision.workers == WorkerAction::Hold {
                    decision.reason = "batch-headroom";
                }
            }
        }
        decision
    }
}
