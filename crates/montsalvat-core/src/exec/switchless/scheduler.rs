//! The work-stealing task scheduler: tens of thousands of in-flight
//! crossings on a handful of executor threads.
//!
//! PR 2's pool (the [`engine`](super::engine) module) holds one OS
//! worker thread hostage for the full life of every crossing it
//! serves — including time the relay body spends *blocked on a nested
//! crossing* — so useful concurrency is capped at `max_workers`. This
//! engine decouples tasks from threads:
//!
//! - **Posted crossings become [`ServeTask`]s** on a per-side bounded
//!   *injector* queue. A full injector rejects the post into the
//!   classic-fallback path immediately (backpressure — a poster is
//!   never blocked on admission).
//! - **Executors** (sized by `min_workers..=max_workers`, like the
//!   pool) each own a local deque. Work is found in strict order:
//!   own deque (LIFO, locality) → steal a sibling's oldest task
//!   (FIFO, charged [`CostParams::sched_steal_ns`]) → grab a batch
//!   from the injector, serving the first task and parking the
//!   surplus on the local deque where siblings can steal it.
//! - **Suspension**: when a task's body performs a nested crossing,
//!   the posting executor does not block — it parks the task's state
//!   on its stack (charged [`CostParams::sched_suspend_ns`], counted
//!   `rmi.sched_suspends`) and serves other tasks until the nested
//!   reply arrives (charged [`CostParams::sched_resume_ns`]). This is
//!   help-first stealing: the thread is returned to the pool even
//!   though the task is not done.
//! - **Timeouts**: the dedicated [`timeout`](super::timeout) worker
//!   sweeps tasks still `QUEUED` past
//!   [`SchedulerConfig::task_timeout`] into the classic-fallback path
//!   (counted `rmi.sched_timeouts`), so a stalled executor pool can
//!   never strand a poster.
//! - **Tuning**: the same [`tuner`](super::tuner) control law that
//!   sizes the pool's workers sizes the executor pool and retunes the
//!   injector grab bound (`target_batch` → the steal batch).
//!
//! Every post resolves exactly once — served hit or classic fallback —
//! enforced by the task claim protocol (see [`task`](super::task)),
//! which the in-module proptest exercises under arbitrary
//! post/steal/suspend/timeout interleavings.
//!
//! [`CostParams::sched_steal_ns`]: sgx_sim::cost::CostParams::sched_steal_ns
//! [`CostParams::sched_suspend_ns`]: sgx_sim::cost::CostParams::sched_suspend_ns
//! [`CostParams::sched_resume_ns`]: sgx_sim::cost::CostParams::sched_resume_ns
//! [`SchedulerConfig::task_timeout`]: super::SchedulerConfig::task_timeout

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rmi::hash::ProxyHash;
use sgx_sim::cost::CostModel;
use telemetry::AtomicHistogram;

use super::task::{with_current_task, ServeTask, TaskCompletion, TaskStage};
use super::tuner::{Decision, Observation, WorkerAction};
use super::{timeout, TunerRuntime};
use super::{PostOutcome, SchedulerConfig, ServeFn, SideStats, SwitchlessConfig, SwitchlessStats};
use crate::annotation::Side;
use crate::error::VmError;
use crate::exec::ctx::WireMsg;

/// Most nested suspensions one executor stacks before it falls back
/// to a plain blocking wait (bounds stack growth under deep help-first
/// recursion).
const MAX_HELP_DEPTH: usize = 64;

/// One executor's stealable work queue. The owner pushes and pops at
/// the back (LIFO, cache-warm); thieves take from the front (FIFO,
/// oldest first).
pub(crate) struct Slot {
    pub(crate) deque: Mutex<VecDeque<Arc<ServeTask>>>,
    /// Whether an executor thread currently owns this slot.
    occupied: AtomicBool,
}

/// Executor-shared state of one side of the scheduler.
pub(crate) struct SchedSide {
    pub(crate) side: Side,
    /// The shared injector: posts enter here, executors grab batches.
    pub(crate) injector: Mutex<VecDeque<Arc<ServeTask>>>,
    /// Per-executor local deques, one per potential executor.
    pub(crate) slots: Vec<Slot>,
    /// Wake tokens: one per post, so parked executors rouse promptly.
    wake_tx: Sender<()>,
    wake_rx: Receiver<()>,
    /// Resident executors (`min_workers ≤ active ≤ max_workers`).
    pub(crate) active: AtomicUsize,
    /// Executors parked on (or about to poll) the wake channel.
    pub(crate) idle: AtomicUsize,
    /// Tasks posted and not yet claimed (injector + deques).
    pub(crate) queued: AtomicUsize,
    /// Tasks posted and not yet completed (served or swept).
    pub(crate) inflight: AtomicUsize,
    /// Misses accumulated since the last scale-up.
    misses: AtomicU64,
    /// Set by shutdown; parked executors exit at their next poll.
    pub(crate) stop: AtomicBool,
    /// Tuner-chosen executor target: the retirement floor.
    tuner_target: AtomicUsize,
    /// Tuner-chosen injector grab bound (starts at
    /// [`SchedulerConfig::steal_batch`]).
    steal_target: AtomicUsize,
    /// Classic fallbacks on this side — rejects *and* sweeps
    /// (windowed by the tuner).
    pub(crate) fallbacks: AtomicU64,
    /// Per-side task-wait distribution (model ns); same values as the
    /// global `rmi.sched_task_wait_ns` histogram.
    wait_hist: AtomicHistogram,
    /// Per-side injector grab sizes.
    batch_hist: AtomicHistogram,
    /// Posts since the tuner's last tick on this side.
    posts_since_tick: AtomicU64,
    /// Timeout registry: `(wall deadline, task)` in post order. The
    /// deadline is a constant offset from the post, so the deque is
    /// deadline-sorted by construction.
    pub(crate) timeouts: Mutex<VecDeque<(Instant, Weak<ServeTask>)>>,
}

impl SchedSide {
    fn new(side: Side, config: &SwitchlessConfig, sched: &SchedulerConfig) -> SchedSide {
        let (wake_tx, wake_rx) = crossbeam::channel::unbounded();
        SchedSide {
            side,
            injector: Mutex::new(VecDeque::new()),
            slots: (0..config.max_workers)
                .map(|_| Slot {
                    deque: Mutex::new(VecDeque::new()),
                    occupied: AtomicBool::new(false),
                })
                .collect(),
            wake_tx,
            wake_rx,
            active: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            misses: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            tuner_target: AtomicUsize::new(config.min_workers),
            steal_target: AtomicUsize::new(sched.steal_batch),
            fallbacks: AtomicU64::new(0),
            wait_hist: AtomicHistogram::new(),
            batch_hist: AtomicHistogram::new(),
            posts_since_tick: AtomicU64::new(0),
            timeouts: Mutex::new(VecDeque::new()),
        }
    }

    /// Claims a free executor slot, or `None` when all are owned.
    fn claim_slot(&self) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .occupied
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }
}

/// What an executor thread remembers about itself, so a nested
/// crossing posted *from* an executor can help-serve its home side
/// instead of blocking the thread.
#[derive(Clone)]
struct ExecutorCtx {
    side: Weak<SchedSide>,
    slot: usize,
    serve: ServeFn,
    cost: Arc<CostModel>,
}

thread_local! {
    /// Set for the lifetime of an executor thread's loop.
    static EXECUTOR: RefCell<Option<ExecutorCtx>> = const { RefCell::new(None) };
    /// Nested-suspension depth of the current executor thread.
    static HELP_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The per-application work-stealing scheduler: one injector + slot
/// array per side, served by that side's executor pool, swept by one
/// shared timeout worker.
pub(crate) struct Scheduler {
    config: SwitchlessConfig,
    sched: SchedulerConfig,
    serve: ServeFn,
    cost: Arc<CostModel>,
    trusted: Arc<SchedSide>,
    untrusted: Arc<SchedSide>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    executor_seq: AtomicUsize,
    /// Present when [`SwitchlessConfig::autotune`] is set.
    tuner: Option<TunerRuntime>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("config", &self.config)
            .field("trusted_executors", &self.trusted.active.load(Ordering::Relaxed))
            .field("untrusted_executors", &self.untrusted.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl Scheduler {
    /// Spawns `min_workers` executors per side plus the timeout
    /// worker. `serve` is the relay dispatcher bound to the
    /// application; `cost` is the application's cost model, whose
    /// recorder receives the scheduler's telemetry.
    pub(crate) fn spawn(config: &SwitchlessConfig, serve: ServeFn, cost: Arc<CostModel>) -> Self {
        let config = config.normalized();
        let sched = config.scheduler.clone().unwrap_or_default().normalized();
        let tuner = TunerRuntime::from_config(&config, &cost);
        cost.recorder()
            .gauge_set(telemetry::Gauge::SwitchlessTargetBatch, sched.steal_batch as u64);
        let scheduler = Scheduler {
            trusted: Arc::new(SchedSide::new(Side::Trusted, &config, &sched)),
            untrusted: Arc::new(SchedSide::new(Side::Untrusted, &config, &sched)),
            config,
            sched,
            serve,
            cost,
            threads: Mutex::new(Vec::new()),
            executor_seq: AtomicUsize::new(0),
            tuner,
        };
        for side in [Side::Trusted, Side::Untrusted] {
            let state = Arc::clone(scheduler.side(side));
            for _ in 0..scheduler.config.min_workers {
                state.active.fetch_add(1, Ordering::Relaxed);
                scheduler.spawn_executor(&state);
            }
            let recorder = scheduler.cost.recorder();
            recorder.gauge_max(
                telemetry::Gauge::SwitchlessWorkersPeak,
                scheduler.config.min_workers as u64,
            );
            recorder.gauge_set(
                telemetry::Gauge::SwitchlessWorkers,
                scheduler.config.min_workers as u64,
            );
        }
        scheduler.spawn_timeout_worker();
        scheduler
    }

    fn side(&self, side: Side) -> &Arc<SchedSide> {
        match side {
            Side::Trusted => &self.trusted,
            Side::Untrusted => &self.untrusted,
        }
    }

    /// Live executor/queue readings (tests and the ablation harness).
    pub(crate) fn stats(&self) -> SwitchlessStats {
        let read = |s: &SchedSide| SideStats {
            workers: s.active.load(Ordering::Relaxed),
            idle: s.idle.load(Ordering::Relaxed),
            queued: s.queued.load(Ordering::Relaxed),
        };
        SwitchlessStats { trusted: read(&self.trusted), untrusted: read(&self.untrusted) }
    }

    /// Posts a call to `side`'s injector. On admission, waits for the
    /// task's completion — helping-first if the calling thread is
    /// itself an executor. On a full injector (or a swept timeout),
    /// charges the probe and returns [`PostOutcome::Fallback`]; the
    /// poster is never blocked on admission.
    pub(crate) fn post(
        &self,
        side: Side,
        class_name: String,
        relay: String,
        recv_hash: Option<ProxyHash>,
        msg: WireMsg,
    ) -> Result<PostOutcome, VmError> {
        let state = self.side(side);
        let recorder = self.cost.recorder();
        // Pressure signal: a post that finds every executor busy is a
        // miss even if the injector still has room.
        if state.idle.load(Ordering::Relaxed) == 0 {
            recorder.incr(telemetry::Counter::SwitchlessMisses);
            state.misses.fetch_add(1, Ordering::Relaxed);
            self.maybe_scale_up(state);
        }
        // Backpressure: a full injector rejects immediately. The
        // classic path degrades gracefully; blocking here would not.
        if state.queued.load(Ordering::Relaxed) >= self.sched.injector_capacity {
            recorder.incr(telemetry::Counter::SwitchlessFallbacks);
            recorder.incr(telemetry::Counter::SwitchlessMisses);
            state.fallbacks.fetch_add(1, Ordering::Relaxed);
            state.misses.fetch_add(1, Ordering::Relaxed);
            self.maybe_scale_up(state);
            self.cost.charge_ns(self.cost.params().switchless_fallback_ns);
            return Ok(PostOutcome::Fallback);
        }
        let (reply_tx, reply_rx) = bounded(1);
        let tracer = self.cost.tracer();
        let now = self.cost.now_ns();
        let posted = tracer.is_enabled().then(|| (now, tracer.wall_now_ns()));
        let task =
            Arc::new(ServeTask::new(class_name, relay, recv_hash, msg, reply_tx, posted, now));
        state.queued.fetch_add(1, Ordering::Relaxed);
        let inflight = state.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        recorder.gauge_set(telemetry::Gauge::SchedInflight, inflight as u64);
        let queued = state.queued.load(Ordering::Relaxed) as u64;
        recorder.gauge_max(telemetry::Gauge::SwitchlessQueueDepthPeak, queued);
        recorder.gauge_set(telemetry::Gauge::SwitchlessQueueDepth, queued);
        state
            .timeouts
            .lock()
            .push_back((Instant::now() + self.sched.task_timeout, Arc::downgrade(&task)));
        state.injector.lock().push_back(task);
        let _ = state.wake_tx.send(());
        // The hand-off itself; the executor charges the wake, steal
        // and batched boundary copies as it schedules the task.
        self.cost.charge_ns(self.cost.params().switchless_call_ns);
        match self.wait_for_completion(&reply_rx)? {
            TaskCompletion::Served(out) => Ok(PostOutcome::Served(out)),
            TaskCompletion::TimedOut => {
                // The sweep already counted the fallback; the poster
                // pays the probe and takes the classic path.
                self.cost.charge_ns(self.cost.params().switchless_fallback_ns);
                Ok(PostOutcome::Fallback)
            }
        }
    }

    /// Waits for a posted task's completion. A plain thread blocks on
    /// the reply channel (exactly like the pool). An *executor* thread
    /// instead suspends: the pending task's state stays parked on this
    /// stack while the thread serves other tasks of its home side,
    /// checking for the reply between tasks.
    fn wait_for_completion(
        &self,
        reply_rx: &Receiver<TaskCompletion>,
    ) -> Result<TaskCompletion, VmError> {
        let lost = |_| VmError::Sgx(sgx_sim::SgxError::EnclaveLost);
        let executor = EXECUTOR.with(|e| e.borrow().clone());
        let home = executor.as_ref().and_then(|e| e.side.upgrade());
        let (Some(executor), Some(home)) = (executor, home) else {
            return reply_rx.recv().map_err(lost);
        };
        if HELP_DEPTH.with(|d| d.get()) >= MAX_HELP_DEPTH {
            return reply_rx.recv().map_err(lost);
        }
        // Suspension: this thread is an executor — give it back to the
        // pool while the nested crossing is outstanding.
        HELP_DEPTH.with(|d| d.set(d.get() + 1));
        let recorder = self.cost.recorder();
        recorder.incr(telemetry::Counter::SchedSuspends);
        self.cost.charge_ns(self.cost.params().sched_suspend_ns);
        let completion = loop {
            if let Ok(done) = reply_rx.try_recv() {
                break Ok(done);
            }
            if let Some(task) = next_task(&home, executor.slot, &executor.cost) {
                run_task(&home, &task, &executor.serve, &executor.cost);
                continue;
            }
            // Nothing to help with: wait briefly on the reply, staying
            // responsive to both the reply and fresh work.
            match reply_rx.recv_timeout(std::time::Duration::from_micros(200)) {
                Ok(done) => break Ok(done),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break Err(()),
            }
        };
        HELP_DEPTH.with(|d| d.set(d.get() - 1));
        self.cost.charge_ns(self.cost.params().sched_resume_ns);
        completion.map_err(|()| VmError::Sgx(sgx_sim::SgxError::EnclaveLost))
    }

    /// One tuner bookkeeping step for a call that just completed on
    /// `side`. Cheap no-op unless autotuning is configured. Unlike the
    /// pool (whose queue waits exist only under tracing), the
    /// scheduler records task waits unconditionally, so the controller
    /// is live with tracing off too.
    pub(crate) fn maybe_tune(&self, side: Side) {
        let Some(rt) = &self.tuner else { return };
        let state = self.side(side);
        let ticks = state.posts_since_tick.fetch_add(1, Ordering::Relaxed) + 1;
        if ticks < rt.tuner.config().interval_calls {
            return;
        }
        // One tick at a time per side; contended callers skip rather
        // than queue (the next interval will tick again).
        let Some(mut window) = rt.window(side).try_lock() else { return };
        if state.posts_since_tick.load(Ordering::Relaxed) < rt.tuner.config().interval_calls {
            return;
        }
        state.posts_since_tick.store(0, Ordering::Relaxed);

        let wait_now = state.wait_hist.snapshot();
        let batch_now = state.batch_hist.snapshot();
        let fallbacks_now = state.fallbacks.load(Ordering::Relaxed);
        let wait_window = wait_now.diff(&window.wait_prev);
        let batch_window = batch_now.diff(&window.batch_prev);
        let fallbacks = fallbacks_now.saturating_sub(window.fallbacks_prev);
        window.wait_prev = wait_now;
        window.batch_prev = batch_now;
        window.fallbacks_prev = fallbacks_now;

        let obs = Observation::from_window(
            &wait_window,
            &batch_window,
            fallbacks,
            state.active.load(Ordering::Relaxed),
            state.steal_target.load(Ordering::Relaxed),
        );
        let decision = rt.tuner.decide(self.config.min_workers, self.config.max_workers, &obs);
        self.apply_decision(state, &obs, &decision);
    }

    /// Applies one controller decision: resizes the executor target
    /// (spawning immediately on growth, lowering the retirement floor
    /// on shrink), stores the new injector grab bound, and exports the
    /// decision as telemetry counters and a cat-`queue` tuner span.
    fn apply_decision(&self, state: &Arc<SchedSide>, obs: &Observation, decision: &Decision) {
        let recorder = self.cost.recorder();
        let mut ups = 0u64;
        let mut downs = 0u64;
        match decision.workers {
            WorkerAction::Grow => {
                let n = state.active.load(Ordering::Relaxed);
                if n < self.config.max_workers
                    && state
                        .active
                        .compare_exchange(n, n + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    state
                        .tuner_target
                        .store((n + 1).min(self.config.max_workers), Ordering::Relaxed);
                    recorder.gauge_max(telemetry::Gauge::SwitchlessWorkersPeak, (n + 1) as u64);
                    recorder.gauge_set(telemetry::Gauge::SwitchlessWorkers, (n + 1) as u64);
                    self.spawn_executor(state);
                    ups += 1;
                }
            }
            WorkerAction::Shrink => {
                let target =
                    state.tuner_target.load(Ordering::Relaxed).max(self.config.min_workers);
                if target > self.config.min_workers {
                    state.tuner_target.store(target - 1, Ordering::Relaxed);
                    downs += 1;
                }
            }
            WorkerAction::Hold => {}
        }
        let target_batch = decision.target_batch.max(1);
        if target_batch != obs.max_batch {
            state.steal_target.store(target_batch, Ordering::Relaxed);
            recorder.gauge_set(telemetry::Gauge::SwitchlessTargetBatch, target_batch as u64);
            if target_batch > obs.max_batch {
                ups += 1;
            } else {
                downs += 1;
            }
        }
        recorder.add(telemetry::Counter::SwitchlessTuneUps, ups);
        recorder.add(telemetry::Counter::SwitchlessTuneDowns, downs);
        if ups + downs > 0 {
            let tracer = self.cost.tracer();
            let at = self.cost.now_ns();
            tracer.span_at(state.side.lane(), "queue", None, at, at, tracer.wall_now_ns(), || {
                format!(
                    "tune:{} {} workers={} batch={} p95={}ns",
                    state.side,
                    decision.reason,
                    state.active.load(Ordering::Relaxed),
                    target_batch,
                    obs.wait_p95_ns,
                )
            });
        }
    }

    /// Spawns one more executor on `state`'s side if miss pressure has
    /// accumulated and the pool is below `max_workers`.
    fn maybe_scale_up(&self, state: &Arc<SchedSide>) {
        if state.misses.load(Ordering::Relaxed) < self.config.scale_up_misses {
            return;
        }
        loop {
            let n = state.active.load(Ordering::Relaxed);
            if n >= self.config.max_workers {
                return;
            }
            if state.active.compare_exchange(n, n + 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
            {
                state.misses.store(0, Ordering::Relaxed);
                let recorder = self.cost.recorder();
                recorder.incr(telemetry::Counter::SwitchlessScaleUps);
                recorder.gauge_max(telemetry::Gauge::SwitchlessWorkersPeak, (n + 1) as u64);
                recorder.gauge_set(telemetry::Gauge::SwitchlessWorkers, (n + 1) as u64);
                self.spawn_executor(state);
                return;
            }
        }
    }

    /// Spawns one executor thread for `state`'s side. The caller has
    /// already counted it in `state.active`.
    fn spawn_executor(&self, state: &Arc<SchedSide>) {
        let Some(slot) = state.claim_slot() else {
            // Every slot is owned; undo the caller's count. (Cannot
            // happen while `active ≤ max_workers == slots.len()` holds,
            // but never spawn a slotless executor.)
            state.active.fetch_sub(1, Ordering::Relaxed);
            return;
        };
        let seq = self.executor_seq.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(state);
        let serve = Arc::clone(&self.serve);
        let cost = Arc::clone(&self.cost);
        let config = self.config.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{}-sched-{seq}", state.side))
            .spawn(move || executor_loop(&state, slot, &serve, &cost, &config))
            .expect("spawn scheduler executor");
        self.threads.lock().push(handle);
    }

    /// Spawns the shared timeout worker that sweeps both sides.
    fn spawn_timeout_worker(&self) {
        let trusted = Arc::clone(&self.trusted);
        let untrusted = Arc::clone(&self.untrusted);
        let cost = Arc::clone(&self.cost);
        let task_timeout = self.sched.task_timeout;
        let handle = std::thread::Builder::new()
            .name("sched-timeout".into())
            .spawn(move || timeout::timeout_loop(&[trusted, untrusted], &cost, task_timeout))
            .expect("spawn scheduler timeout worker");
        self.threads.lock().push(handle);
    }

    /// Stops the executors and the timeout worker: parked executors
    /// are woken (or exit at their next poll), then every thread is
    /// joined.
    pub(crate) fn shutdown(self) {
        for state in [&self.trusted, &self.untrusted] {
            state.stop.store(true, Ordering::Relaxed);
            for _ in 0..state.slots.len() {
                let _ = state.wake_tx.send(());
            }
        }
        let handles = std::mem::take(&mut *self.threads.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// One executor: find work (own deque → steal → injector), serve it,
/// park when there is none; retire when idle past the park interval
/// and the pool is above its floor.
fn executor_loop(
    state: &Arc<SchedSide>,
    slot: usize,
    serve: &ServeFn,
    cost: &Arc<CostModel>,
    config: &SwitchlessConfig,
) {
    EXECUTOR.with(|e| {
        *e.borrow_mut() = Some(ExecutorCtx {
            side: Arc::downgrade(state),
            slot,
            serve: Arc::clone(serve),
            cost: Arc::clone(cost),
        });
    });
    let recorder = Arc::clone(cost.recorder());
    let params = cost.params().clone();
    // A fresh executor is parked until its first task: waking it costs.
    let mut parked = true;
    state.idle.fetch_add(1, Ordering::Relaxed);
    let mut retired = false;
    loop {
        if state.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(task) = next_task(state, slot, cost) {
            state.idle.fetch_sub(1, Ordering::Relaxed);
            if parked {
                recorder.incr(telemetry::Counter::SwitchlessWorkerWakes);
                cost.charge_ns(params.switchless_wake_ns);
                parked = false;
            }
            run_task(state, &task, serve, cost);
            state.idle.fetch_add(1, Ordering::Relaxed);
        } else {
            match state.wake_rx.recv_timeout(config.idle_park) {
                // A token arrived — loop around and look for the work
                // it announced (a sibling may already have taken it).
                Ok(()) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    if state.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Idle a full park interval: retire if above the
                    // tuner's executor target (which never drops below
                    // `min_workers`).
                    let floor = state.tuner_target.load(Ordering::Relaxed).max(config.min_workers);
                    if try_retire(state, floor) {
                        recorder.incr(telemetry::Counter::SwitchlessScaleDowns);
                        recorder.gauge_set(
                            telemetry::Gauge::SwitchlessWorkers,
                            state.active.load(Ordering::Relaxed) as u64,
                        );
                        retired = true;
                        break;
                    }
                    parked = true;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    if !retired {
        state.active.fetch_sub(1, Ordering::Relaxed);
    }
    state.idle.fetch_sub(1, Ordering::Relaxed);
    state.slots[slot].occupied.store(false, Ordering::Release);
    EXECUTOR.with(|e| {
        *e.borrow_mut() = None;
    });
}

/// Decrements `state.active` unless that would drop the pool below
/// `min`; returns whether the calling executor should exit.
fn try_retire(state: &SchedSide, min: usize) -> bool {
    loop {
        let n = state.active.load(Ordering::Relaxed);
        if n <= min {
            return false;
        }
        if state.active.compare_exchange(n, n - 1, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            return true;
        }
    }
}

/// Finds the next task in steal order: own deque (newest first) →
/// a sibling's deque (oldest first, charged as a steal) → an injector
/// batch grab whose surplus lands on the own deque.
fn next_task(state: &Arc<SchedSide>, slot: usize, cost: &Arc<CostModel>) -> Option<Arc<ServeTask>> {
    if let Some(task) = state.slots[slot].deque.lock().pop_back() {
        return Some(task);
    }
    let n = state.slots.len();
    for offset in 1..n {
        let victim = (slot + offset) % n;
        let stolen = state.slots[victim].deque.lock().pop_front();
        if let Some(task) = stolen {
            cost.recorder().incr(telemetry::Counter::SchedSteals);
            cost.charge_ns(cost.params().sched_steal_ns);
            return Some(task);
        }
    }
    let batch_target = state.steal_target.load(Ordering::Relaxed).max(1);
    let mut grabbed: Vec<Arc<ServeTask>> = Vec::new();
    {
        let mut injector = state.injector.lock();
        while grabbed.len() < batch_target {
            match injector.pop_front() {
                Some(task) => grabbed.push(task),
                None => break,
            }
        }
    }
    if grabbed.is_empty() {
        return None;
    }
    // The whole grab crosses as one batch frame, exactly like the
    // pool's mailbox drain: one header, then each request's wire
    // bytes (traced frames carry the context per payload).
    let recorder = cost.recorder();
    recorder.record(telemetry::Hist::SwitchlessBatchJobs, grabbed.len() as u64);
    state.batch_hist.record(grabbed.len() as u64);
    let tracer = cost.tracer();
    let frame_bytes = if tracer.is_enabled() {
        let payloads: Vec<(usize, bool)> =
            grabbed.iter().map(|t| (t.msg.wire_len_sans_trace(), t.msg.trace.is_some())).collect();
        rmi::batch::traced_frame_len(&payloads)
    } else {
        let wire_lens: Vec<usize> = grabbed.iter().map(|t| t.msg.wire_len()).collect();
        rmi::batch::frame_len(&wire_lens)
    };
    cost.charge_ns((frame_bytes as f64 * cost.params().copy_ns_per_byte) as u64);
    let first = grabbed.remove(0);
    if !grabbed.is_empty() {
        let mut deque = state.slots[slot].deque.lock();
        for task in grabbed {
            deque.push_back(task);
        }
    }
    Some(first)
}

/// Claims and serves one task end to end: advance the stage machine,
/// record the task wait, execute the relay (with the task current, so
/// `serve_relay_inner` can advance decode/execute/encode), and deliver
/// the reply. A task the timeout worker already swept is dropped.
fn run_task(state: &Arc<SchedSide>, task: &Arc<ServeTask>, serve: &ServeFn, cost: &Arc<CostModel>) {
    if !task.claim_for_run() {
        return;
    }
    state.queued.fetch_sub(1, Ordering::Relaxed);
    let recorder = cost.recorder();
    recorder.gauge_set(
        telemetry::Gauge::SwitchlessQueueDepth,
        state.queued.load(Ordering::Relaxed) as u64,
    );
    let picked_up = cost.now_ns();
    let wait = picked_up.saturating_sub(task.posted_model_ns);
    recorder.record(telemetry::Hist::SchedTaskWaitNs, wait);
    state.wait_hist.record(wait);
    if let Some((posted_model, posted_wall)) = task.posted {
        cost.tracer().span_at(
            state.side.lane(),
            "queue",
            task.msg.parent_span(),
            posted_model,
            picked_up.max(posted_model),
            posted_wall,
            || format!("task-wait:{}.{}", task.class_name, task.relay),
        );
    }
    task.set_stage(TaskStage::Decode);
    let out = with_current_task(task, || {
        serve(state.side, &task.class_name, &task.relay, task.recv_hash, &task.msg)
    });
    task.set_stage(TaskStage::Complete);
    let inflight = state.inflight.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
    recorder.gauge_set(telemetry::Gauge::SchedInflight, inflight as u64);
    let _ = task.reply.send(TaskCompletion::Served(out));
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Duration;

    use proptest::prelude::*;
    use sgx_sim::cost::{ClockMode, CostParams};

    use super::*;

    fn echo_serve() -> ServeFn {
        Arc::new(|_side, _class, _relay, _hash, msg| Ok(msg.clone()))
    }

    /// A serve fn that blocks until `release` is signalled, so tests
    /// can hold the executors busy deterministically.
    fn gated_serve(entered: Arc<AtomicUsize>, release: Receiver<()>) -> ServeFn {
        Arc::new(move |_side, _class, _relay, _hash, msg| {
            entered.fetch_add(1, Ordering::SeqCst);
            let _ = release.recv();
            Ok(msg.clone())
        })
    }

    fn msg() -> WireMsg {
        WireMsg { recv_hash: None, hints: Vec::new(), payload: vec![1, 2, 3].into(), trace: None }
    }

    fn model() -> Arc<CostModel> {
        Arc::new(CostModel::new(CostParams::paper_defaults(), ClockMode::Virtual))
    }

    fn sched_config(sched: SchedulerConfig, workers: usize) -> SwitchlessConfig {
        SwitchlessConfig { scheduler: Some(sched), ..SwitchlessConfig::fixed(workers) }
    }

    fn task_for(side: &Arc<SchedSide>, id: u32) -> (Arc<ServeTask>, Receiver<TaskCompletion>) {
        let (tx, rx) = bounded(1);
        let task = Arc::new(ServeTask::new(format!("C{id}"), "r".into(), None, msg(), tx, None, 0));
        side.queued.fetch_add(1, Ordering::Relaxed);
        side.inflight.fetch_add(1, Ordering::Relaxed);
        (task, rx)
    }

    #[test]
    fn served_posts_round_trip() {
        let sched =
            Scheduler::spawn(&sched_config(SchedulerConfig::default(), 2), echo_serve(), model());
        for _ in 0..16 {
            match sched.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap() {
                PostOutcome::Served(out) => assert_eq!(out.unwrap(), msg()),
                PostOutcome::Fallback => panic!("an idle scheduler must not fall back"),
            }
        }
        assert_eq!(sched.stats().trusted.queued, 0);
        sched.shutdown();
    }

    /// White-box steal order: an executor with an empty local deque
    /// takes the *oldest* task from a sibling's deque before touching
    /// the injector, and the steal is counted and charged.
    #[test]
    fn empty_deque_steals_oldest_from_sibling_before_injector() {
        let cost = model();
        let config = sched_config(SchedulerConfig::default(), 2).normalized();
        let sched_cfg = config.scheduler.clone().unwrap();
        let side = Arc::new(SchedSide::new(Side::Trusted, &config, &sched_cfg));
        let (first, _rx1) = task_for(&side, 1);
        let (second, _rx2) = task_for(&side, 2);
        side.slots[1].deque.lock().push_back(Arc::clone(&first));
        side.slots[1].deque.lock().push_back(Arc::clone(&second));
        // A third task sits in the injector; the sibling deque wins.
        let (third, _rx3) = task_for(&side, 3);
        side.injector.lock().push_back(Arc::clone(&third));

        let charged_before = cost.charged();
        let got = next_task(&side, 0, &cost).expect("a task is available");
        assert!(Arc::ptr_eq(&got, &first), "thieves take the victim's oldest task");
        assert_eq!(cost.recorder().counter(telemetry::Counter::SchedSteals), 1);
        let steal_ns = cost.params().sched_steal_ns;
        assert!(
            cost.charged() - charged_before >= Duration::from_nanos(steal_ns),
            "the steal must be charged"
        );

        let got = next_task(&side, 0, &cost).expect("the second sibling task");
        assert!(Arc::ptr_eq(&got, &second));
        assert_eq!(cost.recorder().counter(telemetry::Counter::SchedSteals), 2);

        // Both deques empty now: the injector is the last resort.
        let got = next_task(&side, 0, &cost).expect("the injector task");
        assert!(Arc::ptr_eq(&got, &third));
        assert_eq!(cost.recorder().counter(telemetry::Counter::SchedSteals), 2);
        assert!(next_task(&side, 0, &cost).is_none());
    }

    /// White-box injector grab: one visit takes up to `steal_target`
    /// tasks, serves the first and parks the surplus on the grabbing
    /// executor's own deque — where a sibling can steal it.
    #[test]
    fn injector_grab_parks_surplus_on_own_deque() {
        let cost = model();
        let config =
            sched_config(SchedulerConfig { steal_batch: 2, ..SchedulerConfig::default() }, 2)
                .normalized();
        let sched_cfg = config.scheduler.clone().unwrap();
        let side = Arc::new(SchedSide::new(Side::Trusted, &config, &sched_cfg));
        let tasks: Vec<_> = (0..3).map(|i| task_for(&side, i).0).collect();
        for t in &tasks {
            side.injector.lock().push_back(Arc::clone(t));
        }

        let got = next_task(&side, 0, &cost).expect("grab returns the first task");
        assert!(Arc::ptr_eq(&got, &tasks[0]));
        assert_eq!(side.injector.lock().len(), 1, "grab bounded by steal_batch");
        assert_eq!(side.slots[0].deque.lock().len(), 1, "surplus parked locally");
        let snap = cost.recorder().snapshot();
        assert_eq!(snap.hist(telemetry::Hist::SwitchlessBatchJobs).sum, 2);

        // The parked surplus is a steal target for slot 1.
        let got = next_task(&side, 1, &cost).expect("sibling steals the surplus");
        assert!(Arc::ptr_eq(&got, &tasks[1]));
        assert_eq!(cost.recorder().counter(telemetry::Counter::SchedSteals), 1);
    }

    /// Backpressure: with a one-slot injector and the only executor
    /// held busy, one task may wait queued; the next post must be
    /// rejected into the fallback path without blocking.
    #[test]
    fn full_injector_rejects_post_into_fallback() {
        let cost = model();
        let entered = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = bounded::<()>(16);
        let config = sched_config(
            SchedulerConfig {
                injector_capacity: 1,
                task_timeout: Duration::from_secs(30),
                ..SchedulerConfig::default()
            },
            1,
        );
        let sched = Arc::new(Scheduler::spawn(
            &config,
            gated_serve(Arc::clone(&entered), release_rx),
            Arc::clone(&cost),
        ));

        // Post A on a helper thread; wait until the executor holds it.
        let sched_a = Arc::clone(&sched);
        let a = std::thread::spawn(move || {
            sched_a.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap()
        });
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // Post B on a helper thread; wait until it occupies the slot.
        let sched_b = Arc::clone(&sched);
        let b = std::thread::spawn(move || {
            sched_b.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap()
        });
        while sched.stats().trusted.queued == 0 {
            std::thread::yield_now();
        }

        // The injector is provably full: this post must be rejected.
        let before = cost.recorder().counter(telemetry::Counter::SwitchlessFallbacks);
        let charged_before = cost.charged();
        match sched.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap() {
            PostOutcome::Fallback => {}
            PostOutcome::Served(_) => panic!("a full injector must reject"),
        }
        assert_eq!(
            cost.recorder().counter(telemetry::Counter::SwitchlessFallbacks),
            before + 1,
            "rejection must count a fallback"
        );
        let probe = cost.params().switchless_fallback_ns;
        assert!(
            cost.charged() - charged_before >= Duration::from_nanos(probe),
            "rejection must charge the failed probe"
        );

        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert!(matches!(a.join().unwrap(), PostOutcome::Served(Ok(_))));
        assert!(matches!(b.join().unwrap(), PostOutcome::Served(Ok(_))));
        match Arc::try_unwrap(sched) {
            Ok(sched) => sched.shutdown(),
            Err(_) => panic!("no other scheduler handles remain"),
        }
    }

    /// The timeout worker sweeps a task that sat queued past its
    /// deadline into the fallback path: the poster gets `Fallback`,
    /// `rmi.sched_timeouts` counts it, and the held task is *not*
    /// served afterwards (exactly-once).
    #[test]
    fn timeout_sweeps_overdue_tasks_into_fallback() {
        let cost = model();
        let entered = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = bounded::<()>(16);
        let config = sched_config(
            SchedulerConfig { task_timeout: Duration::from_millis(10), ..Default::default() },
            1,
        );
        let sched = Arc::new(Scheduler::spawn(
            &config,
            gated_serve(Arc::clone(&entered), release_rx),
            Arc::clone(&cost),
        ));

        let sched_a = Arc::clone(&sched);
        let a = std::thread::spawn(move || {
            sched_a.post(Side::Trusted, "held".into(), "r".into(), None, msg()).unwrap()
        });
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // B queues behind the held executor and must be swept.
        let outcome = sched.post(Side::Trusted, "late".into(), "r".into(), None, msg()).unwrap();
        assert!(matches!(outcome, PostOutcome::Fallback), "an overdue task falls back");
        assert!(cost.recorder().counter(telemetry::Counter::SchedTimeouts) >= 1);
        assert!(cost.recorder().counter(telemetry::Counter::SwitchlessFallbacks) >= 1);

        release_tx.send(()).unwrap();
        assert!(matches!(a.join().unwrap(), PostOutcome::Served(Ok(_))));
        // Only A's serve ever ran: the swept task was dropped at claim
        // time, not served twice.
        release_tx.send(()).unwrap(); // unblock a spurious serve, if any
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(entered.load(Ordering::SeqCst), 1, "the swept task must never be served");
        match Arc::try_unwrap(sched) {
            Ok(sched) => sched.shutdown(),
            Err(_) => panic!("no other scheduler handles remain"),
        }
    }

    /// A nested crossing posted from an executor thread suspends the
    /// outer task instead of blocking the thread: the suspend is
    /// counted, and the nested round trip completes with one executor
    /// per side.
    #[test]
    fn nested_crossing_suspends_the_executor_task() {
        let cost = model();
        let slot: Arc<Mutex<Option<Arc<Scheduler>>>> = Arc::new(Mutex::new(None));
        let serve: ServeFn = {
            let slot = Arc::clone(&slot);
            Arc::new(move |side, class, _relay, _hash, msg| {
                if class == "outer" {
                    let sched = slot.lock().clone().expect("scheduler installed before posts");
                    let target = match side {
                        Side::Trusted => Side::Untrusted,
                        Side::Untrusted => Side::Trusted,
                    };
                    match sched.post(target, "inner".into(), "r".into(), None, msg.clone())? {
                        PostOutcome::Served(out) => out,
                        PostOutcome::Fallback => Ok(msg.clone()),
                    }
                } else {
                    Ok(msg.clone())
                }
            })
        };
        let sched = Arc::new(Scheduler::spawn(
            &sched_config(SchedulerConfig::default(), 1),
            serve,
            Arc::clone(&cost),
        ));
        *slot.lock() = Some(Arc::clone(&sched));

        match sched.post(Side::Trusted, "outer".into(), "r".into(), None, msg()).unwrap() {
            PostOutcome::Served(out) => assert_eq!(out.unwrap(), msg()),
            PostOutcome::Fallback => panic!("an idle scheduler must not fall back"),
        }
        assert_eq!(
            cost.recorder().counter(telemetry::Counter::SchedSuspends),
            1,
            "the nested crossing must suspend the outer task"
        );

        *slot.lock() = None;
        match Arc::try_unwrap(sched) {
            Ok(sched) => sched.shutdown(),
            Err(_) => panic!("no other scheduler handles remain"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Exactly-once under arbitrary interleavings of posts,
        /// steals, suspensions and timeouts: every posted call
        /// resolves exactly once — a `Served` outcome whose body ran
        /// exactly once, or a `Fallback` whose body never ran — and
        /// the shared fallback counter agrees with the outcomes.
        #[test]
        fn interleavings_never_lose_or_duplicate_a_task(
            executors in 1usize..4,
            capacity in 1usize..9,
            steal_batch in 1usize..5,
            timeout_ms in 1u64..12,
            service_us in proptest::collection::vec(0u64..2_500, 4..32),
        ) {
            let cost = model();
            let served: Arc<Mutex<HashMap<usize, u32>>> = Arc::new(Mutex::new(HashMap::new()));
            let serve: ServeFn = {
                let served = Arc::clone(&served);
                Arc::new(move |_side, class, _relay, _hash, msg| {
                    let (id, delay) = class
                        .split_once(':')
                        .map(|(i, d)| (i.parse().unwrap(), d.parse().unwrap()))
                        .expect("class carries `id:delay_us`");
                    if delay > 0 {
                        std::thread::sleep(Duration::from_micros(delay));
                    }
                    *served.lock().entry(id).or_insert(0u32) += 1;
                    Ok(msg.clone())
                })
            };
            let config = sched_config(
                SchedulerConfig {
                    injector_capacity: capacity,
                    steal_batch,
                    task_timeout: Duration::from_millis(timeout_ms),
                },
                executors,
            );
            let sched = Arc::new(Scheduler::spawn(&config, serve, Arc::clone(&cost)));

            let mut posters = Vec::new();
            for (i, delay) in service_us.iter().copied().enumerate() {
                let sched = Arc::clone(&sched);
                let side = if i % 2 == 0 { Side::Trusted } else { Side::Untrusted };
                posters.push(std::thread::spawn(move || {
                    let out = sched
                        .post(side, format!("{i}:{delay}"), "r".into(), None, msg())
                        .unwrap();
                    (i, matches!(out, PostOutcome::Served(_)))
                }));
            }
            let outcomes: Vec<(usize, bool)> =
                posters.into_iter().map(|p| p.join().unwrap()).collect();
            prop_assert_eq!(outcomes.len(), service_us.len(), "every post resolves");

            let served = served.lock();
            let mut fallbacks = 0u64;
            for (id, hit) in &outcomes {
                let runs = served.get(id).copied().unwrap_or(0);
                if *hit {
                    prop_assert_eq!(runs, 1, "served post {} must run exactly once", id);
                } else {
                    prop_assert_eq!(runs, 0, "fallback post {} must never run", id);
                    fallbacks += 1;
                }
            }
            prop_assert_eq!(
                cost.recorder().counter(telemetry::Counter::SwitchlessFallbacks),
                fallbacks,
                "fallback telemetry agrees with outcomes"
            );
            prop_assert!(
                cost.recorder().counter(telemetry::Counter::SchedTimeouts) <= fallbacks,
                "timeouts are a subset of fallbacks"
            );
            drop(served);
            match Arc::try_unwrap(sched) {
                Ok(sched) => sched.shutdown(),
                Err(_) => return Err(TestCaseError::fail("scheduler handle leaked")),
            }
        }
    }
}
