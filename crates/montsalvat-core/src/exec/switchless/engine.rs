//! The thread-per-worker switchless engine (PR 2's adaptive pool).
//!
//! This module implements the *adaptive* engine modeled on the Intel
//! SGX switchless library:
//!
//! - **Per-side worker pools** whose workers park when idle (a bounded
//!   wait on the mailbox) and are woken on demand; a wakeup from a
//!   parked state is charged [`CostParams::switchless_wake_ns`].
//! - **A bounded mailbox with classic fallback**: a caller that finds
//!   the mailbox full does not block — it pays a small probe charge
//!   ([`CostParams::switchless_fallback_ns`]) and performs a classic
//!   EENTER/EEXIT crossing instead, so the engine degrades to the
//!   classic path under overload instead of queueing without bound.
//! - **Miss-driven adaptive scaling**: posts that find no idle worker
//!   (or a full mailbox) count as *misses*; accumulated misses spawn
//!   another worker up to [`SwitchlessConfig::max_workers`], and
//!   workers that stay idle past [`SwitchlessConfig::idle_park`]
//!   retire down to [`SwitchlessConfig::min_workers`].
//! - **Small-batch drain**: a woken worker serves up to
//!   [`SwitchlessConfig::max_batch`] queued requests per wakeup,
//!   moving them across the boundary as one [`rmi::batch`] frame so
//!   the wake and the frame header amortise across the batch.
//! - **Trace-driven autotuning** (optional, [`SwitchlessConfig::autotune`]
//!   or `MONTSALVAT_AUTOTUNE=1`): when tracing is enabled, the
//!   [`tuner`] feedback controller periodically reduces the recorded
//!   queue-wait and batch-size distributions to wait quantiles and
//!   resizes worker targets and the batch bound from them; with
//!   tracing disabled no waits are recorded, the controller holds,
//!   and the miss-counter path above remains the only scaling
//!   mechanism.
//!
//! The reproduction implements the mechanism with real threads and
//! real mailboxes: requests genuinely execute on a worker of the
//! opposite world, concurrently with the caller, and the cost model
//! charges the switchless hand-off instead of the transition. The
//! ablation binary `experiments/src/bin/switchless_ablation.rs` and
//! the `switchless_*` tests compare fixed pools, the adaptive engine
//! and classic crossings.
//!
//! [`CostParams::switchless_wake_ns`]: sgx_sim::cost::CostParams::switchless_wake_ns
//! [`CostParams::switchless_fallback_ns`]: sgx_sim::cost::CostParams::switchless_fallback_ns

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use rmi::hash::ProxyHash;
use sgx_sim::cost::CostModel;
use telemetry::AtomicHistogram;

use super::tuner::{Decision, Observation, WorkerAction};
use super::{
    PostOutcome, ServeFn, SideStats, SwitchlessConfig, SwitchlessJob, SwitchlessStats, TunerRuntime,
};
use crate::annotation::Side;
use crate::error::VmError;
use crate::exec::ctx::WireMsg;

/// Worker-shared state of one side's pool.
struct SideState {
    side: Side,
    rx: Receiver<SwitchlessJob>,
    /// Resident workers; the scaling invariant
    /// `min_workers ≤ active ≤ max_workers` is maintained by CAS.
    active: AtomicUsize,
    /// Workers parked on (or about to poll) the mailbox.
    idle: AtomicUsize,
    /// Jobs posted and not yet picked up.
    queued: AtomicUsize,
    /// Misses accumulated since the last scale-up.
    misses: AtomicU64,
    /// Set by shutdown; parked workers exit at their next poll.
    stop: AtomicBool,
    /// Tuner-chosen resident-worker target: the retirement floor idle
    /// workers honour. Stays at `min_workers` while the tuner is
    /// inert, which makes the engine bit-identical to the miss-counter
    /// design when tracing (or autotuning) is off.
    tuner_target: AtomicUsize,
    /// Tuner-chosen batch drain bound (starts at `config.max_batch`).
    batch_target: AtomicUsize,
    /// Classic fallbacks on this side (windowed by the tuner).
    fallbacks: AtomicU64,
    /// Per-side queue-wait distribution (model ns); same values as the
    /// global `rmi.switchless_queue_wait_ns` histogram, kept here so
    /// tuner windows are per-lane.
    wait_hist: AtomicHistogram,
    /// Per-side batch drain sizes (same values as
    /// `rmi.switchless_batch_jobs`).
    batch_hist: AtomicHistogram,
    /// Posts since the tuner's last tick on this side.
    posts_since_tick: AtomicU64,
}

/// The per-application switchless machinery: one bounded mailbox per
/// side, served by that side's adaptively-sized worker pool.
pub(crate) struct SwitchlessPool {
    config: SwitchlessConfig,
    serve: ServeFn,
    cost: Arc<CostModel>,
    trusted_tx: Sender<SwitchlessJob>,
    untrusted_tx: Sender<SwitchlessJob>,
    trusted: Arc<SideState>,
    untrusted: Arc<SideState>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_seq: AtomicUsize,
    /// Present when [`SwitchlessConfig::autotune`] is set.
    tuner: Option<TunerRuntime>,
}

impl std::fmt::Debug for SwitchlessPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchlessPool")
            .field("config", &self.config)
            .field("trusted_workers", &self.trusted.active.load(Ordering::Relaxed))
            .field("untrusted_workers", &self.untrusted.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl SwitchlessPool {
    /// Spawns `min_workers` per side. `serve` is the relay dispatcher
    /// bound to the application (it captures `AppShared`); `cost` is
    /// the application's cost model, whose recorder receives the
    /// engine's telemetry.
    pub(crate) fn spawn(config: &SwitchlessConfig, serve: ServeFn, cost: Arc<CostModel>) -> Self {
        let config = config.normalized();
        let (trusted_tx, trusted_rx) = bounded::<SwitchlessJob>(config.mailbox_capacity);
        let (untrusted_tx, untrusted_rx) = bounded::<SwitchlessJob>(config.mailbox_capacity);
        let (min_workers, max_batch) = (config.min_workers, config.max_batch);
        let side_state = move |side: Side, rx: Receiver<SwitchlessJob>| {
            Arc::new(SideState {
                side,
                rx,
                active: AtomicUsize::new(0),
                idle: AtomicUsize::new(0),
                queued: AtomicUsize::new(0),
                misses: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                tuner_target: AtomicUsize::new(min_workers),
                batch_target: AtomicUsize::new(max_batch),
                fallbacks: AtomicU64::new(0),
                wait_hist: AtomicHistogram::new(),
                batch_hist: AtomicHistogram::new(),
                posts_since_tick: AtomicU64::new(0),
            })
        };
        let tuner = TunerRuntime::from_config(&config, &cost);
        cost.recorder().gauge_set(telemetry::Gauge::SwitchlessTargetBatch, config.max_batch as u64);
        let pool = SwitchlessPool {
            config,
            serve,
            cost,
            trusted_tx,
            untrusted_tx,
            trusted: side_state(Side::Trusted, trusted_rx),
            untrusted: side_state(Side::Untrusted, untrusted_rx),
            workers: Mutex::new(Vec::new()),
            worker_seq: AtomicUsize::new(0),
            tuner,
        };
        for side in [Side::Trusted, Side::Untrusted] {
            let state = Arc::clone(pool.side(side));
            for _ in 0..pool.config.min_workers {
                state.active.fetch_add(1, Ordering::Relaxed);
                pool.spawn_worker(&state);
            }
            pool.cost
                .recorder()
                .gauge_max(telemetry::Gauge::SwitchlessWorkersPeak, pool.config.min_workers as u64);
            pool.cost
                .recorder()
                .gauge_set(telemetry::Gauge::SwitchlessWorkers, pool.config.min_workers as u64);
        }
        pool
    }

    fn side(&self, side: Side) -> &Arc<SideState> {
        match side {
            Side::Trusted => &self.trusted,
            Side::Untrusted => &self.untrusted,
        }
    }

    fn tx(&self, side: Side) -> &Sender<SwitchlessJob> {
        match side {
            Side::Trusted => &self.trusted_tx,
            Side::Untrusted => &self.untrusted_tx,
        }
    }

    /// Live worker/queue readings (tests and the ablation harness).
    pub(crate) fn stats(&self) -> SwitchlessStats {
        let read = |s: &SideState| SideStats {
            workers: s.active.load(Ordering::Relaxed),
            idle: s.idle.load(Ordering::Relaxed),
            queued: s.queued.load(Ordering::Relaxed),
        };
        SwitchlessStats { trusted: read(&self.trusted), untrusted: read(&self.untrusted) }
    }

    /// Posts a call to `side`'s mailbox. On a hit, blocks for the
    /// reply; on a full mailbox, charges the probe and returns
    /// [`PostOutcome::Fallback`] so the caller performs a classic
    /// crossing instead of blocking.
    pub(crate) fn post(
        &self,
        side: Side,
        class_name: String,
        relay: String,
        recv_hash: Option<ProxyHash>,
        msg: WireMsg,
    ) -> Result<PostOutcome, VmError> {
        let state = self.side(side);
        let recorder = self.cost.recorder();
        // Pressure signal: a post that finds every worker busy is a
        // miss even if the mailbox still has room.
        if state.idle.load(Ordering::Relaxed) == 0 {
            recorder.incr(telemetry::Counter::SwitchlessMisses);
            state.misses.fetch_add(1, Ordering::Relaxed);
            self.maybe_scale_up(state);
        }
        let (reply_tx, reply_rx) = bounded(1);
        let tracer = self.cost.tracer();
        let posted = tracer.is_enabled().then(|| (self.cost.now_ns(), tracer.wall_now_ns()));
        let job = SwitchlessJob { class_name, relay, recv_hash, msg, reply: reply_tx, posted };
        state.queued.fetch_add(1, Ordering::Relaxed);
        match self.tx(side).try_send(job) {
            Ok(()) => {
                let queued = state.queued.load(Ordering::Relaxed) as u64;
                recorder.gauge_max(telemetry::Gauge::SwitchlessQueueDepthPeak, queued);
                recorder.gauge_set(telemetry::Gauge::SwitchlessQueueDepth, queued);
                // The hand-off itself; the worker charges the wake and
                // the batched boundary copy when it drains the mailbox.
                self.cost.charge_ns(self.cost.params().switchless_call_ns);
                match reply_rx.recv() {
                    Ok(out) => Ok(PostOutcome::Served(out)),
                    Err(_) => Err(VmError::Sgx(sgx_sim::SgxError::EnclaveLost)),
                }
            }
            Err(TrySendError::Full(_)) => {
                state.queued.fetch_sub(1, Ordering::Relaxed);
                recorder.incr(telemetry::Counter::SwitchlessFallbacks);
                recorder.incr(telemetry::Counter::SwitchlessMisses);
                state.fallbacks.fetch_add(1, Ordering::Relaxed);
                state.misses.fetch_add(1, Ordering::Relaxed);
                self.maybe_scale_up(state);
                self.cost.charge_ns(self.cost.params().switchless_fallback_ns);
                Ok(PostOutcome::Fallback)
            }
            Err(TrySendError::Disconnected(_)) => {
                state.queued.fetch_sub(1, Ordering::Relaxed);
                Err(VmError::Sgx(sgx_sim::SgxError::EnclaveLost))
            }
        }
    }

    /// One tuner bookkeeping step for a call that just completed on
    /// `side`. Cheap no-op unless autotuning is configured *and*
    /// tracing is enabled (without tracing no queue waits are
    /// recorded, so the controller would only ever hold — the
    /// miss-counter path stays authoritative). Every
    /// [`TunerConfig::interval_calls`] posts, diffs the side's
    /// histograms into a window, runs the pure controller and applies
    /// its decision.
    pub(crate) fn maybe_tune(&self, side: Side) {
        let Some(rt) = &self.tuner else { return };
        if !self.cost.tracer().is_enabled() {
            return;
        }
        let state = self.side(side);
        let ticks = state.posts_since_tick.fetch_add(1, Ordering::Relaxed) + 1;
        if ticks < rt.tuner.config().interval_calls {
            return;
        }
        // One tick at a time per side; contended callers skip rather
        // than queue (the next interval will tick again).
        let Some(mut window) = rt.window(side).try_lock() else { return };
        if state.posts_since_tick.load(Ordering::Relaxed) < rt.tuner.config().interval_calls {
            return;
        }
        state.posts_since_tick.store(0, Ordering::Relaxed);

        let wait_now = state.wait_hist.snapshot();
        let batch_now = state.batch_hist.snapshot();
        let fallbacks_now = state.fallbacks.load(Ordering::Relaxed);
        let wait_window = wait_now.diff(&window.wait_prev);
        let batch_window = batch_now.diff(&window.batch_prev);
        let fallbacks = fallbacks_now.saturating_sub(window.fallbacks_prev);
        window.wait_prev = wait_now;
        window.batch_prev = batch_now;
        window.fallbacks_prev = fallbacks_now;

        let obs = Observation::from_window(
            &wait_window,
            &batch_window,
            fallbacks,
            state.active.load(Ordering::Relaxed),
            state.batch_target.load(Ordering::Relaxed),
        );
        let decision = rt.tuner.decide(self.config.min_workers, self.config.max_workers, &obs);
        self.apply_decision(state, &obs, &decision);
    }

    /// Applies one controller decision: resizes the worker target (and
    /// spawns/retires accordingly), stores the new batch bound, and
    /// exports the decision as telemetry counters and a cat-`queue`
    /// tuner span.
    fn apply_decision(&self, state: &Arc<SideState>, obs: &Observation, decision: &Decision) {
        let recorder = self.cost.recorder();
        let mut ups = 0u64;
        let mut downs = 0u64;
        match decision.workers {
            WorkerAction::Grow => {
                let n = state.active.load(Ordering::Relaxed);
                if n < self.config.max_workers
                    && state
                        .active
                        .compare_exchange(n, n + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    state
                        .tuner_target
                        .store((n + 1).min(self.config.max_workers), Ordering::Relaxed);
                    recorder.gauge_max(telemetry::Gauge::SwitchlessWorkersPeak, (n + 1) as u64);
                    recorder.gauge_set(telemetry::Gauge::SwitchlessWorkers, (n + 1) as u64);
                    self.spawn_worker(state);
                    ups += 1;
                }
            }
            WorkerAction::Shrink => {
                let target =
                    state.tuner_target.load(Ordering::Relaxed).max(self.config.min_workers);
                if target > self.config.min_workers {
                    // Lower the retirement floor; an idle worker
                    // retires at its next park timeout.
                    state.tuner_target.store(target - 1, Ordering::Relaxed);
                    downs += 1;
                }
            }
            WorkerAction::Hold => {}
        }
        let target_batch = decision.target_batch.max(1);
        if target_batch != obs.max_batch {
            state.batch_target.store(target_batch, Ordering::Relaxed);
            recorder.gauge_set(telemetry::Gauge::SwitchlessTargetBatch, target_batch as u64);
            if target_batch > obs.max_batch {
                ups += 1;
            } else {
                downs += 1;
            }
        }
        recorder.add(telemetry::Counter::SwitchlessTuneUps, ups);
        recorder.add(telemetry::Counter::SwitchlessTuneDowns, downs);
        if ups + downs > 0 {
            // Decisions that changed something are visible in traces as
            // zero-width cat-`queue` marks on the tuned side's lane.
            let tracer = self.cost.tracer();
            let at = self.cost.now_ns();
            tracer.span_at(state.side.lane(), "queue", None, at, at, tracer.wall_now_ns(), || {
                format!(
                    "tune:{} {} workers={} batch={} p95={}ns",
                    state.side,
                    decision.reason,
                    state.active.load(Ordering::Relaxed),
                    target_batch,
                    obs.wait_p95_ns,
                )
            });
        }
    }

    /// Spawns one more worker on `state`'s side if miss pressure has
    /// accumulated and the pool is below `max_workers`.
    fn maybe_scale_up(&self, state: &Arc<SideState>) {
        if state.misses.load(Ordering::Relaxed) < self.config.scale_up_misses {
            return;
        }
        loop {
            let n = state.active.load(Ordering::Relaxed);
            if n >= self.config.max_workers {
                return;
            }
            if state.active.compare_exchange(n, n + 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
            {
                state.misses.store(0, Ordering::Relaxed);
                let recorder = self.cost.recorder();
                recorder.incr(telemetry::Counter::SwitchlessScaleUps);
                recorder.gauge_max(telemetry::Gauge::SwitchlessWorkersPeak, (n + 1) as u64);
                recorder.gauge_set(telemetry::Gauge::SwitchlessWorkers, (n + 1) as u64);
                self.spawn_worker(state);
                return;
            }
        }
    }

    /// Spawns one worker thread for `state`'s side. The caller has
    /// already counted it in `state.active`.
    fn spawn_worker(&self, state: &Arc<SideState>) {
        let seq = self.worker_seq.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(state);
        let serve = Arc::clone(&self.serve);
        let cost = Arc::clone(&self.cost);
        let config = self.config.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{}-switchless-{seq}", state.side))
            .spawn(move || worker_loop(&state, &serve, &cost, &config))
            .expect("spawn switchless worker");
        self.workers.lock().push(handle);
    }

    /// Stops the workers: parked workers exit at their next poll,
    /// then the mailboxes are closed and every thread joined.
    pub(crate) fn shutdown(self) {
        self.trusted.stop.store(true, Ordering::Relaxed);
        self.untrusted.stop.store(true, Ordering::Relaxed);
        drop(self.trusted_tx);
        drop(self.untrusted_tx);
        let handles = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// One worker: park on the mailbox, wake for a job, drain a small
/// batch, serve it, repeat; retire when idle past the park interval
/// and the pool is above its minimum.
fn worker_loop(
    state: &SideState,
    serve: &ServeFn,
    cost: &Arc<CostModel>,
    config: &SwitchlessConfig,
) {
    let recorder = Arc::clone(cost.recorder());
    let params = cost.params().clone();
    // A fresh worker is parked until its first job: waking it costs.
    let mut parked = true;
    state.idle.fetch_add(1, Ordering::Relaxed);
    loop {
        match state.rx.recv_timeout(config.idle_park) {
            Ok(job) => {
                state.idle.fetch_sub(1, Ordering::Relaxed);
                state.queued.fetch_sub(1, Ordering::Relaxed);
                if parked {
                    recorder.incr(telemetry::Counter::SwitchlessWorkerWakes);
                    cost.charge_ns(params.switchless_wake_ns);
                    parked = false;
                }
                // Batch drain: serve whatever else is already queued,
                // up to the batch bound, on this same wakeup. The
                // bound is re-read per drain so tuner decisions take
                // effect immediately (it equals `config.max_batch`
                // until a tuner resizes it).
                let max_batch = state.batch_target.load(Ordering::Relaxed).max(1);
                let mut batch = vec![job];
                while batch.len() < max_batch {
                    match state.rx.try_recv() {
                        Ok(next) => {
                            state.queued.fetch_sub(1, Ordering::Relaxed);
                            batch.push(next);
                        }
                        Err(_) => break,
                    }
                }
                recorder.record(telemetry::Hist::SwitchlessBatchJobs, batch.len() as u64);
                state.batch_hist.record(batch.len() as u64);
                // The whole drained batch crosses as one batch frame:
                // one header, then each request's wire bytes. Traced
                // requests cross as a traced frame, whose per-payload
                // slot carries the trace context (and a flag byte even
                // when absent).
                let tracer = cost.tracer();
                let frame_bytes = if tracer.is_enabled() {
                    let payloads: Vec<(usize, bool)> = batch
                        .iter()
                        .map(|j| (j.msg.wire_len_sans_trace(), j.msg.trace.is_some()))
                        .collect();
                    rmi::batch::traced_frame_len(&payloads)
                } else {
                    let wire_lens: Vec<usize> = batch.iter().map(|j| j.msg.wire_len()).collect();
                    rmi::batch::frame_len(&wire_lens)
                };
                cost.charge_ns((frame_bytes as f64 * params.copy_ns_per_byte) as u64);
                for job in batch {
                    // Queue wait — post to pickup — attributed as its
                    // own span under the caller's rmi span, never
                    // inside the execution span.
                    if let Some((posted_model, posted_wall)) = job.posted {
                        let picked_up = cost.now_ns();
                        tracer.span_at(
                            state.side.lane(),
                            "queue",
                            job.msg.parent_span(),
                            posted_model,
                            picked_up.max(posted_model),
                            posted_wall,
                            || format!("queue-wait:{}.{}", job.class_name, job.relay),
                        );
                        let wait = picked_up.saturating_sub(posted_model);
                        recorder.record(telemetry::Hist::SwitchlessQueueWaitNs, wait);
                        state.wait_hist.record(wait);
                    }
                    let out =
                        serve(state.side, &job.class_name, &job.relay, job.recv_hash, &job.msg);
                    let _ = job.reply.send(out);
                }
                state.idle.fetch_add(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => {
                if state.stop.load(Ordering::Relaxed) {
                    state.idle.fetch_sub(1, Ordering::Relaxed);
                    state.active.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                // Idle a full park interval: retire if above the
                // tuner's worker target (which never drops below
                // `min_workers`, and equals it while the tuner is
                // inert).
                let floor = state.tuner_target.load(Ordering::Relaxed).max(config.min_workers);
                if try_retire(state, floor) {
                    recorder.incr(telemetry::Counter::SwitchlessScaleDowns);
                    recorder.gauge_set(
                        telemetry::Gauge::SwitchlessWorkers,
                        state.active.load(Ordering::Relaxed) as u64,
                    );
                    state.idle.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                parked = true;
            }
            Err(RecvTimeoutError::Disconnected) => {
                state.idle.fetch_sub(1, Ordering::Relaxed);
                state.active.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Decrements `state.active` unless that would drop the pool below
/// `min`; returns whether the calling worker should exit.
fn try_retire(state: &SideState, min: usize) -> bool {
    loop {
        let n = state.active.load(Ordering::Relaxed);
        if n <= min {
            return false;
        }
        if state.active.compare_exchange(n, n - 1, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use sgx_sim::cost::{ClockMode, CostParams};

    fn echo_serve() -> ServeFn {
        Arc::new(|_side, _class, _relay, _hash, msg| Ok(msg.clone()))
    }

    /// A serve fn that blocks until `release` is signalled, so tests
    /// can hold the single worker busy deterministically.
    fn gated_serve(entered: Arc<AtomicUsize>, release: Receiver<()>) -> ServeFn {
        Arc::new(move |_side, _class, _relay, _hash, msg| {
            entered.fetch_add(1, Ordering::SeqCst);
            let _ = release.recv();
            Ok(msg.clone())
        })
    }

    fn msg() -> WireMsg {
        WireMsg { recv_hash: None, hints: Vec::new(), payload: vec![1, 2, 3].into(), trace: None }
    }

    fn model() -> Arc<CostModel> {
        Arc::new(CostModel::new(CostParams::paper_defaults(), ClockMode::Virtual))
    }

    #[test]
    fn served_posts_round_trip() {
        let pool = SwitchlessPool::spawn(&SwitchlessConfig::default(), echo_serve(), model());
        for _ in 0..10 {
            match pool.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap() {
                PostOutcome::Served(out) => assert_eq!(out.unwrap(), msg()),
                PostOutcome::Fallback => panic!("idle pool must not fall back"),
            }
        }
        pool.shutdown();
    }

    /// The saturation scenario: one worker, a one-slot mailbox, the
    /// worker deterministically held busy. The first post occupies the
    /// worker, the second fills the slot, the third must fall back —
    /// and the fallback telemetry must say so.
    #[test]
    fn saturated_mailbox_falls_back_and_counts_it() {
        let cost = model();
        let entered = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = bounded::<()>(16);
        let config =
            SwitchlessConfig { mailbox_capacity: 1, max_batch: 1, ..SwitchlessConfig::fixed(1) };
        let pool = Arc::new(SwitchlessPool::spawn(
            &config,
            gated_serve(Arc::clone(&entered), release_rx),
            Arc::clone(&cost),
        ));

        // Post A on a helper thread; wait until the worker holds it.
        let pool_a = Arc::clone(&pool);
        let a = std::thread::spawn(move || {
            pool_a.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap()
        });
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // Post B on a helper thread; wait until it occupies the slot.
        let pool_b = Arc::clone(&pool);
        let b = std::thread::spawn(move || {
            pool_b.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap()
        });
        while pool.stats().trusted.queued == 0 {
            std::thread::yield_now();
        }

        // The mailbox is now provably full: this post must fall back.
        let before = cost.recorder().counter(telemetry::Counter::SwitchlessFallbacks);
        match pool.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap() {
            PostOutcome::Fallback => {}
            PostOutcome::Served(_) => panic!("full mailbox must fall back"),
        }
        assert_eq!(
            cost.recorder().counter(telemetry::Counter::SwitchlessFallbacks),
            before + 1,
            "fallback telemetry must increment"
        );

        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert!(matches!(a.join().unwrap(), PostOutcome::Served(Ok(_))));
        assert!(matches!(b.join().unwrap(), PostOutcome::Served(Ok(_))));
        match Arc::try_unwrap(pool) {
            Ok(pool) => pool.shutdown(),
            Err(_) => panic!("no other pool handles remain"),
        }
    }

    #[test]
    fn miss_pressure_scales_up_and_idleness_scales_down() {
        let cost = model();
        let entered = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = bounded::<()>(64);
        let config = SwitchlessConfig {
            min_workers: 1,
            max_workers: 3,
            mailbox_capacity: 1,
            scale_up_misses: 1,
            idle_park: Duration::from_millis(5),
            ..SwitchlessConfig::default()
        };
        let pool = Arc::new(SwitchlessPool::spawn(
            &config,
            gated_serve(Arc::clone(&entered), release_rx),
            Arc::clone(&cost),
        ));
        assert_eq!(pool.stats().untrusted.workers, 1);

        // Hold workers busy and keep posting: misses must spawn more
        // workers, but never beyond max_workers. The scale-up counter
        // is monotone, so waiting on it (rather than on the live
        // worker count, which may already be shrinking again) is
        // race-free.
        let mut posters = Vec::new();
        for _ in 0..6 {
            let pool = Arc::clone(&pool);
            posters.push(std::thread::spawn(move || {
                pool.post(Side::Untrusted, "C".into(), "r".into(), None, msg()).unwrap();
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cost.recorder().counter(telemetry::Counter::SwitchlessScaleUps) < 2 {
            assert!(std::time::Instant::now() < deadline, "scale-up never happened");
            std::thread::yield_now();
        }
        let peak = cost.recorder().gauge(telemetry::Gauge::SwitchlessWorkersPeak);
        assert!(peak <= config.max_workers as u64, "peak {peak} beyond max");
        assert!(pool.stats().untrusted.workers <= config.max_workers);

        for _ in 0..16 {
            let _ = release_tx.send(());
        }
        for p in posters {
            // Some posts fell back (mailbox full) — both outcomes end.
            p.join().unwrap();
        }

        // With the load gone, the pool must shrink back to min_workers
        // and no further.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().untrusted.workers > config.min_workers {
            assert!(std::time::Instant::now() < deadline, "scale-down never happened");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.stats().untrusted.workers, config.min_workers);
        assert!(cost.recorder().counter(telemetry::Counter::SwitchlessScaleDowns) >= 1);
        match Arc::try_unwrap(pool) {
            Ok(pool) => pool.shutdown(),
            Err(_) => panic!("no other pool handles remain"),
        }
    }

    #[test]
    fn batch_drain_serves_queued_jobs_in_one_wake() {
        let cost = model();
        let entered = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = bounded::<()>(64);
        let config =
            SwitchlessConfig { mailbox_capacity: 8, max_batch: 4, ..SwitchlessConfig::fixed(1) };
        let pool = Arc::new(SwitchlessPool::spawn(
            &config,
            gated_serve(Arc::clone(&entered), release_rx),
            Arc::clone(&cost),
        ));
        // Occupy the worker first — once `entered` reads 1, its drain
        // for this wakeup is over — and only then queue three more
        // jobs behind it, so they provably sit in the mailbox when the
        // worker's next wakeup drains them.
        let mut posters = Vec::new();
        {
            let pool = Arc::clone(&pool);
            posters.push(std::thread::spawn(move || {
                pool.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap();
            }));
        }
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        for _ in 0..3 {
            let pool = Arc::clone(&pool);
            posters.push(std::thread::spawn(move || {
                pool.post(Side::Trusted, "C".into(), "r".into(), None, msg()).unwrap();
            }));
        }
        while pool.stats().trusted.queued < 3 {
            std::thread::yield_now();
        }
        for _ in 0..8 {
            let _ = release_tx.send(());
        }
        for p in posters {
            p.join().unwrap();
        }
        let snap = cost.recorder().snapshot();
        let batches = snap.hist(telemetry::Hist::SwitchlessBatchJobs);
        assert_eq!(batches.sum, 4, "all four jobs served");
        assert!(batches.count < 4, "at least one wakeup drained a batch: {batches:?}");
        match Arc::try_unwrap(pool) {
            Ok(pool) => pool.shutdown(),
            Err(_) => panic!("no other pool handles remain"),
        }
    }
}
