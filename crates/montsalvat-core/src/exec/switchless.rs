//! Switchless (transition-less) RMI calls — the paper's first
//! future-work item (§7, after Tian et al., SysTEX'18).
//!
//! A classic crossing pays the full EENTER/EEXIT transition plus relay
//! software on *every* call. In the switchless design, each runtime
//! keeps a small pool of resident worker threads; a caller posts its
//! request to a shared mailbox and the opposite side's worker serves it
//! without any hardware transition — the cost drops to a cache-line
//! hand-off plus the marshalling itself.
//!
//! The reproduction implements the mechanism with real threads and real
//! mailboxes (crossbeam channels): requests genuinely execute on a
//! worker of the opposite world, concurrently with the caller, and the
//! cost model charges the switchless hand-off instead of the
//! transition. The ablation bench `bench/benches/switchless.rs` and the
//! `switchless_calls` tests compare the two modes.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};
use rmi::hash::ProxyHash;

use crate::annotation::Side;
use crate::error::VmError;
use crate::exec::ctx::WireMsg;

/// Configuration of the switchless call mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchlessConfig {
    /// Resident worker threads per runtime.
    pub workers_per_side: usize,
}

impl Default for SwitchlessConfig {
    fn default() -> Self {
        SwitchlessConfig { workers_per_side: 2 }
    }
}

/// The relay dispatcher a pool serves jobs with: bound to the
/// application, it executes `class.relay` on the given side.
pub(crate) type ServeFn = Arc<
    dyn Fn(Side, &str, &str, Option<ProxyHash>, &WireMsg) -> Result<WireMsg, VmError>
        + Send
        + Sync,
>;

/// One posted request: serve `class.relay` with `msg` in the worker's
/// world, reply on `reply`.
pub(crate) struct SwitchlessJob {
    pub class_name: String,
    pub relay: String,
    pub recv_hash: Option<ProxyHash>,
    pub msg: WireMsg,
    pub reply: Sender<Result<WireMsg, VmError>>,
}

/// The per-application switchless machinery: one mailbox per side,
/// served by that side's resident workers.
pub(crate) struct SwitchlessPool {
    trusted_tx: Sender<SwitchlessJob>,
    untrusted_tx: Sender<SwitchlessJob>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SwitchlessPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchlessPool").field("workers", &self.workers.len()).finish()
    }
}

impl SwitchlessPool {
    /// Spawns the worker pools. `serve` is the relay dispatcher bound to
    /// the application (it captures `AppShared`).
    pub(crate) fn spawn(config: &SwitchlessConfig, serve: ServeFn) -> Self {
        let (trusted_tx, trusted_rx) = unbounded::<SwitchlessJob>();
        let (untrusted_tx, untrusted_rx) = unbounded::<SwitchlessJob>();
        let mut workers = Vec::new();
        for side in [Side::Trusted, Side::Untrusted] {
            let rx = match side {
                Side::Trusted => trusted_rx.clone(),
                Side::Untrusted => untrusted_rx.clone(),
            };
            for i in 0..config.workers_per_side.max(1) {
                let rx = rx.clone();
                let serve = Arc::clone(&serve);
                let handle = std::thread::Builder::new()
                    .name(format!("{side}-switchless-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let out = serve(
                                side,
                                &job.class_name,
                                &job.relay,
                                job.recv_hash,
                                &job.msg,
                            );
                            let _ = job.reply.send(out);
                        }
                    })
                    .expect("spawn switchless worker");
                workers.push(handle);
            }
        }
        SwitchlessPool { trusted_tx, untrusted_tx, workers }
    }

    /// Posts a call to `side`'s mailbox and blocks for the reply.
    pub(crate) fn call(
        &self,
        side: Side,
        class_name: String,
        relay: String,
        recv_hash: Option<ProxyHash>,
        msg: WireMsg,
    ) -> Result<WireMsg, VmError> {
        let (reply_tx, reply_rx) = bounded(1);
        let job = SwitchlessJob { class_name, relay, recv_hash, msg, reply: reply_tx };
        let tx = match side {
            Side::Trusted => &self.trusted_tx,
            Side::Untrusted => &self.untrusted_tx,
        };
        tx.send(job).map_err(|_| VmError::Sgx(sgx_sim::SgxError::EnclaveLost))?;
        reply_rx
            .recv()
            .map_err(|_| VmError::Sgx(sgx_sim::SgxError::EnclaveLost))?
    }

    /// Stops the workers (drains by closing the mailboxes).
    pub(crate) fn shutdown(self) {
        drop(self.trusted_tx);
        drop(self.untrusted_tx);
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}
