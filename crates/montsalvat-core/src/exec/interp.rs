//! The instruction interpreter for [`MethodBody::Instrs`] bodies.
//!
//! Executes the small typed instruction set of [`crate::class::Instr`].
//! Parameters occupy the first local registers; `this` is addressed by
//! [`Operand::This`]. All values stored into locals are rooted in the
//! executing frame so the copying collector never reclaims live
//! temporaries.

use runtime_sim::value::{ObjId, Value};

use crate::class::{BinOp, ClassDef, Instr, MethodDef, Operand};
use crate::error::VmError;
use crate::exec::ctx::Ctx;

#[allow(unused_imports)]
use crate::class::MethodBody; // referenced by the module docs

/// Runs an instruction body. Returns the method result (not yet
/// in-flight rooted; `exec_method` promotes it).
pub(crate) fn run(
    ctx: &mut Ctx<'_>,
    class: &ClassDef,
    method: &MethodDef,
    instrs: &[Instr],
    this: Option<ObjId>,
    args: &[Value],
) -> Result<Value, VmError> {
    let mut locals: Vec<Value> = Vec::with_capacity(method.locals.max(args.len()));
    locals.extend_from_slice(args);
    locals.resize(method.locals.max(args.len()), Value::Unit);

    let read = |locals: &Vec<Value>, op: &Operand| -> Result<Value, VmError> {
        match op {
            Operand::Local(i) => locals
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| VmError::Type(format!("local {i} out of range in {}", method.name))),
            Operand::Const(v) => Ok(v.clone()),
            Operand::This => this
                .map(Value::Ref)
                .ok_or_else(|| VmError::Type(format!("`this` in static {}", method.name))),
        }
    };
    let read_all = |locals: &Vec<Value>, ops: &[Operand]| -> Result<Vec<Value>, VmError> {
        ops.iter().map(|op| read(locals, op)).collect()
    };

    for instr in instrs {
        match instr {
            Instr::Const { dst, value } => {
                store(ctx, &mut locals, *dst, value.clone(), method)?;
            }
            Instr::New { dst, class: cname, args: ops } => {
                let argv = read_all(&locals, ops)?;
                let obj = ctx.new_object(cname, &argv)?;
                store(ctx, &mut locals, *dst, obj, method)?;
            }
            Instr::Call { dst, recv, method: mname, args: ops, .. } => {
                let recv_v = read(&locals, recv)?;
                let argv = read_all(&locals, ops)?;
                let out = ctx.call(&recv_v, mname, &argv)?;
                if let Some(dst) = dst {
                    store(ctx, &mut locals, *dst, out, method)?;
                }
            }
            Instr::CallStatic { dst, class: cname, method: mname, args: ops } => {
                let argv = read_all(&locals, ops)?;
                let out = ctx.call_static(cname, mname, &argv)?;
                if let Some(dst) = dst {
                    store(ctx, &mut locals, *dst, out, method)?;
                }
            }
            Instr::GetField { dst, recv, field } => {
                let recv_v = read(&locals, recv)?;
                let out = ctx.get_field(&recv_v, field)?;
                store(ctx, &mut locals, *dst, out, method)?;
            }
            Instr::SetField { recv, field, value } => {
                let recv_v = read(&locals, recv)?;
                let v = read(&locals, value)?;
                ctx.set_field(&recv_v, field, v)?;
            }
            Instr::ListPush { recv, field, value } => {
                let recv_v = read(&locals, recv)?;
                let v = read(&locals, value)?;
                let mut list = ctx.get_field(&recv_v, field)?;
                match &mut list {
                    Value::List(items) => items.push(v),
                    other => {
                        return Err(VmError::Type(format!(
                            "ListPush on non-list field `{field}` ({other:?})"
                        )))
                    }
                }
                ctx.set_field(&recv_v, field, list)?;
            }
            Instr::ListLen { dst, recv, field } => {
                let recv_v = read(&locals, recv)?;
                let list = ctx.get_field(&recv_v, field)?;
                let len = list
                    .as_list()
                    .ok_or_else(|| VmError::Type(format!("ListLen on non-list field `{field}`")))?
                    .len();
                store(ctx, &mut locals, *dst, Value::Int(len as i64), method)?;
            }
            Instr::BinOp { dst, op, a, b } => {
                let va = read(&locals, a)?;
                let vb = read(&locals, b)?;
                store(ctx, &mut locals, *dst, apply_binop(*op, &va, &vb)?, method)?;
            }
            Instr::Compute { working_set_bytes, passes } => {
                ctx.compute(*working_set_bytes, *passes);
            }
            Instr::IoWrite { bytes } => {
                ctx.io_write(*bytes)?;
            }
            Instr::Return { value } => {
                return match value {
                    Some(op) => read(&locals, op),
                    None => Ok(Value::Unit),
                };
            }
        }
    }
    let _ = class;
    Ok(Value::Unit)
}

fn store(
    _ctx: &mut Ctx<'_>,
    locals: &mut [Value],
    dst: u16,
    value: Value,
    method: &MethodDef,
) -> Result<(), VmError> {
    // Call/new results were already adopted into the frame by Ctx; field
    // reads were rooted there too. Constants holding refs cannot occur
    // (refs are runtime-only). Storing is therefore just a move.
    let slot = locals
        .get_mut(dst as usize)
        .ok_or_else(|| VmError::Type(format!("local {dst} out of range in {}", method.name)))?;
    *slot = value;
    Ok(())
}

fn apply_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, VmError> {
    match (op, a, b) {
        (BinOp::Add, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
        (BinOp::Sub, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_sub(*y))),
        (BinOp::Mul, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_mul(*y))),
        (BinOp::Div, Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                Err(VmError::Type("integer division by zero".into()))
            } else {
                Ok(Value::Int(x / y))
            }
        }
        (BinOp::Add, Value::Float(x), Value::Float(y)) => Ok(Value::Float(x + y)),
        (BinOp::Sub, Value::Float(x), Value::Float(y)) => Ok(Value::Float(x - y)),
        (BinOp::Mul, Value::Float(x), Value::Float(y)) => Ok(Value::Float(x * y)),
        (BinOp::Div, Value::Float(x), Value::Float(y)) => Ok(Value::Float(x / y)),
        (BinOp::Add, Value::Str(x), Value::Str(y)) => Ok(Value::Str(format!("{x}{y}"))),
        (op, a, b) => Err(VmError::Type(format!("binop {op:?} unsupported on {a:?} and {b:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(apply_binop(BinOp::Add, &Value::Int(2), &Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            apply_binop(BinOp::Sub, &Value::Int(0), &Value::Int(7)).unwrap(),
            Value::Int(-7)
        );
        assert_eq!(
            apply_binop(BinOp::Mul, &Value::Float(2.0), &Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            apply_binop(BinOp::Add, &Value::Str("a".into()), &Value::Str("b".into())).unwrap(),
            Value::Str("ab".into())
        );
        assert!(apply_binop(BinOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(apply_binop(BinOp::Add, &Value::Int(1), &Value::Str("x".into())).is_err());
    }
}
