//! The partitioned-application runtime.
//!
//! - [`world`] — per-runtime state (isolate, class index, RMI tables);
//! - [`ctx`] — the execution context, marshalling and relay dispatch;
//! - `interp` — the instruction interpreter (crate-private);
//! - [`app`] — application launch, GC helpers, and the unpartitioned
//!   runner.

pub mod app;
pub mod ctx;
pub(crate) mod interp;
pub mod switchless;
pub mod world;
