//! Launching and running (partitioned) SGX applications (§5.4–§5.6).
//!
//! [`PartitionedApp`] is the runtime form of the paper's final SGX
//! application: the trusted image loaded into a (simulated) enclave with
//! its own isolate, the untrusted image outside with another, the relay
//! dispatch connecting them, and one GC helper thread per runtime
//! keeping proxy/mirror lifetimes consistent (§5.5).
//!
//! [`SingleWorldApp`] runs an unpartitioned image either fully inside
//! the enclave (§5.6 — the paper's `NoPart` configuration) or on the
//! host (`NoSGX`), and is also the substrate for the SCONE+JVM baseline
//! (same placement, JVM execution model).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rmi::gc_helper::GcHelper;
use rmi::hash::HashScheme;
use runtime_sim::heap::{CollectorKind, HeapConfig};
use runtime_sim::value::Value;
use sgx_sim::cost::{ClockMode, CostModel, CostParams};
use sgx_sim::enclave::{Enclave, EnclaveConfig, TransitionStats};

use crate::annotation::Side;
use crate::class::MethodRef;
use crate::error::VmError;
use crate::exec::ctx::Ctx;
use crate::exec::world::{ClassIndex, ExecModel, World, WorldStatsSnapshot};
use crate::image_builder::NativeImage;
use crate::provider::{self, CrossingDir, EnclaveProvider, ProviderKind};
use crate::transform::is_relay_name;

/// Configuration for launching applications.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Cost-model parameters (defaults to the paper's platform).
    pub cost_params: CostParams,
    /// Clock realisation (virtual for experiments, spin for wall-clock
    /// benchmarking).
    pub clock_mode: ClockMode,
    /// Enclave configuration (paper: 4 GB heap, 8 MB stack; §6.1).
    pub enclave_config: EnclaveConfig,
    /// Managed-heap configuration per isolate (paper: images built with
    /// 2 GB maximum heap; §6.1).
    pub heap_config: HeapConfig,
    /// Proxy hashing scheme.
    pub hash_scheme: HashScheme,
    /// GC helper scan interval; `None` disables the helper threads
    /// (tests then drive [`PartitionedApp::gc_sync_once`] manually).
    pub gc_helper_interval: Option<Duration>,
    /// Execution model (native image by default; the SCONE+JVM baseline
    /// overrides it).
    pub exec_model: ExecModel,
    /// Working directory for scratch files; a fresh temp dir if `None`.
    pub workdir: Option<PathBuf>,
    /// Switchless (transition-less) RMI calls: `Some` routes every RMI
    /// through resident worker threads instead of hardware transitions
    /// (the paper's §7 future-work item). `None` uses classic
    /// ecall/ocall crossings.
    pub switchless: Option<crate::exec::switchless::SwitchlessConfig>,
    /// Telemetry recorder every layer of this application reports into.
    /// `None` creates a fresh recorder (the normal case); inject one to
    /// isolate a run's metrics from other applications in the process,
    /// or to share one recorder across several runs.
    pub telemetry: Option<Arc<telemetry::Recorder>>,
    /// Trace sink every layer of this application emits causal trace
    /// events into. `None` uses the process-global tracer
    /// ([`telemetry::trace::Tracer::global`]), which captures nothing
    /// until enabled; inject one to isolate a run's trace.
    pub trace: Option<Arc<telemetry::trace::Tracer>>,
    /// Whether boundary crossings use the wire-format-v2 serde fast
    /// path (shape-cached interned hints, pooled buffers, bulk
    /// primitive encoding — see `docs/SERDE.md`). `None` reads
    /// `MONTSALVAT_SERDE_FASTPATH` at launch (default: enabled);
    /// `Some(_)` pins the mode regardless of the environment. The
    /// running application can be re-toggled through
    /// [`AppShared::set_serde_fastpath`].
    pub serde_fastpath: Option<bool>,
    /// How the trusted world is realized (see [`crate::provider`]).
    /// `None` consults `MONTSALVAT_PROVIDER` at launch and defaults to
    /// [`ProviderKind::SimSgx`]; `Some(_)` pins the deployment mode
    /// regardless of the environment.
    pub provider: Option<ProviderKind>,
    /// Which garbage collector each isolate runs. `None` consults
    /// `MONTSALVAT_GC` at launch and falls back to
    /// `heap_config.collector` (default semispace); `Some(_)` pins the
    /// collector regardless of the environment — the same precedence
    /// the provider detector uses. The block collector's geometry is
    /// seeded from [`CostParams::gc_block_bytes`] so heap blocks and
    /// EPC charging agree.
    pub collector: Option<CollectorKind>,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            cost_params: CostParams::paper_defaults(),
            clock_mode: ClockMode::Virtual,
            enclave_config: EnclaveConfig::default(),
            heap_config: HeapConfig::default(),
            hash_scheme: HashScheme::Wide,
            gc_helper_interval: Some(Duration::from_millis(100)),
            exec_model: ExecModel::native_image(),
            workdir: None,
            switchless: None,
            telemetry: None,
            trace: None,
            serde_fastpath: None,
            provider: None,
            collector: None,
        }
    }
}

/// Resolves the heap configuration an app's isolates actually launch
/// with: collector selection flows `AppConfig::collector` →
/// `MONTSALVAT_GC` → `heap_config.collector`, and the block size is
/// taken from the cost model (`CostParams::gc_block_bytes`) so the
/// collector's blocks are the same granule the EPC charges per.
fn effective_heap_config(config: &AppConfig) -> HeapConfig {
    let collector =
        config.collector.or_else(CollectorKind::from_env).unwrap_or(config.heap_config.collector);
    HeapConfig {
        collector,
        block_bytes: config.cost_params.gc_block_bytes.max(1),
        ..config.heap_config.clone()
    }
}

/// `MONTSALVAT_SERDE_FASTPATH=0|off|false` disables the v2 fast path
/// process-wide; anything else (or unset) enables it.
fn serde_fastpath_from_env() -> bool {
    match std::env::var("MONTSALVAT_SERDE_FASTPATH") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// Per-application serde fast-path state: the class-name interner
/// shared by both runtimes (modelling the per-peer tables each side
/// builds from the `Named` hints it has seen), one shape cache per
/// side (class ids are world-local, so the caches must not mix), and
/// the run-time fast-path switch.
#[derive(Debug)]
pub(crate) struct SerdeState {
    pub(crate) fastpath: AtomicBool,
    pub(crate) names: rmi::NameInterner,
    shapes_trusted: rmi::ShapeCache,
    shapes_untrusted: rmi::ShapeCache,
}

impl SerdeState {
    fn new(config: &AppConfig) -> Self {
        SerdeState {
            fastpath: AtomicBool::new(
                config.serde_fastpath.unwrap_or_else(serde_fastpath_from_env),
            ),
            names: rmi::NameInterner::new(),
            shapes_trusted: rmi::ShapeCache::new(),
            shapes_untrusted: rmi::ShapeCache::new(),
        }
    }

    /// The shape cache for classes of `side`'s world.
    pub(crate) fn shapes(&self, side: Side) -> &rmi::ShapeCache {
        match side {
            Side::Trusted => &self.shapes_trusted,
            Side::Untrusted => &self.shapes_untrusted,
        }
    }
}

/// Builds the application's cost model, injecting the configured
/// recorder and tracer if provided.
fn cost_model(config: &AppConfig) -> Arc<CostModel> {
    let recorder = match &config.telemetry {
        Some(rec) => Arc::clone(rec),
        None => telemetry::Recorder::new(),
    };
    let tracer = match &config.trace {
        Some(tracer) => Arc::clone(tracer),
        None => Arc::clone(telemetry::trace::Tracer::global()),
    };
    Arc::new(CostModel::with_recorder_and_tracer(
        config.cost_params.clone(),
        config.clock_mode,
        recorder,
        tracer,
    ))
}

/// State shared by both runtimes of a running application.
#[derive(Debug)]
pub struct AppShared {
    /// The (simulated) enclave.
    pub enclave: Arc<Enclave>,
    /// The deployment-mode provider every boundary crossing routes
    /// through (see [`crate::provider`]).
    pub provider: Arc<dyn EnclaveProvider>,
    /// The shared clock/cost model.
    pub cost: Arc<CostModel>,
    trusted: Arc<World>,
    untrusted: Arc<World>,
    pub(crate) switchless: parking_lot::Mutex<Option<crate::exec::switchless::SwitchlessEngine>>,
    pub(crate) serde: SerdeState,
}

impl AppShared {
    /// The world for `side`.
    pub fn world(&self, side: Side) -> &Arc<World> {
        match side {
            Side::Trusted => &self.trusted,
            Side::Untrusted => &self.untrusted,
        }
    }

    /// Whether crossings currently use the wire-format-v2 serde fast
    /// path (see [`AppConfig::serde_fastpath`]).
    pub fn serde_fastpath(&self) -> bool {
        self.serde.fastpath.load(Ordering::Relaxed)
    }

    /// Switches the serde fast path on or off at run time. Both modes
    /// decode either wire format, so in-flight messages are unaffected;
    /// ablations use this to compare modes within one process.
    pub fn set_serde_fastpath(&self, on: bool) {
        self.serde.fastpath.store(on, Ordering::Relaxed);
    }

    /// Number of distinct class names interned by crossing hints so
    /// far — stable across steady-state crossings (names cross once).
    pub fn serde_interned_names(&self) -> usize {
        self.serde.names.len()
    }
}

/// Releases mirrors in the opposite world for proxies that `side`'s
/// collector has reclaimed: the GC helper's scan-and-relay step (§5.5).
///
/// Returns how many mirrors were released. Performs one crossing if any
/// proxies died (batched), zero otherwise.
pub(crate) fn gc_sync_from(shared: &AppShared, side: Side) -> Result<usize, VmError> {
    let world = shared.world(side);
    let dead = {
        let mut rmi = world.rmi.lock();
        let heap = world.isolate.lock_heap();
        rmi.weaklist.scan_dead(&heap)
    };
    if dead.is_empty() {
        return Ok(0);
    }
    {
        // Forget our local handles on the dead proxies.
        let mut rmi = world.rmi.lock();
        for h in &dead {
            rmi.proxies.remove(h);
        }
    }
    // The sweep's crossing (and its transition span) parents under
    // this span, so helper activity shows up as its own call trees on
    // the sweeping side's lane.
    let tracer = Arc::clone(shared.cost.tracer());
    let sweep_span =
        tracer.start(side.lane(), "gc", telemetry::trace::current(), shared.cost.now_ns(), || {
            format!("gc-sweep:{side} dead={}", dead.len())
        });
    let _scope = sweep_span.as_ref().map(|s| telemetry::trace::set_current(s.context()));
    let other = shared.world(side.opposite());
    let bytes = dead.len() * 16;
    let release = || {
        let mut rmi = other.rmi.lock();
        let mut heap = other.isolate.lock_heap();
        let mut released = 0usize;
        for h in &dead {
            if let Some(mirror) = rmi.registry.remove(&mut heap, *h) {
                rmi.hash_of.remove(&mirror);
                released += 1;
            }
        }
        released
    };
    let released = match side {
        // The untrusted helper enters the trusted world to drop its mirrors.
        Side::Untrusted => {
            shared.provider.cross(CrossingDir::Enter, "ecall_gc_release", bytes, release)
        }
        // The trusted helper exits to drop untrusted mirrors.
        Side::Trusted => {
            shared.provider.cross(CrossingDir::Exit, "ocall_gc_release", bytes, release)
        }
    };
    if let Some(span) = sweep_span {
        tracer.finish(span, shared.cost.now_ns());
    }
    Ok(released?)
}

fn fresh_workdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("montsalvat-{tag}-{}-{n}", std::process::id()))
}

fn find_main(image: &NativeImage) -> Result<MethodRef, VmError> {
    image
        .entry_points
        .iter()
        .find(|e| !is_relay_name(&e.method))
        .cloned()
        .ok_or_else(|| VmError::UnknownMethod { class: "<image>".into(), method: "main".into() })
}

fn restore_image_heap(image: &NativeImage, world: &Arc<World>) -> Result<(), VmError> {
    if image.image_heap.object_count() == 0 {
        return Ok(());
    }
    world.isolate.with_heap(|h| image.image_heap.restore_into(h)).map_err(VmError::OutOfMemory)?;
    Ok(())
}

/// A running partitioned application: trusted + untrusted runtimes, the
/// enclave between them, and the GC helper threads.
///
/// # Examples
///
/// ```
/// use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
/// use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
/// use montsalvat_core::samples::bank_program;
/// use montsalvat_core::transform::transform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tp = transform(&bank_program());
/// let (trusted, untrusted) =
///     build_partitioned_images(&tp, &ImageOptions::default(), &ImageOptions::default())?;
/// let app = PartitionedApp::launch(&trusted, &untrusted, AppConfig::default())?;
/// app.run_main()?; // Alice pays Bob inside the enclave
/// assert!(app.enclave.stats().ecalls > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionedApp {
    /// Shared runtime state (enclave, clock, worlds).
    pub shared: Arc<AppShared>,
    /// The simulated enclave (alias of `shared.enclave`).
    pub enclave: Arc<Enclave>,
    main: MethodRef,
    helpers: Vec<GcHelper>,
    workdir: PathBuf,
    owns_workdir: bool,
}

impl PartitionedApp {
    /// Loads both images, creates the enclave and isolates, restores
    /// image heaps and spawns the GC helpers.
    ///
    /// # Errors
    ///
    /// Fails if the images are for the wrong sides, enclave creation is
    /// rejected, or the scratch directory cannot be created.
    pub fn launch(
        trusted_image: &NativeImage,
        untrusted_image: &NativeImage,
        config: AppConfig,
    ) -> Result<Self, VmError> {
        if trusted_image.side != Some(Side::Trusted)
            || untrusted_image.side != Some(Side::Untrusted)
        {
            return Err(VmError::Type("launch requires a (trusted, untrusted) image pair".into()));
        }
        let cost = cost_model(&config);
        let enclave = Enclave::create(
            &config.enclave_config,
            &trusted_image.measurement_bytes(),
            Arc::clone(&cost),
        )?;
        let provider = provider::build(provider::detect(config.provider), &enclave, &cost);
        let shields = provider.shields_trusted_memory();
        if shields {
            // Commit the compiled trusted image + runtime to the EPC.
            enclave.alloc_heap(trusted_image.code_size_estimate())?;
            if config.exec_model.runtime_heap_overhead_bytes > 0 {
                enclave.alloc_heap(config.exec_model.runtime_heap_overhead_bytes)?;
                enclave.charge_heap_traffic(config.exec_model.runtime_heap_overhead_bytes);
            }
        }
        cost.charge_ns(config.exec_model.startup_ns);

        let (workdir, owns_workdir) = match &config.workdir {
            Some(dir) => (dir.clone(), false),
            None => (fresh_workdir("part"), true),
        };
        std::fs::create_dir_all(&workdir).map_err(|e| VmError::Io(e.to_string()))?;

        let heap_config = effective_heap_config(&config);
        let trusted = World::new(
            Side::Trusted,
            shields,
            Arc::new(ClassIndex::from_classes(&trusted_image.classes)),
            heap_config.clone(),
            config.hash_scheme,
            config.exec_model.clone(),
            workdir.join("trusted.scratch"),
            shields.then_some(&enclave),
        );
        let untrusted = World::new(
            Side::Untrusted,
            false,
            Arc::new(ClassIndex::from_classes(&untrusted_image.classes)),
            heap_config,
            config.hash_scheme,
            config.exec_model.clone(),
            workdir.join("untrusted.scratch"),
            None,
        );
        trusted.attach_recorder(Arc::clone(cost.recorder()));
        untrusted.attach_recorder(Arc::clone(cost.recorder()));
        let model_clock: Arc<dyn Fn() -> u64 + Send + Sync> = {
            let cost = Arc::clone(&cost);
            Arc::new(move || cost.now_ns())
        };
        let charge_clock: Arc<dyn Fn() -> u64 + Send + Sync> = {
            let cost = Arc::clone(&cost);
            Arc::new(move || cost.charged().as_nanos() as u64)
        };
        trusted.attach_tracer(Arc::clone(cost.tracer()), Arc::clone(&model_clock));
        untrusted.attach_tracer(Arc::clone(cost.tracer()), model_clock);
        trusted.attach_charge_clock(Arc::clone(&charge_clock));
        untrusted.attach_charge_clock(charge_clock);
        restore_image_heap(trusted_image, &trusted)?;
        restore_image_heap(untrusted_image, &untrusted)?;

        let shared = Arc::new(AppShared {
            enclave: Arc::clone(&enclave),
            provider,
            cost,
            trusted,
            untrusted,
            switchless: parking_lot::Mutex::new(None),
            serde: SerdeState::new(&config),
        });
        if let Some(sw_config) = &config.switchless {
            // MONTSALVAT_AUTOTUNE=1/0 attaches or detaches the
            // trace-driven tuner, and MONTSALVAT_SCHEDULER=1/0 the
            // work-stealing engine, without touching the config in
            // code.
            let sw_config = sw_config.clone().with_env_autotune().with_env_scheduler();
            let serve_shared = Arc::clone(&shared);
            let serve = Arc::new(
                move |side: Side,
                      class_name: &str,
                      relay: &str,
                      _hash: Option<rmi::hash::ProxyHash>,
                      msg: &crate::exec::ctx::WireMsg| {
                    let callee = Arc::clone(serve_shared.world(side));
                    crate::exec::ctx::serve_relay(&serve_shared, &callee, class_name, relay, msg)
                },
            );
            let engine = crate::exec::switchless::SwitchlessEngine::launch(
                &sw_config,
                serve,
                Arc::clone(&shared.cost),
            );
            *shared.switchless.lock() = Some(engine);
        }

        let mut helpers = Vec::new();
        if let Some(interval) = config.gc_helper_interval {
            for side in [Side::Trusted, Side::Untrusted] {
                let shared_ref = Arc::clone(&shared);
                helpers.push(GcHelper::spawn_recorded(
                    format!("{side}-gc-helper"),
                    interval,
                    Arc::clone(shared.cost.recorder()),
                    move || {
                        // A lost enclave just idles the helper; shutdown
                        // stops it for real.
                        let _ = gc_sync_from(&shared_ref, side);
                    },
                ));
            }
        }

        let main = find_main(untrusted_image)?;
        Ok(PartitionedApp { enclave, shared, main, helpers, workdir, owns_workdir })
    }

    /// Runs the application's `main` entry point in the untrusted world.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the application raises.
    pub fn run_main(&self) -> Result<Value, VmError> {
        let main = self.main.clone();
        self.enter_untrusted(|ctx| ctx.call_static(&main.class, &main.method, &[]))
    }

    /// Runs `f` in a fresh frame of the untrusted world.
    ///
    /// # Errors
    ///
    /// Propagates errors from `f`.
    pub fn enter_untrusted<R>(
        &self,
        f: impl FnOnce(&mut Ctx<'_>) -> Result<R, VmError>,
    ) -> Result<R, VmError> {
        let mut ctx = Ctx::new(&self.shared, Arc::clone(self.shared.world(Side::Untrusted)));
        f(&mut ctx)
    }

    /// Runs `f` in a fresh frame of the trusted world, under one
    /// enter-crossing (an ecall under the default provider).
    ///
    /// # Errors
    ///
    /// Propagates errors from `f` and enclave loss.
    pub fn enter_trusted<R>(
        &self,
        f: impl FnOnce(&mut Ctx<'_>) -> Result<R, VmError>,
    ) -> Result<R, VmError> {
        self.shared.provider.cross(CrossingDir::Enter, "ecall_enter", 0, || {
            let mut ctx = Ctx::new(&self.shared, Arc::clone(self.shared.world(Side::Trusted)));
            f(&mut ctx)
        })?
    }

    /// Runs one GC-helper scan in each direction synchronously and
    /// returns `(mirrors_released_in_enclave, mirrors_released_outside)`.
    ///
    /// # Errors
    ///
    /// Propagates enclave loss.
    pub fn gc_sync_once(&self) -> Result<(usize, usize), VmError> {
        let from_untrusted = gc_sync_from(&self.shared, Side::Untrusted)?;
        let from_trusted = gc_sync_from(&self.shared, Side::Trusted)?;
        Ok((from_untrusted, from_trusted))
    }

    /// Enclave transition counters.
    ///
    /// This is a compatibility facade: the returned counters are read
    /// from the application's telemetry recorder (see
    /// [`PartitionedApp::telemetry_snapshot`]), so the two views agree
    /// by construction.
    pub fn sgx_stats(&self) -> TransitionStats {
        self.enclave.stats()
    }

    /// Freezes every telemetry metric of this application (both worlds,
    /// the enclave and the RMI layer report into one recorder).
    pub fn telemetry_snapshot(&self) -> telemetry::Snapshot {
        self.shared.cost.recorder().snapshot()
    }

    /// The telemetry recorder every layer of this application reports
    /// into.
    pub fn telemetry(&self) -> &Arc<telemetry::Recorder> {
        self.shared.cost.recorder()
    }

    /// RMI counters for one world.
    pub fn world_stats(&self, side: Side) -> WorldStatsSnapshot {
        self.shared.world(side).stats.snapshot()
    }

    /// Live worker/queue readings of the switchless engine (pool or
    /// scheduler), or `None` when the application runs classic
    /// crossings.
    pub fn switchless_stats(&self) -> Option<crate::exec::switchless::SwitchlessStats> {
        self.shared.switchless.lock().as_ref().map(|engine| engine.stats())
    }

    /// Number of live mirrors registered in `side`'s registry.
    pub fn registry_len(&self, side: Side) -> usize {
        self.shared.world(side).rmi.lock().registry.len()
    }

    /// Number of *live* proxy objects currently in `side`'s heap.
    pub fn live_proxy_count(&self, side: Side) -> usize {
        let world = self.shared.world(side);
        let rmi = world.rmi.lock();
        let heap = world.isolate.lock_heap();
        rmi.proxies.values().filter(|&&p| heap.is_live(p)).count()
    }

    /// Stops the helpers and destroys the enclave.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for helper in self.helpers.drain(..) {
            helper.stop();
        }
        if let Some(engine) = self.shared.switchless.lock().take() {
            engine.shutdown();
        }
        self.enclave.destroy();
        if self.owns_workdir {
            let _ = std::fs::remove_dir_all(&self.workdir);
        }
    }
}

impl Drop for PartitionedApp {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Placement of an unpartitioned application (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// The whole image runs inside the enclave (`NoPart` in the paper).
    Enclave,
    /// The whole image runs on the host (`NoSGX`).
    Host,
}

/// A running unpartitioned application: one image, one isolate, placed
/// either inside the enclave or on the host.
#[derive(Debug)]
pub struct SingleWorldApp {
    /// Shared runtime state; both world slots alias the single world.
    pub shared: Arc<AppShared>,
    /// The simulated enclave (unused crossings-wise under
    /// [`Placement::Host`]).
    pub enclave: Arc<Enclave>,
    placement: Placement,
    main: MethodRef,
    workdir: PathBuf,
    owns_workdir: bool,
}

impl SingleWorldApp {
    /// Loads an unpartitioned image under the given placement.
    ///
    /// # Errors
    ///
    /// Fails if the image is partitioned (has a side), enclave creation
    /// fails, or the scratch directory cannot be created.
    pub fn launch(
        image: &NativeImage,
        placement: Placement,
        config: AppConfig,
    ) -> Result<Self, VmError> {
        if image.side.is_some() {
            return Err(VmError::Type("SingleWorldApp requires an unpartitioned image".into()));
        }
        let cost = cost_model(&config);
        let enclave =
            Enclave::create(&config.enclave_config, &image.measurement_bytes(), Arc::clone(&cost))?;
        let provider = provider::build(provider::detect(config.provider), &enclave, &cost);
        let in_enclave = placement == Placement::Enclave && provider.shields_trusted_memory();
        if in_enclave {
            enclave.alloc_heap(image.code_size_estimate())?;
            if config.exec_model.runtime_heap_overhead_bytes > 0 {
                enclave.alloc_heap(config.exec_model.runtime_heap_overhead_bytes)?;
                enclave.charge_heap_traffic(config.exec_model.runtime_heap_overhead_bytes);
            }
        }
        cost.charge_ns(config.exec_model.startup_ns);

        let (workdir, owns_workdir) = match &config.workdir {
            Some(dir) => (dir.clone(), false),
            None => (fresh_workdir("single"), true),
        };
        std::fs::create_dir_all(&workdir).map_err(|e| VmError::Io(e.to_string()))?;

        let side = if in_enclave { Side::Trusted } else { Side::Untrusted };
        let world = World::new(
            side,
            in_enclave,
            Arc::new(ClassIndex::from_classes(&image.classes)),
            effective_heap_config(&config),
            config.hash_scheme,
            config.exec_model.clone(),
            workdir.join("app.scratch"),
            in_enclave.then_some(&enclave),
        );
        world.attach_recorder(Arc::clone(cost.recorder()));
        world.attach_tracer(Arc::clone(cost.tracer()), {
            let cost = Arc::clone(&cost);
            Arc::new(move || cost.now_ns())
        });
        world.attach_charge_clock({
            let cost = Arc::clone(&cost);
            Arc::new(move || cost.charged().as_nanos() as u64)
        });
        restore_image_heap(image, &world)?;

        let shared = Arc::new(AppShared {
            enclave: Arc::clone(&enclave),
            provider,
            cost,
            trusted: Arc::clone(&world),
            untrusted: world,
            switchless: parking_lot::Mutex::new(None),
            serde: SerdeState::new(&config),
        });
        let main = find_main(image)?;
        Ok(SingleWorldApp { shared, enclave, placement, main, workdir, owns_workdir })
    }

    /// The placement this application runs under.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Runs `main`. Under [`Placement::Enclave`] the whole run happens
    /// under a single ecall, as in the paper's unpartitioned deployment.
    ///
    /// # Errors
    ///
    /// Propagates application errors and enclave loss.
    pub fn run_main(&self) -> Result<Value, VmError> {
        let main = self.main.clone();
        self.enter(|ctx| ctx.call_static(&main.class, &main.method, &[]))
    }

    /// Runs `f` in a fresh frame (under one ecall when in-enclave).
    ///
    /// # Errors
    ///
    /// Propagates errors from `f` and enclave loss.
    pub fn enter<R>(
        &self,
        f: impl FnOnce(&mut Ctx<'_>) -> Result<R, VmError>,
    ) -> Result<R, VmError> {
        let run = || {
            let mut ctx = Ctx::new(&self.shared, Arc::clone(self.shared.world(Side::Untrusted)));
            f(&mut ctx)
        };
        match self.placement {
            Placement::Enclave => {
                self.shared.provider.cross(CrossingDir::Enter, "ecall_main", 0, run)?
            }
            Placement::Host => run(),
        }
    }

    /// Enclave transition counters (a view over the telemetry recorder,
    /// like [`PartitionedApp::sgx_stats`]).
    pub fn sgx_stats(&self) -> TransitionStats {
        self.enclave.stats()
    }

    /// Freezes every telemetry metric of this application.
    pub fn telemetry_snapshot(&self) -> telemetry::Snapshot {
        self.shared.cost.recorder().snapshot()
    }

    /// The telemetry recorder every layer of this application reports
    /// into.
    pub fn telemetry(&self) -> &Arc<telemetry::Recorder> {
        self.shared.cost.recorder()
    }

    /// Destroys the enclave and cleans the scratch directory.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.enclave.destroy();
        if self.owns_workdir {
            let _ = std::fs::remove_dir_all(&self.workdir);
        }
    }
}

impl Drop for SingleWorldApp {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
