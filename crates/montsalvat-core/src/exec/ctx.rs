//! The execution context and cross-world dispatch (§5.2–§5.5 at run time).
//!
//! All method execution funnels through `exec_method`:
//!
//! - interpreted bodies run in `exec::interp`;
//! - native bodies receive a [`Ctx`] handle;
//! - **proxy bodies** marshal their arguments and perform an
//!   ecall/ocall to the corresponding relay in the opposite world;
//! - **relay bodies** are executed only by the receiving side of a
//!   crossing: constructor relays instantiate the mirror and register it
//!   in the mirror-proxy registry; instance relays look the mirror up by
//!   the proxy hash and forward the call.
//!
//! ## Argument marshalling
//!
//! Crossing arguments are classified per the paper: primitives travel by
//! value, *neutral* objects are serialized (deep copy), and annotated
//! objects travel as proxy hashes. A hash is resolved on the receiving
//! side to the local mirror (if the object's home is there) or to a
//! local proxy (created on first sight). Concrete annotated objects that
//! cross for the first time are *exported*: registered in their home
//! world's registry under a fresh hash so the remote proxy keeps them
//! alive (§5.5's strong-reference rule).
//!
//! ## Rooting discipline
//!
//! The copying collector only honours rooted references. Every value a
//! frame holds is rooted for the frame's lifetime ([`Ctx`] is dropped =>
//! roots released). Values returned from calls carry one *in-flight*
//! root per contained reference, which the caller adopts into its frame.

use std::sync::Arc;
use std::time::Instant;

use rmi::codec::{self, CodecError, EncodeStats, RefEncoding, TraceContext};
use rmi::hash::ProxyHash;
use rmi::pool::PooledBuf;
use rmi::shape::NameRef;
use runtime_sim::heap::{GcOutcome, Heap};
use runtime_sim::value::{ClassId, ObjId, Value};
use telemetry::trace::{self, SpanContext};

use crate::annotation::Side;
use crate::class::{ClassRole, MethodBody, MethodDef, MethodKind, CTOR};
use crate::error::VmError;
use crate::exec::app::AppShared;
use crate::exec::interp;
use crate::exec::switchless::{self, PostOutcome};
use crate::exec::world::{ClassInfo, IoFile, World};
use crate::transform::{edge_routine_name, relay_name};

/// Execution context handed to native method bodies and the interpreter.
///
/// A `Ctx` is one *frame*: references it roots stay live until the frame
/// ends. Obtain one through
/// [`PartitionedApp::enter_untrusted`](crate::exec::app::PartitionedApp::enter_untrusted)
/// or receive one in a [`NativeFn`](crate::class::NativeFn) body.
pub struct Ctx<'a> {
    pub(crate) app: &'a AppShared,
    pub(crate) world: Arc<World>,
    frame_roots: Vec<ObjId>,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("side", &self.world.side)
            .field("frame_roots", &self.frame_roots.len())
            .finish()
    }
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(app: &'a AppShared, world: Arc<World>) -> Self {
        Ctx { app, world, frame_roots: Vec::new() }
    }

    /// The runtime this frame executes in.
    pub fn side(&self) -> Side {
        self.world.side
    }

    /// Whether this frame executes inside the enclave.
    pub fn in_enclave(&self) -> bool {
        self.world.in_enclave
    }

    /// Reading of the application's simulation clock (real elapsed time
    /// plus modelled charges) — the clock experiments measure with.
    pub fn cost_now(&self) -> std::time::Duration {
        self.app.cost.now()
    }

    /// Total modelled charges so far (pure model time, excluding the
    /// simulator's own execution overhead) — what the micro-benchmarks
    /// measure deltas of.
    pub fn cost_charged(&self) -> std::time::Duration {
        self.app.cost.charged()
    }

    /// Takes ownership of a value's in-flight roots into this frame.
    pub(crate) fn adopt(&mut self, v: &Value) {
        v.for_each_ref(&mut |id| self.frame_roots.push(id));
    }

    /// Roots a value's references in this frame (adds fresh roots).
    pub(crate) fn root_value(&mut self, v: &Value) {
        let mut ids = Vec::new();
        v.for_each_ref(&mut |id| ids.push(id));
        if !ids.is_empty() {
            self.world.isolate.with_heap(|h| {
                for &id in &ids {
                    h.add_root(id);
                }
            });
            self.frame_roots.extend(ids);
        }
    }

    /// Instantiates `class_name` with `args` (the `new` operator).
    ///
    /// For a proxy class this creates the local proxy and performs the
    /// constructor crossing that materialises the mirror (§5.2).
    ///
    /// # Errors
    ///
    /// Propagates unknown classes, arity mismatches, crossing failures
    /// and allocation failure.
    pub fn new_object(&mut self, class_name: &str, args: &[Value]) -> Result<Value, VmError> {
        let v = construct(self.app, &self.world, class_name, args)?;
        self.adopt(&v);
        Ok(v)
    }

    /// Invokes `method` on `recv` with dynamic dispatch. Proxy receivers
    /// cross the boundary.
    ///
    /// # Errors
    ///
    /// Propagates unknown methods, arity mismatches and crossing
    /// failures.
    pub fn call(&mut self, recv: &Value, method: &str, args: &[Value]) -> Result<Value, VmError> {
        let id = recv
            .as_ref_id()
            .ok_or_else(|| VmError::Type(format!("receiver of `{method}` is not an object")))?;
        // Borrow class metadata through a clone of the world handle:
        // the index is immutable for the app's lifetime, so the hot
        // path copies no `ClassInfo`/`MethodDef` (and no name strings).
        let world = Arc::clone(&self.world);
        let class = world.class_of_obj(id)?;
        let def = class.def.find_method(method).ok_or_else(|| VmError::UnknownMethod {
            class: class.def.name.clone(),
            method: method.to_owned(),
        })?;
        let v = exec_method(self.app, &world, class, def, Some(id), args)?;
        self.adopt(&v);
        Ok(v)
    }

    /// Invokes a static method of `class_name`.
    ///
    /// # Errors
    ///
    /// Propagates unknown classes/methods, arity mismatches and crossing
    /// failures.
    pub fn call_static(
        &mut self,
        class_name: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, VmError> {
        let world = Arc::clone(&self.world);
        let class = world.class_by_name(class_name)?;
        let def = class.def.find_method(method).ok_or_else(|| VmError::UnknownMethod {
            class: class_name.to_owned(),
            method: method.to_owned(),
        })?;
        if def.kind != MethodKind::Static {
            return Err(VmError::Type(format!("`{class_name}.{method}` is not static")));
        }
        let v = exec_method(self.app, &world, class, def, None, args)?;
        self.adopt(&v);
        Ok(v)
    }

    /// Reads a field of a concrete local object.
    ///
    /// # Errors
    ///
    /// Fails for proxies (their state lives in the opposite runtime;
    /// the encapsulation assumption of §5.1 routes access through
    /// methods) and for unknown fields.
    pub fn get_field(&mut self, obj: &Value, field: &str) -> Result<Value, VmError> {
        let id = obj
            .as_ref_id()
            .ok_or_else(|| VmError::Type(format!("field `{field}` read on a non-object")))?;
        let world = Arc::clone(&self.world);
        let class = world.class_of_obj(id)?;
        if class.def.role == ClassRole::Proxy {
            return Err(VmError::Type(format!(
                "cannot read field `{field}` of proxy `{}`; call an accessor method",
                class.def.name
            )));
        }
        let idx = class.def.field_index(field).ok_or_else(|| VmError::UnknownField {
            class: class.def.name.clone(),
            field: field.to_owned(),
        })?;
        let v = world
            .isolate
            .with_heap(|h| h.field(id, idx).cloned())
            .ok_or_else(|| VmError::BadRef(format!("{id} died mid-read")))?;
        self.root_value(&v);
        Ok(v)
    }

    /// Writes a field of a concrete local object.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Ctx::get_field`].
    pub fn set_field(&mut self, obj: &Value, field: &str, value: Value) -> Result<(), VmError> {
        let id = obj
            .as_ref_id()
            .ok_or_else(|| VmError::Type(format!("field `{field}` write on a non-object")))?;
        let world = Arc::clone(&self.world);
        let class = world.class_of_obj(id)?;
        if class.def.role == ClassRole::Proxy {
            return Err(VmError::Type(format!(
                "cannot write field `{field}` of proxy `{}`",
                class.def.name
            )));
        }
        let idx = class.def.field_index(field).ok_or_else(|| VmError::UnknownField {
            class: class.def.name.clone(),
            field: field.to_owned(),
        })?;
        let ok = world.isolate.with_heap(|h| h.set_field(id, idx, value));
        if ok {
            Ok(())
        } else {
            Err(VmError::BadRef(format!("{id} died mid-write")))
        }
    }

    /// Writes `bytes` of scratch data to this world's file: direct host
    /// I/O outside the enclave, one ocall per write inside it (§5.4).
    ///
    /// # Errors
    ///
    /// Propagates relayed/host I/O failures.
    pub fn io_write(&mut self, bytes: usize) -> Result<(), VmError> {
        let world = Arc::clone(&self.world);
        let mut io = world.io.lock();
        if io.file.is_none() {
            io.file = Some(open_scratch(self.app, &world)?);
        }
        if io.buf.len() < bytes {
            io.buf.resize(bytes, 0xA5);
        }
        let crate::exec::world::WorldIo { file, buf, bytes_written } = &mut *io;
        file.as_mut().expect("opened above").write_all(&buf[..bytes])?;
        *bytes_written += bytes as u64;
        Ok(())
    }

    /// Reads up to `bytes` of scratch data back (from the start of the
    /// scratch file). Returns the number of bytes actually read.
    ///
    /// # Errors
    ///
    /// Propagates relayed/host I/O failures.
    pub fn io_read(&mut self, bytes: usize) -> Result<usize, VmError> {
        let world = Arc::clone(&self.world);
        let mut io = world.io.lock();
        let n = (io.bytes_written.min(bytes as u64)) as usize;
        if n == 0 {
            return Ok(0);
        }
        if io.buf.len() < n {
            io.buf.resize(n, 0);
        }
        let crate::exec::world::WorldIo { file, buf, .. } = &mut *io;
        let file = file.as_mut().expect("reads follow writes");
        file.seek(std::io::SeekFrom::Start(0))?;
        file.read_exact(&mut buf[..n])?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(n)
    }

    /// Runs a CPU kernel with the given working set, applying the
    /// enclave's MEE costs (first-touch encryption of the working set,
    /// plus the compute surcharge when the set spills the LLC) and the
    /// world's execution-model factor.
    pub fn compute(&mut self, working_set_bytes: usize, passes: u32) -> f64 {
        self.compute_with(working_set_bytes, || compute_kernel(working_set_bytes, passes))
    }

    /// Runs an arbitrary compute closure under the same enclave/compute
    /// cost model as [`Ctx::compute`]. Used by native workloads that
    /// bring their own kernels (FFT, PageRank, ...).
    pub fn compute_with<R>(&mut self, working_set_bytes: usize, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let out = if self.world.in_enclave {
            // First touch of the working set moves it through the MEE.
            self.app.enclave.charge_heap_traffic(working_set_bytes as u64);
            self.app.enclave.run_compute(working_set_bytes as u64, f)
        } else {
            f()
        };
        let factor = self.world.exec_model.compute_factor;
        if factor > 1.0 {
            let extra = (started.elapsed().as_nanos() as f64 * (factor - 1.0)) as u64;
            self.app.cost.charge_ns(extra);
        }
        out
    }

    /// Charges `ns` of *modelled application compute* (work the real
    /// system would execute but the substrate replaces with a model,
    /// e.g. a managed engine's per-edge object churn). The charge is
    /// scaled by the world's execution-model factor (JVM baseline) and,
    /// inside the enclave, by the MEE compute factor — the same scaling
    /// real compute receives.
    pub fn charge_compute_ns(&mut self, ns: u64) {
        let mut total = ns as f64 * self.world.exec_model.compute_factor;
        if self.world.in_enclave {
            total *= self.app.cost.params().mee_compute_factor;
        }
        self.app.cost.charge_ns(total as u64);
    }

    /// The I/O backend matching this frame's placement: host I/O
    /// outside the enclave, shim-relayed I/O inside. Native workload
    /// bodies (the KV store, the graph sharder/engine) obtain their
    /// file handles through this, so annotating their class moves their
    /// I/O to the right side automatically.
    pub fn io_backend(&self) -> sgx_sim::shim::IoBackend {
        if self.world.in_enclave {
            sgx_sim::shim::IoBackend::Enclave(Arc::clone(&self.app.enclave))
        } else {
            sgx_sim::shim::IoBackend::Host
        }
    }

    /// Releases this frame's roots on a value, making the referenced
    /// objects eligible for collection before the frame ends (used by
    /// GC experiments to drop proxies mid-frame).
    pub fn forget(&mut self, v: &Value) {
        let mut ids = Vec::new();
        v.for_each_ref(&mut |id| ids.push(id));
        for id in ids {
            if let Some(pos) = self.frame_roots.iter().position(|&r| r == id) {
                self.frame_roots.swap_remove(pos);
                self.world.isolate.with_heap(|h| h.remove_root(id));
            }
        }
    }

    /// Allocates a `bytes`-sized managed byte blob, rooted in this
    /// frame (benchmark live-set pressure).
    ///
    /// # Errors
    ///
    /// Propagates managed-heap exhaustion.
    pub fn alloc_blob(&mut self, bytes: usize) -> Result<Value, VmError> {
        let id = self.world.isolate.with_heap(|h| {
            let id = h.alloc(
                runtime_sim::value::ClassId(u32::MAX),
                vec![Value::Bytes(vec![0u8; bytes])],
            )?;
            h.add_root(id);
            Ok::<_, runtime_sim::heap::OutOfMemory>(id)
        })?;
        self.frame_roots.push(id);
        Ok(Value::Ref(id))
    }

    /// Allocates `total_bytes` of immediately-garbage managed objects in
    /// `chunk_bytes` chunks (benchmark allocation pressure; drives the
    /// collector and, in-enclave, MEE/EPC charges).
    pub fn alloc_garbage(&mut self, total_bytes: u64, chunk_bytes: usize) {
        let chunk = chunk_bytes.max(16);
        let n = (total_bytes / chunk as u64).max(1);
        self.world.isolate.with_heap(|h| {
            for _ in 0..n {
                // Unrooted: eligible as soon as allocated.
                let _ = h.alloc(
                    runtime_sim::value::ClassId(u32::MAX),
                    vec![Value::Bytes(vec![0u8; chunk])],
                );
            }
        });
    }

    /// Forces a stop-and-copy collection of this world's heap.
    pub fn collect_garbage(&mut self) -> GcOutcome {
        self.world.isolate.with_heap(|h| h.collect())
    }

    /// Forces a minor (nursery) cycle of this world's heap. Under the
    /// semispace reference collector — which has no nursery — this
    /// promotes to a full collection, so counters stay truthful.
    pub fn collect_garbage_minor(&mut self) -> GcOutcome {
        self.world.isolate.with_heap(|h| h.collect_minor())
    }

    /// Escape hatch: exclusive access to this world's heap. References
    /// created here must be rooted by the caller (e.g. via frames).
    pub fn with_heap<R>(&mut self, f: impl FnOnce(&mut Heap) -> R) -> R {
        self.world.isolate.with_heap(f)
    }
}

impl Drop for Ctx<'_> {
    fn drop(&mut self) {
        if self.frame_roots.is_empty() {
            return;
        }
        let roots = std::mem::take(&mut self.frame_roots);
        self.world.isolate.with_heap(|h| {
            for id in roots {
                h.remove_root(id);
            }
        });
    }
}

/// The dense float kernel behind [`Ctx::compute`].
fn compute_kernel(working_set_bytes: usize, passes: u32) -> f64 {
    let n = (working_set_bytes / 8).max(1);
    let mut data: Vec<f64> = (0..n).map(|i| (i % 977) as f64 * 0.5).collect();
    let mut acc = 0.0f64;
    for p in 0..passes {
        let c = 0.3 + p as f64 * 1e-9;
        for x in data.iter_mut() {
            *x = x.mul_add(1.000_000_1, c);
        }
        acc += data[p as usize % n];
    }
    std::hint::black_box(acc)
}

fn open_scratch(app: &AppShared, world: &World) -> Result<IoFile, VmError> {
    if world.in_enclave {
        Ok(IoFile::Shim(sgx_sim::shim::ShimFile::create(
            Arc::clone(&app.enclave),
            &world.scratch_path,
        )?))
    } else {
        Ok(IoFile::Host(sgx_sim::shim::HostFile::create(&world.scratch_path)?))
    }
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

/// A marshalled crossing message: receiver hash, class hints for every
/// hash reference in the payload, the codec-encoded payload, and — when
/// tracing is on — the caller's trace context, so a request served on
/// another thread (switchless) still parents under the caller's span.
///
/// The payload buffer is pooled ([`rmi::pool`]): steady-state crossings
/// reuse encode capacity instead of allocating, and each hint carries a
/// [`NameRef`] — the interned class-name id after the class's first
/// crossing — instead of a cloned `String`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WireMsg {
    pub recv_hash: Option<ProxyHash>,
    pub hints: Vec<(ProxyHash, NameRef)>,
    pub payload: PooledBuf,
    pub trace: Option<TraceContext>,
}

impl WireMsg {
    /// Total bytes that cross the boundary for this message. A trace
    /// context costs its wire bytes plus the presence flag; an untraced
    /// v1 message is byte-identical to the pre-tracing format (a hint's
    /// name costs 16 hash bytes plus its [`NameRef::wire_len`], which
    /// for a full name matches the old `20 + len`).
    pub(crate) fn wire_len(&self) -> usize {
        17 + self.hints.iter().map(|(_, n)| 16 + n.wire_len()).sum::<usize>()
            + 4
            + self.payload.len()
            + self.trace.map_or(0, |_| 1 + TraceContext::WIRE_LEN)
    }

    /// The caller's span as a parent for spans on the serving side.
    pub(crate) fn parent_span(&self) -> Option<SpanContext> {
        self.trace.map(|t| SpanContext { trace_id: t.trace_id, span_id: t.parent_span_id })
    }

    /// Wire bytes excluding the trace-context suffix. A traced batch
    /// frame charges this as the payload length — the frame re-encodes
    /// the context in its own per-payload slot (see
    /// [`rmi::batch::traced_frame_len`]).
    pub(crate) fn wire_len_sans_trace(&self) -> usize {
        self.wire_len() - self.trace.map_or(0, |_| 1 + TraceContext::WIRE_LEN)
    }
}

/// Marshals `values` for a crossing out of `world`.
///
/// Neutral objects inline; annotated objects export/reuse a hash.
///
/// Two encode paths share this function (`docs/SERDE.md`):
///
/// - the **classic** path reproduces the v1 wire format and its
///   allocation profile (fresh payload buffer, full class name per
///   hint);
/// - the **fast** path ([`AppShared::serde_fastpath`]) encodes wire
///   format v2 into a pooled buffer, skips the annotated-ref heap walk
///   when the arguments contain no references at all, and hints by
///   interned name id after a class's first crossing.
fn marshal(app: &AppShared, world: &World, values: &[Value]) -> Result<WireMsg, VmError> {
    let rec = app.cost.recorder();
    rec.incr(telemetry::Counter::SerdeEncodeCalls);
    let fast = app.serde_fastpath();
    let tracer = app.cost.tracer();
    let begin_model_ns = app.cost.now_ns();
    let begin_wall_ns = tracer.wall_now_ns();

    // Pass 1: find annotated references reachable through inline
    // (neutral) structure. The fast path skips the walk outright for
    // reference-free arguments (the common primitive/bulk crossing);
    // the classic path always walks, like v1 did.
    let mut annotated: Vec<ObjId> = Vec::new();
    let walk = !fast || values.iter().any(has_refs);
    if walk {
        let heap = world.isolate.lock_heap();
        let mut stack: Vec<Value> = values.to_vec();
        let mut visited: std::collections::HashSet<ObjId> = std::collections::HashSet::new();
        while let Some(v) = stack.pop() {
            let mut refs = Vec::new();
            v.for_each_ref(&mut |id| refs.push(id));
            for id in refs {
                if !visited.insert(id) {
                    continue;
                }
                let class_id = heap
                    .class_of(id)
                    .ok_or_else(|| VmError::BadRef(format!("{id} is dead at marshal")))?;
                let info = world
                    .classes
                    .by_id(class_id)
                    .ok_or_else(|| VmError::BadRef(format!("{id}: unknown class")))?;
                if info.def.trust.is_annotated() {
                    annotated.push(id);
                } else {
                    for f in heap.fields(id).expect("live object has fields") {
                        stack.push(f.clone());
                    }
                }
            }
        }
    }

    // Pass 2: ensure every annotated object has a hash (reading proxy
    // hashes, exporting concrete objects on first crossing).
    let mut hash_map: std::collections::HashMap<ObjId, ProxyHash> = Default::default();
    let mut hints: Vec<(ProxyHash, NameRef)> = Vec::new();
    if !annotated.is_empty() {
        let mut rmi = world.rmi.lock();
        let mut heap = world.isolate.lock_heap();
        for id in annotated {
            let class_id = heap.class_of(id).expect("live");
            let info = world.classes.by_id(class_id).expect("indexed");
            let hash = if info.def.role == ClassRole::Proxy {
                read_proxy_hash(&heap, id)?
            } else if let Some(&h) = rmi.hash_of.get(&id) {
                h
            } else {
                let h = world.hasher.next_hash();
                rmi.registry.register(&mut heap, h, id);
                rmi.hash_of.insert(id, h);
                h
            };
            hints.push((hash, hint_name(app, world, info, class_id, fast)));
            hash_map.insert(id, hash);
        }
    }

    // Pass 3: encode with a pure policy.
    let (payload, stats) = {
        let heap = world.isolate.lock_heap();
        let mut policy = |id: ObjId| match hash_map.get(&id) {
            Some(&h) => Ok(RefEncoding::Hash(h)),
            None => Ok(RefEncoding::Inline),
        };
        if fast {
            let mut buf = rmi::pool::acquire();
            let stats = codec::encode_values_v2(&heap, values, &mut policy, &mut buf)?;
            (buf, stats)
        } else {
            let bytes = codec::encode_value(&heap, &Value::List(values.to_vec()), &mut policy)?;
            let stats = EncodeStats { total_bytes: bytes.len() as u64, bulk_bytes: 0 };
            (PooledBuf::from_vec(bytes), stats)
        }
    };

    // Serialization walks the object graph; inside the enclave every
    // read goes through the MEE, hence the enclave factor on encode.
    // Bulk-encoded bytes bill at the cheap single-memcpy rate.
    let charged_ns = charge_serde(app, world, stats.element_bytes(), stats.bulk_bytes, true);
    rec.add(telemetry::Counter::CodecBytesOut, payload.len() as u64);
    if fast {
        rec.incr(telemetry::Counter::SerdeFastPathHits);
        rec.add(telemetry::Counter::SerdeBulkBytes, stats.bulk_bytes);
        if payload.was_pooled() {
            rec.add(telemetry::Counter::SerdePooledBytes, payload.len() as u64);
        }
        rec.record(telemetry::Hist::SerdeEncodeFastNs, charged_ns);
    } else {
        rec.incr(telemetry::Counter::SerdeSlowPathHits);
        rec.record(telemetry::Hist::SerdeEncodeClassicNs, charged_ns);
    }
    // The span name carries the payload size (`b=`), which the
    // trace-report CLI attributes to the enclosing rmi span's class.
    tracer.span_at(
        world.side.lane(),
        "serde",
        trace::current(),
        begin_model_ns,
        app.cost.now_ns(),
        begin_wall_ns,
        || format!("marshal:{} b={}", if fast { "fast" } else { "classic" }, payload.len()),
    );
    Ok(WireMsg { recv_hash: None, hints, payload, trace: None })
}

/// Whether a value contains any heap reference (cheap shallow check —
/// `for_each_ref` descends lists without touching the heap).
fn has_refs(v: &Value) -> bool {
    let mut found = false;
    v.for_each_ref(&mut |_| found = true);
    found
}

/// Produces a hint's class-name encoding, compiling the class's shape
/// on its first crossing. Fast path: the full name crosses exactly once
/// per class, the 4-byte intern id thereafter. Classic path: the full
/// name every time (v1 wire behaviour), but shared out of the interner
/// so no per-crossing `String` clone remains.
fn hint_name(
    app: &AppShared,
    world: &World,
    info: &ClassInfo,
    class_id: ClassId,
    fast: bool,
) -> NameRef {
    let shapes = app.serde.shapes(world.side);
    let (shape, first) = match shapes.get(class_id) {
        Some(shape) => (shape, false),
        None => {
            app.cost.recorder().incr(telemetry::Counter::SerdeShapeCacheMisses);
            (shapes.insert(class_id, compile_shape(app, info)), true)
        }
    };
    if fast && !first {
        NameRef::Id(shape.name_id)
    } else {
        let name =
            app.serde.names.resolve(shape.name_id).expect("compiled shapes intern their name");
        NameRef::Named(shape.name_id, name)
    }
}

/// Compiles the per-class facts reused on every later crossing of the
/// class. Hints exist only for annotated classes, which always cross as
/// a 17-byte hash reference (tag + 16 hash bytes), so their encoded
/// width is fixed; a proxy's single field is the raw hash bytes, hence
/// primitive-only.
fn compile_shape(app: &AppShared, info: &ClassInfo) -> rmi::CompiledShape {
    let (name_id, _) = app.serde.names.intern(&info.def.name);
    rmi::CompiledShape {
        field_count: info.def.fields.len() as u32,
        primitive_only: info.def.role == ClassRole::Proxy,
        fixed_width: Some(17),
        name_id,
    }
}

/// Reads the `__hash` field of a proxy object.
fn read_proxy_hash(heap: &Heap, proxy: ObjId) -> Result<ProxyHash, VmError> {
    match heap.field(proxy, 0) {
        Some(Value::Bytes(b)) if b.len() == 16 => {
            let mut raw = [0u8; 16];
            raw.copy_from_slice(b);
            Ok(ProxyHash(u128::from_le_bytes(raw)))
        }
        _ => Err(VmError::BadRef(format!("{proxy} has no proxy hash"))),
    }
}

fn hash_value(hash: ProxyHash) -> Value {
    Value::Bytes(hash.0.to_le_bytes().to_vec())
}

/// Unmarshals a message into `world`. Returns the decoded values plus
/// the pin list (temporary roots) the caller must release after taking
/// in-flight roots on whatever it keeps.
fn unmarshal(
    app: &AppShared,
    world: &World,
    msg: &WireMsg,
) -> Result<(Vec<Value>, Vec<ObjId>), VmError> {
    let tracer = app.cost.tracer();
    let begin_model_ns = app.cost.now_ns();
    let begin_wall_ns = tracer.wall_now_ns();
    let mut pins: Vec<ObjId> = Vec::new();
    let mut by_hash: std::collections::HashMap<ProxyHash, ObjId> = Default::default();

    // Resolve every hinted hash to a local object: the mirror if its
    // home is here, an existing live proxy, or a freshly created proxy.
    if !msg.hints.is_empty() {
        let mut rmi = world.rmi.lock();
        let mut heap = world.isolate.lock_heap();
        for (hash, name_ref) in &msg.hints {
            if let Some(mirror) = rmi.registry.get(*hash) {
                by_hash.insert(*hash, mirror);
                continue;
            }
            if let Some(&proxy) = rmi.proxies.get(hash) {
                if heap.is_live(proxy) {
                    heap.add_root(proxy);
                    pins.push(proxy);
                    by_hash.insert(*hash, proxy);
                    continue;
                }
            }
            let info = resolve_hint_class(app, world, name_ref)?;
            if info.def.role != ClassRole::Proxy {
                return Err(VmError::BadRef(format!(
                    "hash hint for `{}` does not name a proxy class here",
                    info.def.name
                )));
            }
            let proxy = heap.alloc(info.id, vec![hash_value(*hash)])?;
            heap.add_root(proxy);
            pins.push(proxy);
            rmi.proxies.insert(*hash, proxy);
            rmi.weaklist.track(&mut heap, proxy, *hash);
            world.stats.count_proxy();
            by_hash.insert(*hash, proxy);
        }
    }

    // Decode the payload with a pure resolver.
    let decoded = {
        let mut heap = world.isolate.lock_heap();
        codec::decode_value(&mut heap, &msg.payload, &mut |h| {
            by_hash.get(&h).map(|&id| Value::Ref(id)).ok_or(CodecError::UnknownHash(h))
        })?
    };
    // Decoding streams a linear buffer; enclave writes are charged by
    // the heap observer, so no extra factor here. Bytes that arrived
    // through v2 bulk tags decode as straight copies at the bulk rate.
    let element = (msg.payload.len() as u64).saturating_sub(decoded.bulk_bytes);
    charge_serde(app, world, element, decoded.bulk_bytes, false);
    app.cost.recorder().add(telemetry::Counter::CodecBytesIn, msg.payload.len() as u64);
    tracer.span_at(
        world.side.lane(),
        "serde",
        trace::current(),
        begin_model_ns,
        app.cost.now_ns(),
        begin_wall_ns,
        || format!("unmarshal b={}", msg.payload.len()),
    );
    pins.extend(decoded.allocated.iter().copied());
    match decoded.value {
        Value::List(vs) => Ok((vs, pins)),
        other => Ok((vec![other], pins)),
    }
}

/// Resolves a hint's class-name encoding against the receiving world.
/// A [`NameRef::Named`] hint populates the app's interner (the
/// receiving side learns the name); a [`NameRef::Id`] hint must
/// reference an already-interned name — i.e. the full name crossed
/// earlier, which the fast-path encoder guarantees.
fn resolve_hint_class<'w>(
    app: &AppShared,
    world: &'w World,
    name_ref: &NameRef,
) -> Result<&'w ClassInfo, VmError> {
    match name_ref {
        NameRef::Named(_, name) => {
            app.serde.names.intern(name);
            world
                .classes
                .by_name(name)
                .ok_or_else(|| VmError::UnknownClass(format!("{name} (from crossing hint)")))
        }
        NameRef::Id(id) => {
            let name = app.serde.names.resolve(*id).ok_or_else(|| {
                VmError::BadRef(format!("crossing hint names un-interned class id {id}"))
            })?;
            world
                .classes
                .by_name(&name)
                .ok_or_else(|| VmError::UnknownClass(format!("{name} (from crossing hint)")))
        }
    }
}

/// Charges serialization work, split by rate: `element_bytes` pay the
/// per-element graph-walk rate, `bulk_bytes` (single-memcpy encodings)
/// the cheap bulk rate. Encodes performed inside the enclave pay the
/// enclave factor on both (MEE reads along the walk). Returns the
/// modelled nanoseconds charged — recorded into the per-path encode
/// histograms.
fn charge_serde(
    app: &AppShared,
    world: &World,
    element_bytes: u64,
    bulk_bytes: u64,
    encoding: bool,
) -> u64 {
    let params = app.cost.params();
    let factor = if encoding && world.in_enclave { params.serde_enclave_factor } else { 1.0 };
    let ns = (element_bytes as f64 * params.serde_ns_per_byte * factor
        + bulk_bytes as f64 * params.serde_bulk_ns_per_byte * factor) as u64;
    app.cost.charge_ns(ns);
    ns
}

fn release_pins(world: &World, pins: &[ObjId]) {
    if pins.is_empty() {
        return;
    }
    world.isolate.with_heap(|h| {
        for &id in pins {
            h.remove_root(id);
        }
    });
}

fn promote(world: &World, v: &Value) {
    world.isolate.with_heap(|h| {
        v.for_each_ref(&mut |id| h.add_root(id));
    });
}

fn release(world: &World, v: &Value) {
    world.isolate.with_heap(|h| {
        v.for_each_ref(&mut |id| h.remove_root(id));
    });
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// Executes a method. The returned value carries one in-flight root per
/// contained reference, which the caller must adopt or release.
pub(crate) fn exec_method(
    app: &AppShared,
    world: &Arc<World>,
    class: &ClassInfo,
    method: &MethodDef,
    this: Option<ObjId>,
    args: &[Value],
) -> Result<Value, VmError> {
    if args.len() != method.param_count {
        return Err(VmError::Arity {
            class: class.def.name.clone(),
            method: method.name.clone(),
            expected: method.param_count,
            got: args.len(),
        });
    }
    if world.exec_model.call_overhead_ns > 0 {
        app.cost.charge_ns(world.exec_model.call_overhead_ns);
    }
    match &method.body {
        MethodBody::Instrs(instrs) => {
            let mut ctx = Ctx::new(app, Arc::clone(world));
            let out = interp::run(&mut ctx, &class.def, method, instrs, this, args)?;
            promote(world, &out);
            Ok(out)
        }
        MethodBody::Native(f) => {
            let mut ctx = Ctx::new(app, Arc::clone(world));
            let out = f(&mut ctx, this, args)?;
            promote(world, &out);
            Ok(out)
        }
        MethodBody::ProxyCall { relay } => {
            let recv_hash = match this {
                Some(proxy) => {
                    let heap = world.isolate.lock_heap();
                    Some(read_proxy_hash(&heap, proxy)?)
                }
                None => None,
            };
            cross_call(app, world, &class.def.name, relay, recv_hash, args)
        }
        MethodBody::Relay { .. } => Err(VmError::Type(format!(
            "relay `{}.{}` is an entry point; it is invoked by crossings only",
            class.def.name, method.name
        ))),
    }
}

/// Constructs an instance of `class_name` in (or via) `world`. Returned
/// reference carries an in-flight root.
pub(crate) fn construct(
    app: &AppShared,
    world: &Arc<World>,
    class_name: &str,
    args: &[Value],
) -> Result<Value, VmError> {
    let info = world.class_by_name(class_name)?;
    if info.def.role == ClassRole::Proxy {
        construct_proxy(app, world, info, args)
    } else {
        construct_local(app, world, info, args)
    }
}

/// Allocates and initialises a concrete object locally.
fn construct_local(
    app: &AppShared,
    world: &Arc<World>,
    info: &ClassInfo,
    args: &[Value],
) -> Result<Value, VmError> {
    let nfields = info.def.fields.len();
    let obj = world.isolate.with_heap(|h| {
        let id = h.alloc(info.id, vec![Value::Unit; nfields])?;
        h.add_root(id); // in-flight
        Ok::<_, runtime_sim::heap::OutOfMemory>(id)
    })?;
    if let Some(ctor) = info.def.find_method(CTOR) {
        match exec_method(app, world, info, ctor, Some(obj), args) {
            Ok(ret) => release(world, &ret), // constructors return unit
            Err(e) => {
                world.isolate.with_heap(|h| h.remove_root(obj));
                return Err(e);
            }
        }
    } else if !args.is_empty() {
        world.isolate.with_heap(|h| h.remove_root(obj));
        return Err(VmError::Arity {
            class: info.def.name.clone(),
            method: CTOR.into(),
            expected: 0,
            got: args.len(),
        });
    }
    Ok(Value::Ref(obj))
}

/// Creates a proxy locally and crosses to materialise its mirror.
fn construct_proxy(
    app: &AppShared,
    world: &Arc<World>,
    info: &ClassInfo,
    args: &[Value],
) -> Result<Value, VmError> {
    let hash = world.hasher.next_hash();
    let proxy = {
        let mut rmi = world.rmi.lock();
        let mut heap = world.isolate.lock_heap();
        let proxy = heap.alloc(info.id, vec![hash_value(hash)])?;
        heap.add_root(proxy); // in-flight
        rmi.proxies.insert(hash, proxy);
        rmi.weaklist.track(&mut heap, proxy, hash);
        world.stats.count_proxy();
        proxy
    };
    match cross_call(app, world, &info.def.name, &relay_name(CTOR), Some(hash), args) {
        Ok(ret) => {
            release(world, &ret);
            Ok(Value::Ref(proxy))
        }
        Err(e) => {
            world.isolate.with_heap(|h| h.remove_root(proxy));
            Err(e)
        }
    }
}

/// Performs one boundary crossing: marshal, transition, relay dispatch
/// in the opposite world, and return-value unmarshal.
fn cross_call(
    app: &AppShared,
    caller: &Arc<World>,
    class_name: &str,
    relay: &str,
    recv_hash: Option<ProxyHash>,
    args: &[Value],
) -> Result<Value, VmError> {
    let callee = Arc::clone(app.world(caller.side.opposite()));
    let charged_at_entry = app.cost.charged();
    // One cat-"rmi" span per crossing, covering marshal, the transition
    // (or switchless hand-off), the remote relay and the return-value
    // unmarshal. Telemetry's `rmi.calls` counter and the number of
    // "rmi" Begin events in a trace therefore reconcile (modulo
    // `trace.dropped`). The span is the crossing's trace parent: the
    // thread-local context carries it through classic same-thread
    // serves, the wire context through cross-thread switchless serves.
    let tracer = Arc::clone(app.cost.tracer());
    let rmi_span =
        tracer.start(caller.side.lane(), "rmi", trace::current(), app.cost.now_ns(), || {
            format!("{class_name}.{relay}")
        });
    let rmi_ctx = rmi_span.as_ref().map(|s| s.context());
    let _scope = rmi_ctx.map(trace::set_current);

    let mut switchless_hit = false;
    let result = (|| -> Result<Value, VmError> {
        let mut msg = marshal(app, caller, args)?;
        msg.recv_hash = recv_hash;
        msg.trace =
            rmi_ctx.map(|c| TraceContext { trace_id: c.trace_id, parent_span_id: c.span_id });
        caller.stats.count_rmi(msg.payload.len() as u64);

        let trust = callee.side;
        let routine = edge_routine_name(
            match trust {
                Side::Trusted => crate::annotation::Trust::Trusted,
                Side::Untrusted => crate::annotation::Trust::Untrusted,
            },
            class_name,
            relay,
        );
        let wire_len = msg.wire_len();

        // The classic crossing: the relay software itself (isolate attach,
        // edge-routine marshalling, registry work) on top of whatever the
        // deployment-mode provider charges for the raw crossing (a
        // hardware transition under SimSgx, nothing under PassThrough).
        // Also the target the adaptive switchless engine degrades to
        // when its mailbox is full.
        let classic = || -> Result<WireMsg, VmError> {
            app.provider.charge_relay_overhead();
            let serve = || serve_relay(app, &callee, class_name, relay, &msg);
            let dir = match trust {
                Side::Trusted => crate::provider::CrossingDir::Enter,
                Side::Untrusted => crate::provider::CrossingDir::Exit,
            };
            let served: Result<WireMsg, VmError> =
                app.provider.cross(dir, &routine, wire_len, serve)?;
            served
        };

        // Switchless mode (§7 future work): post to the opposite side's
        // resident serving capacity — the thread-per-worker pool or the
        // work-stealing task scheduler — instead of performing a
        // hardware transition. The engine charges the hand-off on a hit
        // (the serving side adds the wake, steal and batched boundary
        // copies) or the failed-probe surcharge on a fallback (full
        // mailbox/injector or a swept task timeout), which then pays
        // the classic crossing on top. When this `post` runs *on a
        // scheduler executor thread* — a nested crossing inside a serve
        // task — the executor suspends the task and serves other tasks
        // instead of blocking here.
        let engine = app.switchless.lock().clone();
        let ret_msg = if let Some(engine) = engine {
            let outcome = engine.post(
                trust,
                class_name.to_owned(),
                relay.to_owned(),
                recv_hash,
                msg.clone(),
            )?;
            // Trace-driven autotuning bookkeeping: every completed post
            // (hit or fallback) advances the tuner's tick counter, and
            // every `interval_calls` posts the controller re-reads the
            // queue-wait window and resizes the engine. No-op unless it
            // was configured with `autotune` (and, for the pool, tracing
            // is on).
            engine.maybe_tune(trust);
            match outcome {
                PostOutcome::Served(served) => {
                    switchless_hit = true;
                    caller.stats.count_switchless();
                    served?
                }
                PostOutcome::Fallback => {
                    caller.stats.count_switchless_fallback();
                    classic()?
                }
            }
        } else {
            classic()?
        };

        // Decode the return value in the caller's world.
        let (mut rets, pins) = unmarshal(app, caller, &ret_msg)?;
        let ret = rets.pop().unwrap_or(Value::Unit);
        promote(caller, &ret);
        release_pins(caller, &pins);
        Ok(ret)
    })();

    if let Some(span) = rmi_span {
        tracer.finish(span, app.cost.now_ns());
    }
    if result.is_ok() {
        // Record the modelled latency of the whole crossing (marshal,
        // transition or worker hand-off, relay work, unmarshal) as a
        // charged-time delta, split by crossing flavour.
        let span_ns = app.cost.charged().saturating_sub(charged_at_entry).as_nanos() as u64;
        // A fallback is a classic crossing (plus the probe surcharge), so
        // it records into the classic histogram.
        let hist = if switchless_hit {
            telemetry::Hist::SwitchlessCallNs
        } else {
            telemetry::Hist::RmiCallNs
        };
        app.cost.recorder().record(hist, span_ns);
    }
    result
}

/// Receiving side of a crossing: dispatches a relay method.
pub(crate) fn serve_relay(
    app: &AppShared,
    callee: &Arc<World>,
    class_name: &str,
    relay: &str,
    msg: &WireMsg,
) -> Result<WireMsg, VmError> {
    app.cost.recorder().incr(telemetry::Counter::RelayDispatches);
    // The serving side of the crossing. A classic serve runs on the
    // caller's thread, so the thread-local context (the ecall/ocall
    // transition span) is the parent; a switchless serve runs on a
    // worker thread, where the wire context posted with the message
    // reconnects the tree.
    let tracer = Arc::clone(app.cost.tracer());
    let exec_span = tracer.start(
        callee.side.lane(),
        "exec",
        trace::current().or_else(|| msg.parent_span()),
        app.cost.now_ns(),
        || format!("serve:{class_name}.{relay}"),
    );
    let _scope = exec_span.as_ref().map(|s| trace::set_current(s.context()));
    let outcome = serve_relay_inner(app, callee, class_name, relay, msg);
    if let Some(span) = exec_span {
        tracer.finish(span, app.cost.now_ns());
    }
    outcome
}

/// The relay dispatch itself (see [`serve_relay`], which wraps it in
/// the serving side's trace span).
fn serve_relay_inner(
    app: &AppShared,
    callee: &Arc<World>,
    class_name: &str,
    relay: &str,
    msg: &WireMsg,
) -> Result<WireMsg, VmError> {
    let info = callee.class_by_name(class_name)?;
    let relay_def = info.def.find_method(relay).ok_or_else(|| {
        VmError::Sgx(sgx_sim::SgxError::InterfaceMismatch {
            routine: format!("{class_name}.{relay}"),
        })
    })?;
    let MethodBody::Relay { target, is_ctor } = &relay_def.body else {
        return Err(VmError::Type(format!("`{class_name}.{relay}` is not a relay")));
    };
    let target_def = info.def.find_method(target).ok_or_else(|| VmError::UnknownMethod {
        class: class_name.into(),
        method: target.clone(),
    })?;

    let (args, pins) = unmarshal(app, callee, msg)?;

    // Advance the serve task's state machine (no-op on classic and
    // pool-served crossings): arguments decoded, body about to run.
    switchless::task::note_stage(switchless::task::TaskStage::Execute);

    let result: Result<Value, VmError> = if *is_ctor {
        let hash = msg.recv_hash.ok_or_else(|| {
            VmError::BadRef(format!("constructor relay `{relay}` without a proxy hash"))
        })?;
        let mirror_val = construct_local(app, callee, info, &args)?;
        let mirror = mirror_val.as_ref_id().expect("construct returns a reference");
        {
            let mut rmi = callee.rmi.lock();
            let mut heap = callee.isolate.lock_heap();
            rmi.registry.register(&mut heap, hash, mirror);
            rmi.hash_of.insert(mirror, hash);
            callee.stats.count_mirror();
        }
        // The registry holds the mirror now; drop the in-flight root and
        // return unit (the caller already holds the proxy).
        release(callee, &mirror_val);
        Ok(Value::Unit)
    } else if target_def.kind == MethodKind::Static {
        exec_method(app, callee, info, target_def, None, &args)
    } else {
        let hash = msg.recv_hash.ok_or_else(|| {
            VmError::BadRef(format!("instance relay `{relay}` without a proxy hash"))
        })?;
        let mirror = {
            let rmi = callee.rmi.lock();
            rmi.registry.get(hash)
        }
        .ok_or_else(|| VmError::BadRef(format!("no mirror registered for hash {hash}")))?;
        exec_method(app, callee, info, target_def, Some(mirror), &args)
    };

    let outcome = result.and_then(|ret| {
        // Body done; the reply is being marshalled.
        switchless::task::note_stage(switchless::task::TaskStage::Encode);
        let wire = marshal(app, callee, std::slice::from_ref(&ret))?;
        release(callee, &ret);
        Ok(wire)
    });
    release_pins(callee, &pins);
    outcome
}
