//! Runtime worlds: one per partitioned runtime.
//!
//! A [`World`] bundles everything one runtime owns at execution time: its
//! isolate (heap), its class index, its RMI state (mirror-proxy registry,
//! proxy map, weak list, hash allocator), its scratch I/O channel, and an
//! execution-model knob used by the JVM baseline. The trusted world's
//! heap carries an observer that charges the enclave for every byte of
//! heap traffic, which is how the paper's in-enclave GC and allocation
//! overheads arise in the model.

use std::collections::HashMap;
use std::io::SeekFrom;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rmi::hash::{HashScheme, ProxyHash, ProxyHasher};
use rmi::registry::MirrorProxyRegistry;
use rmi::weaklist::ProxyWeakList;
use runtime_sim::heap::{HeapConfig, HeapObserver};
use runtime_sim::isolate::Isolate;
use runtime_sim::value::{ClassId, ObjId};
use sgx_sim::enclave::Enclave;
use sgx_sim::shim::{HostFile, ShimFile};

use crate::annotation::Side;
use crate::class::ClassDef;
use crate::error::VmError;

/// A class with its runtime id.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Heap class id within this world.
    pub id: ClassId,
    /// The definition.
    pub def: ClassDef,
}

/// Name ↔ id index over one image's classes.
#[derive(Debug, Default)]
pub struct ClassIndex {
    infos: Vec<ClassInfo>,
    by_name: HashMap<String, usize>,
}

impl ClassIndex {
    /// Builds an index, assigning dense [`ClassId`]s.
    pub fn from_classes(classes: &[ClassDef]) -> Self {
        let mut index = ClassIndex::default();
        for (i, def) in classes.iter().enumerate() {
            index.by_name.insert(def.name.clone(), i);
            index.infos.push(ClassInfo { id: ClassId(i as u32), def: def.clone() });
        }
        index
    }

    /// Looks up a class by name.
    pub fn by_name(&self, name: &str) -> Option<&ClassInfo> {
        self.by_name.get(name).map(|&i| &self.infos[i])
    }

    /// Looks up a class by id.
    pub fn by_id(&self, id: ClassId) -> Option<&ClassInfo> {
        self.infos.get(id.0 as usize)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over all classes.
    pub fn iter(&self) -> impl Iterator<Item = &ClassInfo> + '_ {
        self.infos.iter()
    }
}

/// Mutable RMI state of one world. Lock ordering: `rmi` before the heap.
#[derive(Debug, Default)]
pub struct RmiState {
    /// Strong references to local mirrors, keyed by proxy hash.
    pub registry: MirrorProxyRegistry,
    /// Local proxy objects by hash (not rooted; may go stale).
    pub proxies: HashMap<ProxyHash, ObjId>,
    /// Hashes under which local concrete objects have been exported.
    pub hash_of: HashMap<ObjId, ProxyHash>,
    /// Weak tracking of local proxies for the GC helper.
    pub weaklist: ProxyWeakList,
}

/// Execution-model knobs (all neutral for native images; the SCONE+JVM
/// baseline overrides them, see `baselines`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecModel {
    /// Extra charge per method invocation (JVM dispatch/interpretation).
    pub call_overhead_ns: u64,
    /// Multiplier on compute-kernel time (JVM bytecode execution).
    pub compute_factor: f64,
    /// Multiplier on GC copy traffic charged to the enclave (a
    /// generational JVM collector copies less than the native image's
    /// full-heap serial collector on allocation-heavy loads).
    pub gc_copy_factor: f64,
    /// One-time startup charge (class loading, JIT warm-up).
    pub startup_ns: u64,
    /// Fixed runtime-heap overhead committed at startup (a JVM's own
    /// objects), driving extra EPC pressure in-enclave.
    pub runtime_heap_overhead_bytes: u64,
}

impl Default for ExecModel {
    fn default() -> Self {
        ExecModel {
            call_overhead_ns: 0,
            compute_factor: 1.0,
            gc_copy_factor: 1.0,
            startup_ns: 0,
            runtime_heap_overhead_bytes: 0,
        }
    }
}

impl ExecModel {
    /// The native-image execution model (no overheads).
    pub fn native_image() -> Self {
        Self::default()
    }
}

/// Counters for one world's RMI activity.
///
/// The per-world atomics remain the authoritative source for
/// [`WorldStatsSnapshot`]; when a telemetry recorder is attached (see
/// [`World::attach_recorder`]) every count is mirrored into it so the
/// exported JSON agrees with these counters by construction.
#[derive(Debug, Default)]
pub struct WorldStats {
    rmi_calls: AtomicU64,
    switchless_calls: AtomicU64,
    switchless_fallbacks: AtomicU64,
    bytes_serialized: AtomicU64,
    proxies_created: AtomicU64,
    mirrors_created: AtomicU64,
    recorder: std::sync::OnceLock<Arc<telemetry::Recorder>>,
}

/// Snapshot of [`WorldStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorldStatsSnapshot {
    /// Cross-world method invocations initiated from this world.
    pub rmi_calls: u64,
    /// Subset of `rmi_calls` served switchlessly (no transition).
    pub switchless_calls: u64,
    /// Subset of `rmi_calls` that attempted a switchless post, found
    /// the mailbox full and fell back to a classic crossing.
    pub switchless_fallbacks: u64,
    /// Bytes serialized for crossings initiated from this world.
    pub bytes_serialized: u64,
    /// Proxy objects created in this world.
    pub proxies_created: u64,
    /// Mirror objects created in this world.
    pub mirrors_created: u64,
}

impl WorldStats {
    pub(crate) fn count_rmi(&self, bytes: u64) {
        self.rmi_calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_serialized.fetch_add(bytes, Ordering::Relaxed);
        if let Some(rec) = self.recorder.get() {
            rec.incr(telemetry::Counter::RmiCalls);
            rec.add(telemetry::Counter::BytesSerialized, bytes);
        }
    }

    pub(crate) fn count_switchless(&self) {
        self.switchless_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.get() {
            rec.incr(telemetry::Counter::SwitchlessCalls);
        }
    }

    /// No recorder mirror here: the switchless engine already counts
    /// `rmi.switchless_fallbacks` at the mailbox probe that failed.
    pub(crate) fn count_switchless_fallback(&self) {
        self.switchless_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_proxy(&self) {
        self.proxies_created.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.get() {
            rec.incr(telemetry::Counter::ProxiesCreated);
        }
    }

    pub(crate) fn count_mirror(&self) {
        self.mirrors_created.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.get() {
            rec.incr(telemetry::Counter::MirrorsCreated);
        }
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> WorldStatsSnapshot {
        WorldStatsSnapshot {
            rmi_calls: self.rmi_calls.load(Ordering::Relaxed),
            switchless_calls: self.switchless_calls.load(Ordering::Relaxed),
            switchless_fallbacks: self.switchless_fallbacks.load(Ordering::Relaxed),
            bytes_serialized: self.bytes_serialized.load(Ordering::Relaxed),
            proxies_created: self.proxies_created.load(Ordering::Relaxed),
            mirrors_created: self.mirrors_created.load(Ordering::Relaxed),
        }
    }
}

/// The scratch I/O channel of a world (backs `Instr::IoWrite` and the
/// `Ctx::io_*` operations).
#[derive(Debug, Default)]
pub(crate) struct WorldIo {
    pub(crate) file: Option<IoFile>,
    pub(crate) buf: Vec<u8>,
    pub(crate) bytes_written: u64,
}

#[derive(Debug)]
pub(crate) enum IoFile {
    /// In-enclave handle: every operation is an ocall.
    Shim(ShimFile),
    /// Untrusted handle: direct host I/O.
    Host(HostFile),
}

impl IoFile {
    pub(crate) fn write_all(&mut self, buf: &[u8]) -> Result<(), VmError> {
        match self {
            IoFile::Shim(f) => f.write_all(buf).map_err(VmError::from),
            IoFile::Host(f) => f.write_all(buf).map_err(VmError::from),
        }
    }

    pub(crate) fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), VmError> {
        match self {
            IoFile::Shim(f) => f.read_exact(buf).map_err(VmError::from),
            IoFile::Host(f) => f.read_exact(buf).map_err(VmError::from),
        }
    }

    pub(crate) fn seek(&mut self, pos: SeekFrom) -> Result<u64, VmError> {
        match self {
            IoFile::Shim(f) => f.seek(pos).map_err(VmError::from),
            IoFile::Host(f) => f.seek(pos).map_err(VmError::from),
        }
    }
}

/// Heap observer that charges the enclave for trusted-heap traffic.
#[derive(Debug)]
pub struct EnclaveHeapCharger {
    enclave: Arc<Enclave>,
    gc_copy_factor: f64,
}

impl EnclaveHeapCharger {
    /// Creates a charger for `enclave`; `gc_copy_factor` scales GC copy
    /// traffic (see [`ExecModel::gc_copy_factor`]).
    pub fn new(enclave: Arc<Enclave>, gc_copy_factor: f64) -> Self {
        EnclaveHeapCharger { enclave, gc_copy_factor }
    }
}

impl HeapObserver for EnclaveHeapCharger {
    fn on_alloc(&self, bytes: u64) {
        // Committing and writing fresh enclave heap pays EPC + MEE.
        let _ = self.enclave.alloc_heap(bytes);
        self.enclave.charge_heap_traffic(bytes);
    }

    fn on_gc_copy(&self, bytes: u64) {
        let charged = (bytes as f64 * self.gc_copy_factor) as u64;
        self.enclave.charge_gc_copy(charged);
    }

    fn on_free(&self, bytes: u64) {
        self.enclave.free_heap(bytes);
    }

    // Block-collector hooks: residency moves per block while object
    // writes and GC work are pure traffic (see docs/GC.md).

    fn on_block_commit(&self, bytes: u64) {
        let _ = self.enclave.alloc_heap(bytes);
    }

    fn on_block_alloc(&self, bytes: u64) {
        self.enclave.charge_heap_traffic(bytes);
    }

    fn on_block_release(&self, bytes: u64) {
        self.enclave.free_heap(bytes);
    }

    fn on_gc_mark(&self, objects: u64) {
        self.enclave.charge_gc_mark(objects);
    }

    fn on_gc_blocks_touched(&self, blocks: u64, block_bytes: u64) {
        self.enclave.charge_gc_blocks(blocks, block_bytes);
    }
}

/// One runtime of a (possibly partitioned) application.
#[derive(Debug)]
pub struct World {
    /// Which runtime this is.
    pub side: Side,
    /// Whether this world executes inside the enclave.
    pub in_enclave: bool,
    /// The world's isolate (heap).
    pub isolate: Arc<Isolate>,
    /// The image's class index.
    pub classes: Arc<ClassIndex>,
    /// RMI state (lock before the heap).
    pub rmi: Mutex<RmiState>,
    /// Proxy-hash allocator.
    pub hasher: ProxyHasher,
    /// RMI counters.
    pub stats: WorldStats,
    /// Execution-model knobs.
    pub exec_model: ExecModel,
    /// Scratch-file path for `Ctx::io_*`.
    pub scratch_path: PathBuf,
    pub(crate) io: Mutex<WorldIo>,
}

impl World {
    /// Creates a world over a fresh isolate.
    #[allow(clippy::too_many_arguments)] // internal constructor; every field is required
    pub fn new(
        side: Side,
        in_enclave: bool,
        classes: Arc<ClassIndex>,
        heap_config: HeapConfig,
        hash_scheme: HashScheme,
        exec_model: ExecModel,
        scratch_path: PathBuf,
        enclave: Option<&Arc<Enclave>>,
    ) -> Arc<Self> {
        let isolate = Isolate::new(side.name(), heap_config);
        if in_enclave {
            let enclave = enclave.expect("in-enclave world requires an enclave");
            let charger = EnclaveHeapCharger::new(Arc::clone(enclave), exec_model.gc_copy_factor);
            isolate.with_heap(|h| h.set_observer(Arc::new(charger)));
        }
        Arc::new(World {
            side,
            in_enclave,
            isolate,
            classes,
            rmi: Mutex::new(RmiState::default()),
            hasher: ProxyHasher::new(hash_scheme, side as u64 + 1),
            stats: WorldStats::default(),
            exec_model,
            scratch_path,
            io: Mutex::new(WorldIo::default()),
        })
    }

    /// Attaches a telemetry recorder to every instrumented surface this
    /// world owns: its RMI counters, its heap (allocation/GC metrics),
    /// its mirror-proxy registry and its proxy weak list. Called once at
    /// application launch; attaching twice is a no-op for the stats
    /// mirror and replaces the heap/RMI recorders.
    pub fn attach_recorder(&self, recorder: Arc<telemetry::Recorder>) {
        let _ = self.stats.recorder.set(Arc::clone(&recorder));
        self.isolate.with_heap(|h| h.set_recorder(Arc::clone(&recorder)));
        let mut rmi = self.rmi.lock();
        rmi.registry.set_recorder(Arc::clone(&recorder));
        rmi.weaklist.set_recorder(recorder);
    }

    /// Routes this world's heap GC pauses into the application's trace
    /// sink, on this world's lane and in model time. Called once at
    /// application launch, right after [`World::attach_recorder`].
    pub fn attach_tracer(
        &self,
        tracer: Arc<telemetry::trace::Tracer>,
        model_clock: Arc<dyn Fn() -> u64 + Send + Sync>,
    ) {
        let lane = self.side.lane();
        self.isolate.with_heap(|h| h.set_tracer(Arc::clone(&tracer), lane, model_clock));
    }

    /// Installs the deterministic charge clock on this world's heap so
    /// GC pauses are also recorded in model time (`gc.pause_model_ns`);
    /// typically `move || cost.charged().as_nanos() as u64`. Called once
    /// at application launch, right after [`World::attach_tracer`].
    pub fn attach_charge_clock(&self, clock: Arc<dyn Fn() -> u64 + Send + Sync>) {
        self.isolate.with_heap(|h| h.set_charge_clock(clock));
    }

    /// Reads a class by name, as a runtime error if missing.
    pub fn class_by_name(&self, name: &str) -> Result<&ClassInfo, VmError> {
        self.classes.by_name(name).ok_or_else(|| VmError::UnknownClass(name.to_owned()))
    }

    /// Reads the class of a live object.
    pub fn class_of_obj(&self, id: ObjId) -> Result<&ClassInfo, VmError> {
        let class_id = self
            .isolate
            .with_heap(|h| h.class_of(id))
            .ok_or_else(|| VmError::BadRef(format!("{id} is dead or foreign")))?;
        self.classes
            .by_id(class_id)
            .ok_or_else(|| VmError::BadRef(format!("{id} has unknown class {class_id}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDef;

    #[test]
    fn class_index_assigns_dense_ids() {
        let idx = ClassIndex::from_classes(&[ClassDef::new("A"), ClassDef::new("B")]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.by_name("A").unwrap().id, ClassId(0));
        assert_eq!(idx.by_name("B").unwrap().id, ClassId(1));
        assert_eq!(idx.by_id(ClassId(1)).unwrap().def.name, "B");
        assert!(idx.by_name("C").is_none());
    }

    #[test]
    fn world_resolves_classes() {
        let idx = Arc::new(ClassIndex::from_classes(&[ClassDef::new("A")]));
        let world = World::new(
            Side::Untrusted,
            false,
            idx,
            HeapConfig::default(),
            HashScheme::Wide,
            ExecModel::native_image(),
            std::env::temp_dir().join("world_test_scratch"),
            None,
        );
        assert!(world.class_by_name("A").is_ok());
        assert!(matches!(world.class_by_name("Zed"), Err(VmError::UnknownClass(_))));
    }

    #[test]
    fn stats_count() {
        let stats = WorldStats::default();
        stats.count_rmi(100);
        stats.count_rmi(50);
        stats.count_proxy();
        stats.count_mirror();
        let snap = stats.snapshot();
        assert_eq!(snap.rmi_calls, 2);
        assert_eq!(snap.bytes_serialized, 150);
        assert_eq!(snap.proxies_created, 1);
        assert_eq!(snap.mirrors_created, 1);
    }
}
