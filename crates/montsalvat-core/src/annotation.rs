//! The partitioning language: class-level trust annotations (§5.1).
//!
//! Montsalvat argues that class boundaries are the intuitive place to
//! reason about security and avoids the expensive data-flow analysis that
//! method- or data-level annotation schemes (Uranus, Glamdring) require.
//! Two principal annotations exist — `@Trusted` and `@Untrusted` — plus
//! an optional `@Neutral` default for utility classes that may be freely
//! copied into either runtime.

use std::fmt;

/// Trust annotation of a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trust {
    /// `@Trusted`: instances live only on the enclave heap; all methods
    /// execute inside the enclave.
    Trusted,
    /// `@Untrusted`: instances live only on the untrusted heap; all
    /// methods execute outside the enclave.
    Untrusted,
    /// `@Neutral` (the default for unannotated classes): not
    /// security-sensitive; instances may exist in both runtimes and are
    /// copied by value when crossing the boundary.
    #[default]
    Neutral,
}

impl Trust {
    /// Whether the class is annotated (trusted or untrusted), i.e. is
    /// pinned to one runtime and proxied in the other.
    pub fn is_annotated(&self) -> bool {
        !matches!(self, Trust::Neutral)
    }

    /// The runtime this class's concrete instances live in, if pinned.
    pub fn home_side(&self) -> Option<Side> {
        match self {
            Trust::Trusted => Some(Side::Trusted),
            Trust::Untrusted => Some(Side::Untrusted),
            Trust::Neutral => None,
        }
    }

    /// The annotation's Java-source rendering, e.g. `@Trusted`.
    pub fn annotation_name(&self) -> &'static str {
        match self {
            Trust::Trusted => "@Trusted",
            Trust::Untrusted => "@Untrusted",
            Trust::Neutral => "@Neutral",
        }
    }
}

impl fmt::Display for Trust {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.annotation_name())
    }
}

/// One of the two runtimes of a partitioned application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Inside the enclave.
    Trusted,
    /// Outside the enclave.
    Untrusted,
}

impl Side {
    /// The other runtime.
    pub fn opposite(&self) -> Side {
        match self {
            Side::Trusted => Side::Untrusted,
            Side::Untrusted => Side::Trusted,
        }
    }

    /// The trace lane (Perfetto "process") this side's events land on.
    pub fn lane(&self) -> telemetry::trace::Lane {
        match self {
            Side::Trusted => telemetry::trace::Lane::Trusted,
            Side::Untrusted => telemetry::trace::Lane::Untrusted,
        }
    }

    /// Conventional isolate name for this side.
    pub fn name(&self) -> &'static str {
        match self {
            Side::Trusted => "trusted",
            Side::Untrusted => "untrusted",
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_is_default_and_unannotated() {
        assert_eq!(Trust::default(), Trust::Neutral);
        assert!(!Trust::Neutral.is_annotated());
        assert!(Trust::Trusted.is_annotated());
        assert!(Trust::Untrusted.is_annotated());
    }

    #[test]
    fn home_sides() {
        assert_eq!(Trust::Trusted.home_side(), Some(Side::Trusted));
        assert_eq!(Trust::Untrusted.home_side(), Some(Side::Untrusted));
        assert_eq!(Trust::Neutral.home_side(), None);
    }

    #[test]
    fn sides_are_opposites() {
        assert_eq!(Side::Trusted.opposite(), Side::Untrusted);
        assert_eq!(Side::Untrusted.opposite(), Side::Trusted);
        assert_eq!(Side::Trusted.opposite().opposite(), Side::Trusted);
    }

    #[test]
    fn display_matches_java_annotations() {
        assert_eq!(Trust::Trusted.to_string(), "@Trusted");
        assert_eq!(Side::Trusted.to_string(), "trusted");
    }
}
