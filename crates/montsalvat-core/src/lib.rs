//! # montsalvat-core — annotation-based partitioning for enclaves
//!
//! A Rust reproduction of **Montsalvat** (Yuhala et al., Middleware '21):
//! a tool that partitions managed applications into trusted and untrusted
//! halves for Intel SGX enclaves using class-level annotations, an
//! RMI-like proxy/mirror mechanism for cross-enclave object
//! communication, and a GC extension that keeps object destruction
//! consistent across the two heaps.
//!
//! The pipeline mirrors the paper's four phases:
//!
//! 1. **Annotation** ([`annotation`]) — classes are `@Trusted`,
//!    `@Untrusted` or neutral.
//! 2. **Bytecode transformation** ([`mod@transform`]) — proxies and relay
//!    methods are generated; the EDL interface is emitted ([`codegen`]).
//! 3. **Native-image partitioning** ([`analysis`], [`image_builder`]) —
//!    reachability analysis from each image's entry points prunes
//!    unreachable methods and proxies; build-time initialisation is
//!    snapshotted into the image heap.
//! 4. **SGX application** ([`exec`]) — the images run as two isolates
//!    bridged by simulated ecalls/ocalls, with GC helper threads
//!    synchronising proxy/mirror lifetimes.
//!
//! # Examples
//!
//! Partition and run the paper's bank example (Listing 1):
//!
//! ```
//! use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
//! use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
//! use montsalvat_core::samples::bank_program;
//! use montsalvat_core::transform::transform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let transformed = transform(&bank_program());
//! let (trusted, untrusted) = build_partitioned_images(
//!     &transformed,
//!     &ImageOptions::default(),
//!     &ImageOptions::default(),
//! )?;
//! let app = PartitionedApp::launch(&trusted, &untrusted, AppConfig::default())?;
//! app.run_main()?;
//! // Accounts were created in the enclave via ecalls:
//! assert!(app.sgx_stats().ecalls >= 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod annotation;
pub mod class;
pub mod codegen;
pub mod error;
pub mod exec;
pub mod image_builder;
pub mod provider;
pub mod samples;
pub mod transform;

pub use annotation::{Side, Trust};
pub use class::{ClassDef, Instr, MethodDef, MethodKind, MethodRef, Operand, Program};
pub use error::{BuildError, VmError};
pub use exec::app::{AppConfig, PartitionedApp, Placement, SingleWorldApp};
pub use exec::ctx::Ctx;
pub use image_builder::{
    build_partitioned_images, build_unpartitioned_image, ImageOptions, NativeImage,
};
pub use provider::{CrossingDir, EnclaveProvider, ProviderKind};
pub use transform::{transform, TransformedProgram};
