//! The control-arm provider: no enclave, zero-cost crossings.

use sgx_sim::SgxError;

use super::{CrossingDir, EnclaveProvider, ProviderKind};

/// Runs the trusted world as plain host code. Crossings execute the
/// body directly: no transition counters, no model-time charges, no
/// relay overhead, and — because
/// [`shields_trusted_memory`](EnclaveProvider::shields_trusted_memory)
/// is `false` — no EPC commits, MEE heap traffic, shim I/O relays or
/// enclave serde/compute factors anywhere downstream. What remains is
/// exactly the partitioning machinery itself (marshalling, relay
/// dispatch, registry work, scheduler hand-offs), which makes this the
/// baseline for "what does Montsalvat cost *without* SGX".
#[derive(Debug, Default)]
pub struct PassThrough;

impl PassThrough {
    /// Creates the provider; it carries no state.
    pub fn new() -> Self {
        PassThrough
    }
}

impl EnclaveProvider for PassThrough {
    fn kind(&self) -> ProviderKind {
        ProviderKind::PassThrough
    }

    fn shields_trusted_memory(&self) -> bool {
        false
    }

    fn charge_relay_overhead(&self) {}

    fn cross_dyn(
        &self,
        _dir: CrossingDir,
        _routine: &str,
        _bytes: usize,
        body: &mut dyn FnMut(),
    ) -> Result<(), SgxError> {
        body();
        Ok(())
    }
}
