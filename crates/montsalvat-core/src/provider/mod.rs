//! Deployment-mode providers: *how the trusted world is realized*.
//!
//! The execution layer ([`crate::exec`]) is written against the
//! [`EnclaveProvider`] trait instead of calling `sgx-sim` directly, so
//! the same partitioned application can run under different trusted
//! substrates without touching app code — the seam NVIDIA's nvrc draws
//! between its platform detector and its standard/confidential
//! providers. Two providers ship today:
//!
//! - [`SimSgx`] (the default) realizes the trusted world inside the
//!   simulated enclave: every crossing is an ecall/ocall charged at the
//!   paper's transition + per-byte rates, trusted memory pays EPC/MEE
//!   costs, and trusted I/O relays through the libc shim.
//! - [`PassThrough`] runs the trusted world as plain host code:
//!   crossings execute the body directly at zero model cost and count
//!   zero transitions. It is the control arm for measuring pure
//!   app/serde/scheduler overhead — everything Montsalvat adds that is
//!   *not* SGX.
//!
//! Selection goes through [`detector::detect`]: an explicit
//! [`crate::exec::app::AppConfig::provider`] wins, then the
//! `MONTSALVAT_PROVIDER` environment variable, then the [`SimSgx`]
//! default. See `docs/DEPLOYMENT.md` for the contract and knobs.

pub mod detector;
mod pass_through;
mod sim_sgx;

pub use detector::{detect, detect_from, parse_provider, PROVIDER_ENV};
pub use pass_through::PassThrough;
pub use sim_sgx::SimSgx;

use std::sync::Arc;

use sgx_sim::cost::CostModel;
use sgx_sim::enclave::Enclave;
use sgx_sim::SgxError;

/// The deployment modes a provider can realize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProviderKind {
    /// Simulated SGX: crossings are charged transitions, trusted memory
    /// is EPC/MEE-priced (the default, and the paper's configuration).
    SimSgx,
    /// No enclave: crossings run the body directly at zero cost.
    PassThrough,
}

impl ProviderKind {
    /// The canonical name, accepted back by [`parse_provider`].
    pub const fn name(self) -> &'static str {
        match self {
            ProviderKind::SimSgx => "sim-sgx",
            ProviderKind::PassThrough => "passthrough",
        }
    }
}

impl std::fmt::Display for ProviderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Direction of a boundary crossing, in enclave terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossingDir {
    /// Into the trusted world (an ecall under [`SimSgx`]).
    Enter,
    /// Out of the trusted world (an ocall under [`SimSgx`]).
    Exit,
}

/// How a deployment mode realizes the trusted world.
///
/// Implementations decide what a crossing costs, whether trusted
/// memory is shielded (and therefore EPC/MEE-priced), and what the
/// relay software overhead is. The execution layer routes **every**
/// boundary crossing through [`EnclaveProvider::cross_dyn`] (usually
/// via the generic [`cross`](trait.EnclaveProvider.html#method.cross)
/// convenience on `dyn EnclaveProvider`), so provider counters stay
/// ground truth the same way `sgx-sim`'s closure-based ecalls are.
pub trait EnclaveProvider: Send + Sync + std::fmt::Debug {
    /// Which deployment mode this provider realizes.
    fn kind(&self) -> ProviderKind;

    /// Whether trusted-world memory lives behind the (simulated)
    /// enclave boundary. When `false`, worlds are created with
    /// `in_enclave = false`: no EPC commits, no MEE heap charges, host
    /// I/O instead of shim relays, no serde/compute enclave factors.
    fn shields_trusted_memory(&self) -> bool;

    /// Charges the relay software overhead of one classic crossing
    /// (isolate attach, edge-routine marshalling, registry work). Free
    /// providers make this a no-op.
    fn charge_relay_overhead(&self);

    /// Performs one boundary crossing, running `body` exactly once on
    /// the far side. `routine` is the EDL edge-routine name and
    /// `bytes` the wire length of the marshalled message, both used
    /// for cost charging and telemetry only.
    ///
    /// Object safety forces the `&mut dyn FnMut()` shape; call sites
    /// should prefer the generic [`cross`] wrapper, which returns the
    /// body's value.
    ///
    /// [`cross`]: trait.EnclaveProvider.html#method.cross
    ///
    /// # Errors
    ///
    /// Propagates substrate failures (e.g. a lost enclave under
    /// [`SimSgx`] failure injection). Infallible providers never error.
    fn cross_dyn(
        &self,
        dir: CrossingDir,
        routine: &str,
        bytes: usize,
        body: &mut dyn FnMut(),
    ) -> Result<(), SgxError>;
}

impl dyn EnclaveProvider {
    /// Performs one boundary crossing and returns the body's value —
    /// the typed convenience over [`EnclaveProvider::cross_dyn`].
    ///
    /// # Errors
    ///
    /// Propagates substrate failures from the provider.
    pub fn cross<R>(
        &self,
        dir: CrossingDir,
        routine: &str,
        bytes: usize,
        f: impl FnOnce() -> R,
    ) -> Result<R, SgxError> {
        let mut f = Some(f);
        let mut out = None;
        self.cross_dyn(dir, routine, bytes, &mut || {
            out = Some((f.take().expect("crossing body runs exactly once"))());
        })?;
        Ok(out.expect("provider ran the crossing body"))
    }
}

/// Instantiates the provider for `kind` over an application's enclave
/// and cost model. [`PassThrough`] ignores both (its crossings touch
/// neither), but takes the same signature so launch sites stay uniform.
pub fn build(
    kind: ProviderKind,
    enclave: &Arc<Enclave>,
    cost: &Arc<CostModel>,
) -> Arc<dyn EnclaveProvider> {
    match kind {
        ProviderKind::SimSgx => Arc::new(SimSgx::new(Arc::clone(enclave), Arc::clone(cost))),
        ProviderKind::PassThrough => Arc::new(PassThrough::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::cost::{ClockMode, CostParams};
    use sgx_sim::enclave::EnclaveConfig;

    fn harness() -> (Arc<Enclave>, Arc<CostModel>) {
        let cost = Arc::new(CostModel::new(CostParams::paper_defaults(), ClockMode::Virtual));
        let enclave =
            Enclave::create(&EnclaveConfig::default(), b"provider-test", Arc::clone(&cost))
                .expect("enclave creation");
        (enclave, cost)
    }

    #[test]
    fn sim_sgx_charges_and_counts_transitions() {
        let (enclave, cost) = harness();
        let provider = build(ProviderKind::SimSgx, &enclave, &cost);
        let before = cost.charged();
        let value = provider.cross(CrossingDir::Enter, "ecall_test", 64, || 41 + 1).unwrap();
        assert_eq!(value, 42);
        assert_eq!(enclave.stats().ecalls, 1);
        assert!(cost.charged() > before, "SimSgx crossings must charge model time");
        provider.charge_relay_overhead();
        assert!(provider.shields_trusted_memory());
    }

    #[test]
    fn pass_through_is_free_and_transitionless() {
        let (enclave, cost) = harness();
        let provider = build(ProviderKind::PassThrough, &enclave, &cost);
        let before = cost.charged();
        let value = provider.cross(CrossingDir::Enter, "ecall_test", 64, || 7).unwrap();
        let back = provider.cross(CrossingDir::Exit, "ocall_test", 64, || 8).unwrap();
        provider.charge_relay_overhead();
        assert_eq!((value, back), (7, 8));
        assert_eq!(enclave.stats().ecalls, 0);
        assert_eq!(enclave.stats().ocalls, 0);
        assert_eq!(cost.charged(), before, "PassThrough crossings are zero-cost");
        assert!(!provider.shields_trusted_memory());
    }

    #[test]
    fn cross_propagates_the_exit_direction() {
        let (enclave, cost) = harness();
        let provider = build(ProviderKind::SimSgx, &enclave, &cost);
        provider.cross(CrossingDir::Exit, "ocall_test", 16, || ()).unwrap();
        assert_eq!(enclave.stats().ocalls, 1);
        assert_eq!(enclave.stats().ecalls, 0);
    }
}
