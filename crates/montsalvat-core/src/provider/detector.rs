//! Provider detection: explicit config, then environment, then default.
//!
//! Mirrors the shape of nvrc's `platform/detector.rs`: a pure decision
//! function (`detect_from`, unit-testable) wrapped by an environment
//! probe (`detect`). There is no hardware to sniff in the simulation,
//! so the "platform probe" is the `MONTSALVAT_PROVIDER` variable.

use super::ProviderKind;

/// Environment variable consulted when the application config does not
/// pin a provider. Accepted values are listed at [`parse_provider`].
pub const PROVIDER_ENV: &str = "MONTSALVAT_PROVIDER";

/// Parses a provider name. Accepts the canonical names
/// (`sim-sgx`, `passthrough`) plus common spellings:
/// `sim_sgx`/`simsgx`/`sim`/`sgx` and
/// `pass-through`/`pass_through`/`none`. Case-insensitive.
/// Returns `None` for anything else.
pub fn parse_provider(raw: &str) -> Option<ProviderKind> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "sim-sgx" | "sim_sgx" | "simsgx" | "sim" | "sgx" => Some(ProviderKind::SimSgx),
        "passthrough" | "pass-through" | "pass_through" | "none" => Some(ProviderKind::PassThrough),
        _ => None,
    }
}

/// Resolves the provider for a launch: an explicit config override
/// wins, then [`PROVIDER_ENV`] from the process environment, then the
/// [`ProviderKind::SimSgx`] default.
pub fn detect(config_override: Option<ProviderKind>) -> ProviderKind {
    detect_from(config_override, std::env::var(PROVIDER_ENV).ok().as_deref())
}

/// Pure core of [`detect`]: same precedence, environment value passed
/// in. An unrecognized environment value falls back to the default
/// rather than aborting the launch — a misspelled variable must not
/// silently change what an experiment measures, and the default is the
/// measured (SimSgx) configuration.
pub fn detect_from(config_override: Option<ProviderKind>, env: Option<&str>) -> ProviderKind {
    if let Some(kind) = config_override {
        return kind;
    }
    if let Some(kind) = env.and_then(parse_provider) {
        return kind;
    }
    ProviderKind::SimSgx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_override_beats_environment() {
        assert_eq!(
            detect_from(Some(ProviderKind::PassThrough), Some("sim-sgx")),
            ProviderKind::PassThrough
        );
        assert_eq!(
            detect_from(Some(ProviderKind::SimSgx), Some("passthrough")),
            ProviderKind::SimSgx
        );
    }

    #[test]
    fn environment_spellings_parse() {
        for raw in ["passthrough", "PASS-THROUGH", "pass_through", " none "] {
            assert_eq!(detect_from(None, Some(raw)), ProviderKind::PassThrough, "{raw:?}");
        }
        for raw in ["sim-sgx", "SIM_SGX", "simsgx", "sim", "sgx"] {
            assert_eq!(detect_from(None, Some(raw)), ProviderKind::SimSgx, "{raw:?}");
        }
    }

    #[test]
    fn unknown_or_missing_environment_defaults_to_sim_sgx() {
        assert_eq!(detect_from(None, None), ProviderKind::SimSgx);
        assert_eq!(detect_from(None, Some("tdx")), ProviderKind::SimSgx);
        assert_eq!(detect_from(None, Some("")), ProviderKind::SimSgx);
    }

    #[test]
    fn canonical_names_round_trip() {
        for kind in [ProviderKind::SimSgx, ProviderKind::PassThrough] {
            assert_eq!(parse_provider(kind.name()), Some(kind));
        }
    }
}
