//! The default provider: crossings are simulated SGX transitions.

use std::sync::Arc;

use sgx_sim::cost::CostModel;
use sgx_sim::enclave::Enclave;
use sgx_sim::SgxError;

use super::{CrossingDir, EnclaveProvider, ProviderKind};

/// Realizes the trusted world inside the simulated enclave: every
/// crossing is an `Enclave::ecall`/`Enclave::ocall` (counted, charged
/// at transition + per-byte marshalling rates, traced), trusted memory
/// is EPC/MEE-priced, and the classic relay overhead is charged per
/// crossing. This reproduces the pre-provider behaviour bit for bit —
/// it is the measured configuration of the paper.
#[derive(Debug)]
pub struct SimSgx {
    enclave: Arc<Enclave>,
    cost: Arc<CostModel>,
}

impl SimSgx {
    /// Wraps an application's enclave and cost model.
    pub fn new(enclave: Arc<Enclave>, cost: Arc<CostModel>) -> Self {
        SimSgx { enclave, cost }
    }
}

impl EnclaveProvider for SimSgx {
    fn kind(&self) -> ProviderKind {
        ProviderKind::SimSgx
    }

    fn shields_trusted_memory(&self) -> bool {
        true
    }

    fn charge_relay_overhead(&self) {
        self.cost.charge_ns(self.cost.params().relay_overhead_ns);
    }

    fn cross_dyn(
        &self,
        dir: CrossingDir,
        routine: &str,
        bytes: usize,
        body: &mut dyn FnMut(),
    ) -> Result<(), SgxError> {
        match dir {
            CrossingDir::Enter => self.enclave.ecall(routine, bytes, &mut *body),
            CrossingDir::Exit => self.enclave.ocall(routine, bytes, &mut *body),
        }
    }
}
