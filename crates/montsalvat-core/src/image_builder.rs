//! Native-image generation (§5.3).
//!
//! The native image generator takes the transformed class sets, runs the
//! reachability analysis from each image's entry points, prunes
//! unreachable program elements, optionally executes build-time
//! initialisation whose resulting objects are snapshotted into the image
//! heap (§2.2), and produces the relocatable images that the SGX module
//! links into the final application:
//!
//! - the **trusted image** is analysed from the relay methods of trusted
//!   classes (its `@CEntryPoint`s);
//! - the **untrusted image** is analysed from `main` plus the relay
//!   methods of untrusted classes (the paper places `main` in the
//!   untrusted image, §5.3).

use std::sync::Arc;

use runtime_sim::heap::{Heap, HeapConfig};
use runtime_sim::image::ImageHeap;

use crate::analysis::{analyze, prune, Reachability};
use crate::annotation::{Side, Trust};
use crate::class::{ClassDef, MethodBody, MethodRef, Program};
use crate::error::BuildError;
use crate::transform::TransformedProgram;

/// Build-time initialiser: runs on a fresh heap at image-build time; the
/// heap's final state becomes the image heap.
pub type BuildInit = Arc<dyn Fn(&mut Heap) -> Result<(), String> + Send + Sync>;

/// Options for image generation.
#[derive(Clone, Default)]
pub struct ImageOptions {
    /// Build-time initialisation (§2.2: "executing initialisation code
    /// at build time"). `None` produces an empty image heap.
    pub build_init: Option<BuildInit>,
    /// Extra entry points to keep through the closed-world analysis —
    /// the analogue of GraalVM's reflection configuration (§2.2): any
    /// method invoked dynamically (e.g. by a test harness or benchmark
    /// driver) that no static call edge reaches must be listed here, or
    /// pruning removes it.
    pub extra_entry_points: Vec<MethodRef>,
}

impl ImageOptions {
    /// Convenience: options that only register extra dynamic entry
    /// points (the reflection-config analogue).
    pub fn with_entry_points(entries: impl IntoIterator<Item = MethodRef>) -> Self {
        ImageOptions { extra_entry_points: entries.into_iter().collect(), ..Self::default() }
    }
}

impl std::fmt::Debug for ImageOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImageOptions")
            .field("build_init", &self.build_init.as_ref().map(|_| ".."))
            .field("extra_entry_points", &self.extra_entry_points)
            .finish()
    }
}

/// A generated native image: the pruned classes, entry points and image
/// heap that the runtime loads.
#[derive(Debug, Clone)]
pub struct NativeImage {
    /// Image name (e.g. `trusted.o`).
    pub name: String,
    /// Which runtime this image serves; `None` for unpartitioned images.
    pub side: Option<Side>,
    /// Pruned class set.
    pub classes: Vec<ClassDef>,
    /// Entry points the image exports.
    pub entry_points: Vec<MethodRef>,
    /// Snapshot of build-time-initialised objects.
    pub image_heap: ImageHeap,
    /// The analysis result the pruning was based on (kept for
    /// inspection and tests).
    pub reachability: Reachability,
}

impl NativeImage {
    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Deterministic byte encoding of the image used as the enclave
    /// measurement input (the analogue of hashing `enclave.so`).
    pub fn measurement_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.name.as_bytes());
        for class in &self.classes {
            out.extend_from_slice(class.name.as_bytes());
            out.push(class.trust.is_annotated() as u8);
            for field in &class.fields {
                out.extend_from_slice(field.as_bytes());
            }
            for method in &class.methods {
                out.extend_from_slice(method.name.as_bytes());
                out.push(match method.body {
                    MethodBody::Instrs(_) => 0,
                    MethodBody::Native(_) => 1,
                    MethodBody::ProxyCall { .. } => 2,
                    MethodBody::Relay { .. } => 3,
                });
            }
        }
        out.extend_from_slice(&self.image_heap.to_bytes());
        out
    }

    /// Rough compiled-size estimate in bytes (drives EPC commitment of
    /// the loaded image).
    pub fn code_size_estimate(&self) -> u64 {
        let mut size = 4096; // runtime stubs
        for class in &self.classes {
            size += 256; // class metadata
            for method in &class.methods {
                size += match &method.body {
                    MethodBody::Instrs(instrs) => 64 + 32 * instrs.len() as u64,
                    MethodBody::Native(_) => 512,
                    MethodBody::ProxyCall { .. } => 128,
                    MethodBody::Relay { .. } => 192,
                };
            }
        }
        size + self.image_heap.byte_len()
    }
}

fn run_build_init(options: &ImageOptions) -> Result<ImageHeap, BuildError> {
    match &options.build_init {
        None => Ok(ImageHeap::default()),
        Some(init) => {
            let mut heap = Heap::new(HeapConfig::default());
            init(&mut heap).map_err(BuildError::InitFailed)?;
            heap.collect();
            Ok(ImageHeap::snapshot(&heap))
        }
    }
}

/// Builds the trusted image from a transformed program.
///
/// # Errors
///
/// Fails only if build-time initialisation fails.
pub fn build_trusted_image(
    tp: &TransformedProgram,
    options: &ImageOptions,
) -> Result<NativeImage, BuildError> {
    let mut classes = tp.trusted_set.clone();
    classes.extend(tp.neutral_set.clone());
    let mut entry_points = tp.relay_entry_points(Trust::Trusted);
    entry_points.extend(options.extra_entry_points.iter().cloned());
    let reachability = analyze(&classes, &entry_points);
    let classes = prune(classes, &reachability);
    Ok(NativeImage {
        name: "trusted.o".into(),
        side: Some(Side::Trusted),
        classes,
        entry_points,
        image_heap: run_build_init(options)?,
        reachability,
    })
}

/// Builds the untrusted image from a transformed program.
///
/// # Errors
///
/// Fails only if build-time initialisation fails.
pub fn build_untrusted_image(
    tp: &TransformedProgram,
    options: &ImageOptions,
) -> Result<NativeImage, BuildError> {
    let mut classes = tp.untrusted_set.clone();
    classes.extend(tp.neutral_set.clone());
    let mut entry_points = vec![tp.main.clone()];
    entry_points.extend(tp.relay_entry_points(Trust::Untrusted));
    entry_points.extend(options.extra_entry_points.iter().cloned());
    let reachability = analyze(&classes, &entry_points);
    let classes = prune(classes, &reachability);
    Ok(NativeImage {
        name: "untrusted.o".into(),
        side: Some(Side::Untrusted),
        classes,
        entry_points,
        image_heap: run_build_init(options)?,
        reachability,
    })
}

/// Builds both images of a partitioned application.
///
/// # Errors
///
/// Fails only if build-time initialisation fails.
pub fn build_partitioned_images(
    tp: &TransformedProgram,
    trusted_options: &ImageOptions,
    untrusted_options: &ImageOptions,
) -> Result<(NativeImage, NativeImage), BuildError> {
    Ok((build_trusted_image(tp, trusted_options)?, build_untrusted_image(tp, untrusted_options)?))
}

/// Builds a single unpartitioned image (§5.6): no bytecode
/// modifications, the whole application in one image, analysed from
/// `main` alone.
///
/// # Errors
///
/// Fails only if build-time initialisation fails.
pub fn build_unpartitioned_image(
    program: &Program,
    options: &ImageOptions,
) -> Result<NativeImage, BuildError> {
    let classes = program.classes.clone();
    let mut entry_points = vec![program.main.clone()];
    entry_points.extend(options.extra_entry_points.iter().cloned());
    let reachability = analyze(&classes, &entry_points);
    let classes = prune(classes, &reachability);
    Ok(NativeImage {
        name: "app.o".into(),
        side: None,
        classes,
        entry_points,
        image_heap: run_build_init(options)?,
        reachability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRole;
    use crate::samples::bank_program;
    use crate::transform::transform;
    use runtime_sim::value::{ClassId, Value};

    fn images() -> (NativeImage, NativeImage) {
        let tp = transform(&bank_program());
        build_partitioned_images(&tp, &ImageOptions::default(), &ImageOptions::default()).unwrap()
    }

    #[test]
    fn trusted_image_excludes_untrusted_functionality() {
        let (trusted, _) = images();
        // Person's proxy is unreachable from trusted entry points and
        // was pruned (§5.3).
        assert!(trusted.class("Person").is_none());
        assert!(trusted.class("Main").is_none());
        // Concrete trusted classes present.
        let account = trusted.class("Account").unwrap();
        assert_eq!(account.role, ClassRole::Concrete);
    }

    #[test]
    fn untrusted_image_contains_only_proxies_of_trusted() {
        let (_, untrusted) = images();
        let account = untrusted.class("Account").unwrap();
        assert_eq!(account.role, ClassRole::Proxy);
        let person = untrusted.class("Person").unwrap();
        assert_eq!(person.role, ClassRole::Concrete);
        // Main is an entry point.
        assert!(untrusted.entry_points.contains(&MethodRef::new("Main", "main")));
    }

    #[test]
    fn unpartitioned_image_keeps_everything_reachable_from_main() {
        let image = build_unpartitioned_image(&bank_program(), &ImageOptions::default()).unwrap();
        assert!(image.side.is_none());
        assert!(image.class("Account").is_some());
        assert!(image.class("Person").is_some());
        // StringUtil is unreachable from main and pruned by the
        // closed-world analysis.
        assert!(image.class("StringUtil").is_none());
        // No relays/proxies in unpartitioned builds.
        assert!(image.classes.iter().all(|c| c.role == ClassRole::Concrete
            && c.methods.iter().all(|m| !crate::transform::is_relay_name(&m.name))));
    }

    #[test]
    fn measurements_differ_between_images() {
        let (trusted, untrusted) = images();
        assert_ne!(trusted.measurement_bytes(), untrusted.measurement_bytes());
        assert_eq!(trusted.measurement_bytes(), trusted.measurement_bytes());
    }

    #[test]
    fn build_init_populates_image_heap() {
        let tp = transform(&bank_program());
        let options = ImageOptions {
            build_init: Some(Arc::new(|heap: &mut Heap| {
                let id = heap
                    .alloc(ClassId(0), vec![Value::from("parsed config")])
                    .map_err(|e| e.to_string())?;
                heap.add_root(id);
                Ok(())
            })),
            ..ImageOptions::default()
        };
        let image = build_trusted_image(&tp, &options).unwrap();
        assert_eq!(image.image_heap.object_count(), 1);
        assert!(image.code_size_estimate() > 4096);
    }

    #[test]
    fn failing_build_init_reports() {
        let tp = transform(&bank_program());
        let options = ImageOptions {
            build_init: Some(Arc::new(|_: &mut Heap| Err("config file missing".into()))),
            ..ImageOptions::default()
        };
        let err = build_trusted_image(&tp, &options).unwrap_err();
        assert_eq!(err, BuildError::InitFailed("config file missing".into()));
    }

    #[test]
    fn code_size_scales_with_classes() {
        let (trusted, _) = images();
        let unpart = build_unpartitioned_image(&bank_program(), &ImageOptions::default()).unwrap();
        // The unpartitioned image carries every reachable application
        // class; the trusted image carries only the trusted slice.
        assert!(unpart.classes.len() > trusted.classes.len());
        assert!(trusted.code_size_estimate() > 4096);
    }
}
