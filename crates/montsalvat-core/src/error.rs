//! Errors of the partitioning pipeline and the partitioned runtime.

use std::error::Error;
use std::fmt;

use rmi::codec::CodecError;
use sgx_sim::SgxError;

/// Errors raised while validating, transforming or building a program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// Two classes share a name.
    DuplicateClass(String),
    /// A method was defined twice in one class.
    DuplicateMethod {
        /// Owning class.
        class: String,
        /// Repeated method name.
        method: String,
    },
    /// A declared call edge references a class that does not exist.
    UnknownClass(String),
    /// A declared call edge references a method that does not exist.
    UnknownMethod {
        /// Receiver class.
        class: String,
        /// Missing method.
        method: String,
    },
    /// The program has no `main` entry point.
    MissingMain,
    /// Build-time initialisation failed.
    InitFailed(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateClass(c) => write!(f, "duplicate class `{c}`"),
            BuildError::DuplicateMethod { class, method } => {
                write!(f, "duplicate method `{class}.{method}`")
            }
            BuildError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            BuildError::UnknownMethod { class, method } => {
                write!(f, "unknown method `{class}.{method}`")
            }
            BuildError::MissingMain => write!(f, "program has no main entry point"),
            BuildError::InitFailed(m) => write!(f, "build-time initialisation failed: {m}"),
        }
    }
}

impl Error for BuildError {}

/// Errors raised while executing a partitioned application.
#[derive(Debug)]
#[non_exhaustive]
pub enum VmError {
    /// A class name did not resolve in the executing image.
    UnknownClass(String),
    /// A method did not resolve on its receiver class.
    UnknownMethod {
        /// Receiver class.
        class: String,
        /// Missing method.
        method: String,
    },
    /// A field name did not resolve on its class.
    UnknownField {
        /// Owning class.
        class: String,
        /// Missing field.
        field: String,
    },
    /// A value had the wrong kind for an operation.
    Type(String),
    /// Wrong number of arguments for a method.
    Arity {
        /// Receiver class.
        class: String,
        /// Invoked method.
        method: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A reference was dead or pointed into the wrong isolate.
    BadRef(String),
    /// Serialization failed at the boundary.
    Codec(CodecError),
    /// The enclave substrate failed.
    Sgx(SgxError),
    /// The managed heap was exhausted.
    OutOfMemory(runtime_sim::heap::OutOfMemory),
    /// Relayed host I/O failed.
    Io(String),
    /// The application body returned an application-level error.
    App(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            VmError::UnknownMethod { class, method } => {
                write!(f, "unknown method `{class}.{method}`")
            }
            VmError::UnknownField { class, field } => {
                write!(f, "unknown field `{class}.{field}`")
            }
            VmError::Type(m) => write!(f, "type error: {m}"),
            VmError::Arity { class, method, expected, got } => write!(
                f,
                "arity mismatch calling `{class}.{method}`: expected {expected}, got {got}"
            ),
            VmError::BadRef(m) => write!(f, "bad reference: {m}"),
            VmError::Codec(e) => write!(f, "serialization error: {e}"),
            VmError::Sgx(e) => write!(f, "sgx error: {e}"),
            VmError::OutOfMemory(e) => write!(f, "{e}"),
            VmError::Io(m) => write!(f, "i/o error: {m}"),
            VmError::App(m) => write!(f, "application error: {m}"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Codec(e) => Some(e),
            VmError::Sgx(e) => Some(e),
            VmError::OutOfMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for VmError {
    fn from(e: CodecError) -> Self {
        VmError::Codec(e)
    }
}

impl From<SgxError> for VmError {
    fn from(e: SgxError) -> Self {
        VmError::Sgx(e)
    }
}

impl From<runtime_sim::heap::OutOfMemory> for VmError {
    fn from(e: runtime_sim::heap::OutOfMemory) -> Self {
        VmError::OutOfMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildError>();
        assert_send_sync::<VmError>();
    }

    #[test]
    fn displays_are_lowercase() {
        assert!(BuildError::MissingMain.to_string().starts_with("program"));
        assert!(VmError::UnknownClass("X".into()).to_string().contains("`X`"));
    }

    #[test]
    fn sources_chain() {
        let e = VmError::Sgx(SgxError::EnclaveLost);
        assert!(e.source().is_some());
    }
}
