//! Tests for the *adaptive* switchless engine: bounded-mailbox classic
//! fallback, miss-driven scaling, and the worker-count invariants.

use std::sync::Arc;
use std::time::{Duration, Instant};

use montsalvat_core::annotation::Side;
use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
use montsalvat_core::exec::switchless::tuner::TunerConfig;
use montsalvat_core::exec::switchless::SwitchlessConfig;
use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat_core::samples::bank_program;
use montsalvat_core::transform::transform;
use montsalvat_core::MethodRef;
use proptest::prelude::*;
use runtime_sim::value::Value;

fn entries() -> Vec<MethodRef> {
    vec![
        MethodRef::new("Person", "<init>"),
        MethodRef::new("Person", "transfer"),
        MethodRef::new("Person", "getAccount"),
        MethodRef::new("Account", "<init>"),
        MethodRef::new("Account", "balance"),
    ]
}

fn launch(switchless: SwitchlessConfig) -> PartitionedApp {
    let tp = transform(&bank_program());
    let options = ImageOptions::with_entry_points(entries());
    let (t, u) = build_partitioned_images(&tp, &options, &options).unwrap();
    let config = AppConfig {
        gc_helper_interval: None,
        switchless: Some(switchless),
        ..AppConfig::default()
    };
    PartitionedApp::launch(&t, &u, config).unwrap()
}

fn run_bank(app: &PartitionedApp) -> Value {
    app.enter_untrusted(|ctx| {
        let alice = ctx.new_object("Person", &[Value::from("Alice"), Value::Int(100)])?;
        let bob = ctx.new_object("Person", &[Value::from("Bob"), Value::Int(25)])?;
        ctx.call(&alice, "transfer", &[bob.clone(), Value::Int(25)])?;
        let acc = ctx.call(&alice, "getAccount", &[])?;
        ctx.call(&acc, "balance", &[])
    })
    .unwrap()
}

/// A single worker behind a one-slot mailbox, saturated by concurrent
/// callers: some posts must find the mailbox full, fall back to classic
/// crossings (real transitions), and be counted as fallbacks — while
/// every call still returns the right answer.
#[test]
fn saturating_one_worker_falls_back_to_classic_and_counts_it() {
    let app = Arc::new(launch(SwitchlessConfig {
        mailbox_capacity: 1,
        max_batch: 1,
        ..SwitchlessConfig::fixed(1)
    }));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let app = Arc::clone(&app);
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                assert_eq!(run_bank(&app), Value::Int(75));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let world = app.world_stats(Side::Untrusted);
    assert!(
        world.switchless_fallbacks > 0,
        "8 callers against 1 worker and 1 mailbox slot must overflow: {world:?}"
    );
    // Every crossing is exactly one of: switchless hit, classic fallback.
    assert_eq!(world.rmi_calls, world.switchless_calls + world.switchless_fallbacks);

    // The fallbacks performed real transitions; the hits did not.
    let sgx = app.sgx_stats();
    assert!(sgx.ecalls > 0, "fallbacks must cross classically: {sgx:?}");

    // The recorder's view agrees with the world counters.
    let snap = app.telemetry_snapshot();
    assert_eq!(snap.counter(telemetry::Counter::SwitchlessFallbacks), world.switchless_fallbacks);
    assert_eq!(snap.counter(telemetry::Counter::SwitchlessCalls), world.switchless_calls);
    assert!(snap.counter(telemetry::Counter::SwitchlessMisses) >= world.switchless_fallbacks);
}

/// Adaptive scaling under real load: worker wakes and (under pressure)
/// scale-ups are visible in telemetry, and the queue-depth gauge never
/// reports beyond the configured mailbox capacity.
#[test]
fn adaptive_engine_reports_wakes_and_bounded_queue_depth() {
    let config = SwitchlessConfig {
        min_workers: 1,
        max_workers: 4,
        mailbox_capacity: 4,
        scale_up_misses: 2,
        ..SwitchlessConfig::default()
    };
    let app = Arc::new(launch(config.clone()));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let app = Arc::clone(&app);
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                assert_eq!(run_bank(&app), Value::Int(75));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = app.telemetry_snapshot();
    assert!(snap.counter(telemetry::Counter::SwitchlessWorkerWakes) > 0);
    let peak_depth = snap.gauge(telemetry::Gauge::SwitchlessQueueDepthPeak);
    // `queued` is incremented before the mailbox probe, so the gauge may
    // observe the one in-flight probe on top of a full mailbox.
    assert!(
        peak_depth <= config.mailbox_capacity as u64 + 1,
        "queue depth {peak_depth} beyond capacity {}",
        config.mailbox_capacity
    );
    let peak_workers = snap.gauge(telemetry::Gauge::SwitchlessWorkersPeak);
    assert!(
        (config.min_workers as u64..=config.max_workers as u64).contains(&peak_workers),
        "worker peak {peak_workers} outside configured bounds"
    );
}

/// Regression (PR 4): the crossing accounting must survive the tuner
/// actively resizing pools. An aggressively-configured trace-driven
/// tuner (tick every 2 posts, act on 1 sample, grow on any wait above
/// ~1% of a crossing) with the miss engine effectively disabled is
/// driven until it records decisions — then every crossing must still
/// be exactly one hit or one fallback, the queue-wait histogram must
/// hold exactly one sample per hit (every post was traced), and the
/// worker count must stay inside its configured bounds throughout.
#[test]
fn tuner_resizing_preserves_crossing_and_queue_wait_accounting() {
    let tracer = telemetry::trace::Tracer::new();
    tracer.enable_with_capacity(1 << 20);
    let config = SwitchlessConfig {
        min_workers: 1,
        max_workers: 4,
        mailbox_capacity: 2,
        // Park the miss engine so observed scaling is the tuner's.
        scale_up_misses: 1_000_000,
        idle_park: Duration::from_millis(5),
        autotune: Some(TunerConfig {
            interval_calls: 2,
            min_samples: 1,
            up_wait_pct: 1,
            ..TunerConfig::default()
        }),
        ..SwitchlessConfig::default()
    };
    let tp = transform(&bank_program());
    let options = ImageOptions::with_entry_points(entries());
    let (t, u) = build_partitioned_images(&tp, &options, &options).unwrap();
    let app_config = AppConfig {
        gc_helper_interval: None,
        switchless: Some(config.clone()),
        trace: Some(Arc::clone(&tracer)),
        ..AppConfig::default()
    };
    let app = Arc::new(PartitionedApp::launch(&t, &u, app_config).unwrap());

    // Drive concurrent load until the tuner has demonstrably acted,
    // sampling the worker-count invariant the whole time.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut handles = Vec::new();
        for _ in 0..6 {
            let app = Arc::clone(&app);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    assert_eq!(run_bank(&app), Value::Int(75));
                }
            }));
        }
        while handles.iter().any(|h| !h.is_finished()) {
            let stats = app.switchless_stats().unwrap();
            for side in [stats.trusted, stats.untrusted] {
                assert!(side.workers >= config.min_workers, "below min: {stats:?}");
                assert!(side.workers <= config.max_workers, "above max: {stats:?}");
            }
            std::thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = app.telemetry_snapshot();
        if snap.counter(telemetry::Counter::SwitchlessTuneUps) > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "tuner never recorded a decision: {snap:?}");
    }

    let snap = app.telemetry_snapshot();
    // Every crossing is exactly one of: switchless hit, classic
    // fallback — per calling world, tuner or no tuner.
    for side in [Side::Trusted, Side::Untrusted] {
        let world = app.world_stats(side);
        assert_eq!(
            world.rmi_calls,
            world.switchless_calls + world.switchless_fallbacks,
            "{side}: crossing accounting broke under tuner resizing"
        );
    }
    // Queue-wait reconciliation: the tracer was on for every post, so
    // each served (hit) job recorded exactly one wait sample.
    assert_eq!(
        snap.hist(telemetry::Hist::SwitchlessQueueWaitNs).count,
        snap.counter(telemetry::Counter::SwitchlessCalls),
        "one queue-wait sample per traced switchless hit"
    );
    // The decisions are visible downstream: counters and the
    // last-value batch gauge stay within the tuner's bounds.
    let target = snap.gauge(telemetry::Gauge::SwitchlessTargetBatch);
    let limit = TunerConfig::default().batch_limit as u64;
    assert!((1..=limit).contains(&target), "batch target {target} outside [1, {limit}]");
    let peak = snap.gauge(telemetry::Gauge::SwitchlessWorkersPeak);
    assert!(peak <= config.max_workers as u64, "worker peak {peak} beyond max");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the configuration and load, the live worker count of
    /// each side never exceeds `max_workers` nor drops below
    /// `min_workers` — sampled continuously while callers hammer the
    /// engine, and after the load drains.
    #[test]
    fn worker_count_stays_within_configured_bounds(
        min_workers in 1usize..3,
        extra in 0usize..3,
        mailbox_capacity in 1usize..5,
        callers in 2usize..5,
    ) {
        let config = SwitchlessConfig {
            min_workers,
            max_workers: min_workers + extra,
            mailbox_capacity,
            scale_up_misses: 1,
            idle_park: Duration::from_millis(5),
            ..SwitchlessConfig::default()
        };
        let app = Arc::new(launch(config.clone()));
        let mut handles = Vec::new();
        for _ in 0..callers {
            let app = Arc::clone(&app);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    assert_eq!(run_bank(&app), Value::Int(75));
                }
            }));
        }
        // Sample the invariant while the load runs.
        while handles.iter().any(|h| !h.is_finished()) {
            let stats = app.switchless_stats().unwrap();
            for side in [stats.trusted, stats.untrusted] {
                prop_assert!(side.workers >= config.min_workers, "below min: {stats:?}");
                prop_assert!(side.workers <= config.max_workers, "above max: {stats:?}");
            }
            std::thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        // After the load drains, scale-down must converge back to
        // exactly `min_workers` — and no further.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = app.switchless_stats().unwrap();
            if stats.trusted.workers == config.min_workers
                && stats.untrusted.workers == config.min_workers
            {
                break;
            }
            prop_assert!(Instant::now() < deadline, "never converged to min: {stats:?}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
