//! Property-based tests for the partition advisor's decision rule
//! (`docs/PARTITIONING.md`): the rule's thresholds are all *relative*
//! (savings fraction, sample counts), so uniformly rescaling the cost
//! model must never flip a verdict or reorder the plan.

use montsalvat_core::analysis::advisor::{decide, AdvisorConfig, ClassCosts, Verdict};
use montsalvat_core::annotation::Side;
use proptest::prelude::*;
use sgx_sim::cost::CostParams;

/// Params with `cpu_ghz = 1.0` so `transition_ns() == transition_cycles`
/// exactly — scaling the cycle count by a power of two then scales the
/// derived transition cost with no truncation error.
fn base_params(
    transition_cycles: u64,
    relay_overhead_ns: u64,
    switchless_call_ns: u64,
    copy_ns_per_byte: f64,
) -> CostParams {
    CostParams {
        cpu_ghz: 1.0,
        transition_cycles,
        relay_overhead_ns,
        switchless_call_ns,
        copy_ns_per_byte,
        ..CostParams::paper_defaults()
    }
}

/// Scales every nanosecond-denominated input by `2^k` (payload bytes
/// and call counts are *quantities*, not costs — they stay put; the
/// byte-cost rate scales instead). Powers of two keep all the f64
/// arithmetic exact, so the scaled plan is the base plan times `2^k`.
fn scale_costs(c: &ClassCosts, k: u32) -> ClassCosts {
    let m = 1u64 << k;
    ClassCosts {
        class: c.class.clone(),
        home: c.home,
        calls: c.calls,
        classic_crossings: c.classic_crossings,
        switchless_crossings: c.switchless_crossings,
        shim_relays: c.shim_relays,
        payload_bytes: c.payload_bytes,
        serde_ns: c.serde_ns * m,
        queue_ns: c.queue_ns * m,
        exec_ns: c.exec_ns * m,
        nested_crossing_ns: c.nested_crossing_ns * m,
    }
}

fn scale_params(p: &CostParams, k: u32) -> CostParams {
    let m = 1u64 << k;
    CostParams {
        transition_cycles: p.transition_cycles * m,
        relay_overhead_ns: p.relay_overhead_ns * m,
        switchless_call_ns: p.switchless_call_ns * m,
        copy_ns_per_byte: p.copy_ns_per_byte * m as f64,
        ..p.clone()
    }
}

/// Raw per-class inputs: `(calls, shim relays/call, payload B/call,
/// serde ns/call, queue ns/call, exec ns/call, nested ns/call,
/// trusted home?, switchless?)`. Kept as a tuple because the strategy
/// can't know the class's index; [`to_costs`] names it.
type RawClass = (u64, u64, u64, u64, u64, u64, u64, bool, bool);

/// Strategy for one traced class's aggregated costs.
fn raw_class() -> impl Strategy<Value = RawClass> {
    (
        0u64..200,    // calls
        0u64..3,      // shim relays per call
        0u64..4096,   // payload bytes per call
        0u64..20_000, // serde ns per call
        (0u64..10_000, 0u64..500_000, 0u64..100_000, any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(calls, shim, payload, serde, (queue, exec, nested, trusted, switchless))| {
                (calls, shim, payload, serde, queue, exec, nested, trusted, switchless)
            },
        )
}

fn to_costs(index: usize, raw: &RawClass) -> ClassCosts {
    let (calls, shim, payload, serde, queue, exec, nested, trusted, switchless) = *raw;
    ClassCosts {
        class: format!("C{index}"),
        home: if trusted { Side::Trusted } else { Side::Untrusted },
        calls,
        classic_crossings: if switchless { 0 } else { calls },
        switchless_crossings: if switchless { calls } else { 0 },
        shim_relays: shim * calls,
        payload_bytes: payload * calls,
        serde_ns: serde * calls,
        queue_ns: queue * calls,
        exec_ns: exec * calls,
        nested_crossing_ns: nested * calls,
    }
}

fn ranking(recs: &[(String, Verdict, i64)]) -> Vec<String> {
    let mut sorted: Vec<_> = recs.to_vec();
    sorted.sort_by(|a, b| {
        let rank = |v: Verdict| match v {
            Verdict::Move => 0,
            Verdict::Hold => 1,
        };
        rank(a.1).cmp(&rank(b.1)).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0))
    });
    sorted.into_iter().map(|(name, ..)| name).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scaling every cost by a common power of two preserves each
    /// class's verdict and the plan's ranking: the decision rule only
    /// ever compares *relative* quantities.
    #[test]
    fn verdicts_and_ranking_survive_uniform_cost_scaling(
        raw_classes in proptest::collection::vec(raw_class(), 1..6),
        transition_cycles in 500u64..20_000,
        relay_overhead_ns in 1_000u64..100_000,
        switchless_call_ns in 100u64..5_000,
        copy_half_ns in 1u64..16,
        k in 0u32..=10,
    ) {
        let params = base_params(
            transition_cycles,
            relay_overhead_ns,
            switchless_call_ns,
            copy_half_ns as f64 * 0.5,
        );
        let scaled_params = scale_params(&params, k);
        let cfg = AdvisorConfig::default();

        let classes: Vec<ClassCosts> =
            raw_classes.iter().enumerate().map(|(i, raw)| to_costs(i, raw)).collect();
        let mut base = Vec::new();
        let mut scaled = Vec::new();
        for c in &classes {
            let r0 = decide(c, &params, &cfg, None);
            let r1 = decide(&scale_costs(c, k), &scaled_params, &cfg, None);
            prop_assert_eq!(
                r0.verdict, r1.verdict,
                "class {} flipped under x2^{k} scaling: {} -> {}",
                c.class, r0.rationale, r1.rationale
            );
            prop_assert_eq!(&r0.suggested, &r1.suggested, "suggestion changed for {}", c.class);
            // The fraction and confidence are scale-free by definition.
            prop_assert!((r0.savings_frac - r1.savings_frac).abs() < 1e-9);
            prop_assert!((r0.confidence - r1.confidence).abs() < 1e-12);
            base.push((c.class.clone(), r0.verdict, r0.predicted_savings_ns));
            scaled.push((c.class.clone(), r1.verdict, r1.predicted_savings_ns));
        }
        prop_assert_eq!(ranking(&base), ranking(&scaled), "plan order changed under scaling");
    }

    /// The decision rule is monotone in the evidence: with everything
    /// else fixed, adding more identically-shaped calls never turns a
    /// Move into a Hold.
    #[test]
    fn more_samples_never_demote_a_move(
        calls in 1u64..500,
        extra in 1u64..500,
        per_call_exec in 0u64..40_000,
    ) {
        let params = CostParams::paper_defaults();
        let cfg = AdvisorConfig::default();
        let per = |n: u64| ClassCosts {
            class: "C".into(),
            home: Side::Trusted,
            calls: n,
            classic_crossings: n,
            switchless_crossings: 0,
            shim_relays: 0,
            payload_bytes: 256 * n,
            serde_ns: 2_000 * n,
            queue_ns: 0,
            exec_ns: per_call_exec * n,
            nested_crossing_ns: 0,
        };
        let small = decide(&per(calls), &params, &cfg, None);
        let large = decide(&per(calls + extra), &params, &cfg, None);
        if small.verdict == Verdict::Move {
            prop_assert_eq!(large.verdict, Verdict::Move, "{}", large.rationale);
        }
        prop_assert!(large.confidence >= small.confidence);
    }
}
