//! Allocation-count regression test for the boundary-serde fast path.
//!
//! Installs a counting global allocator and measures heap allocations
//! per steady-state crossing on the kvstore-write shape (a bulk byte
//! payload into a trusted sink). The v2 fast path must allocate at
//! least 2× less than the classic v1 path: pooled encode buffers, no
//! `values.to_vec()`/`Value::List` staging copies, and interned hint
//! names remove the per-crossing malloc traffic.
//!
//! This file deliberately contains a single `#[test]` so no sibling
//! test thread allocates while the window is measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use montsalvat_core::class::{ClassDef, MethodDef, MethodKind, MethodRef, Program, CTOR};
use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat_core::transform::transform;
use montsalvat_core::Trust;
use runtime_sim::value::Value;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn sink_program() -> Program {
    let sink = ClassDef::new("Sink")
        .trust(Trust::Trusted)
        .method(MethodDef::interpreted(CTOR, MethodKind::Constructor, 0, 0, vec![]))
        .method(MethodDef::native(
            "put",
            MethodKind::Instance,
            1,
            vec![],
            std::sync::Arc::new(|_ctx, _this, args: &[Value]| match &args[0] {
                Value::Bytes(b) => Ok(Value::Int(b.len() as i64)),
                other => Ok(other.clone()),
            }),
        ));
    let main = ClassDef::new("Main").trust(Trust::Untrusted).method(MethodDef::interpreted(
        "main",
        MethodKind::Static,
        0,
        0,
        vec![],
    ));
    Program::new(vec![sink, main], MethodRef::new("Main", "main")).unwrap()
}

fn launch(fastpath: bool) -> PartitionedApp {
    let tp = transform(&sink_program());
    let options = ImageOptions::with_entry_points(vec![
        MethodRef::new("Sink", CTOR),
        MethodRef::new("Sink", "put"),
        MethodRef::new("Main", "main"),
    ]);
    let (t, u) = build_partitioned_images(&tp, &options, &options).unwrap();
    let config = AppConfig {
        // No helper/worker threads: the measured window must only see
        // this thread's crossings.
        gc_helper_interval: None,
        switchless: None,
        serde_fastpath: Some(fastpath),
        ..AppConfig::default()
    };
    PartitionedApp::launch(&t, &u, config).unwrap()
}

/// Allocations across `rounds` steady-state `put` crossings.
fn allocs_per_window(app: &PartitionedApp, payload: &[Value], rounds: usize) -> u64 {
    app.enter_untrusted(|ctx| {
        let sink = ctx.new_object("Sink", &[])?;
        // Warm up: intern names, compile shapes, grow the managed
        // heap, seed the thread-local buffer pool.
        for _ in 0..32 {
            ctx.call(&sink, "put", payload)?;
        }
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..rounds {
            ctx.call(&sink, "put", payload)?;
        }
        Ok(ALLOCS.load(Ordering::Relaxed) - before)
    })
    .unwrap()
}

#[test]
fn fast_path_halves_allocations_per_crossing() {
    const ROUNDS: usize = 64;
    let payload = [Value::Bytes(vec![0xEE; 1024])];

    let classic_app = launch(false);
    let classic = allocs_per_window(&classic_app, &payload, ROUNDS);
    classic_app.shutdown();

    let fast_app = launch(true);
    let fast = allocs_per_window(&fast_app, &payload, ROUNDS);
    fast_app.shutdown();

    assert!(classic > 0, "classic path allocates per crossing");
    assert!(
        classic >= 2 * fast,
        "fast path must allocate >=2x less per crossing: classic {classic} vs fast {fast} \
         over {ROUNDS} crossings"
    );
}
