//! Semantics of references crossing the enclave boundary: nesting in
//! neutral structure, identity preservation, round trips, and
//! concurrent crossings.

use montsalvat_core::annotation::{Side, Trust};
use montsalvat_core::class::{ClassDef, Instr, MethodDef, MethodKind, MethodRef, Operand, CTOR};
use montsalvat_core::exec::app::{AppConfig, PartitionedApp};
use montsalvat_core::image_builder::{build_partitioned_images, ImageOptions};
use montsalvat_core::transform::transform;
use montsalvat_core::Program;
use runtime_sim::value::Value;

/// A `Box`-like container on each side: stores and returns any value.
fn boxes_program() -> Program {
    let make = |name: &str, trust: Trust| {
        ClassDef::new(name)
            .trust(trust)
            .field("val")
            .method(MethodDef::interpreted(
                CTOR,
                MethodKind::Constructor,
                0,
                0,
                vec![Instr::Return { value: None }],
            ))
            .method(MethodDef::interpreted(
                "set",
                MethodKind::Instance,
                1,
                1,
                vec![
                    Instr::SetField {
                        recv: Operand::This,
                        field: "val".into(),
                        value: Operand::Local(0),
                    },
                    Instr::Return { value: None },
                ],
            ))
            .method(MethodDef::interpreted(
                "get",
                MethodKind::Instance,
                0,
                1,
                vec![
                    Instr::GetField { dst: 0, recv: Operand::This, field: "val".into() },
                    Instr::Return { value: Some(Operand::Local(0)) },
                ],
            ))
    };
    let main = ClassDef::new("Main").trust(Trust::Untrusted).method(MethodDef::interpreted(
        "main",
        MethodKind::Static,
        0,
        0,
        vec![Instr::Return { value: None }],
    ));
    Program::new(
        vec![make("TBox", Trust::Trusted), make("UBox", Trust::Untrusted), main],
        MethodRef::new("Main", "main"),
    )
    .unwrap()
}

fn entries() -> Vec<MethodRef> {
    ["TBox", "UBox"]
        .into_iter()
        .flat_map(|c| [CTOR, "set", "get"].into_iter().map(move |m| MethodRef::new(c, m)))
        .collect()
}

fn launch() -> PartitionedApp {
    let tp = transform(&boxes_program());
    let options = ImageOptions::with_entry_points(entries());
    let (t, u) = build_partitioned_images(&tp, &options, &options).unwrap();
    PartitionedApp::launch(&t, &u, AppConfig { gc_helper_interval: None, ..AppConfig::default() })
        .unwrap()
}

#[test]
fn primitive_roundtrip_through_the_enclave() {
    let app = launch();
    let out = app
        .enter_untrusted(|ctx| {
            let b = ctx.new_object("TBox", &[])?;
            ctx.call(&b, "set", &[Value::Float(2.75)])?;
            ctx.call(&b, "get", &[])
        })
        .unwrap();
    assert_eq!(out, Value::Float(2.75));
}

#[test]
fn annotated_ref_roundtrip_preserves_proxy_identity() {
    // Store proxy A inside trusted box B; reading it back must yield
    // the *same* proxy object, not a fresh one (§5.2: a single version
    // of each object in both worlds).
    let app = launch();
    let (sent, received) = app
        .enter_untrusted(|ctx| {
            let a = ctx.new_object("TBox", &[])?;
            let b = ctx.new_object("TBox", &[])?;
            ctx.call(&b, "set", std::slice::from_ref(&a))?;
            let back = ctx.call(&b, "get", &[])?;
            Ok((a, back))
        })
        .unwrap();
    assert_eq!(sent.as_ref_id(), received.as_ref_id(), "same proxy object");
    // Exactly two mirrors exist (one per TBox), no duplicates.
    assert_eq!(app.registry_len(Side::Trusted), 2);
}

#[test]
fn annotated_refs_nested_in_neutral_structure_cross_correctly() {
    // A neutral list containing [int, proxy-ref, string] crosses into
    // the enclave; the mirror must see the mirror of the nested proxy.
    let app = launch();
    let out = app
        .enter_untrusted(|ctx| {
            let inner = ctx.new_object("TBox", &[])?;
            ctx.call(&inner, "set", &[Value::Int(99)])?;
            let holder = ctx.new_object("TBox", &[])?;
            let bundle = Value::List(vec![Value::Int(1), inner.clone(), Value::from("tag")]);
            ctx.call(&holder, "set", &[bundle])?;
            // Read the bundle back and call through the nested proxy.
            let back = ctx.call(&holder, "get", &[])?;
            let items = back.as_list().expect("list returns").to_vec();
            assert_eq!(items[0], Value::Int(1));
            assert_eq!(items[2], Value::from("tag"));
            let nested = items[1].clone();
            ctx.call(&nested, "get", &[])
        })
        .unwrap();
    assert_eq!(out, Value::Int(99));
}

#[test]
fn untrusted_objects_proxy_into_the_enclave_and_back() {
    // Reverse direction: a UBox (untrusted concrete) stored inside a
    // TBox mirror must export a hash, materialise a UBox proxy inside
    // the enclave, and calls through it must come back out as ocalls.
    let app = launch();
    let out = app
        .enter_untrusted(|ctx| {
            let u = ctx.new_object("UBox", &[])?;
            ctx.call(&u, "set", &[Value::from("outside data")])?;
            let t = ctx.new_object("TBox", &[])?;
            ctx.call(&t, "set", &[u])?; // UBox ref crosses inward as a hash
            let back = ctx.call(&t, "get", &[])?; // comes back as the same UBox
            ctx.call(&back, "get", &[])
        })
        .unwrap();
    assert_eq!(out, Value::from("outside data"));
    // The UBox was exported: its strong ref lives in the *untrusted*
    // registry (its home), keyed for the enclave-side proxy.
    assert_eq!(app.registry_len(Side::Untrusted), 1);
}

#[test]
fn deep_neutral_structures_deep_copy() {
    // Nested lists of primitives are copied by value: mutating the
    // original afterwards must not affect the enclave copy.
    let app = launch();
    let out = app
        .enter_untrusted(|ctx| {
            let t = ctx.new_object("TBox", &[])?;
            let nested = Value::List(vec![
                Value::List(vec![Value::Int(1), Value::Int(2)]),
                Value::Bytes(vec![7, 8, 9]),
            ]);
            ctx.call(&t, "set", &[nested])?;
            ctx.call(&t, "get", &[])
        })
        .unwrap();
    let items = out.as_list().unwrap();
    assert_eq!(items[0], Value::List(vec![Value::Int(1), Value::Int(2)]));
    assert_eq!(items[1], Value::Bytes(vec![7, 8, 9]));
}

#[test]
fn concurrent_crossings_from_multiple_threads() {
    let app = std::sync::Arc::new(launch());
    let mut handles = Vec::new();
    for t in 0..4 {
        let app = std::sync::Arc::clone(&app);
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let v = app
                    .enter_untrusted(|ctx| {
                        let b = ctx.new_object("TBox", &[])?;
                        ctx.call(&b, "set", &[Value::Int(t * 1000 + i)])?;
                        ctx.call(&b, "get", &[])
                    })
                    .unwrap();
                assert_eq!(v, Value::Int(t * 1000 + i));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(app.registry_len(Side::Trusted), 200);
    assert_eq!(app.sgx_stats().ecalls, 4 * 50 * 3);
}

#[test]
fn gc_sync_handles_mixed_live_and_dead_nested_proxies() {
    let app = launch();
    app.enter_untrusted(|ctx| {
        // One long-lived proxy holding a short-lived one.
        let keeper = ctx.new_object("TBox", &[])?;
        {
            let shortlived = ctx.new_object("TBox", &[])?;
            ctx.call(&keeper, "set", std::slice::from_ref(&shortlived))?;
            // Drop our frame root; the mirror graph inside the enclave
            // still references the nested mirror.
            ctx.forget(&shortlived);
        }
        ctx.collect_garbage();
        Ok(())
    })
    .unwrap();
    // The short-lived *proxy* died outside -> its registry entry is
    // released; the nested *mirror* stays alive through the keeper
    // mirror's field (trusted-heap reachability), so the object graph
    // in the enclave stays intact.
    let (released, _) = app.gc_sync_once().unwrap();
    assert_eq!(released, 1);
    assert_eq!(app.registry_len(Side::Trusted), 1);
    let live_after_gc = app
        .enter_trusted(|ctx| {
            ctx.collect_garbage();
            Ok(ctx.with_heap(|h| h.live_objects()))
        })
        .unwrap();
    assert!(live_after_gc >= 2, "keeper mirror and nested mirror survive: {live_after_gc}");
}
